#include "core/threshold.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "fim/fpgrowth.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeRandomDb;

/// One threshold-mode query through the public entry point
/// (QuerySpec::WithThreshold → Engine::Run) with an external Rng.
Result<Release> RunThreshold(const TransactionDatabase& db, double theta,
                             size_t k_cap, double epsilon, Rng& rng) {
  QuerySpec spec = QuerySpec().WithThreshold(theta, k_cap);
  spec.epsilon = epsilon;
  auto handle = Dataset::Borrow(db);
  return Engine::Run(*handle, spec, rng);
}

TEST(ThresholdTest, ValidatesArguments) {
  TransactionDatabase db = MakeRandomDb({.seed = 1});
  Rng rng(1);
  // Out-of-range θ and a zero candidate cap are rejected centrally by
  // QuerySpec::Validate. (θ = 0 is not an error — it is simply top-k
  // mode with no filter.)
  EXPECT_FALSE(RunThreshold(db, -0.1, 10, 1.0, rng).ok());
  EXPECT_FALSE(RunThreshold(db, 1.5, 10, 1.0, rng).ok());
  EXPECT_FALSE(RunThreshold(db, 0.5, 0, 1.0, rng).ok());
}

TEST(ThresholdTest, HighEpsilonRecoversThetaFrequentSet) {
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.1), 3);
  ASSERT_TRUE(db.ok());
  const double theta = 0.6;
  uint64_t theta_count = static_cast<uint64_t>(
      theta * static_cast<double>(db->NumTransactions()));
  auto exact = MineFpGrowth(*db, {.min_support = theta_count});
  ASSERT_TRUE(exact.ok());
  ASSERT_GT(exact->itemsets.size(), 5u);

  Rng rng(5);
  auto result = RunThreshold(
      *db, theta, /*k_cap=*/exact->itemsets.size() + 50, /*epsilon=*/300.0,
      rng);
  ASSERT_TRUE(result.ok());

  std::unordered_set<Itemset, ItemsetHash> released;
  for (const auto& r : result->itemsets) released.insert(r.items);
  size_t hits = 0;
  for (const auto& fi : exact->itemsets) hits += released.contains(fi.items);
  // At huge ε essentially everything above θ is released and little junk
  // enters (allow a couple of boundary crossings).
  EXPECT_GE(hits + 2, exact->itemsets.size());
  EXPECT_LE(released.size(), exact->itemsets.size() + 4);
}

TEST(ThresholdTest, AllReleasedClearTheta) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 7, .num_transactions = 120, .universe = 14});
  const double theta = 0.3;
  Rng rng(9);
  auto result = RunThreshold(db, theta, 40, 1.0, rng);
  ASSERT_TRUE(result.ok());
  double theta_count = theta * static_cast<double>(db.NumTransactions());
  for (const auto& r : result->itemsets) {
    EXPECT_GE(r.noisy_count, theta_count);
  }
}

TEST(ThresholdTest, BudgetUnchangedByFilter) {
  TransactionDatabase db = MakeRandomDb({.seed = 11});
  Rng rng(13);
  auto result = RunThreshold(db, 0.2, 20, 0.8, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->epsilon_spent, 0.8 + 1e-9);
}

TEST(ThresholdTest, HighThetaReleasesNothingOrLittle) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 15, .num_transactions = 100, .universe = 10,
       .item_prob = 0.1});
  Rng rng(17);
  auto result = RunThreshold(db, 0.99, 20, 2.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->itemsets.size(), 2u);
}

}  // namespace
}  // namespace privbasis
