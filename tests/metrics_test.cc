#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;

std::vector<FrequentItemset> Actual() {
  return {{Itemset({0}), 4}, {Itemset({1}), 3}, {Itemset({0, 1}), 2},
          {Itemset({2}), 2}};
}

TEST(FnrTest, PerfectRecoveryIsZero) {
  std::vector<NoisyItemset> published{
      {Itemset({0}), 4.0}, {Itemset({1}), 3.0}, {Itemset({0, 1}), 2.0},
      {Itemset({2}), 2.0}};
  EXPECT_EQ(FalseNegativeRate(Actual(), published), 0.0);
}

TEST(FnrTest, CountsMisses) {
  std::vector<NoisyItemset> published{
      {Itemset({0}), 4.0}, {Itemset({9}), 3.0}, {Itemset({8}), 2.0},
      {Itemset({2}), 2.0}};
  EXPECT_NEAR(FalseNegativeRate(Actual(), published), 0.5, 1e-12);
}

TEST(FnrTest, EmptyPublishedIsOne) {
  EXPECT_EQ(FalseNegativeRate(Actual(), {}), 1.0);
}

TEST(FnrTest, EmptyActualIsZero) {
  std::vector<NoisyItemset> published{{Itemset({0}), 1.0}};
  EXPECT_EQ(FalseNegativeRate({}, published), 0.0);
}

TEST(FnrTest, ExtraPublishedDoesNotHelp) {
  // Publishing more than k junk itemsets cannot reduce FNR below the miss
  // fraction.
  std::vector<NoisyItemset> published;
  for (Item i = 10; i < 30; ++i) published.push_back({Itemset({i}), 1.0});
  EXPECT_EQ(FalseNegativeRate(Actual(), published), 1.0);
}

TEST(ReTest, ZeroErrorForExactCounts) {
  TransactionDatabase db = MakeDb({{0, 1}, {0}, {0, 1}});
  VerticalIndex index(db);
  std::vector<NoisyItemset> published{{Itemset({0}), 3.0},
                                      {Itemset({0, 1}), 2.0}};
  EXPECT_EQ(MedianRelativeError(published, index), 0.0);
}

TEST(ReTest, MedianOfRelativeErrors) {
  TransactionDatabase db = MakeDb({{0, 1}, {0}, {0, 1}, {0}});
  VerticalIndex index(db);
  // Exact: {0}=4, {1}=2.
  std::vector<NoisyItemset> published{
      {Itemset({0}), 5.0},  // RE = 0.25
      {Itemset({1}), 3.0},  // RE = 0.5
      {Itemset({1}), 2.0},  // RE = 0
  };
  EXPECT_NEAR(MedianRelativeError(published, index), 0.25, 1e-12);
}

TEST(ReTest, ZeroSupportDenominatorFloored) {
  TransactionDatabase db = MakeDb({{0}}, /*universe=*/3);
  VerticalIndex index(db);
  std::vector<NoisyItemset> published{{Itemset({2}), 5.0}};
  // Exact support 0 -> denominator floored at 1 count.
  EXPECT_NEAR(MedianRelativeError(published, index), 5.0, 1e-12);
}

TEST(ReTest, EmptyPublished) {
  TransactionDatabase db = MakeDb({{0}});
  VerticalIndex index(db);
  EXPECT_EQ(MedianRelativeError({}, index), 0.0);
}

TEST(ComputeUtilityTest, CombinesBoth) {
  TransactionDatabase db = MakeDb({{0, 1}, {0}, {0, 1}, {0}});
  VerticalIndex index(db);
  std::vector<FrequentItemset> actual{{Itemset({0}), 4}, {Itemset({1}), 2}};
  std::vector<NoisyItemset> published{{Itemset({0}), 4.0},
                                      {Itemset({7}), 1.0}};
  UtilityMetrics m = ComputeUtility(actual, published, index);
  EXPECT_NEAR(m.fnr, 0.5, 1e-12);
  EXPECT_GE(m.relative_error, 0.0);
}

TEST(ReTest, TruePositiveVariantIgnoresJunk) {
  TransactionDatabase db = MakeDb({{0, 1}, {0}, {0, 1}, {0}}, /*universe=*/9);
  VerticalIndex index(db);
  std::vector<FrequentItemset> actual{{Itemset({0}), 4}, {Itemset({1}), 2}};
  // One exact true positive plus a junk itemset with huge error: the
  // true-positive median must be 0 regardless of the junk.
  std::vector<NoisyItemset> published{{Itemset({0}), 4.0},
                                      {Itemset({7}), 500.0},
                                      {Itemset({8}), 900.0}};
  EXPECT_NEAR(
      MedianRelativeErrorOverTruePositives(actual, published, index), 0.0,
      1e-12);
  // The all-published variant is dominated by the junk.
  EXPECT_GT(MedianRelativeError(published, index), 100.0);
}

TEST(ReTest, TruePositiveVariantFallsBackWhenNoOverlap) {
  TransactionDatabase db = MakeDb({{0}}, /*universe=*/5);
  VerticalIndex index(db);
  std::vector<FrequentItemset> actual{{Itemset({0}), 1}};
  std::vector<NoisyItemset> published{{Itemset({3}), 2.0}};
  EXPECT_NEAR(
      MedianRelativeErrorOverTruePositives(actual, published, index), 2.0,
      1e-12);
}

}  // namespace
}  // namespace privbasis
