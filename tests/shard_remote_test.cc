// Process-separated scatter-gather (shard/worker.h + shard/remote.h),
// exercised over real loopback TCP with in-process ShardWorker
// instances standing in for privbasis_shardd processes:
//   * every remote counting op merges to the bit-identical integers a
//     local scan produces;
//   * a coordinator-served query (QueryServer --shard-workers) equals a
//     direct Engine::Run release byte for byte;
//   * failure is closed: a dead or faulting worker fails the query with
//     the FULL ε reservation charged — never a partial count, never an
//     under-charged ledger.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/basis_freq.h"
#include "core/privbasis.h"
#include "data/vertical_index.h"
#include "engine/dataset.h"
#include "engine/engine.h"
#include "server/server.h"
#include "server/wire.h"
#include "shard/remote.h"
#include "shard/sharded_db.h"
#include "shard/worker.h"
#include "test_util.h"

namespace privbasis {
namespace {

using privbasis::testing::MakeRandomDb;
using server::HttpCall;
using server::HttpResponse;
using server::ReleaseFromJson;
using server::StatsFromJson;

constexpr int64_t kCallTimeoutMs = 30'000;

struct Fleet {
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::shared_ptr<ShardWorkerClient>> clients;
  std::vector<std::string> specs;  // "host:port" per worker
};

Fleet StartFleet(size_t n) {
  Fleet fleet;
  for (size_t i = 0; i < n; ++i) {
    auto worker = ShardWorker::Start({});
    EXPECT_TRUE(worker.ok()) << worker.status().ToString();
    const uint16_t port = (*worker)->port();
    fleet.workers.push_back(std::move(*worker));
    fleet.clients.push_back(std::make_shared<ShardWorkerClient>(
        WorkerAddr{"127.0.0.1", port}));
    fleet.specs.push_back("127.0.0.1:" + std::to_string(port));
  }
  return fleet;
}

/// Ships one slice per worker under `id` (the coordinator's attach path,
/// inlined for executor-level tests).
void LoadSlices(Fleet& fleet, const std::string& id,
                const TransactionDatabase& db) {
  auto sharded = ShardedDatabase::Create(db, fleet.clients.size());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  for (size_t s = 0; s < fleet.clients.size(); ++s) {
    const Status loaded = fleet.clients[s]->LoadShard(id, sharded->shard(s));
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  }
}

TEST(ShardRemoteTest, PingLoadAndDrop) {
  Fleet fleet = StartFleet(1);
  PRIVBASIS_ASSERT_OK(fleet.clients[0]->Ping(kCallTimeoutMs));

  const TransactionDatabase db = MakeRandomDb({.seed = 3});
  LoadSlices(fleet, "d1", db);
  EXPECT_EQ(fleet.workers[0]->NumLoadedShards(), 1u);
  PRIVBASIS_ASSERT_OK(fleet.clients[0]->DropShard("d1"));
  EXPECT_EQ(fleet.workers[0]->NumLoadedShards(), 0u);
  // Dropping an unknown id is a no-op, mirroring best-effort eviction.
  PRIVBASIS_ASSERT_OK(fleet.clients[0]->DropShard("never-loaded"));
}

TEST(ShardRemoteTest, RemoteCountsMatchDirectScan) {
  const TransactionDatabase db = MakeRandomDb({.seed = 41});
  Fleet fleet = StartFleet(2);
  LoadSlices(fleet, "d", db);
  const RemoteShardExecutor exec("d", fleet.clients);
  EXPECT_EQ(exec.NumShards(), 2u);

  PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> item_supports,
                                 exec.ItemSupports(nullptr));
  EXPECT_EQ(item_supports, db.ItemSupports());

  const std::vector<Item> items = {0, 1, 2, 4, 7};
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> pairs,
                                 exec.PairSupports(items, nullptr));
  EXPECT_EQ(pairs, CountPairSupports(db, items, nullptr));

  BasisSet basis_set;
  basis_set.Add(Itemset({0, 1, 2}));
  basis_set.Add(Itemset({3, 5}));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(auto bins,
                                 exec.BasisBinCounts(basis_set, nullptr));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(auto expected_bins,
                                 CountBasisBins(db, basis_set));
  EXPECT_EQ(bins, expected_bins);

  const std::vector<Itemset> queries = {Itemset({0}), Itemset({0, 1}),
                                        Itemset({2, 3, 5})};
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> supports,
                                 exec.SupportOfMany(queries, nullptr));
  const VerticalIndex index(db);
  EXPECT_EQ(supports, index.SupportOfMany(queries));
}

TEST(ShardRemoteTest, UnknownDatasetIdFailsEveryOp) {
  Fleet fleet = StartFleet(1);
  const RemoteShardExecutor exec("ghost", fleet.clients);
  EXPECT_EQ(exec.ItemSupports(nullptr).status().code(),
            StatusCode::kNotFound);
}

// Engine::Run with an attached RemoteShardExecutor is bit-identical to
// the plain local run — process separation is invisible in results.
TEST(ShardRemoteTest, EngineRunBitIdenticalThroughRemoteExecutor) {
  const TransactionDatabase db = MakeRandomDb(
      {.seed = 47, .num_transactions = 100, .universe = 12});

  QuerySpec spec;
  spec.k = 10;
  spec.epsilon = 1.0;
  spec.seed = 777;

  auto direct_ds = Dataset::Create(TransactionDatabase(db));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release direct,
                                 Engine::Run(*direct_ds, spec));

  Fleet fleet = StartFleet(2);
  LoadSlices(fleet, "d", db);
  auto remote_ds = Dataset::Create(TransactionDatabase(db));
  remote_ds->AttachCountExecutor(
      std::make_shared<RemoteShardExecutor>("d", fleet.clients));
  EXPECT_EQ(remote_ds->shard_fanout(), 2u);
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release remote,
                                 Engine::Run(*remote_ds, spec));

  ASSERT_EQ(remote.itemsets.size(), direct.itemsets.size());
  for (size_t i = 0; i < direct.itemsets.size(); ++i) {
    EXPECT_EQ(remote.itemsets[i].items, direct.itemsets[i].items);
    EXPECT_EQ(remote.itemsets[i].noisy_count, direct.itemsets[i].noisy_count);
  }
  EXPECT_EQ(remote.lambda, direct.lambda);
  EXPECT_EQ(remote.epsilon_spent, direct.epsilon_spent);
}

// The acceptance bit: a worker dying mid-query fails the query with the
// FULL reservation charged. The injected fault fires after the request
// frame reaches the worker — the query is genuinely in flight.
TEST(ShardRemoteTest, FaultingWorkerFailsClosedWithFullCharge) {
  const TransactionDatabase db = MakeRandomDb({.seed = 53});
  Fleet fleet = StartFleet(2);
  LoadSlices(fleet, "d", db);

  auto dataset =
      Dataset::Create(TransactionDatabase(db), {.total_epsilon = 5.0});
  dataset->AttachCountExecutor(
      std::make_shared<RemoteShardExecutor>("d", fleet.clients));

  QuerySpec spec;
  spec.k = 10;
  spec.epsilon = 1.0;
  spec.seed = 1;

  // Workers are in-process here, so the failpoint arms their op path.
  PRIVBASIS_ASSERT_OK(failpoint::Configure("shard_worker_op=error:EIO"));
  auto release = Engine::Run(*dataset, spec);
  failpoint::Reset();

  ASSERT_FALSE(release.ok());
  // Fail closed: the aborted lease charges the full reservation. A
  // worker failure can lose a query, never ε.
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 1.0);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);

  // And with the fault cleared, the same fleet serves again.
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release ok_release,
                                 Engine::Run(*dataset, spec));
  EXPECT_FALSE(ok_release.itemsets.empty());
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 2.0);
}

// A stopped (dead) worker: transport-level Unavailable, same fail-closed
// accounting, and queries keep failing cleanly rather than hanging.
TEST(ShardRemoteTest, DeadWorkerIsUnavailableAndChargesInFull) {
  const TransactionDatabase db = MakeRandomDb({.seed = 59});
  Fleet fleet = StartFleet(2);
  LoadSlices(fleet, "d", db);

  auto dataset =
      Dataset::Create(TransactionDatabase(db), {.total_epsilon = 3.0});
  dataset->AttachCountExecutor(
      std::make_shared<RemoteShardExecutor>("d", fleet.clients));

  fleet.workers[1]->Stop();

  QuerySpec spec;
  spec.k = 8;
  spec.epsilon = 0.5;
  auto release = Engine::Run(*dataset, spec);
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kUnavailable)
      << release.status();
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 0.5);
}

// A token whose deadline already passed refuses the fan-out before any
// frame is written (kCancelled, not a wasted worker round trip).
TEST(ShardRemoteTest, ExpiredDeadlineRefusesFanOut) {
  const TransactionDatabase db = MakeRandomDb({.seed = 61});
  Fleet fleet = StartFleet(1);
  LoadSlices(fleet, "d", db);
  const RemoteShardExecutor exec("d", fleet.clients);

  const CancelToken expired(std::chrono::steady_clock::now() -
                            std::chrono::milliseconds(10));
  EXPECT_EQ(exec.ItemSupports(&expired).status().code(),
            StatusCode::kCancelled);
}

// Full coordinator topology over HTTP: privbasis_server --shard-workers
// equivalent, in process. Served releases equal direct Engine::Run, and
// /v1/stats reports the fleet.
TEST(ShardRemoteTest, CoordinatorServedEqualsDirect) {
  const TransactionDatabase db = MakeRandomDb(
      {.seed = 67, .num_transactions = 150, .universe = 12});

  Fleet fleet = StartFleet(2);
  server::ServerOptions options;
  options.shard_workers = fleet.specs;
  server::QueryServer coordinator(options);
  PRIVBASIS_ASSERT_OK(coordinator.Start());

  // Registration runs the attach hook: slices ship to the workers.
  auto registered =
      coordinator.registry().Register(Dataset::Create(TransactionDatabase(db)));
  PRIVBASIS_ASSERT_OK(registered.status());
  EXPECT_EQ(fleet.workers[0]->NumLoadedShards(), 1u);
  EXPECT_EQ(fleet.workers[1]->NumLoadedShards(), 1u);

  const std::string body = "{\"dataset\":\"" + *registered +
                           "\",\"k\":10,\"epsilon\":1.0,\"seed\":321}";
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(
      HttpResponse response,
      HttpCall(coordinator.host(), coordinator.port(), "POST", "/v1/query",
               body, kCallTimeoutMs));
  ASSERT_EQ(response.status, 200) << response.body;
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(json::Value parsed,
                                 json::Parse(response.body));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release served, ReleaseFromJson(parsed));

  QuerySpec spec;
  spec.k = 10;
  spec.epsilon = 1.0;
  spec.seed = 321;
  auto direct_ds = Dataset::Create(TransactionDatabase(db));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release direct,
                                 Engine::Run(*direct_ds, spec));
  ASSERT_EQ(served.itemsets.size(), direct.itemsets.size());
  for (size_t i = 0; i < direct.itemsets.size(); ++i) {
    EXPECT_EQ(served.itemsets[i].items, direct.itemsets[i].items);
    EXPECT_EQ(served.itemsets[i].noisy_count, direct.itemsets[i].noisy_count);
  }

  // /v1/stats advertises the topology.
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(
      HttpResponse stats_response,
      HttpCall(coordinator.host(), coordinator.port(), "GET", "/v1/stats",
               "", kCallTimeoutMs));
  ASSERT_EQ(stats_response.status, 200);
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(json::Value stats_json,
                                 json::Parse(stats_response.body));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(server::StatsSnapshot stats,
                                 StatsFromJson(stats_json));
  EXPECT_EQ(stats.shard_workers, 2u);
  EXPECT_EQ(stats.shard_fanout, 2u);

  // Eviction broadcasts DropShard.
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(
      HttpResponse evicted,
      HttpCall(coordinator.host(), coordinator.port(), "DELETE",
               "/v1/datasets/" + *registered, "", kCallTimeoutMs));
  EXPECT_EQ(evicted.status, 204);
  EXPECT_EQ(fleet.workers[0]->NumLoadedShards(), 0u);
  EXPECT_EQ(fleet.workers[1]->NumLoadedShards(), 0u);

  coordinator.Stop();
}

// A coordinator pointed at a dead fleet refuses to start — operators
// find out at boot, not at the first registration.
TEST(ShardRemoteTest, CoordinatorFailsStartupOnDeadWorker) {
  Fleet fleet = StartFleet(1);
  const std::string spec = fleet.specs[0];
  fleet.workers[0]->Stop();

  server::ServerOptions options;
  options.shard_workers = {spec};
  server::QueryServer coordinator(options);
  EXPECT_FALSE(coordinator.Start().ok());
}

TEST(ShardRemoteTest, ParseWorkerAddrForms) {
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(WorkerAddr full,
                                 ParseWorkerAddr("10.0.0.2:9101"));
  EXPECT_EQ(full.host, "10.0.0.2");
  EXPECT_EQ(full.port, 9101);
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(WorkerAddr bare, ParseWorkerAddr("9101"));
  EXPECT_EQ(bare.host, "127.0.0.1");
  EXPECT_EQ(bare.port, 9101);
  EXPECT_FALSE(ParseWorkerAddr("").ok());
  EXPECT_FALSE(ParseWorkerAddr("host:").ok());
  EXPECT_FALSE(ParseWorkerAddr("host:99999").ok());
}

}  // namespace
}  // namespace privbasis
