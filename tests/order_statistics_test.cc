#include "dp/order_statistics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/distributions.h"

namespace privbasis {
namespace {

TEST(OrderStatisticsTest, EmitsDescendingValues) {
  Rng rng(1);
  LaplaceTopOrderStatistics stream(1000, 1.0);
  double prev = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(stream.HasNext());
    double x = stream.Next(rng);
    EXPECT_LE(x, prev);
    prev = x;
  }
  EXPECT_FALSE(stream.HasNext());
}

TEST(OrderStatisticsTest, SingleSampleIsPlainLaplace) {
  // n = 1: the "maximum" is just one Laplace draw; check mean/variance.
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  const int trials = 300000;
  for (int t = 0; t < trials; ++t) {
    LaplaceTopOrderStatistics stream(1, 2.0);
    double x = stream.Next(rng);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / trials;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / trials - mean * mean, 8.0, 0.3);
}

TEST(OrderStatisticsTest, MaximumMatchesDirectSimulation) {
  // Compare the streamed maximum of n=50 iid Laplace(1) with the max of
  // 50 direct draws, via the empirical mean of the maxima.
  Rng rng(5);
  const int trials = 40000;
  double stream_sum = 0, direct_sum = 0;
  for (int t = 0; t < trials; ++t) {
    LaplaceTopOrderStatistics stream(50, 1.0);
    stream_sum += stream.Next(rng);
    double best = -1e300;
    for (int i = 0; i < 50; ++i) {
      best = std::max(best, SampleLaplace(rng, 1.0));
    }
    direct_sum += best;
  }
  EXPECT_NEAR(stream_sum / trials, direct_sum / trials, 0.03);
}

TEST(OrderStatisticsTest, SecondMaximumMatchesDirect) {
  Rng rng(7);
  const int trials = 30000;
  double stream_sum = 0, direct_sum = 0;
  for (int t = 0; t < trials; ++t) {
    LaplaceTopOrderStatistics stream(20, 1.0);
    stream.Next(rng);
    stream_sum += stream.Next(rng);  // second largest
    std::vector<double> xs(20);
    for (auto& x : xs) x = SampleLaplace(rng, 1.0);
    std::nth_element(xs.begin(), xs.begin() + 1, xs.end(),
                     std::greater<>());
    direct_sum += xs[1];
  }
  EXPECT_NEAR(stream_sum / trials, direct_sum / trials, 0.03);
}

TEST(OrderStatisticsTest, MaxCdfIsFToTheN) {
  // P(max ≤ x) = F(x)^n: check at x = 2 for n = 100.
  Rng rng(9);
  const int trials = 100000;
  int below = 0;
  for (int t = 0; t < trials; ++t) {
    LaplaceTopOrderStatistics stream(100, 1.0);
    below += stream.Next(rng) <= 2.0;
  }
  double expected = std::pow(LaplaceCdf(2.0, 1.0), 100.0);
  EXPECT_NEAR(below / static_cast<double>(trials), expected, 0.005);
}

TEST(OrderStatisticsTest, HugeNStaysFinite) {
  Rng rng(11);
  LaplaceTopOrderStatistics stream(1'000'000'000'000ULL, 1.0);
  double x = stream.Next(rng);
  EXPECT_TRUE(std::isfinite(x));
  // Max of 10^12 samples concentrates near ln(n/2) ≈ 27.
  EXPECT_GT(x, 20.0);
  EXPECT_LT(x, 40.0);
}

}  // namespace
}  // namespace privbasis
