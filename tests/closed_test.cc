#include "fim/closed.h"

#include <gtest/gtest.h>

#include "fim/fpgrowth.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(ClosedTest, SimpleExample) {
  // {0,1} always co-occur; {0} alone never -> {0} and {1} are not closed
  // (their closure is {0,1}); {2} is closed.
  TransactionDatabase db = MakeDb({
      {0, 1, 2}, {0, 1}, {0, 1, 2}, {2},
  });
  auto closed = MineClosed(db, 1);
  ASSERT_TRUE(closed.ok());
  std::vector<Itemset> sets;
  for (const auto& fi : *closed) sets.push_back(fi.items);
  // Closed: {0,1} (support 3), {2} (3), {0,1,2} (2). Not {0} (support 3
  // == {0,1}), not {1}, not {0,2} (2 == {0,1,2}), ...
  EXPECT_EQ(sets.size(), 3u);
  EXPECT_NE(std::find(sets.begin(), sets.end(), Itemset({0, 1})),
            sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), Itemset({2})), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), Itemset({0, 1, 2})),
            sets.end());
}

// Properties of the closed family against the full frequent family:
// (1) every frequent itemset has a closed superset of equal support
//     (losslessness);
// (2) no closed itemset has a superset of equal support;
// (3) maximal ⊆ closed ⊆ frequent (by counts).
class ClosedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosedPropertyTest, LosslessCompression) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = GetParam(), .num_transactions = 60, .universe = 9,
       .item_prob = 0.45});
  const uint64_t theta = 5;
  auto all = MineFpGrowth(db, {.min_support = theta});
  auto closed = MineClosed(db, theta);
  ASSERT_TRUE(all.ok() && closed.ok());
  EXPECT_LE(closed->size(), all->itemsets.size());

  // (1) support reconstruction from the closed family is exact.
  for (const auto& fi : all->itemsets) {
    EXPECT_EQ(SupportFromClosed(*closed, fi.items), fi.support)
        << fi.items.ToString();
  }
  // (2) closedness.
  for (const auto& c : *closed) {
    for (const auto& fi : all->itemsets) {
      if (fi.items.size() == c.items.size() + 1 &&
          c.items.IsSubsetOf(fi.items)) {
        EXPECT_LT(fi.support, c.support)
            << c.items.ToString() << " vs " << fi.items.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(ClosedTest, SupportFromClosedReturnsZeroForInfrequent) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}});
  auto closed = MineClosed(db, 2);
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(SupportFromClosed(*closed, Itemset({5})), 0u);
}

TEST(ClosedTest, DistinctSupportsAllClosed) {
  // When all frequent itemsets have distinct supports along chains,
  // everything is closed.
  std::vector<FrequentItemset> frequent{
      {Itemset({0}), 10}, {Itemset({1}), 8}, {Itemset({0, 1}), 5}};
  auto closed = FilterClosed(frequent);
  EXPECT_EQ(closed.size(), 3u);
}

TEST(ClosedTest, EmptyInput) {
  EXPECT_TRUE(FilterClosed({}).empty());
}

}  // namespace
}  // namespace privbasis
