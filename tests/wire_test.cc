// The wire contract (server/wire.h + common/json.h): golden serialized
// forms for every spec variant, lossless round trips (doubles, uint64
// seeds, escaped strings), and strict rejection of malformed input.
#include "server/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.h"
#include "test_util.h"

namespace privbasis::server {
namespace {

// --- the JSON substrate ------------------------------------------------

TEST(JsonTest, ScalarRoundTrips) {
  for (const char* text :
       {"null", "true", "false", "0", "-7", "42", "18446744073709551615",
        "-9223372036854775808", "0.5", "1e-06", "\"\"", "\"abc\""}) {
    auto parsed = json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    EXPECT_EQ(parsed->Dump(), text) << text;
  }
}

TEST(JsonTest, DoublesRoundTripBitForBit) {
  for (double d : {0.1, 1.0 / 3.0, 0.30000000000000004, 1e300, 5e-324,
                   123456789.123456789, -0.0}) {
    const std::string text = json::Value(d).Dump();
    auto parsed = json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto back = parsed->GetDouble();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, d) << text;  // identical bits (== on doubles)
  }
}

TEST(JsonTest, NonFiniteDumpsAsNull) {
  EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(json::Value(std::nan("")).Dump(), "null");
}

TEST(JsonTest, StringEscapes) {
  // Escaped → parsed → dumped is canonical.
  auto parsed = json::Parse("\"a\\\"b\\\\c\\n\\t\\u0001\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto s = parsed->GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, std::string("a\"b\\c\n\t\x01\xc3\xa9\xf0\x9f\x98\x80"));
  // Dump re-escapes the quote/backslash/control characters; UTF-8 bytes
  // pass through raw.
  EXPECT_EQ(json::Value(*s).Dump(),
            "\"a\\\"b\\\\c\\n\\t\\u0001\xc3\xa9\xf0\x9f\x98\x80\"");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  json::Value v;
  v.Set("z", 1);
  v.Set("a", 2);
  EXPECT_EQ(v.Dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "01", "1.", "+1", "nul",
        "\"unterminated", "\"bad\\q\"", "\"\\ud800\"", "[1] trailing",
        "{'single': 1}", "\"ctrl\n\""}) {
    EXPECT_FALSE(json::Parse(text).ok()) << text;
  }
}

TEST(JsonTest, DepthLimitBounds) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::Parse(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(json::Parse(deep, /*max_depth=*/128).ok());
}

TEST(JsonTest, GetUintChecksRangeAndSign) {
  EXPECT_FALSE(json::Parse("-1")->GetUint().ok());
  EXPECT_FALSE(json::Parse("1.5")->GetUint().ok());
  EXPECT_TRUE(json::Parse("1e2")->GetUint().ok());  // exact integral double
  EXPECT_EQ(*json::Parse("18446744073709551615")->GetUint(),
            18446744073709551615ull);
}

// --- QuerySpec golden forms --------------------------------------------

/// Serialized → parsed → serialized must be a fixed point equal to the
/// golden (catches both drift in the writer and lossy parsing).
void ExpectSpecGolden(const QuerySpec& spec, const std::string& golden) {
  const std::string dumped = QuerySpecToJson(spec).Dump();
  EXPECT_EQ(dumped, golden);
  auto parsed_json = json::Parse(dumped);
  ASSERT_TRUE(parsed_json.ok()) << parsed_json.status();
  auto round_tripped = QuerySpecFromJson(*parsed_json);
  ASSERT_TRUE(round_tripped.ok()) << round_tripped.status();
  EXPECT_EQ(QuerySpecToJson(*round_tripped).Dump(), golden);
}

TEST(WireSpecTest, GoldenDefaultSpec) {
  ExpectSpecGolden(
      QuerySpec(),
      "{\"method\":\"pb\",\"k\":100,\"epsilon\":1,\"seed\":42,\"theta\":0,"
      "\"sampling_rate\":1,\"label\":\"\",\"rules\":null,"
      "\"pb\":{\"alpha1\":0.1,\"alpha2\":0.4,\"alpha3\":0.5,\"eta\":1.1,"
      "\"single_basis_lambda_cap\":12,\"max_basis_length\":12,"
      "\"monotonic_em\":true,\"naive_lambda2\":false,\"lambda_cap\":0,"
      "\"fk1_support_hint\":0},"
      "\"tf\":{\"m\":2,\"rho\":0.9,\"selection\":\"em\","
      "\"explicit_limit\":1000000}}");
}

TEST(WireSpecTest, GoldenThresholdRulesEscapesAndMaxSeed) {
  QuerySpec spec;
  spec.WithMethod(QueryMethod::kPrivBasis)
      .WithThreshold(0.05, 400)
      .WithEpsilon(0.25)
      .WithSeed(18446744073709551615ull)  // uint64 max survives
      .WithRules(0.6)
      .WithLabel("fig1 \"mushroom\"\n\tsweep");  // escaped string
  spec.pb.eta = 1.2;
  spec.pb.lambda_cap = 64;
  ExpectSpecGolden(
      spec,
      "{\"method\":\"pb\",\"k\":400,\"epsilon\":0.25,"
      "\"seed\":18446744073709551615,\"theta\":0.05,\"sampling_rate\":1,"
      "\"label\":\"fig1 \\\"mushroom\\\"\\n\\tsweep\","
      "\"rules\":{\"min_confidence\":0.6,\"min_support\":0,"
      "\"max_antecedent\":0},"
      "\"pb\":{\"alpha1\":0.1,\"alpha2\":0.4,\"alpha3\":0.5,\"eta\":1.2,"
      "\"single_basis_lambda_cap\":12,\"max_basis_length\":12,"
      "\"monotonic_em\":true,\"naive_lambda2\":false,\"lambda_cap\":64,"
      "\"fk1_support_hint\":0},"
      "\"tf\":{\"m\":2,\"rho\":0.9,\"selection\":\"em\","
      "\"explicit_limit\":1000000}}");
}

TEST(WireSpecTest, GoldenTfVariant) {
  QuerySpec spec;
  spec.WithMethod(QueryMethod::kTruncatedFrequency)
      .WithTopK(50)
      .WithEpsilon(2.0)
      .WithSeed(7);
  spec.tf.m = 3;
  spec.tf.selection = TfOptions::Selection::kLaplaceNoise;
  ExpectSpecGolden(
      spec,
      "{\"method\":\"tf\",\"k\":50,\"epsilon\":2,\"seed\":7,\"theta\":0,"
      "\"sampling_rate\":1,\"label\":\"\",\"rules\":null,"
      "\"pb\":{\"alpha1\":0.1,\"alpha2\":0.4,\"alpha3\":0.5,\"eta\":1.1,"
      "\"single_basis_lambda_cap\":12,\"max_basis_length\":12,"
      "\"monotonic_em\":true,\"naive_lambda2\":false,\"lambda_cap\":0,"
      "\"fk1_support_hint\":0},"
      "\"tf\":{\"m\":3,\"rho\":0.9,\"selection\":\"laplace\","
      "\"explicit_limit\":1000000}}");
}

TEST(WireSpecTest, GoldenAmplifiedVariant) {
  ExpectSpecGolden(
      QuerySpec().WithTopK(20).WithAmplification(0.5).WithSeed(9),
      "{\"method\":\"pb\",\"k\":20,\"epsilon\":1,\"seed\":9,\"theta\":0,"
      "\"sampling_rate\":0.5,\"label\":\"\",\"rules\":null,"
      "\"pb\":{\"alpha1\":0.1,\"alpha2\":0.4,\"alpha3\":0.5,\"eta\":1.1,"
      "\"single_basis_lambda_cap\":12,\"max_basis_length\":12,"
      "\"monotonic_em\":true,\"naive_lambda2\":false,\"lambda_cap\":0,"
      "\"fk1_support_hint\":0},"
      "\"tf\":{\"m\":2,\"rho\":0.9,\"selection\":\"em\","
      "\"explicit_limit\":1000000}}");
}

TEST(WireSpecTest, PartialSpecKeepsEngineDefaults) {
  auto parsed = json::Parse("{\"k\":25,\"seed\":3}");
  ASSERT_TRUE(parsed.ok());
  auto spec = QuerySpecFromJson(*parsed);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->k, 25u);
  EXPECT_EQ(spec->seed, 3u);
  EXPECT_EQ(spec->epsilon, QuerySpec().epsilon);
  EXPECT_EQ(spec->method, QueryMethod::kPrivBasis);
  EXPECT_FALSE(spec->derive_rules);
}

TEST(WireSpecTest, StrictlyRejectsUnknownAndMistypedKeys) {
  for (const char* text : {
           "{\"epsilom\":1.0}",                      // typo
           "{\"k\":\"ten\"}",                        // wrong type
           "{\"pb\":{\"alpha9\":0.1}}",              // unknown nested key
           "{\"tf\":{\"selection\":\"gumbel\"}}",    // unknown enum value
           "{\"method\":\"dp\"}",                    // unknown method
           "{\"seed\":-1}",                          // negative uint
           "[]",                                     // not an object
       }) {
    auto parsed = json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto spec = QuerySpecFromJson(*parsed);
    EXPECT_FALSE(spec.ok()) << text;
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
  // The server envelope's "dataset" key is tolerated.
  auto parsed = json::Parse("{\"dataset\":\"ds-1\",\"k\":5}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(QuerySpecFromJson(*parsed).ok());
}

// --- Release golden form -----------------------------------------------

TEST(WireReleaseTest, GoldenReleaseRoundTripsLosslessly) {
  Release release;
  release.method = QueryMethod::kPrivBasis;
  release.itemsets = {{Itemset({3, 9, 15}), 1234.0625},
                      {Itemset({2}), 0.30000000000000004}};
  release.rules = {{Itemset({3}), Itemset({9, 15}), 0.12, 0.625}};
  release.lambda = 7;
  release.lambda2 = 3;
  release.basis_set = BasisSet({Itemset({2, 3}), Itemset({9, 15})});
  release.epsilon_requested = 1.0;
  release.epsilon_spent = 0.9999999999999999;  // not 1.0: must survive
  release.epsilon_spent_total = 1.5;
  release.epsilon_remaining = std::numeric_limits<double>::infinity();

  const std::string golden =
      "{\"method\":\"pb\","
      "\"itemsets\":[{\"items\":[3,9,15],\"noisy_count\":1234.0625},"
      "{\"items\":[2],\"noisy_count\":0.30000000000000004}],"
      "\"rules\":[{\"antecedent\":[3],\"consequent\":[9,15],"
      "\"support\":0.12,\"confidence\":0.625}],"
      "\"lambda\":7,\"lambda2\":3,\"basis\":[[2,3],[9,15]],"
      "\"budget\":{\"requested\":1,\"spent\":0.9999999999999999,"
      "\"spent_total\":1.5,\"remaining\":null}}";
  EXPECT_EQ(ReleaseToJson(release).Dump(), golden);

  auto parsed_json = json::Parse(golden);
  ASSERT_TRUE(parsed_json.ok());
  auto back = ReleaseFromJson(*parsed_json);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->itemsets.size(), 2u);
  EXPECT_EQ(back->itemsets[0].items, Itemset({3, 9, 15}));
  // Bit-identical doubles (== on doubles, no tolerance).
  EXPECT_EQ(back->itemsets[0].noisy_count, 1234.0625);
  EXPECT_EQ(back->itemsets[1].noisy_count, 0.30000000000000004);
  EXPECT_EQ(back->epsilon_spent, 0.9999999999999999);
  EXPECT_EQ(back->lambda, 7u);
  EXPECT_EQ(back->lambda2, 3u);
  ASSERT_EQ(back->basis_set.Width(), 2u);
  EXPECT_EQ(back->basis_set.basis(1), Itemset({9, 15}));
  ASSERT_EQ(back->rules.size(), 1u);
  EXPECT_EQ(back->rules[0].confidence, 0.625);
  EXPECT_TRUE(std::isinf(back->epsilon_remaining));
  // And the re-serialization is the identical byte string.
  EXPECT_EQ(ReleaseToJson(*back).Dump(), golden);
}

TEST(WireReleaseTest, RejectsMalformedItemsets) {
  for (const char* text : {
           "{\"itemsets\":[{\"items\":[],\"noisy_count\":1}]}",   // empty
           "{\"itemsets\":[{\"items\":[1]}]}",        // missing count
           "{\"itemsets\":[{\"items\":[1],\"noisy_count\":1,"
           "\"extra\":2}]}",                          // extra key
           "{\"itemsets\":[[1,2]]}",                  // not an object
           "{\"itemsets\":[{\"items\":[-3],\"noisy_count\":1}]}",
           // Rules are equally strict: typoed or missing keys fail.
           "{\"rules\":[{\"antecedent\":[1],\"consequent\":[2],"
           "\"confidnce\":0.9}]}",
           "{\"rules\":[{\"antecedent\":[1],\"consequent\":[2]}]}",
       }) {
    auto parsed = json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(ReleaseFromJson(*parsed).ok()) << text;
  }
}

// GET /v1/stats body: byte-exact golden plus a lossless round trip, so
// monitoring clients can parse the schema without a live server.
TEST(WireStatsTest, GoldenRoundTrip) {
  StatsSnapshot stats;
  stats.queries_admitted = 10;
  stats.queries_shed_predicted = 2;
  stats.queries_shed_queue = 1;
  stats.queries_cancelled = 3;
  stats.queries_completed = 7;
  stats.connections = 20;
  stats.connections_shed = 4;
  stats.slo_ms = 250;
  stats.max_queue_depth = 16;
  stats.queue_depth = 5;
  stats.ns_per_unit = 57.25;
  stats.recent_query_ms = 3.5;
  stats.shard_workers = 2;
  stats.shard_fanout = 2;
  stats.batch_window_us = 200;
  stats.batch_max = 8;
  stats.batches = 6;
  stats.batched_queries = 15;
  stats.scans_saved = 9;

  const std::string golden =
      "{\"queries\":{\"admitted\":10,\"shed_predicted\":2,"
      "\"shed_queue\":1,\"cancelled\":3,\"completed\":7},"
      "\"connections\":{\"accepted\":20,\"shed\":4},"
      "\"admission\":{\"slo_ms\":250,\"max_queue_depth\":16,"
      "\"queue_depth\":5,\"ns_per_unit\":57.25,"
      "\"recent_query_ms\":3.5},"
      "\"shards\":{\"workers\":2,\"fanout\":2},"
      "\"batching\":{\"window_us\":200,\"max\":8,\"batches\":6,"
      "\"batched_queries\":15,\"scans_saved\":9}}";
  EXPECT_EQ(StatsToJson(stats).Dump(), golden);

  auto parsed = json::Parse(golden);
  ASSERT_TRUE(parsed.ok());
  auto back = StatsFromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->queries_admitted, 10u);
  EXPECT_EQ(back->queries_shed_predicted, 2u);
  EXPECT_EQ(back->queries_shed_queue, 1u);
  EXPECT_EQ(back->queries_cancelled, 3u);
  EXPECT_EQ(back->queries_completed, 7u);
  EXPECT_EQ(back->connections, 20u);
  EXPECT_EQ(back->connections_shed, 4u);
  EXPECT_EQ(back->slo_ms, 250);
  EXPECT_EQ(back->max_queue_depth, 16u);
  EXPECT_EQ(back->queue_depth, 5u);
  EXPECT_EQ(back->ns_per_unit, 57.25);
  EXPECT_EQ(back->recent_query_ms, 3.5);
  EXPECT_EQ(back->shard_workers, 2u);
  EXPECT_EQ(back->shard_fanout, 2u);
  EXPECT_EQ(back->batch_window_us, 200);
  EXPECT_EQ(back->batch_max, 8u);
  EXPECT_EQ(back->batches, 6u);
  EXPECT_EQ(back->batched_queries, 15u);
  EXPECT_EQ(back->scans_saved, 9u);
  // Re-serialization is the identical byte string.
  EXPECT_EQ(StatsToJson(*back).Dump(), golden);
}

TEST(WireStatsTest, RejectsUnknownKeys) {
  for (const char* text : {
           "{\"extra\":1}",
           "{\"queries\":{\"admited\":1}}",    // typo
           "{\"admission\":{\"slo\":250}}",    // wrong key
           "{\"shards\":{\"workers\":1,\"fanout\":1,\"extra\":2}}",
           "{\"shards\":[1,2]}",               // wrong type
           "{\"batching\":{\"windowus\":1}}",  // typo
           "{\"batching\":{\"window_us\":1,\"max\":8,\"batches\":0,"
           "\"batched_queries\":0,\"scans_saved\":0,\"extra\":1}}",
       }) {
    auto parsed = json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(StatsFromJson(*parsed).ok()) << text;
  }
}

TEST(WireStatusTest, ErrorBodyAndHttpMapping) {
  const Status status = Status::BudgetExhausted("0.2 remaining");
  EXPECT_EQ(StatusToJson(status).Dump(),
            "{\"error\":{\"code\":\"BudgetExhausted\","
            "\"message\":\"0.2 remaining\"}}");
  EXPECT_EQ(HttpStatusForCode(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kBudgetExhausted), 429);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInternal), 500);
}

}  // namespace
}  // namespace privbasis::server
