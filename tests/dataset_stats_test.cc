#include "data/dataset_stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;

TEST(DatasetStatsTest, BasicCounts) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0}, {1, 2}}, /*universe=*/5);
  DatasetStats stats = ComputeDatasetStats(db);
  EXPECT_EQ(stats.num_transactions, 3u);
  EXPECT_EQ(stats.universe_size, 5u);
  EXPECT_EQ(stats.num_active_items, 3u);
  EXPECT_EQ(stats.total_occurrences, 6u);
  EXPECT_NEAR(stats.avg_transaction_len, 2.0, 1e-12);
  EXPECT_EQ(stats.max_transaction_len, 3u);
}

TEST(DatasetStatsTest, EmptyDatabase) {
  TransactionDatabase db = MakeDb({});
  DatasetStats stats = ComputeDatasetStats(db);
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.avg_transaction_len, 0.0);
  EXPECT_EQ(stats.max_transaction_len, 0u);
}

TEST(DatasetStatsTest, EmptyTransactionsCounted) {
  TransactionDatabase db = MakeDb({{}, {0}, {}});
  DatasetStats stats = ComputeDatasetStats(db);
  EXPECT_EQ(stats.num_transactions, 3u);
  EXPECT_NEAR(stats.avg_transaction_len, 1.0 / 3.0, 1e-12);
}

TEST(DatasetStatsTest, ToStringContainsFields) {
  TransactionDatabase db = MakeDb({{0, 1}});
  std::string s = ComputeDatasetStats(db).ToString();
  EXPECT_NE(s.find("N=1"), std::string::npos);
  EXPECT_NE(s.find("|I|=2"), std::string::npos);
  EXPECT_NE(s.find("avg|t|=2.00"), std::string::npos);
}

}  // namespace
}  // namespace privbasis
