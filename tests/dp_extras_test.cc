#include <gtest/gtest.h>

#include <cmath>

#include "dp/geometric_mechanism.h"
#include "dp/noisy_max.h"

namespace privbasis {
namespace {

TEST(GeometricTest, ZeroMean) {
  Rng rng(1);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(SampleTwoSidedGeometric(rng, 0.5));
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

class GeometricVarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometricVarianceTest, MatchesFormula) {
  const double alpha = GetParam();
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    double z = static_cast<double>(SampleTwoSidedGeometric(rng, alpha));
    sum += z;
    sum_sq += z * z;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  double expected = GeometricNoiseVariance(alpha);
  EXPECT_NEAR(var, expected, expected * 0.05 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Alphas, GeometricVarianceTest,
                         ::testing::Values(0.2, 0.5, 0.8, 0.95));

TEST(GeometricTest, PmfRatioIsAlpha) {
  // P(z+1)/P(z) = alpha for z >= 0 — the defining geometric decay.
  const double alpha = 0.6;
  Rng rng(5);
  std::vector<int> histogram(6, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    int64_t z = SampleTwoSidedGeometric(rng, alpha);
    if (z >= 0 && z < 6) ++histogram[z];
  }
  for (int z = 0; z + 1 < 5; ++z) {
    ASSERT_GT(histogram[z], 1000);
    double ratio =
        static_cast<double>(histogram[z + 1]) / histogram[z];
    EXPECT_NEAR(ratio, alpha, 0.03) << "z=" << z;
  }
}

TEST(GeometricTest, PerturbKeepsIntegrality) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    int64_t v = GeometricPerturb(rng, 1000, 1.0, 1.0);
    // Trivially integral by the type, but must stay near 1000 for ε=1.
    EXPECT_GT(v, 900);
    EXPECT_LT(v, 1100);
  }
}

TEST(GeometricTest, MatchesLaplaceVarianceScaling) {
  // For ε/Δ fixed, geometric variance 2α/(1−α)² ≈ Laplace 2(Δ/ε)² as
  // ε/Δ → 0.
  double epsilon = 0.05;
  double alpha = std::exp(-epsilon);
  double geometric = GeometricNoiseVariance(alpha);
  double laplace = 2.0 / (epsilon * epsilon);
  EXPECT_NEAR(geometric / laplace, 1.0, 0.01);
}

TEST(NoisyMaxTest, SelectsClearWinner) {
  Rng rng(9);
  std::vector<double> qualities{100.0, 0.0, 0.0};
  int wins = 0;
  for (int i = 0; i < 1000; ++i) {
    auto r = ReportNoisyMax(rng, qualities, 1.0, 1.0);
    ASSERT_TRUE(r.ok());
    wins += *r == 0;
  }
  EXPECT_EQ(wins, 1000);
}

TEST(NoisyMaxTest, TieBrokenRoughlyUniformly) {
  Rng rng(11);
  std::vector<double> qualities{5.0, 5.0};
  int first = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    auto r = ReportNoisyMax(rng, qualities, 1.0, 1.0);
    ASSERT_TRUE(r.ok());
    first += *r == 0;
  }
  EXPECT_NEAR(first / static_cast<double>(n), 0.5, 0.01);
}

TEST(NoisyMaxTest, MonotoneVariantSharper) {
  // With half the noise scale, the monotone variant picks the true max
  // more often on a fixed gap.
  std::vector<double> qualities{2.0, 0.0};
  Rng rng(13);
  int standard = 0, monotone = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    auto a = ReportNoisyMax(rng, qualities, 1.0, 1.0);
    auto b = ReportNoisyMaxMonotone(rng, qualities, 1.0, 1.0);
    ASSERT_TRUE(a.ok() && b.ok());
    standard += *a == 0;
    monotone += *b == 0;
  }
  EXPECT_GT(monotone, standard);
}

TEST(NoisyMaxTest, ValidatesArguments) {
  Rng rng(15);
  EXPECT_FALSE(ReportNoisyMax(rng, {}, 1.0, 1.0).ok());
  std::vector<double> q{1.0};
  EXPECT_FALSE(ReportNoisyMax(rng, q, 0.0, 1.0).ok());
  EXPECT_FALSE(ReportNoisyMax(rng, q, 1.0, 0.0).ok());
  EXPECT_FALSE(ReportNoisyMaxMonotone(rng, q, 1.0, -1.0).ok());
}

}  // namespace
}  // namespace privbasis
