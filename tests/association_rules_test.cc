#include "core/association_rules.h"

#include <gtest/gtest.h>

namespace privbasis {
namespace {

std::vector<NoisyItemset> Release() {
  // N = 100. Frequencies: {0}=0.8, {1}=0.6, {0,1}=0.5, {2}=0.3,
  // {0,2}=0.1, {0,1,2}=0.08.
  return {
      {Itemset({0}), 80.0},     {Itemset({1}), 60.0},
      {Itemset({0, 1}), 50.0},  {Itemset({2}), 30.0},
      {Itemset({0, 2}), 10.0},  {Itemset({0, 1, 2}), 8.0},
  };
}

TEST(RulesTest, ComputesSupportAndConfidence) {
  auto rules = ExtractRules(Release(), 100, {.min_confidence = 0.0});
  ASSERT_TRUE(rules.ok());
  // Find {1} -> {0}: support 0.5, confidence 0.5/0.6.
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset({1}) && rule.consequent == Itemset({0})) {
      EXPECT_NEAR(rule.support, 0.5, 1e-12);
      EXPECT_NEAR(rule.confidence, 0.5 / 0.6, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, MinConfidenceFilters) {
  auto rules = ExtractRules(Release(), 100, {.min_confidence = 0.6});
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.6);
  }
  // {0} -> {2} has confidence 0.1/0.8 = 0.125 and must be gone.
  for (const auto& rule : *rules) {
    EXPECT_FALSE(rule.antecedent == Itemset({0}) &&
                 rule.consequent == Itemset({2}));
  }
}

TEST(RulesTest, MinSupportFilters) {
  auto rules =
      ExtractRules(Release(), 100, {.min_confidence = 0.0, .min_support = 0.2});
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.support, 0.2);
  }
}

TEST(RulesTest, AntecedentSizeCap) {
  RuleOptions options;
  options.min_confidence = 0.0;
  options.max_antecedent = 1;
  auto rules = ExtractRules(Release(), 100, options);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_EQ(rule.antecedent.size(), 1u);
  }
}

TEST(RulesTest, SkipsAntecedentsNotReleased) {
  // {1,2} was not released, so {1,2} -> {0} cannot be formed from
  // {0,1,2} despite being a valid subset.
  auto rules = ExtractRules(Release(), 100, {.min_confidence = 0.0});
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_FALSE(rule.antecedent == Itemset({1, 2}));
  }
}

TEST(RulesTest, TripleGeneratesCompositeRules) {
  auto rules = ExtractRules(Release(), 100, {.min_confidence = 0.0});
  ASSERT_TRUE(rules.ok());
  // {0,1} -> {2} from the released triple: 0.08/0.5.
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset({0, 1}) &&
        rule.consequent == Itemset({2})) {
      EXPECT_NEAR(rule.confidence, 0.08 / 0.5, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, ConfidenceCappedAtOne) {
  // Noise made the superset "more frequent" than the subset.
  std::vector<NoisyItemset> release{
      {Itemset({0}), 10.0},
      {Itemset({0, 1}), 20.0},
      {Itemset({1}), 15.0},
  };
  auto rules = ExtractRules(release, 100, {.min_confidence = 0.0});
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_LE(rule.confidence, 1.0);
  }
}

TEST(RulesTest, NegativeNoisyCountsFloored) {
  std::vector<NoisyItemset> release{
      {Itemset({0}), -5.0},
      {Itemset({1}), 50.0},
      {Itemset({0, 1}), -2.0},
  };
  auto rules = ExtractRules(release, 100, {.min_confidence = 0.0});
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.support, 0.0);
    EXPECT_GE(rule.confidence, 0.0);
    EXPECT_LE(rule.confidence, 1.0);
  }
}

TEST(RulesTest, SortedByConfidenceThenSupport) {
  auto rules = ExtractRules(Release(), 100, {.min_confidence = 0.0});
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    const auto& prev = (*rules)[i - 1];
    const auto& cur = (*rules)[i];
    EXPECT_TRUE(prev.confidence > cur.confidence ||
                (prev.confidence == cur.confidence &&
                 prev.support >= cur.support));
  }
}

TEST(RulesTest, ValidatesArguments) {
  EXPECT_FALSE(ExtractRules({}, 0, {}).ok());
  EXPECT_FALSE(ExtractRules({}, 10, {.min_confidence = -0.1}).ok());
  EXPECT_FALSE(ExtractRules({}, 10, {.min_confidence = 1.5}).ok());
}

TEST(RulesTest, EmptyReleaseNoRules) {
  auto rules = ExtractRules({}, 10, {});
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(RulesTest, ToStringFormat) {
  AssociationRule rule{Itemset({1}), Itemset({2}), 0.5, 0.8};
  std::string s = rule.ToString();
  EXPECT_NE(s.find("{1} => {2}"), std::string::npos);
  EXPECT_NE(s.find("conf=0.800"), std::string::npos);
}

}  // namespace
}  // namespace privbasis
