#include "data/quest.h"

#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "fim/topk.h"

namespace privbasis {
namespace {

TEST(QuestTest, DeterministicInSeed) {
  QuestConfig config;
  config.num_transactions = 500;
  config.num_items = 100;
  auto a = GenerateQuestDataset(config, 9);
  auto b = GenerateQuestDataset(config, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumTransactions(), b->NumTransactions());
  EXPECT_EQ(a->TotalItemOccurrences(), b->TotalItemOccurrences());
}

TEST(QuestTest, AverageTransactionSizeNearT) {
  QuestConfig config;
  config.num_transactions = 5000;
  config.avg_transaction_size = 10;
  config.num_items = 500;
  config.num_patterns = 300;
  auto db = GenerateQuestDataset(config, 11);
  ASSERT_TRUE(db.ok());
  DatasetStats stats = ComputeDatasetStats(*db);
  // Dedup and truncation shave a little off T; stay within ~30%.
  EXPECT_GT(stats.avg_transaction_len, 6.5);
  EXPECT_LT(stats.avg_transaction_len, 12.0);
}

TEST(QuestTest, ItemsWithinUniverse) {
  QuestConfig config;
  config.num_transactions = 300;
  config.num_items = 50;
  config.num_patterns = 40;
  auto db = GenerateQuestDataset(config, 13);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->UniverseSize(), 50u);
  EXPECT_GT(db->TotalItemOccurrences(), 0u);
}

TEST(QuestTest, NoEmptyTransactions) {
  QuestConfig config;
  config.num_transactions = 1000;
  config.avg_transaction_size = 3;
  config.num_items = 200;
  config.num_patterns = 100;
  config.mean_corruption = 0.9;  // aggressive dropping
  auto db = GenerateQuestDataset(config, 15);
  ASSERT_TRUE(db.ok());
  for (size_t t = 0; t < db->NumTransactions(); ++t) {
    EXPECT_GE(db->Transaction(t).size(), 1u);
  }
}

TEST(QuestTest, PlantedPatternsCreateFrequentItemsets) {
  // QUEST's whole point: the top-k should contain multi-item patterns,
  // not just singletons.
  QuestConfig config;
  config.num_transactions = 8000;
  config.avg_transaction_size = 10;
  config.num_patterns = 50;  // few patterns -> each is frequent
  config.avg_pattern_size = 4;
  config.num_items = 300;
  config.mean_corruption = 0.3;
  auto db = GenerateQuestDataset(config, 17);
  ASSERT_TRUE(db.ok());
  auto topk = MineTopK(*db, 100);
  ASSERT_TRUE(topk.ok());
  TopKStats stats = ComputeTopKStats(topk->itemsets);
  EXPECT_GT(stats.lambda2 + stats.lambda3, 10u);
}

TEST(QuestTest, PresetsHaveDocumentedShapes) {
  auto t10 = QuestConfig::T10I4D100K();
  EXPECT_EQ(t10.num_transactions, 100000u);
  EXPECT_EQ(t10.avg_transaction_size, 10);
  EXPECT_EQ(t10.avg_pattern_size, 4);
  auto t25 = QuestConfig::T25I10D10K();
  EXPECT_EQ(t25.num_transactions, 10000u);
  EXPECT_EQ(t25.avg_transaction_size, 25);
}

TEST(QuestTest, ValidatesConfig) {
  QuestConfig config;
  config.num_transactions = 0;
  EXPECT_FALSE(GenerateQuestDataset(config, 1).ok());
  config = QuestConfig();
  config.num_items = 0;
  EXPECT_FALSE(GenerateQuestDataset(config, 1).ok());
  config = QuestConfig();
  config.avg_transaction_size = 0;
  EXPECT_FALSE(GenerateQuestDataset(config, 1).ok());
  config = QuestConfig();
  config.num_patterns = 0;
  EXPECT_FALSE(GenerateQuestDataset(config, 1).ok());
}

}  // namespace
}  // namespace privbasis
