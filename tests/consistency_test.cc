#include "core/consistency.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/basis_freq.h"
#include "data/vertical_index.h"
#include "test_util.h"

namespace privbasis {
namespace {

double CountOf(const std::vector<NoisyItemset>& released,
               const Itemset& items) {
  for (const auto& r : released) {
    if (r.items == items) return r.noisy_count;
  }
  ADD_FAILURE() << items.ToString() << " not in release";
  return 0;
}

TEST(ConsistencyTest, DetectsViolations) {
  std::vector<NoisyItemset> release{
      {Itemset({0}), 10.0},
      {Itemset({0, 1}), 15.0},  // superset above subset: violation
      {Itemset({1}), 20.0},
  };
  EXPECT_EQ(CountMonotoneViolations(release), 1u);
}

TEST(ConsistencyTest, CleanReleaseUntouched) {
  std::vector<NoisyItemset> release{
      {Itemset({0}), 10.0},
      {Itemset({1}), 8.0},
      {Itemset({0, 1}), 5.0},
  };
  EXPECT_EQ(CountMonotoneViolations(release), 0u);
  auto copy = release;
  EXPECT_EQ(EnforceMonotoneConsistency(&copy), 0u);
  for (size_t i = 0; i < release.size(); ++i) {
    EXPECT_NEAR(copy[i].noisy_count, release[i].noisy_count, 1e-12);
  }
}

TEST(ConsistencyTest, RepairsToMonotone) {
  std::vector<NoisyItemset> release{
      {Itemset({0}), 10.0},
      {Itemset({1}), 4.0},
      {Itemset({0, 1}), 15.0},
      {Itemset({0, 1, 2}), 20.0},
      {Itemset({2}), 1.0},
  };
  size_t violations = EnforceMonotoneConsistency(&release);
  EXPECT_GT(violations, 0u);
  EXPECT_EQ(CountMonotoneViolations(release), 0u);
}

TEST(ConsistencyTest, ClampsNegativeCounts) {
  std::vector<NoisyItemset> release{
      {Itemset({0}), -3.0},
      {Itemset({0, 1}), -7.0},
  };
  EnforceMonotoneConsistency(&release);
  for (const auto& r : release) {
    EXPECT_GE(r.noisy_count, 0.0);
  }
  EXPECT_EQ(CountMonotoneViolations(release), 0u);
}

TEST(ConsistencyTest, PreservesValuesWithinEnvelope) {
  // A chain 30 >= 20 >= 10 is already monotone; the repair must be the
  // identity on it even inside a bigger release.
  std::vector<NoisyItemset> release{
      {Itemset({0}), 30.0},
      {Itemset({0, 1}), 20.0},
      {Itemset({0, 1, 2}), 10.0},
  };
  EnforceMonotoneConsistency(&release);
  EXPECT_NEAR(CountOf(release, Itemset({0})), 30.0, 1e-12);
  EXPECT_NEAR(CountOf(release, Itemset({0, 1})), 20.0, 1e-12);
  EXPECT_NEAR(CountOf(release, Itemset({0, 1, 2})), 10.0, 1e-12);
}

// Property: after repair, every randomized release is monotone, and the
// repair never moves a value outside [min, max] of the original chain.
class ConsistencyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyPropertyTest, AlwaysMonotoneAfterRepair) {
  Rng rng(GetParam());
  // Random family: subsets of {0..5} with random values.
  std::vector<NoisyItemset> release;
  for (uint64_t mask = 1; mask < 64; ++mask) {
    if (!rng.Bernoulli(0.5)) continue;
    std::vector<Item> items;
    for (Item i = 0; i < 6; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    release.push_back(NoisyItemset{Itemset(std::move(items)),
                                   rng.NextDouble() * 100 - 10});
  }
  EnforceMonotoneConsistency(&release);
  EXPECT_EQ(CountMonotoneViolations(release), 0u);
  for (const auto& r : release) EXPECT_GE(r.noisy_count, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ConsistencyTest, ImprovesAccuracyOnBasisFreqRelease) {
  // Statistical: repairing a noisy BasisFreq release should not increase
  // (and typically decreases) the total absolute error against the exact
  // counts.
  TransactionDatabase db = testing::MakeRandomDb(
      {.seed = 5, .num_transactions = 80, .universe = 10, .item_prob = 0.5});
  VerticalIndex index(db);
  BasisSet basis({Itemset({0, 1, 2, 3, 4})});
  Rng rng(7);
  double raw_error = 0, repaired_error = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto result = BasisFreq(db, basis, 0, 0.3, rng);
    ASSERT_TRUE(result.ok());
    auto repaired = result->topk;
    EnforceMonotoneConsistency(&repaired);
    for (size_t i = 0; i < result->topk.size(); ++i) {
      double exact =
          static_cast<double>(index.SupportOf(result->topk[i].items));
      raw_error += std::abs(result->topk[i].noisy_count - exact);
      exact = static_cast<double>(index.SupportOf(repaired[i].items));
      repaired_error += std::abs(repaired[i].noisy_count - exact);
    }
  }
  EXPECT_LT(repaired_error, raw_error * 1.02);
}

TEST(ConsistencyTest, EmptyRelease) {
  std::vector<NoisyItemset> release;
  EXPECT_EQ(EnforceMonotoneConsistency(&release), 0u);
  EXPECT_EQ(CountMonotoneViolations({}), 0u);
}

}  // namespace
}  // namespace privbasis
