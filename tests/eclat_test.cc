#include "fim/eclat.h"

#include <gtest/gtest.h>

#include "fim/brute_force.h"
#include "fim/fpgrowth.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(EclatTest, TextbookExample) {
  TransactionDatabase db = MakeDb({
      {0, 1, 2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2},
  });
  auto result = MineEclat(db, {.min_support = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->itemsets.size(), 6u);
  for (const auto& fi : result->itemsets) {
    EXPECT_EQ(fi.support, db.SupportOf(fi.items));
  }
}

// Three-way agreement sweep: Eclat joins the miner cross-check.
struct EclatCase {
  uint64_t seed;
  uint64_t min_support;
  size_t max_length;
};

class EclatAgreementTest : public ::testing::TestWithParam<EclatCase> {};

TEST_P(EclatAgreementTest, MatchesBruteForceAndFpGrowth) {
  const auto& param = GetParam();
  TransactionDatabase db = MakeRandomDb(
      {.seed = param.seed, .num_transactions = 70, .universe = 11,
       .item_prob = 0.35});
  MiningOptions options{.min_support = param.min_support,
                        .max_length = param.max_length};
  auto brute = MineBruteForce(db, options);
  auto eclat = MineEclat(db, options);
  ASSERT_TRUE(brute.ok() && eclat.ok());
  EXPECT_EQ(eclat->itemsets, brute->itemsets);

  MiningOptions unbounded{.min_support = param.min_support};
  auto fp = MineFpGrowth(db, unbounded);
  auto eclat_unbounded = MineEclat(db, unbounded);
  ASSERT_TRUE(fp.ok() && eclat_unbounded.ok());
  EXPECT_EQ(eclat_unbounded->itemsets, fp->itemsets);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EclatAgreementTest,
    ::testing::Values(EclatCase{1, 2, 3}, EclatCase{2, 5, 2},
                      EclatCase{3, 10, 4}, EclatCase{4, 3, 3},
                      EclatCase{5, 7, 2}, EclatCase{6, 15, 3},
                      EclatCase{7, 1, 2}, EclatCase{8, 4, 4}));

TEST(EclatTest, MaxLengthCap) {
  TransactionDatabase db = MakeRandomDb({.seed = 9});
  auto result = MineEclat(db, {.min_support = 2, .max_length = 2});
  ASSERT_TRUE(result.ok());
  for (const auto& fi : result->itemsets) {
    EXPECT_LE(fi.items.size(), 2u);
  }
}

TEST(EclatTest, TruncatesOnMaxPatterns) {
  TransactionDatabase db = MakeRandomDb({.seed = 11, .item_prob = 0.5});
  auto result = MineEclat(db, {.min_support = 1, .max_patterns = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->aborted);
  // Truncation contract: exactly max_patterns patterns, each exact.
  ASSERT_EQ(result->itemsets.size(), 5u);
  for (const auto& fi : result->itemsets) {
    EXPECT_EQ(fi.support, db.SupportOf(fi.items));
  }
}

TEST(EclatTest, RejectsZeroSupport) {
  TransactionDatabase db = MakeDb({{0}});
  EXPECT_FALSE(MineEclat(db, {.min_support = 0}).ok());
}

TEST(EclatTest, EmptyDatabase) {
  TransactionDatabase db = MakeDb({}, /*universe=*/4);
  auto result = MineEclat(db, {.min_support = 1});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->itemsets.empty());
}

}  // namespace
}  // namespace privbasis
