#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace privbasis {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDoubleOpen();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntUnbiasedRoughly) {
  Rng rng(13);
  std::vector<int> histogram(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[rng.UniformInt(4)];
  for (int count : histogram) {
    EXPECT_NEAR(count, n / 4.0, n * 0.01);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ForkDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.Next(), cb.Next());
}

TEST(RngTest, SuccessiveForksDiffer) {
  Rng parent(37);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.Next() == c2.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SplitMix64KnownSequenceAdvances) {
  uint64_t state = 0;
  uint64_t first = SplitMix64Next(&state);
  uint64_t second = SplitMix64Next(&state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ull);
}

}  // namespace
}  // namespace privbasis
