// The parallel counting engine's core contract: thread count is a pure
// performance knob. Every path — the sharded BasisFreq scan, Eclat's
// root-class dispatch, parallel top-k mining, and the hybrid index — must
// produce bit-identical output at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/basis_freq.h"
#include "data/synthetic.h"
#include "data/vertical_index.h"
#include "fim/eclat.h"
#include "fim/fpgrowth.h"
#include "fim/topk.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::bench::MakeFrequentItemBasis;
using ::privbasis::testing::MakeRandomDb;

/// A database large enough that the sharded scan and parallel index
/// construction actually engage (they fall back to one shard below a few
/// thousand transactions).
const TransactionDatabase& BigDb() {
  static TransactionDatabase db = [] {
    auto r = GenerateDataset(SyntheticProfile::Mushroom(0.8), 42);
    if (!r.ok()) std::abort();
    return std::move(r).value();
  }();
  return db;
}

TEST(ParallelDeterminismTest, BasisFreqBitIdenticalAcrossThreadCounts) {
  const auto& db = BigDb();
  ASSERT_GE(db.NumTransactions(), 4096u) << "sharded path would not engage";
  BasisSet basis = MakeFrequentItemBasis(db, 6, 6);
  std::vector<BasisFreqResult> results;
  for (size_t threads : {1u, 2u, 8u}) {
    Rng rng(7);  // fresh engine per run: identical noise draws
    BasisFreqOptions options;
    options.num_threads = threads;
    auto result = BasisFreq(db, basis, 80, 1.0, rng, nullptr, options);
    ASSERT_TRUE(result.ok());
    results.push_back(std::move(result).value());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].num_candidates, results[0].num_candidates);
    ASSERT_EQ(results[i].topk.size(), results[0].topk.size());
    for (size_t j = 0; j < results[0].topk.size(); ++j) {
      EXPECT_EQ(results[i].topk[j].items, results[0].topk[j].items);
      // Bit-identical noisy counts, not approximately equal: the integer
      // shard reduction replays the sequential float accumulation.
      EXPECT_EQ(results[i].topk[j].noisy_count,
                results[0].topk[j].noisy_count);
    }
  }
}

TEST(ParallelDeterminismTest, EclatIdenticalAcrossThreadCounts) {
  const auto& db = BigDb();
  std::vector<MiningResult> results;
  for (size_t threads : {1u, 2u, 8u}) {
    MiningOptions options;
    options.min_support = db.NumTransactions() / 3;
    options.num_threads = threads;
    auto result = MineEclat(db, options);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->aborted);
    results.push_back(std::move(result).value());
  }
  EXPECT_FALSE(results[0].itemsets.empty());
  EXPECT_EQ(results[0].itemsets, results[1].itemsets);
  EXPECT_EQ(results[0].itemsets, results[2].itemsets);
}

TEST(ParallelDeterminismTest, EclatTruncationIdenticalAcrossThreadCounts) {
  const auto& db = BigDb();
  std::vector<MiningResult> results;
  for (size_t threads : {1u, 2u, 8u}) {
    MiningOptions options;
    options.min_support = db.NumTransactions() / 6;
    options.max_patterns = 37;
    options.num_threads = threads;
    auto result = MineEclat(db, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->aborted);
    EXPECT_EQ(result->itemsets.size(), 37u);
    results.push_back(std::move(result).value());
  }
  EXPECT_EQ(results[0].itemsets, results[1].itemsets);
  EXPECT_EQ(results[0].itemsets, results[2].itemsets);
}

TEST(ParallelDeterminismTest, TopKIdenticalAcrossThreadCounts) {
  const auto& db = BigDb();
  std::vector<TopKResult> results;
  for (size_t threads : {1u, 2u, 8u}) {
    auto result = MineTopK(db, 150, 0, threads);
    ASSERT_TRUE(result.ok());
    results.push_back(std::move(result).value());
  }
  EXPECT_EQ(results[0].itemsets.size(), 150u);
  EXPECT_EQ(results[0].kth_support, results[1].kth_support);
  EXPECT_EQ(results[0].kth_support, results[2].kth_support);
  EXPECT_EQ(results[0].itemsets, results[1].itemsets);
  EXPECT_EQ(results[0].itemsets, results[2].itemsets);
}

// Bitmap-vs-galloping equivalence: the hybrid backend is a pure
// representation change, so every support query must agree with the
// list-only index and the full-scan reference over randomized databases.
class BitmapEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitmapEquivalenceTest, AgreesWithGallopingAndScan) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = GetParam(), .num_transactions = 120, .universe = 16,
       .item_prob = 0.4});
  VerticalIndex hybrid(db);  // env-default density threshold
  VerticalIndex all_dense(db, {.density_threshold = 0.0});
  VerticalIndex all_sparse(db, {.density_threshold = 1.0});
  EXPECT_EQ(all_sparse.NumDenseItems(), 0u);
  EXPECT_GT(all_dense.NumDenseItems(), 0u);

  Rng rng(GetParam() + 500);
  std::vector<Itemset> queries;
  for (int trial = 0; trial < 80; ++trial) {
    size_t size = 1 + rng.UniformInt(5);
    std::vector<Item> items;
    for (size_t i = 0; i < size; ++i) {
      items.push_back(static_cast<Item>(rng.UniformInt(18)));  // incl. OOU
    }
    queries.push_back(Itemset(std::move(items)));
  }
  for (const auto& q : queries) {
    const uint64_t expected = db.SupportOf(q);
    EXPECT_EQ(hybrid.SupportOf(q), expected) << q.ToString();
    EXPECT_EQ(all_dense.SupportOf(q), expected) << q.ToString();
    EXPECT_EQ(all_sparse.SupportOf(q), expected) << q.ToString();
  }
  // Batch API: same answers in query order, at several thread counts.
  for (size_t threads : {1u, 4u}) {
    std::vector<uint64_t> batch = hybrid.SupportOfMany(queries, threads);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch[i], db.SupportOf(queries[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(BitmapEquivalenceTest, PairPathsAgreeAcrossBackends) {
  TransactionDatabase db = MakeRandomDb({.seed = 77, .universe = 12,
                                         .item_prob = 0.5});
  VerticalIndex all_dense(db, {.density_threshold = 0.0});
  VerticalIndex all_sparse(db, {.density_threshold = 1.0});
  // Mixed: densify only the most frequent items.
  VerticalIndex mixed(db, {.density_threshold = 0.4});
  for (Item a = 0; a < 12; ++a) {
    for (Item b = a; b < 12; ++b) {
      const uint64_t expected = all_sparse.SupportOfPair(a, b);
      EXPECT_EQ(all_dense.SupportOfPair(a, b), expected);
      EXPECT_EQ(mixed.SupportOfPair(a, b), expected);
    }
  }
}

// SIMD-level equivalence: PRIVBASIS_SIMD is a pure performance knob like
// the thread count. Supports, noisy BasisFreq outputs, and mined pattern
// sets must be identical at scalar and AVX2 at every thread count.
TEST(ParallelDeterminismTest, SimdLevelsProduceIdenticalResults) {
  const auto& db = BigDb();
  BasisSet basis = MakeFrequentItemBasis(db, 6, 6);
  auto queries = [&] {
    Rng rng(31);
    std::vector<Itemset> out;
    for (int trial = 0; trial < 200; ++trial) {
      size_t size = 1 + rng.UniformInt(5);
      std::vector<Item> items;
      for (size_t i = 0; i < size; ++i) {
        items.push_back(static_cast<Item>(rng.UniformInt(db.UniverseSize())));
      }
      out.push_back(Itemset(std::move(items)));
    }
    return out;
  }();

  std::vector<std::vector<uint64_t>> supports;
  std::vector<BasisFreqResult> bf_results;
  std::vector<MiningResult> mined;
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
    const simd::Level prev = simd::SetLevel(level);
    for (size_t threads : {1u, 4u}) {
      VerticalIndex index(db, {.density_threshold = 0.05,
                               .num_threads = threads});
      supports.push_back(index.SupportOfMany(queries, threads));

      Rng rng(7);
      BasisFreqOptions options;
      options.num_threads = threads;
      auto bf = BasisFreq(db, basis, 80, 1.0, rng, nullptr, options);
      ASSERT_TRUE(bf.ok());
      bf_results.push_back(std::move(bf).value());

      MiningOptions mining;
      mining.min_support = db.NumTransactions() / 3;
      mining.num_threads = threads;
      auto fp = MineFpGrowth(db, mining);
      ASSERT_TRUE(fp.ok());
      mined.push_back(std::move(fp).value());
    }
    simd::SetLevel(prev);
  }
  for (size_t i = 1; i < supports.size(); ++i) {
    EXPECT_EQ(supports[i], supports[0]);
    EXPECT_EQ(mined[i].itemsets, mined[0].itemsets);
    ASSERT_EQ(bf_results[i].topk.size(), bf_results[0].topk.size());
    for (size_t j = 0; j < bf_results[0].topk.size(); ++j) {
      EXPECT_EQ(bf_results[i].topk[j].items, bf_results[0].topk[j].items);
      EXPECT_EQ(bf_results[i].topk[j].noisy_count,
                bf_results[0].topk[j].noisy_count);
    }
  }
}

TEST(ParallelDeterminismTest, IndexConstructionIdenticalAcrossThreadCounts) {
  const auto& db = BigDb();
  ASSERT_GE(db.NumTransactions(), 2048u) << "parallel build would not engage";
  VerticalIndex seq(db, {.num_threads = 1});
  VerticalIndex par(db, {.num_threads = 8});
  for (Item it = 0; it < db.UniverseSize(); ++it) {
    auto ls = seq.TidList(it);
    auto lp = par.TidList(it);
    ASSERT_EQ(ls.size(), lp.size()) << "item " << it;
    ASSERT_TRUE(std::equal(ls.begin(), ls.end(), lp.begin()))
        << "item " << it;
  }
}

}  // namespace
}  // namespace privbasis
