// Sharded scatter-gather execution (src/shard): the merge-exactness
// invariants that make the shard count an execution detail.
//
//   * Partitioning covers every transaction exactly once, at any shard
//     count (including counts above N — empty tails).
//   * Every CountExecutor op — item supports, pair supports, basis bin
//     counts, batch itemset supports — merges per-shard partials to the
//     bit-identical integers a single-shard scan produces, at 1/2/4/8
//     shards, with candidates from all three exact miners.
//   * The full mechanism through the executor seam: BasisFreq and
//     Engine::Run produce bit-identical releases at every shard count
//     and the same seed (the scan consumes no randomness, so the noise
//     stream cannot shift).
//   * Cancellation fails closed: a fired token surfaces kCancelled from
//     the executor, never a partial count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/basis_freq.h"
#include "core/count_exec.h"
#include "core/privbasis.h"
#include "data/vertical_index.h"
#include "engine/dataset.h"
#include "engine/engine.h"
#include "fim/apriori.h"
#include "fim/eclat.h"
#include "fim/fpgrowth.h"
#include "shard/shard_exec.h"
#include "shard/sharded_db.h"
#include "test_util.h"

namespace privbasis {
namespace {

using privbasis::testing::MakeDb;
using privbasis::testing::MakeRandomDb;
using privbasis::testing::RandomDbSpec;

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

LocalShardExecutor MakeExecutor(const TransactionDatabase& db,
                                size_t num_shards) {
  auto partitioned = ShardedDatabase::Create(db, num_shards);
  EXPECT_TRUE(partitioned.ok()) << partitioned.status().ToString();
  return LocalShardExecutor(
      std::make_shared<const ShardedDatabase>(std::move(*partitioned)),
      /*num_threads=*/2);
}

TEST(ShardedDatabaseTest, PartitionCoversEveryTransactionOnce) {
  const TransactionDatabase db = MakeRandomDb({.seed = 7});
  for (const size_t num_shards : {1ul, 2ul, 5ul, 8ul}) {
    PRIVBASIS_ASSERT_OK_AND_ASSIGN(ShardedDatabase sharded,
                                   ShardedDatabase::Create(db, num_shards));
    ASSERT_EQ(sharded.NumShards(), num_shards);
    EXPECT_EQ(sharded.NumTransactions(), db.NumTransactions());
    EXPECT_EQ(sharded.UniverseSize(), db.UniverseSize());
    // Concatenating the slices in shard order reproduces the database.
    size_t global = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const TransactionDatabase& slice = sharded.shard(s);
      EXPECT_EQ(slice.UniverseSize(), db.UniverseSize());
      for (size_t t = 0; t < slice.NumTransactions(); ++t, ++global) {
        const auto expect = db.Transaction(global);
        const auto got = slice.Transaction(t);
        ASSERT_EQ(std::vector<Item>(expect.begin(), expect.end()),
                  std::vector<Item>(got.begin(), got.end()));
      }
    }
    EXPECT_EQ(global, db.NumTransactions());
  }
}

TEST(ShardedDatabaseTest, MoreShardsThanTransactionsLeavesEmptyTails) {
  const TransactionDatabase db = MakeDb({{0, 1}, {1, 2}, {0, 2}});
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(ShardedDatabase sharded,
                                 ShardedDatabase::Create(db, 8));
  size_t total = 0;
  for (size_t s = 0; s < sharded.NumShards(); ++s) {
    total += sharded.shard(s).NumTransactions();
  }
  EXPECT_EQ(total, 3u);
}

TEST(ShardedDatabaseTest, ZeroShardsIsRejected) {
  const TransactionDatabase db = MakeDb({{0, 1}});
  EXPECT_FALSE(ShardedDatabase::Create(db, 0).ok());
}

TEST(ShardExecTest, ItemSupportsMergeExactly) {
  const TransactionDatabase db = MakeRandomDb({.seed = 11});
  const std::vector<uint64_t>& expected = db.ItemSupports();
  for (const size_t num_shards : kShardCounts) {
    const LocalShardExecutor exec = MakeExecutor(db, num_shards);
    PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> merged,
                                   exec.ItemSupports(nullptr));
    EXPECT_EQ(merged, expected) << num_shards << " shards";
  }
}

TEST(ShardExecTest, PairSupportsMergeExactly) {
  const TransactionDatabase db = MakeRandomDb({.seed = 13});
  const std::vector<Item> items = {0, 1, 2, 3, 5, 8};
  const std::vector<uint64_t> expected =
      CountPairSupports(db, items, nullptr);
  for (const size_t num_shards : kShardCounts) {
    const LocalShardExecutor exec = MakeExecutor(db, num_shards);
    PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> merged,
                                   exec.PairSupports(items, nullptr));
    EXPECT_EQ(merged, expected) << num_shards << " shards";
  }
}

TEST(ShardExecTest, BasisBinCountsMergeExactly) {
  const TransactionDatabase db = MakeRandomDb({.seed = 17});
  BasisSet basis_set;
  basis_set.Add(Itemset({0, 1, 2}));
  basis_set.Add(Itemset({1, 3, 5, 7}));
  basis_set.Add(Itemset({4}));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(
      std::vector<std::vector<uint64_t>> expected,
      CountBasisBins(db, basis_set, /*num_threads=*/1));
  for (const size_t num_shards : kShardCounts) {
    const LocalShardExecutor exec = MakeExecutor(db, num_shards);
    PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<std::vector<uint64_t>> merged,
                                   exec.BasisBinCounts(basis_set, nullptr));
    EXPECT_EQ(merged, expected) << num_shards << " shards";
  }
}

// Batch supports merge exactly for candidates surfaced by EVERY exact
// miner: the queries a real mechanism would issue, not hand-picked ones.
// The miners' own exact supports double as the oracle.
TEST(ShardExecTest, SupportOfManyMergesExactlyForAllMiners) {
  const TransactionDatabase db = MakeRandomDb(
      {.seed = 19, .num_transactions = 80, .universe = 10});
  MiningOptions mining;
  mining.min_support = 4;
  mining.max_length = 4;

  PRIVBASIS_ASSERT_OK_AND_ASSIGN(MiningResult apriori,
                                 MineApriori(db, mining));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(MiningResult eclat, MineEclat(db, mining));
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(MiningResult fpgrowth,
                                 MineFpGrowth(db, mining));
  ASSERT_FALSE(apriori.itemsets.empty());

  for (const MiningResult* mined : {&apriori, &eclat, &fpgrowth}) {
    std::vector<Itemset> queries;
    std::vector<uint64_t> expected;
    for (const FrequentItemset& f : mined->itemsets) {
      queries.push_back(f.items);
      expected.push_back(f.support);
    }
    for (const size_t num_shards : kShardCounts) {
      const LocalShardExecutor exec = MakeExecutor(db, num_shards);
      PRIVBASIS_ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> merged,
                                     exec.SupportOfMany(queries, nullptr));
      EXPECT_EQ(merged, expected) << num_shards << " shards";
    }
  }
}

// The whole mechanism through the seam: identical noisy releases at any
// shard count and the same seed — the exact scan consumes no randomness,
// so hoisting it across shards cannot shift the noise stream.
TEST(ShardExecTest, BasisFreqBitIdenticalThroughExecutor) {
  const TransactionDatabase db = MakeRandomDb({.seed = 23});
  BasisSet basis_set;
  basis_set.Add(Itemset({0, 1, 2}));
  basis_set.Add(Itemset({2, 3, 4}));

  Rng direct_rng(99);
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(
      BasisFreqResult direct,
      BasisFreq(db, basis_set, /*k=*/10, /*epsilon=*/1.0, direct_rng));

  for (const size_t num_shards : kShardCounts) {
    const LocalShardExecutor exec = MakeExecutor(db, num_shards);
    BasisFreqOptions options;
    options.exec = &exec;
    Rng rng(99);
    PRIVBASIS_ASSERT_OK_AND_ASSIGN(
        BasisFreqResult sharded,
        BasisFreq(db, basis_set, /*k=*/10, /*epsilon=*/1.0, rng,
                  /*accountant=*/nullptr, options));
    ASSERT_EQ(sharded.topk.size(), direct.topk.size());
    for (size_t i = 0; i < direct.topk.size(); ++i) {
      EXPECT_EQ(sharded.topk[i].items, direct.topk[i].items);
      // Bit-identical doubles: == with no tolerance.
      EXPECT_EQ(sharded.topk[i].noisy_count, direct.topk[i].noisy_count)
          << num_shards << " shards, itemset " << i;
    }
  }
}

// End to end: Engine::Run over Datasets that differ only in num_shards.
// Exercises the full PrivBasis pipeline (fk1 hint, pair counting through
// the executor, BasisFreq) — the acceptance bit of this subsystem.
TEST(ShardExecTest, EngineRunBitIdenticalAcrossShardCounts) {
  const TransactionDatabase db = MakeRandomDb(
      {.seed = 29, .num_transactions = 120, .universe = 14});

  QuerySpec spec;
  spec.k = 12;
  spec.epsilon = 1.0;
  spec.seed = 4242;

  auto baseline_ds =
      Dataset::Create(TransactionDatabase(db), {.num_shards = 1});
  PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release baseline,
                                 Engine::Run(*baseline_ds, spec));
  ASSERT_FALSE(baseline.itemsets.empty());

  for (const size_t num_shards : {2ul, 4ul, 8ul}) {
    auto sharded_ds =
        Dataset::Create(TransactionDatabase(db), {.num_shards = num_shards});
    PRIVBASIS_ASSERT_OK_AND_ASSIGN(Release sharded,
                                   Engine::Run(*sharded_ds, spec));
    // The lazy executor must actually have been built and used.
    EXPECT_EQ(sharded_ds->cache_counters().shard_builds, 1u);
    EXPECT_EQ(sharded_ds->shard_fanout(), num_shards);

    ASSERT_EQ(sharded.itemsets.size(), baseline.itemsets.size());
    for (size_t i = 0; i < baseline.itemsets.size(); ++i) {
      EXPECT_EQ(sharded.itemsets[i].items, baseline.itemsets[i].items);
      EXPECT_EQ(sharded.itemsets[i].noisy_count,
                baseline.itemsets[i].noisy_count)
          << num_shards << " shards, itemset " << i;
    }
    EXPECT_EQ(sharded.lambda, baseline.lambda);
    EXPECT_EQ(sharded.lambda2, baseline.lambda2);
    EXPECT_EQ(sharded.epsilon_spent, baseline.epsilon_spent);
  }
}

// An unsharded dataset never builds an executor; shard_fanout stays 1.
TEST(ShardExecTest, UnshardedDatasetSkipsExecutor) {
  auto dataset = Dataset::Create(MakeDb({{0, 1}, {1, 2}}), {.num_shards = 1});
  EXPECT_EQ(dataset->count_executor(), nullptr);
  EXPECT_EQ(dataset->shard_fanout(), 1u);
  EXPECT_EQ(dataset->cache_counters().shard_builds, 0u);
}

// A fired token surfaces kCancelled from every op — never a partial or
// garbage count (the fail-closed half of the executor contract).
TEST(ShardExecTest, FiredTokenFailsClosed) {
  const TransactionDatabase db = MakeRandomDb({.seed = 31});
  const LocalShardExecutor exec = MakeExecutor(db, 4);
  CancelToken token;
  token.Cancel();

  BasisSet basis_set;
  basis_set.Add(Itemset({0, 1}));
  EXPECT_EQ(exec.BasisBinCounts(basis_set, &token).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(exec.PairSupports({0, 1, 2}, &token).status().code(),
            StatusCode::kCancelled);
  const std::vector<Itemset> queries = {Itemset({0}), Itemset({1, 2})};
  EXPECT_EQ(exec.SupportOfMany(queries, &token).status().code(),
            StatusCode::kCancelled);
}

// Satellite regression (PR 6 gap): the batch path itself honors the
// token, independent of the executor wrapper.
TEST(ShardExecTest, VerticalIndexBatchHonorsCancelToken) {
  const TransactionDatabase db = MakeRandomDb({.seed = 37});
  const VerticalIndex index(db);
  const std::vector<Itemset> queries(200, Itemset({0, 1}));
  CancelToken token;
  token.Cancel();
  // Fired before the call: the partial-fill contract says the caller
  // checks the token and discards; the vector overload still returns a
  // (discardable) buffer, but no crash and no hang.
  (void)index.SupportOfMany(queries, /*num_threads=*/2, &token);
  EXPECT_TRUE(token.Cancelled());
}

}  // namespace
}  // namespace privbasis
