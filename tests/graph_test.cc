#include "graph/graph.h"

#include <gtest/gtest.h>

namespace privbasis {
namespace {

TEST(GraphTest, AddNodesAndEdges) {
  ItemGraph g;
  g.AddNode(5);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasNode(5));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(1, 5));
}

TEST(GraphTest, EdgeIdempotent) {
  ItemGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, SelfLoopIgnored) {
  ItemGraph g;
  g.AddEdge(3, 3);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumNodes(), 0u);
}

TEST(GraphTest, Degrees) {
  ItemGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(99), 0u);
}

TEST(GraphTest, Neighbors) {
  ItemGraph g;
  g.AddEdge(10, 20);
  g.AddEdge(10, 30);
  auto n = g.Neighbors(10);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<Item>{20, 30}));
  EXPECT_TRUE(g.Neighbors(40).empty());
}

TEST(GraphTest, FromItemsAndPairs) {
  std::vector<Item> items{1, 2, 3, 4};
  std::vector<Itemset> pairs{Itemset({1, 2}), Itemset({2, 3})};
  ItemGraph g = ItemGraph::FromItemsAndPairs(items, pairs);
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_TRUE(g.HasNode(4));  // isolated node kept
}

TEST(GraphTest, PairEndpointsOutsideItemsAdded) {
  ItemGraph g = ItemGraph::FromItemsAndPairs({1}, {Itemset({8, 9})});
  EXPECT_TRUE(g.HasNode(8));
  EXPECT_TRUE(g.HasNode(9));
  EXPECT_TRUE(g.HasEdge(8, 9));
}

TEST(GraphTest, ConnectedComponents) {
  ItemGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(5, 6);
  g.AddNode(9);
  auto components = g.ConnectedComponents();
  ASSERT_EQ(components.size(), 3u);
  // Sort by size for deterministic checks.
  std::sort(components.begin(), components.end(),
            [](const Itemset& a, const Itemset& b) {
              return a.size() > b.size();
            });
  EXPECT_EQ(components[0], Itemset({0, 1, 2}));
  EXPECT_EQ(components[1], Itemset({5, 6}));
  EXPECT_EQ(components[2], Itemset({9}));
}

TEST(GraphTest, DenseIndexAccess) {
  ItemGraph g;
  g.AddEdge(100, 200);
  size_t i100 = g.IndexOf(100);
  size_t i200 = g.IndexOf(200);
  EXPECT_TRUE(g.HasEdgeByIndex(i100, i200));
  EXPECT_EQ(g.NodeAt(i100), 100u);
}

}  // namespace
}  // namespace privbasis
