// End-to-end contract of the query server (server/server.h), exercised
// in process on an ephemeral loopback port:
//   * a served query is bit-identical to a direct Engine::Run with the
//     same dataset, spec, and seed;
//   * malformed / oversized / overdrafting requests get the documented
//     response codes, and a refusal never touches the ledger;
//   * 16 concurrent clients hammering one finite budget cannot
//     double-spend or lose a commit: accepted ε sums exactly to the
//     ledger, refused requests leave no trace.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/wire.h"
#include "test_util.h"

namespace privbasis::server {
namespace {

using ::privbasis::testing::MakeRandomDb;

constexpr int64_t kCallTimeoutMs = 30'000;

/// Starts a server, fails the test on error.
std::unique_ptr<QueryServer> StartServer(ServerOptions options = {}) {
  auto server = std::make_unique<QueryServer>(std::move(options));
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started;
  return server;
}

Result<HttpResponse> Call(const QueryServer& server,
                          const std::string& method,
                          const std::string& target,
                          const std::string& body = "") {
  return HttpCall(server.host(), server.port(), method, target, body,
                  kCallTimeoutMs);
}

/// POSTs a /v1/query body and parses the Release on 200.
Result<Release> Query(const QueryServer& server, const std::string& body,
                      int* http_status = nullptr) {
  PRIVBASIS_ASSIGN_OR_RETURN(HttpResponse response,
                             Call(server, "POST", "/v1/query", body));
  if (http_status != nullptr) *http_status = response.status;
  PRIVBASIS_ASSIGN_OR_RETURN(json::Value parsed,
                             json::Parse(response.body));
  if (response.status != 200) {
    const json::Value* error = parsed.Find("error");
    return Status(StatusCode::kInternal,
                  error != nullptr ? error->Dump() : response.body);
  }
  return ReleaseFromJson(parsed);
}

bool SameItemsets(const std::vector<NoisyItemset>& a,
                  const std::vector<NoisyItemset>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].items == b[i].items) || a[i].noisy_count != b[i].noisy_count) {
      return false;
    }
  }
  return true;
}

TEST(ServerTest, HealthzAndRouting) {
  auto server = StartServer();
  auto health = Call(*server, "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  auto parsed = json::Parse(health->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("status")->Dump(), "\"ok\"");

  // Unknown route → 404; wrong method on a known route (including the
  // per-dataset path shapes) → 405, distinguishable from an unknown id.
  EXPECT_EQ(Call(*server, "GET", "/nope")->status, 404);
  EXPECT_EQ(Call(*server, "GET", "/v1/query")->status, 405);
  EXPECT_EQ(Call(*server, "PUT", "/healthz")->status, 405);
  EXPECT_EQ(Call(*server, "POST", "/v1/datasets/ds-x/budget")->status, 405);
  EXPECT_EQ(Call(*server, "GET", "/v1/datasets/ds-x")->status, 405);
}

TEST(ServerTest, MalformedContentLengthIs400) {
  auto server = StartServer();
  // A negative or duplicated Content-Length is a framing error → 400
  // (never a strtoull wraparound answered 413).
  for (const char* headers :
       {"Content-Length: -1\r\n", "Content-Length: 1e3\r\n",
        "Content-Length: 5\r\nContent-Length: 24\r\n"}) {
    auto fd = net::ConnectTcp(server->host(), server->port(),
                              net::DeadlineAfterMs(kCallTimeoutMs));
    ASSERT_TRUE(fd.ok()) << fd.status();
    const std::string request =
        std::string("POST /v1/query HTTP/1.1\r\nHost: t\r\n") + headers +
        "\r\n";
    ASSERT_TRUE(net::WriteAll(*fd, request,
                              net::DeadlineAfterMs(kCallTimeoutMs))
                    .ok());
    char buf[512];
    auto n = net::ReadSome(*fd, buf, sizeof(buf),
                           net::DeadlineAfterMs(kCallTimeoutMs));
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 12u) << headers;
    EXPECT_EQ(std::string(buf, 12), "HTTP/1.1 400") << headers;
  }
}

TEST(ServerTest, ServedReleaseBitIdenticalToDirectEngineRun) {
  TransactionDatabase db = MakeRandomDb({.seed = 5, .num_transactions = 250});
  auto server = StartServer();
  const std::string id = *server->registry().Register(Dataset::Create(db));

  const QuerySpec spec =
      QuerySpec().WithTopK(12).WithEpsilon(1.0).WithSeed(77);
  json::Value body = QuerySpecToJson(spec);
  body.Set("dataset", id);
  auto served = Query(*server, body.Dump());
  ASSERT_TRUE(served.ok()) << served.status();

  // Direct run on a fresh (cold) handle over the same data — the
  // served release must be the bit-identical answer.
  auto direct = Engine::Run(*Dataset::Create(db), spec);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_TRUE(SameItemsets(served->itemsets, direct->itemsets));
  EXPECT_EQ(served->lambda, direct->lambda);
  EXPECT_EQ(served->lambda2, direct->lambda2);
  EXPECT_EQ(served->epsilon_spent, direct->epsilon_spent);  // == on doubles

  // And serving is deterministic: the same request again answers with
  // the identical bytes-on-the-wire release.
  auto again = Query(*server, body.Dump());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(SameItemsets(served->itemsets, again->itemsets));
}

TEST(ServerTest, ThresholdAmplifiedAndTfVariantsServe) {
  TransactionDatabase db = MakeRandomDb({.seed = 9, .num_transactions = 200});
  auto server = StartServer();
  const std::string id = *server->registry().Register(Dataset::Create(db));
  const QuerySpec variants[] = {
      QuerySpec().WithThreshold(0.2, 30).WithEpsilon(1.0).WithSeed(3),
      QuerySpec().WithTopK(10).WithAmplification(0.6).WithSeed(4),
      QuerySpec()
          .WithMethod(QueryMethod::kTruncatedFrequency)
          .WithTopK(8)
          .WithSeed(5),
      QuerySpec().WithTopK(10).WithRules(0.5).WithEpsilon(200.0).WithSeed(6),
  };
  for (const QuerySpec& spec : variants) {
    json::Value body = QuerySpecToJson(spec);
    body.Set("dataset", id);
    auto served = Query(*server, body.Dump());
    ASSERT_TRUE(served.ok()) << served.status();
    auto direct = Engine::Run(*Dataset::Create(db), spec);
    ASSERT_TRUE(direct.ok()) << direct.status();
    EXPECT_TRUE(SameItemsets(served->itemsets, direct->itemsets));
  }
}

TEST(ServerTest, MalformedJsonIs400) {
  auto server = StartServer();
  auto response = Call(*server, "POST", "/v1/query", "{\"k\": 12");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 400);
  // The body names the error in the documented envelope.
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->Find("error"), nullptr);

  // Unknown spec keys and bad specs are 400 too.
  EXPECT_EQ(Call(*server, "POST", "/v1/query",
                 "{\"dataset\":\"ds-1\",\"epsilom\":1}")
                ->status,
            400);
  EXPECT_EQ(Call(*server, "POST", "/v1/datasets", "not json")->status, 400);
  // A typoed registration key must 400, never register fail-open with
  // an unlimited ε budget; profile-only keys on other sources likewise.
  EXPECT_EQ(Call(*server, "POST", "/v1/datasets",
                 "{\"profile\":\"mushroom\",\"bugdet\":2.0}")
                ->status,
            400);
  EXPECT_EQ(Call(*server, "POST", "/v1/datasets",
                 "{\"transactions\":[[1,2]],\"scale\":0.5}")
                ->status,
            400);
  EXPECT_EQ(server->registry().size(), 0u);
}

TEST(ServerTest, OversizedBodyIs413) {
  ServerOptions options;
  options.max_body_bytes = 512;
  auto server = StartServer(std::move(options));
  const std::string big(2048, 'x');
  auto response = Call(*server, "POST", "/v1/query", big);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 413);
}

TEST(ServerTest, RequestDeadlineIs408) {
  ServerOptions options;
  options.request_deadline_ms = 150;
  auto server = StartServer(std::move(options));
  // Send a partial request head and stall: the server must answer 408
  // once the request deadline expires (not hang forever).
  auto fd = net::ConnectTcp(server->host(), server->port(),
                            net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(net::WriteAll(*fd, "POST /v1/query HTTP/1.1\r\nContent-",
                            net::DeadlineAfterMs(kCallTimeoutMs))
                  .ok());
  char buf[512];
  auto n = net::ReadSome(*fd, buf, sizeof(buf),
                         net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(n.ok()) << n.status();
  ASSERT_GT(*n, 12u);
  EXPECT_EQ(std::string(buf, 12), "HTTP/1.1 408");
}

TEST(ServerTest, UnknownDatasetIs404) {
  auto server = StartServer();
  int status = 0;
  auto release =
      Query(*server, "{\"dataset\":\"ds-404\",\"k\":5}", &status);
  EXPECT_FALSE(release.ok());
  EXPECT_EQ(status, 404);
  EXPECT_EQ(Call(*server, "GET", "/v1/datasets/ds-404/budget")->status, 404);
}

TEST(ServerTest, BudgetExhaustionIs429AndLedgerUntouched) {
  TransactionDatabase db = MakeRandomDb({.seed = 11});
  auto server = StartServer();
  auto dataset = Dataset::Create(db, {.total_epsilon = 1.0});
  const std::string id = *server->registry().Register(dataset);

  // Spend 0.6 of the 1.0 budget.
  auto first = Query(
      *server, "{\"dataset\":\"" + id + "\",\"k\":5,\"epsilon\":0.6}");
  ASSERT_TRUE(first.ok()) << first.status();

  const double spent_before = dataset->accountant()->spent_epsilon();
  const size_t entries_before = dataset->accountant()->ledger().size();

  // 0.6 more would overdraw: 429, and the ledger must not move.
  int status = 0;
  auto refused = Query(
      *server,
      "{\"dataset\":\"" + id + "\",\"k\":5,\"epsilon\":0.6,\"seed\":2}",
      &status);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(status, 429);
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), spent_before);
  EXPECT_EQ(dataset->accountant()->ledger().size(), entries_before);

  // The budget endpoint reports the same (unchanged) ledger.
  auto budget = Call(*server, "GET", "/v1/datasets/" + id + "/budget");
  ASSERT_TRUE(budget.ok()) << budget.status();
  ASSERT_EQ(budget->status, 200);
  auto parsed = json::Parse(budget->body);
  ASSERT_TRUE(parsed.ok());
  auto reported_spent = parsed->Find("spent")->GetDouble();
  ASSERT_TRUE(reported_spent.ok());
  EXPECT_EQ(*reported_spent, spent_before);  // bit-identical readback
}

TEST(ServerTest, HammerSixteenClientsConserveEpsilon) {
  // 16 clients race 4 queries each against one dataset whose budget
  // only covers a fraction of the demand. Contract: every accepted
  // query's ε sums exactly to the ledger total (no double-spend, no
  // lost commit), refusals leave no trace, and the total never exceeds
  // the budget.
  TransactionDatabase db = MakeRandomDb({.seed = 13, .num_transactions = 150});
  ServerOptions options;
  options.num_threads = 8;
  auto server = StartServer(std::move(options));
  const double total_budget = 4.0;
  auto dataset = Dataset::Create(db, {.total_epsilon = total_budget});
  const std::string id = *server->registry().Register(dataset);

  constexpr int kClients = 16;
  constexpr int kQueriesPerClient = 4;
  const double per_query = 0.25;  // demand 16.0 total vs 4.0 budget
  std::vector<std::vector<double>> accepted_spends(kClients);
  std::vector<int> rejected(kClients, 0);
  std::atomic<int> transport_errors{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const uint64_t seed = 1000 + c * kQueriesPerClient + q;
        int status = 0;
        auto release = Query(
            *server,
            "{\"dataset\":\"" + id + "\",\"k\":8,\"epsilon\":0.25,"
            "\"seed\":" + std::to_string(seed) + "}",
            &status);
        if (release.ok()) {
          accepted_spends[c].push_back(release->epsilon_spent);
        } else if (status == 429) {
          ++rejected[c];
        } else {
          ++transport_errors;
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(transport_errors.load(), 0);
  double accepted_total = 0.0;
  int accepted_count = 0;
  for (const auto& spends : accepted_spends) {
    for (double spend : spends) {
      EXPECT_GT(spend, 0.0);
      EXPECT_LE(spend, per_query + 1e-9);
      accepted_total += spend;
      ++accepted_count;
    }
  }
  int rejected_count = 0;
  for (int r : rejected) rejected_count += r;

  // Some queries were necessarily refused, and at least the budget's
  // worth was served.
  EXPECT_EQ(accepted_count + rejected_count, kClients * kQueriesPerClient);
  EXPECT_GT(rejected_count, 0);
  EXPECT_GE(accepted_count, static_cast<int>(total_budget / per_query));

  // ε conservation: the ledger is exactly the accepted spends — same
  // total (up to summation order), same count of committed queries via
  // the itemized entries' sum, and never above the budget.
  const double ledger_total = dataset->accountant()->spent_epsilon();
  EXPECT_NEAR(ledger_total, accepted_total, 1e-9);
  EXPECT_LE(ledger_total, total_budget + 1e-9);
  double itemized = 0.0;
  for (const auto& entry : dataset->accountant()->ledger()) {
    itemized += entry.epsilon;
  }
  EXPECT_NEAR(itemized, accepted_total, 1e-9);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);

  // The health counters agree with the client-side tally.
  const auto counters = server->counters();
  EXPECT_EQ(counters.queries_ok, static_cast<uint64_t>(accepted_count));
  EXPECT_EQ(counters.queries_rejected,
            static_cast<uint64_t>(rejected_count));
}

TEST(ServerTest, RegistryCountCapIs429UntilEviction) {
  ServerOptions options;
  options.registry_limits.max_datasets = 1;
  auto server = StartServer(std::move(options));
  auto first = Call(*server, "POST", "/v1/datasets",
                    "{\"transactions\":[[0,1],[1,2]]}");
  ASSERT_EQ(first->status, 201);
  // The registry is full: further wire registrations are refused...
  EXPECT_EQ(Call(*server, "POST", "/v1/datasets",
                 "{\"transactions\":[[0,1],[1,2]]}")
                ->status,
            429);
  // ...until something is evicted.
  auto id = json::Parse(first->body)->Find("dataset")->GetString();
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(Call(*server, "DELETE", "/v1/datasets/" + *id)->status, 204);
  EXPECT_EQ(Call(*server, "POST", "/v1/datasets",
                 "{\"transactions\":[[0,1],[1,2]]}")
                ->status,
            201);
}

TEST(ServerTest, RegisterQueryEvictOverHttp) {
  auto server = StartServer();
  // Inline registration.
  auto registered = Call(*server, "POST", "/v1/datasets",
                         "{\"transactions\":[[0,1,2],[0,1],[1,2],[0,1,2],"
                         "[2],[0,1]],\"budget\":3.5}");
  ASSERT_TRUE(registered.ok()) << registered.status();
  ASSERT_EQ(registered->status, 201);
  auto parsed = json::Parse(registered->body);
  ASSERT_TRUE(parsed.ok());
  auto id = parsed->Find("dataset")->GetString();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*parsed->Find("num_transactions")->GetUint(), 6u);

  auto release = Query(
      *server, "{\"dataset\":\"" + *id + "\",\"k\":4,\"epsilon\":1.0}");
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_FALSE(release->itemsets.empty());
  EXPECT_NEAR(release->epsilon_remaining, 3.5 - release->epsilon_spent,
              1e-9);

  // Eviction: 204, then the handle is gone for new requests.
  EXPECT_EQ(Call(*server, "DELETE", "/v1/datasets/" + *id)->status, 204);
  int status = 0;
  auto after = Query(
      *server, "{\"dataset\":\"" + *id + "\",\"k\":4}", &status);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(status, 404);
}

}  // namespace
}  // namespace privbasis::server
