#include "dp/laplace_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privbasis {
namespace {

TEST(LaplaceMechanismTest, UnbiasedAroundTrueValue) {
  Rng rng(1);
  const double value = 1234.5;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += LaplacePerturb(rng, value, 1.0, 1.0);
  }
  EXPECT_NEAR(sum / n, value, 0.05);
}

// Noise variance must equal 2·(Δ/ε)² across sensitivity/ε combinations.
struct NoiseCase {
  double sensitivity;
  double epsilon;
};

class LaplaceNoiseVarianceTest : public ::testing::TestWithParam<NoiseCase> {};

TEST_P(LaplaceNoiseVarianceTest, MatchesFormula) {
  const auto [sensitivity, epsilon] = GetParam();
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    double noise = LaplacePerturb(rng, 0.0, sensitivity, epsilon);
    sum += noise;
    sum_sq += noise * noise;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  double expected = LaplaceNoiseVariance(sensitivity, epsilon);
  EXPECT_NEAR(var, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Cases, LaplaceNoiseVarianceTest,
                         ::testing::Values(NoiseCase{1.0, 1.0},
                                           NoiseCase{1.0, 0.1},
                                           NoiseCase{5.0, 1.0},
                                           NoiseCase{2.0, 0.5}));

TEST(LaplaceMechanismTest, VarianceFormula) {
  EXPECT_NEAR(LaplaceNoiseVariance(1.0, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(LaplaceNoiseVariance(2.0, 1.0), 8.0, 1e-12);
  EXPECT_NEAR(LaplaceNoiseVariance(1.0, 0.5), 8.0, 1e-12);
}

TEST(LaplaceMechanismTest, VectorFormPerturbsEachCoordinate) {
  Rng rng(23);
  std::vector<double> values{10.0, 20.0, 30.0};
  auto noisy = LaplacePerturb(rng, values, 1.0, 10.0);
  ASSERT_EQ(noisy.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(noisy[i], values[i], 5.0);  // tight ε -> small noise
    EXPECT_NE(noisy[i], values[i]);         // but never exactly zero noise
  }
}

TEST(LaplaceMechanismTest, SmallerEpsilonMoreNoise) {
  Rng rng(29);
  const int n = 50000;
  double spread_tight = 0, spread_loose = 0;
  for (int i = 0; i < n; ++i) {
    spread_tight += std::abs(LaplacePerturb(rng, 0.0, 1.0, 1.0));
    spread_loose += std::abs(LaplacePerturb(rng, 0.0, 1.0, 0.1));
  }
  // E|Lap(b)| = b, so ratio should be ~10.
  EXPECT_NEAR(spread_loose / spread_tight, 10.0, 1.0);
}

}  // namespace
}  // namespace privbasis
