// Crash-safety end to end: a server with --state-dir semantics must come
// back from a restart with its datasets, ids, and spent ε intact; must
// answer 503 (not garbage) while the ledger replays; and must fail
// queries closed when the WAL cannot be written.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/failpoint.h"
#include "server/server.h"
#include "server/wire.h"
#include "store/state_store.h"
#include "test_util.h"

namespace privbasis::server {
namespace {

constexpr int64_t kCallTimeoutMs = 30'000;

Result<HttpResponse> Call(const QueryServer& server,
                          const std::string& method,
                          const std::string& target,
                          const std::string& body = "") {
  return HttpCall(server.host(), server.port(), method, target, body,
                  kCallTimeoutMs);
}

/// Fresh per-test state dir under the build tree.
class StateDir {
 public:
  explicit StateDir(const std::string& name)
      : path_("recovery_test_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~StateDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ServerOptions DurableOptions(const StateDir& dir) {
  ServerOptions options;
  options.state_dir = dir.path();
  // Page-cache durability is enough for in-process restarts; the kill -9
  // harness (tools/crash_recovery_test.py) exercises the fsync modes.
  options.fsync_mode = store::FsyncMode::kNever;
  return options;
}

std::unique_ptr<QueryServer> StartDurable(const StateDir& dir) {
  auto server = std::make_unique<QueryServer>(DurableOptions(dir));
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started;
  Status ready = server->WaitUntilReady();
  EXPECT_TRUE(ready.ok()) << ready;
  return server;
}

/// Registers a small inline dataset with a finite budget; returns its id.
std::string RegisterSmall(QueryServer& server, double budget) {
  auto response =
      Call(server, "POST", "/v1/datasets",
           "{\"transactions\":[[0,1,2],[1,2],[0,2],[0,1],[2],[0,1,2]],"
           "\"budget\":" + std::to_string(budget) + "}");
  EXPECT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 201) << response->body;
  auto parsed = json::Parse(response->body);
  EXPECT_TRUE(parsed.ok());
  const json::Value* id = parsed->Find("dataset");
  if (id == nullptr) return "";
  auto text = id->GetString();
  return text.ok() ? *text : "";
}

/// GET /v1/datasets/:id/budget → (spent, reserved); -1 on error.
struct BudgetReadback {
  double spent = -1.0;
  double reserved = -1.0;
  int http_status = 0;
  size_t ledger_entries = 0;
};

BudgetReadback ReadBudget(const QueryServer& server, const std::string& id) {
  BudgetReadback out;
  auto response = Call(server, "GET", "/v1/datasets/" + id + "/budget");
  if (!response.ok()) return out;
  out.http_status = response->status;
  if (response->status != 200) return out;
  auto parsed = json::Parse(response->body);
  if (!parsed.ok()) return out;
  if (const json::Value* spent = parsed->Find("spent")) {
    if (auto value = spent->GetDouble(); value.ok()) out.spent = *value;
  }
  if (const json::Value* reserved = parsed->Find("reserved")) {
    if (auto value = reserved->GetDouble(); value.ok()) {
      out.reserved = *value;
    }
  }
  if (const json::Value* ledger = parsed->Find("ledger")) {
    if (auto rows = ledger->GetArray(); rows.ok()) {
      out.ledger_entries = (*rows)->size();
    }
  }
  return out;
}

int RunQuery(const QueryServer& server, const std::string& id,
             double epsilon) {
  auto response =
      Call(server, "POST", "/v1/query",
           "{\"dataset\":\"" + id + "\",\"k\":5,\"epsilon\":" +
               std::to_string(epsilon) + ",\"seed\":7}");
  EXPECT_TRUE(response.ok()) << response.status();
  return response->status;
}

TEST(StateStoreTest, PersistAndRecoverRoundTrip) {
  StateDir dir("roundtrip");
  TransactionDatabase::Builder builder(3);
  builder.AddTransaction(std::vector<Item>{0, 1});
  builder.AddTransaction(std::vector<Item>{2});
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());
  {
    auto store =
        store::StateStore::Open(dir.path(), store::FsyncMode::kNever);
    ASSERT_TRUE(store.ok()) << store.status();
    auto dataset = Dataset::Create(std::move(*db), {.total_epsilon = 2.0});
    ASSERT_TRUE((*store)->PersistRegistration("ds-1", dataset).ok());
    // Journaled spend: commit 0.5 of a 0.75 reservation.
    auto lease = dataset->accountant()->Acquire(0.75, "q");
    ASSERT_TRUE(lease.ok());
    ASSERT_TRUE(lease->Commit(0.5).ok());
  }
  auto store = store::StateStore::Open(dir.path(), store::FsyncMode::kNever);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->next_id(), 2u);
  auto recovered = (*store)->RecoverDatasets();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].id, "ds-1");
  const Dataset& dataset = *(*recovered)[0].dataset;
  EXPECT_EQ(dataset.db().NumTransactions(), 2u);
  EXPECT_EQ(dataset.accountant()->total_epsilon(), 2.0);
  EXPECT_EQ(dataset.accountant()->spent_epsilon(), 0.5);  // exact: f64 WAL
}

TEST(StateStoreTest, ServerRestartPreservesSpendAndNeverReusesIds) {
  StateDir dir("restart");
  std::string id;
  double spent_before = 0.0;
  {
    auto server = StartDurable(dir);
    id = RegisterSmall(*server, 1.0);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(RunQuery(*server, id, 0.25), 200);
    const BudgetReadback budget = ReadBudget(*server, id);
    ASSERT_EQ(budget.http_status, 200);
    spent_before = budget.spent;
    EXPECT_GT(spent_before, 0.0);
    server->Stop();
  }
  auto server = StartDurable(dir);
  // The dataset is back, with its ledger: recovered spend must never be
  // below what was committed before the restart.
  const BudgetReadback budget = ReadBudget(*server, id);
  ASSERT_EQ(budget.http_status, 200);
  EXPECT_GE(budget.spent, spent_before);
  EXPECT_EQ(budget.reserved, 0.0);
  EXPECT_GT(budget.ledger_entries, 0u);
  // Queries still work against the recovered data, and further spend
  // composes on the recovered ledger.
  EXPECT_EQ(RunQuery(*server, id, 0.25), 200);
  EXPECT_GT(ReadBudget(*server, id).spent, spent_before);
  // A new registration never reuses the old id.
  const std::string fresh = RegisterSmall(*server, 1.0);
  ASSERT_FALSE(fresh.empty());
  EXPECT_NE(fresh, id);
}

TEST(StateStoreTest, OverdraftAfterRestartIs429) {
  StateDir dir("overdraft");
  std::string id;
  {
    auto server = StartDurable(dir);
    id = RegisterSmall(*server, 0.5);
    EXPECT_EQ(RunQuery(*server, id, 0.4), 200);
    server->Stop();
  }
  auto server = StartDurable(dir);
  // The recovered ledger still refuses the overdraft — that's the point
  // of making it durable.
  EXPECT_EQ(RunQuery(*server, id, 0.4), 429);
}

TEST(StateStoreTest, RoutesReturn503UntilRecoveryFinishes) {
  StateDir dir("recovering");
  { StartDurable(dir)->Stop(); }  // create valid state to replay

  ASSERT_TRUE(failpoint::Configure("recovery_start=sleep:500").ok());
  QueryServer server(DurableOptions(dir));
  ASSERT_TRUE(server.Start().ok());
  // The socket answers immediately — with 503 on every route.
  auto health = Call(server, "GET", "/healthz");
  failpoint::Reset();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 503);
  auto parsed = json::Parse(health->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* state = parsed->Find("status");
  ASSERT_NE(state, nullptr);
  auto text = state->GetString();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "recovering");

  ASSERT_TRUE(server.WaitUntilReady().ok());
  EXPECT_EQ(Call(server, "GET", "/healthz")->status, 200);
  server.Stop();
}

TEST(StateStoreTest, WalWriteFailureFailsQueryClosedAndLedgerUntouched) {
  StateDir dir("enospc");
  auto server = StartDurable(dir);
  const std::string id = RegisterSmall(*server, 1.0);
  const BudgetReadback before = ReadBudget(*server, id);

  // Disk full at the reserve append: the query must be REFUSED (429,
  // retryable) with the in-memory ledger untouched — never run fail-open
  // on an unjournaled reservation.
  ASSERT_TRUE(failpoint::Configure("wal_append=error:ENOSPC").ok());
  const int status = RunQuery(*server, id, 0.25);
  failpoint::Reset();
  EXPECT_EQ(status, 429);
  const BudgetReadback after = ReadBudget(*server, id);
  EXPECT_EQ(after.spent, before.spent);
  EXPECT_EQ(after.reserved, 0.0);
  EXPECT_EQ(after.ledger_entries, before.ledger_entries);

  // Space frees up → the same query succeeds.
  EXPECT_EQ(RunQuery(*server, id, 0.25), 200);
}

TEST(StateStoreTest, CancelledQueryWithTornWalCommitNeverUndercharges) {
  // Cancellation × durability: a client deadline fires mid-scan (the
  // aborted lease charges its full reservation, fail-closed) AND the
  // WAL append recording that abort is torn. The replayed ledger must
  // still never under-count what the live server acknowledged — the
  // bare reserve record replays as the full charge.
  StateDir dir("cancel_torn");
  std::string id;
  double acked = 0.0;
  {
    auto server = StartDurable(dir);
    id = RegisterSmall(*server, 2.0);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(RunQuery(*server, id, 0.25), 200);
    EXPECT_GT(ReadBudget(*server, id).spent, 0.0);

    // Stall the scan past the client deadline and tear the NEXT WAL
    // append after the reservation's ("@1" lets the reserve record
    // through untouched; the abort record is the torn one).
    ASSERT_TRUE(failpoint::Configure(
                    "basis_freq_chunk=sleep:800,wal_append=torn:4@1")
                    .ok());
    auto cancelled = Call(*server, "POST", "/v1/query",
                          "{\"dataset\":\"" + id +
                              "\",\"k\":5,\"epsilon\":0.5,\"seed\":9,"
                              "\"deadline_ms\":200}");
    failpoint::Reset();
    ASSERT_TRUE(cancelled.ok()) << cancelled.status();
    EXPECT_EQ(cancelled->status, 408);

    // Fail-closed in memory: the full 0.5 reservation is spent.
    const BudgetReadback live = ReadBudget(*server, id);
    EXPECT_GE(live.spent, 0.25 + 0.5 - 1e-9);
    EXPECT_EQ(live.reserved, 0.0);
    acked = live.spent;
    server->Stop();
  }
  // Fail-closed on replay too: recovered spend is never below what the
  // live server acknowledged, torn tail notwithstanding.
  auto server = StartDurable(dir);
  const BudgetReadback recovered = ReadBudget(*server, id);
  ASSERT_EQ(recovered.http_status, 200);
  EXPECT_GE(recovered.spent, acked - 1e-9);
  EXPECT_EQ(recovered.reserved, 0.0);
  // The recovered ledger still meters: an overdraft is refused, a
  // within-budget query serves.
  EXPECT_EQ(RunQuery(*server, id, 1.5), 429);
  EXPECT_EQ(RunQuery(*server, id, 0.25), 200);
}

TEST(StateStoreTest, EvictionIsDurableAndFailsClosed) {
  StateDir dir("evict");
  std::string id;
  {
    auto server = StartDurable(dir);
    id = RegisterSmall(*server, 1.0);

    // A DELETE whose manifest rewrite fails must keep the dataset: 500
    // now beats "deleted" silently resurrecting on the next restart.
    ASSERT_TRUE(failpoint::Configure("manifest_write=error:EIO").ok());
    auto failed = Call(*server, "DELETE", "/v1/datasets/" + id);
    failpoint::Reset();
    ASSERT_TRUE(failed.ok());
    EXPECT_EQ(failed->status, 500);
    EXPECT_EQ(ReadBudget(*server, id).http_status, 200);  // still there

    auto deleted = Call(*server, "DELETE", "/v1/datasets/" + id);
    ASSERT_TRUE(deleted.ok());
    EXPECT_EQ(deleted->status, 204);
    server->Stop();
  }
  auto server = StartDurable(dir);
  EXPECT_EQ(ReadBudget(*server, id).http_status, 404);  // stayed deleted
}

TEST(StateStoreTest, NamedPreloadRebindsRecoveredLedger) {
  StateDir dir("named");
  TransactionDatabase::Builder builder(3);
  builder.AddTransaction(std::vector<Item>{0, 1, 2});
  builder.AddTransaction(std::vector<Item>{0, 2});
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());
  {
    auto server = StartDurable(dir);
    auto named = server->registry().RegisterNamed(
        "demo", Dataset::Create(*db, {.total_epsilon = 1.0}));
    ASSERT_TRUE(named.ok()) << named.status();
    EXPECT_EQ(RunQuery(*server, "demo", 0.5), 200);
    server->Stop();
  }
  auto server = StartDurable(dir);
  const BudgetReadback budget = ReadBudget(*server, "demo");
  ASSERT_EQ(budget.http_status, 200);
  EXPECT_GT(budget.spent, 0.0);
  // The generated-id namespace is fenced off from names.
  auto bad = server->registry().RegisterNamed(
      "ds-99", Dataset::Create(*db, {.total_epsilon = 1.0}));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace privbasis::server
