#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace privbasis {
namespace {

/// Word counts around every boundary the AVX2 kernels care about: empty,
/// single word, the 4-word block edge ±1, and larger blocks with tails.
const size_t kAdversarialWords[] = {0,  1,  2,  3,  4,   5,   7,  8,
                                    9,  15, 16, 17, 63,  64,  65, 127,
                                    128, 129, 1000, 1023, 1024, 1025};

std::vector<uint64_t> RandomWords(Rng& rng, size_t words) {
  std::vector<uint64_t> out(words);
  for (auto& w : out) {
    w = (static_cast<uint64_t>(rng.UniformInt(0xffffffffu)) << 32) ^
        rng.UniformInt(0xffffffffu);
  }
  return out;
}

TEST(SimdTest, LevelNameRoundTrip) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
}

TEST(SimdTest, AndPopcountAvx2MatchesScalar) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this CPU";
  Rng rng(1234);
  for (size_t words : kAdversarialWords) {
    for (int rep = 0; rep < 8; ++rep) {
      auto a = RandomWords(rng, words);
      auto b = RandomWords(rng, words);
      EXPECT_EQ(simd::detail::AndPopcountScalar(a.data(), b.data(), words),
                simd::detail::AndPopcountAvx2(a.data(), b.data(), words))
          << "words=" << words;
    }
  }
}

TEST(SimdTest, AndPopcountManyAvx2MatchesScalar) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this CPU";
  Rng rng(99);
  for (size_t words : kAdversarialWords) {
    for (size_t k : {1u, 2u, 3u, 5u, 9u}) {
      std::vector<std::vector<uint64_t>> lists;
      std::vector<const uint64_t*> ptrs;
      for (size_t j = 0; j < k; ++j) {
        lists.push_back(RandomWords(rng, words));
        ptrs.push_back(lists.back().data());
      }
      EXPECT_EQ(
          simd::detail::AndPopcountManyScalar(ptrs.data(), k, words),
          simd::detail::AndPopcountManyAvx2(ptrs.data(), k, words))
          << "words=" << words << " k=" << k;
    }
  }
}

TEST(SimdTest, AndIntoAvx2MatchesScalar) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this CPU";
  Rng rng(7);
  for (size_t words : kAdversarialWords) {
    auto a = RandomWords(rng, words);
    auto b = RandomWords(rng, words);
    auto a2 = a;
    simd::detail::AndIntoScalar(a.data(), b.data(), words);
    simd::detail::AndIntoAvx2(a2.data(), b.data(), words);
    EXPECT_EQ(a, a2) << "words=" << words;
  }
}

TEST(SimdTest, OrGatherWordsAvx2MatchesScalar) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this CPU";
  Rng rng(55);
  const size_t table_size = 300;
  auto table = RandomWords(rng, table_size);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 100u, 1001u}) {
    std::vector<uint32_t> idx(n);
    for (auto& i : idx) {
      i = static_cast<uint32_t>(rng.UniformInt(table_size));
    }
    EXPECT_EQ(simd::detail::OrGatherWordsScalar(table.data(), idx.data(), n),
              simd::detail::OrGatherWordsAvx2(table.data(), idx.data(), n))
        << "n=" << n;
  }
}

TEST(SimdTest, DispatchedKernelsMatchScalarAtBothLevels) {
  Rng rng(2024);
  auto a = RandomWords(rng, 129);
  auto b = RandomWords(rng, 129);
  const uint64_t want =
      simd::detail::AndPopcountScalar(a.data(), b.data(), a.size());
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
    const simd::Level prev = simd::SetLevel(level);
    EXPECT_EQ(simd::AndPopcount(a.data(), b.data(), a.size()), want)
        << simd::LevelName(level);
    simd::SetLevel(prev);
  }
}

TEST(SimdTest, SetLevelFallsBackWithoutAvx2) {
  const simd::Level prev = simd::SetLevel(simd::Level::kAvx2);
  // Whatever the CPU, the active level must be executable.
  if (!simd::Avx2Supported()) {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  } else {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
  }
  simd::SetLevel(prev);
}

}  // namespace
}  // namespace privbasis
