#include "dp/exponential_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace privbasis {
namespace {

TEST(EmTest, ExponentFactor) {
  EXPECT_NEAR(EmExponentFactor({.epsilon = 1.0, .sensitivity = 1.0,
                                .monotonic = false}),
              0.5, 1e-12);
  EXPECT_NEAR(EmExponentFactor({.epsilon = 1.0, .sensitivity = 1.0,
                                .monotonic = true}),
              1.0, 1e-12);
  EXPECT_NEAR(EmExponentFactor({.epsilon = 2.0, .sensitivity = 4.0,
                                .monotonic = false}),
              0.25, 1e-12);
}

TEST(EmTest, SelectionRatioMatchesTheory) {
  // Two candidates with quality gap Δq = 2, ε = 1, GS = 1, non-monotone:
  // odds = exp(ε·Δq/2) = e.
  Rng rng(1);
  std::vector<double> qualities{2.0, 0.0};
  EmOptions options{.epsilon = 1.0, .sensitivity = 1.0, .monotonic = false};
  int first = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    auto r = ExponentialMechanismSelect(rng, qualities, options);
    ASSERT_TRUE(r.ok());
    first += *r == 0;
  }
  double expected = std::exp(1.0) / (1.0 + std::exp(1.0));
  EXPECT_NEAR(first / static_cast<double>(n), expected, 0.005);
}

TEST(EmTest, MonotonicDoublesExponent) {
  Rng rng(3);
  std::vector<double> qualities{1.0, 0.0};
  EmOptions options{.epsilon = 1.0, .sensitivity = 1.0, .monotonic = true};
  int first = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    auto r = ExponentialMechanismSelect(rng, qualities, options);
    ASSERT_TRUE(r.ok());
    first += *r == 0;
  }
  double expected = std::exp(1.0) / (1.0 + std::exp(1.0));
  EXPECT_NEAR(first / static_cast<double>(n), expected, 0.005);
}

TEST(EmTest, HugeQualitiesDoNotOverflow) {
  // Count-scale qualities (the paper multiplies frequencies by N).
  Rng rng(5);
  std::vector<double> qualities{1000000.0, 999999.0, 0.0};
  EmOptions options{.epsilon = 0.5, .sensitivity = 1.0};
  std::vector<int> histogram(3, 0);
  for (int i = 0; i < 10000; ++i) {
    auto r = ExponentialMechanismSelect(rng, qualities, options);
    ASSERT_TRUE(r.ok());
    ++histogram[*r];
  }
  EXPECT_EQ(histogram[2], 0);  // astronomically unlikely
  EXPECT_GT(histogram[0], histogram[1]);
}

TEST(EmTest, RejectsEmptyAndBadArgs) {
  Rng rng(7);
  EXPECT_FALSE(ExponentialMechanismSelect(rng, {}, {}).ok());
  std::vector<double> q{1.0};
  EXPECT_FALSE(
      ExponentialMechanismSelect(rng, q, {.epsilon = 0.0}).ok());
  EXPECT_FALSE(
      ExponentialMechanismSelect(rng, q, {.epsilon = 1.0, .sensitivity = 0.0})
          .ok());
}

TEST(EmSelectKTest, WithoutReplacementDistinct) {
  Rng rng(9);
  std::vector<double> qualities(20, 1.0);
  auto r = ExponentialMechanismSelectK(rng, qualities, 10,
                                       {.epsilon = 1.0});
  ASSERT_TRUE(r.ok());
  std::set<size_t> unique(r->begin(), r->end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(EmSelectKTest, PrefersHighQuality) {
  Rng rng(11);
  // 5 high-quality candidates among 20; with a large budget they must
  // dominate the selection.
  std::vector<double> qualities(20, 0.0);
  for (int i = 0; i < 5; ++i) qualities[i] = 100.0;
  int high_picked = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    auto r = ExponentialMechanismSelectK(rng, qualities, 5,
                                         {.epsilon = 50.0});
    ASSERT_TRUE(r.ok());
    for (size_t idx : *r) high_picked += idx < 5;
  }
  EXPECT_GT(high_picked / static_cast<double>(trials * 5), 0.99);
}

TEST(EmSelectKTest, RejectsCountAbovePopulation) {
  Rng rng(13);
  std::vector<double> qualities{1.0, 2.0};
  EXPECT_FALSE(
      ExponentialMechanismSelectK(rng, qualities, 3, {.epsilon = 1.0}).ok());
}

TEST(GroupedEmPoolTest, GroupsByQuality) {
  std::vector<uint64_t> qualities{5, 3, 5, 3, 3, 9};
  GroupedEmPool pool(qualities);
  EXPECT_EQ(pool.NumGroups(), 3u);
  EXPECT_EQ(pool.NumRemaining(), 6u);
  EXPECT_EQ(pool.GroupQuality(0), 9u);  // descending
  EXPECT_EQ(pool.GroupQuality(1), 5u);
  EXPECT_EQ(pool.GroupQuality(2), 3u);
}

TEST(GroupedEmPoolTest, TakeFromRemovesMember) {
  std::vector<uint64_t> qualities{7, 7, 7};
  GroupedEmPool pool(qualities);
  Rng rng(15);
  std::set<size_t> taken;
  for (int i = 0; i < 3; ++i) {
    taken.insert(pool.TakeFrom(0, rng));
  }
  EXPECT_EQ(taken, (std::set<size_t>{0, 1, 2}));
  EXPECT_EQ(pool.NumRemaining(), 0u);
}

TEST(GroupedEmPoolTest, SelectKDistinctAndBiased) {
  Rng rng(17);
  // 100 candidates: indices 0..4 have count 1000, rest count 0.
  std::vector<uint64_t> qualities(100, 0);
  for (int i = 0; i < 5; ++i) qualities[i] = 1000;
  GroupedEmPool pool(qualities);
  auto r = pool.SelectK(rng, 5, /*factor=*/0.1);
  ASSERT_TRUE(r.ok());
  std::set<size_t> unique(r->begin(), r->end());
  EXPECT_EQ(unique.size(), 5u);
  for (size_t idx : *r) EXPECT_LT(idx, 5u);  // exp(100) dominance
}

TEST(GroupedEmPoolTest, MatchesUngroupedEmStatistically) {
  // Grouped selection must give the same distribution as the direct EM:
  // qualities {2, 2, 0} with factor 1 -> P(idx 2) = 1/(2e² + 1).
  Rng rng(19);
  std::vector<uint64_t> qualities{2, 2, 0};
  const int n = 150000;
  int low = 0;
  for (int i = 0; i < n; ++i) {
    GroupedEmPool pool(qualities);
    auto r = pool.SelectK(rng, 1, 1.0);
    ASSERT_TRUE(r.ok());
    low += r->front() == 2;
  }
  double expected = 1.0 / (2.0 * std::exp(2.0) + 1.0);
  EXPECT_NEAR(low / static_cast<double>(n), expected, 0.004);
}

TEST(GroupedEmPoolTest, SelectKRejectsOverdraw) {
  std::vector<uint64_t> qualities{1, 2};
  GroupedEmPool pool(qualities);
  Rng rng(21);
  EXPECT_FALSE(pool.SelectK(rng, 3, 1.0).ok());
}

}  // namespace
}  // namespace privbasis
