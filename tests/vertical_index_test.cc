#include "data/vertical_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(VerticalIndexTest, TidListsSortedAndComplete) {
  TransactionDatabase db = MakeDb({{0, 1}, {1}, {0, 1, 2}});
  VerticalIndex index(db);
  auto l0 = index.TidList(0);
  ASSERT_EQ(l0.size(), 2u);
  EXPECT_EQ(l0[0], 0u);
  EXPECT_EQ(l0[1], 2u);
  auto l1 = index.TidList(1);
  EXPECT_EQ(l1.size(), 3u);
  auto l2 = index.TidList(2);
  ASSERT_EQ(l2.size(), 1u);
  EXPECT_EQ(l2[0], 2u);
}

TEST(VerticalIndexTest, SupportMatchesScan) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1}, {1, 2}, {0, 2}, {2}});
  VerticalIndex index(db);
  EXPECT_EQ(index.SupportOf(Itemset({0})), 3u);
  EXPECT_EQ(index.SupportOf(Itemset({0, 1})), 2u);
  EXPECT_EQ(index.SupportOf(Itemset({0, 1, 2})), 1u);
  EXPECT_EQ(index.SupportOf(Itemset()), 5u);
  EXPECT_NEAR(index.FrequencyOf(Itemset({2})), 0.8, 1e-12);
}

TEST(VerticalIndexTest, EmptyListIntersection) {
  TransactionDatabase db = MakeDb({{0}}, /*universe=*/3);
  VerticalIndex index(db);
  EXPECT_EQ(index.SupportOf(Itemset({0, 2})), 0u);
  EXPECT_EQ(index.SupportOf(Itemset({2})), 0u);
}

TEST(VerticalIndexTest, PairFastPathMatchesGeneral) {
  TransactionDatabase db = MakeRandomDb({.seed = 3, .universe = 10});
  VerticalIndex index(db);
  for (Item a = 0; a < 10; ++a) {
    for (Item b = a + 1; b < 10; ++b) {
      EXPECT_EQ(index.SupportOfPair(a, b), index.SupportOf(Itemset({a, b})))
          << "pair {" << a << "," << b << "}";
    }
  }
}

// Property sweep: the index must agree with the full-scan reference on
// randomized databases and random itemsets of several sizes.
class VerticalIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerticalIndexPropertyTest, AgreesWithScan) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = GetParam(), .num_transactions = 80, .universe = 14});
  VerticalIndex index(db);
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    size_t size = 1 + rng.UniformInt(4);
    std::vector<Item> items;
    for (size_t i = 0; i < size; ++i) {
      items.push_back(static_cast<Item>(rng.UniformInt(14)));
    }
    Itemset query(std::move(items));
    EXPECT_EQ(index.SupportOf(query), db.SupportOf(query))
        << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerticalIndexPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(VerticalIndexTest, DensityThresholdSelectsBitmapItems) {
  // Supports: item 0 → 3/4, item 1 → 2/4, item 2 → 1/4.
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}, {0, 2}, {}});
  VerticalIndex index(db, {.density_threshold = 0.5});
  EXPECT_TRUE(index.IsDense(0));
  EXPECT_TRUE(index.IsDense(1));
  EXPECT_FALSE(index.IsDense(2));
  EXPECT_EQ(index.NumDenseItems(), 2u);
  // Dense items still expose their sorted tid-lists.
  auto l0 = index.TidList(0);
  ASSERT_EQ(l0.size(), 3u);
  EXPECT_EQ(l0[2], 2u);
  // All three backend combinations answer exactly.
  EXPECT_EQ(index.SupportOf(Itemset({0, 1})), 2u);     // dense-dense
  EXPECT_EQ(index.SupportOf(Itemset({0, 2})), 1u);     // dense-sparse
  EXPECT_EQ(index.SupportOf(Itemset({0, 1, 2})), 0u);  // mixed triple
}

TEST(VerticalIndexTest, SupportOfManyMatchesSingleQueries) {
  TransactionDatabase db = MakeRandomDb({.seed = 5, .universe = 10});
  VerticalIndex index(db);
  std::vector<Itemset> queries = {Itemset(), Itemset({1}), Itemset({2, 4}),
                                  Itemset({0, 3, 7}), Itemset({9})};
  std::vector<uint64_t> batch = index.SupportOfMany(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], index.SupportOf(queries[i])) << i;
  }
}

TEST(VerticalIndexTest, MetadataExposed) {
  TransactionDatabase db = MakeDb({{0, 1}, {1}}, /*universe=*/5);
  VerticalIndex index(db);
  EXPECT_EQ(index.NumTransactions(), 2u);
  EXPECT_EQ(index.UniverseSize(), 5u);
}

}  // namespace
}  // namespace privbasis
