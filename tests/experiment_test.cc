#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "eval/table_printer.h"
#include "test_util.h"

namespace privbasis {
namespace {

GroundTruth MakeTruth(const TransactionDatabase& db, size_t k) {
  auto truth = ComputeGroundTruth(db, k);
  EXPECT_TRUE(truth.ok());
  return std::move(truth).value();
}

TEST(ExperimentTest, PerfectMethodScoresZero) {
  TransactionDatabase db = testing::MakeRandomDb({.seed = 1});
  GroundTruth truth = MakeTruth(db, 5);
  ReleaseMethod perfect = [&](double, Rng&) {
    std::vector<NoisyItemset> out;
    for (const auto& fi : truth.topk.itemsets) {
      out.push_back({fi.items, static_cast<double>(fi.support)});
    }
    return Result<std::vector<NoisyItemset>>(std::move(out));
  };
  SweepConfig config;
  config.epsilons = {0.5, 1.0};
  config.repeats = 3;
  auto series = RunEpsilonSweep("perfect", perfect, truth, config);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->points.size(), 2u);
  for (const auto& p : series->points) {
    EXPECT_EQ(p.fnr_mean, 0.0);
    EXPECT_EQ(p.re_mean, 0.0);
    EXPECT_EQ(p.fnr_stderr, 0.0);
    EXPECT_EQ(p.repeats, 3);
  }
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  TransactionDatabase db = testing::MakeRandomDb({.seed = 2});
  GroundTruth truth = MakeTruth(db, 5);
  // A noisy method driven entirely by the provided RNG.
  ReleaseMethod noisy = [&](double epsilon, Rng& rng) {
    std::vector<NoisyItemset> out;
    for (const auto& fi : truth.topk.itemsets) {
      out.push_back({fi.items, static_cast<double>(fi.support) +
                                   rng.NextDouble() / epsilon});
    }
    return Result<std::vector<NoisyItemset>>(std::move(out));
  };
  SweepConfig config;
  config.epsilons = {0.5};
  config.repeats = 3;
  auto a = RunEpsilonSweep("noisy", noisy, truth, config);
  auto b = RunEpsilonSweep("noisy", noisy, truth, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->points[0].re_mean, b->points[0].re_mean);
  EXPECT_EQ(a->points[0].re_stderr, b->points[0].re_stderr);
}

TEST(ExperimentTest, PropagatesMethodErrors) {
  TransactionDatabase db = testing::MakeRandomDb({.seed = 3});
  GroundTruth truth = MakeTruth(db, 5);
  ReleaseMethod broken = [](double, Rng&) {
    return Result<std::vector<NoisyItemset>>(Status::Internal("boom"));
  };
  SweepConfig config;
  config.epsilons = {0.5};
  auto series = RunEpsilonSweep("broken", broken, truth, config);
  EXPECT_FALSE(series.ok());
}

TEST(ExperimentTest, RejectsZeroRepeats) {
  TransactionDatabase db = testing::MakeRandomDb({.seed = 4});
  GroundTruth truth = MakeTruth(db, 5);
  SweepConfig config;
  config.repeats = 0;
  auto series = RunEpsilonSweep(
      "x",
      [](double, Rng&) {
        return Result<std::vector<NoisyItemset>>(
            std::vector<NoisyItemset>{});
      },
      truth, config);
  EXPECT_FALSE(series.ok());
}

TEST(ExperimentTest, PaperGrids) {
  EXPECT_EQ(PaperEpsilonGridDense().size(), 10u);
  EXPECT_EQ(PaperEpsilonGridDense().front(), 0.1);
  EXPECT_EQ(PaperEpsilonGridSparse().size(), 9u);
  EXPECT_EQ(PaperEpsilonGridSparse().front(), 0.2);
  EXPECT_EQ(PaperEpsilonGridAol().size(), 6u);
  EXPECT_EQ(PaperEpsilonGridAol().front(), 0.5);
  for (const auto& grid : {PaperEpsilonGridDense(), PaperEpsilonGridSparse(),
                           PaperEpsilonGridAol()}) {
    EXPECT_EQ(grid.back(), 1.0);
    EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  }
}

TEST(GroundTruthTest, StatsAndMarginSupports) {
  TransactionDatabase db = testing::MakeRandomDb(
      {.seed = 5, .num_transactions = 100, .universe = 12});
  auto truth = ComputeGroundTruth(db, 10);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(truth->topk.itemsets.size(), 10u);
  EXPECT_EQ(truth->stats.fk_count, truth->topk.itemsets.back().support);
  // η-margin supports can only be <= fk.
  EXPECT_LE(truth->fk1_support_eta11, truth->topk.kth_support);
  EXPECT_LE(truth->fk1_support_eta12, truth->fk1_support_eta11);
  ASSERT_NE(truth->index, nullptr);
  EXPECT_EQ(truth->index->NumTransactions(), db.NumTransactions());
}

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TextTable table({"a", "longheader"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("longheader"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Num(0.5, 0), "0");  // rounds to even
  EXPECT_EQ(TextTable::Num(2.0, 3), "2.000");
}

TEST(TablePrinterTest, PrintFigureRendersBothMetrics) {
  SweepSeries series;
  series.label = "PB,k=50";
  series.points.push_back(
      {.epsilon = 0.5, .fnr_mean = 0.1, .fnr_stderr = 0.01,
       .re_mean = 0.2, .re_stderr = 0.02, .repeats = 3});
  std::ostringstream os;
  PrintFigure(os, "Test Figure", {series});
  std::string out = os.str();
  EXPECT_NE(out.find("Test Figure"), std::string::npos);
  EXPECT_NE(out.find("FNR"), std::string::npos);
  EXPECT_NE(out.find("RelativeError"), std::string::npos);
  EXPECT_NE(out.find("PB,k=50"), std::string::npos);
  EXPECT_NE(out.find("0.1000"), std::string::npos);
}

}  // namespace
}  // namespace privbasis
