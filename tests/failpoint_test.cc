// Spec-grammar edge cases for common/failpoint.h. The grammar is the
// interface operators and the crash-recovery harness drive fault
// injection through (PRIVBASIS_FAILPOINTS / failpoint::Configure), so a
// term that parses to the WRONG fault is worse than one that fails —
// these tests pin down that every malformed term is rejected loudly and
// that a rejected Configure leaves the previous arming untouched.
#include "common/failpoint.h"

#include <cerrno>

#include <gtest/gtest.h>

namespace privbasis::failpoint {
namespace {

// Every test leaves the global registry disarmed for the next one.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Reset(); }
};

TEST_F(FailpointTest, ParsesErrorActionWithSymbolicErrno) {
  ASSERT_TRUE(Configure("my_site=error:ENOSPC").ok());
  const Action action = Hit("my_site");
  EXPECT_EQ(action.kind, Action::Kind::kError);
  EXPECT_EQ(action.err, ENOSPC);
}

TEST_F(FailpointTest, ParsesNumericErrno) {
  ASSERT_TRUE(Configure("my_site=error:28").ok());
  const Action action = Hit("my_site");
  EXPECT_EQ(action.kind, Action::Kind::kError);
  EXPECT_EQ(action.err, 28);
}

TEST_F(FailpointTest, ParsesTornWithByteCount) {
  ASSERT_TRUE(Configure("my_site=torn:12").ok());
  const Action action = Hit("my_site");
  EXPECT_EQ(action.kind, Action::Kind::kTorn);
  EXPECT_EQ(action.arg, 12u);
}

TEST_F(FailpointTest, UnknownSiteNeverTriggers) {
  ASSERT_TRUE(Configure("armed_site=error:EIO").ok());
  EXPECT_FALSE(Hit("some_other_site").triggered());
}

TEST_F(FailpointTest, RejectsTermWithoutEquals) {
  const Status status = Configure("wal_append");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, RejectsEmptySiteName) {
  EXPECT_FALSE(Configure("=error:EIO").ok());
}

TEST_F(FailpointTest, RejectsUnknownAction) {
  const Status status = Configure("my_site=frobnicate:3");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown action"), std::string::npos);
}

TEST_F(FailpointTest, RejectsUnknownErrnoName) {
  EXPECT_FALSE(Configure("my_site=error:EWHATEVER").ok());
  EXPECT_FALSE(Configure("my_site=error:").ok());
  EXPECT_FALSE(Configure("my_site=error:0").ok());
  EXPECT_FALSE(Configure("my_site=error:-5").ok());
}

TEST_F(FailpointTest, RejectsNonNumericTornAndSleepArgs) {
  // A typo'd count must not silently arm torn:0 / sleep:0.
  EXPECT_FALSE(Configure("my_site=torn:abc").ok());
  EXPECT_FALSE(Configure("my_site=torn:").ok());
  EXPECT_FALSE(Configure("my_site=torn:12x").ok());
  EXPECT_FALSE(Configure("my_site=torn").ok());
  EXPECT_FALSE(Configure("my_site=sleep:fast").ok());
  EXPECT_FALSE(Configure("my_site=sleep").ok());
}

TEST_F(FailpointTest, RejectsCrashWithArgument) {
  EXPECT_FALSE(Configure("my_site=crash:5").ok());
  // (A bare crash term is valid; not armed here because Hit would _exit.)
}

TEST_F(FailpointTest, RejectsMalformedSkipSuffix) {
  EXPECT_FALSE(Configure("my_site=error:EIO@").ok());
  EXPECT_FALSE(Configure("my_site=error:EIO@two").ok());
  EXPECT_FALSE(Configure("my_site=error:EIO@3x").ok());
}

TEST_F(FailpointTest, SkipCountPassesExactlyThatManyHits) {
  ASSERT_TRUE(Configure("my_site=error:EIO@2").ok());
  EXPECT_FALSE(Hit("my_site").triggered());  // hit 1: skipped
  EXPECT_FALSE(Hit("my_site").triggered());  // hit 2: skipped
  const Action action = Hit("my_site");      // hit 3: fires
  EXPECT_EQ(action.kind, Action::Kind::kError);
  EXPECT_EQ(action.err, EIO);
  // ...and keeps firing (a full disk stays full).
  EXPECT_TRUE(Hit("my_site").triggered());
}

TEST_F(FailpointTest, SkipZeroFiresImmediately) {
  ASSERT_TRUE(Configure("my_site=error:EIO@0").ok());
  EXPECT_TRUE(Hit("my_site").triggered());
}

TEST_F(FailpointTest, EmptyTermsAndTrailingCommasAreIgnored) {
  ASSERT_TRUE(Configure("a=error:EIO,,b=torn:3,").ok());
  EXPECT_EQ(Hit("a").kind, Action::Kind::kError);
  EXPECT_EQ(Hit("b").kind, Action::Kind::kTorn);
}

TEST_F(FailpointTest, EmptySpecDisarmsEverything) {
  ASSERT_TRUE(Configure("a=error:EIO").ok());
  ASSERT_TRUE(Configure("").ok());
  EXPECT_FALSE(Hit("a").triggered());
}

TEST_F(FailpointTest, DuplicateSiteLastTermWins) {
  ASSERT_TRUE(Configure("a=error:EIO,a=torn:7").ok());
  const Action action = Hit("a");
  EXPECT_EQ(action.kind, Action::Kind::kTorn);
  EXPECT_EQ(action.arg, 7u);
}

TEST_F(FailpointTest, FailedConfigureLeavesPreviousArmingIntact) {
  ASSERT_TRUE(Configure("a=error:ENOSPC").ok());
  ASSERT_FALSE(Configure("a=bogus").ok());
  const Action action = Hit("a");  // still the old arming
  EXPECT_EQ(action.kind, Action::Kind::kError);
  EXPECT_EQ(action.err, ENOSPC);
}

TEST_F(FailpointTest, ResetDisarms) {
  ASSERT_TRUE(Configure("a=error:EIO").ok());
  Reset();
  EXPECT_FALSE(Hit("a").triggered());
}

}  // namespace
}  // namespace privbasis::failpoint
