#include "common/status.h"

#include <gtest/gtest.h>

namespace privbasis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::BudgetExhausted("x").code(),
            StatusCode::kBudgetExhausted);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kBudgetExhausted),
               "BudgetExhausted");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailingFn() { return Status::OutOfRange("boom"); }

Status PropagatesWithMacro() {
  PRIVBASIS_RETURN_NOT_OK(FailingFn());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_EQ(PropagatesWithMacro().code(), StatusCode::kOutOfRange);
}

Result<int> ProducesInt(bool fail) {
  if (fail) return Status::Internal("no int");
  return 5;
}

Result<int> UsesAssignMacro(bool fail) {
  PRIVBASIS_ASSIGN_OR_RETURN(int v, ProducesInt(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = UsesAssignMacro(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 6);
  auto err = UsesAssignMacro(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace privbasis
