// End-to-end behaviour of the full pipeline on scaled-down paper
// profiles: the directional claims the evaluation section rests on.
#include <gtest/gtest.h>

#include "baseline/tf.h"
#include "core/privbasis.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"

namespace privbasis {
namespace {

ReleaseMethod PbMethod(const TransactionDatabase& db, size_t k,
                       const GroundTruth& truth) {
  PrivBasisOptions options;
  options.fk1_support_hint = truth.fk1_support_eta11;
  return [&db, k, options](double epsilon,
                           Rng& rng) -> Result<std::vector<NoisyItemset>> {
    auto r = RunPrivBasis(db, k, epsilon, rng, options);
    if (!r.ok()) return r.status();
    return std::move(r).value().topk;
  };
}

TEST(IntegrationTest, MushroomPbNearZeroFnrAtModerateEpsilon) {
  // Paper Figure 1: PB FNR ≈ 0 for ε ≥ 0.5 on mushroom.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.5), 101);
  ASSERT_TRUE(db.ok());
  auto truth = ComputeGroundTruth(*db, 50);
  ASSERT_TRUE(truth.ok());
  SweepConfig config;
  config.epsilons = {1.0};
  config.repeats = 3;
  auto series =
      RunEpsilonSweep("pb", PbMethod(*db, 50, *truth), *truth, config);
  ASSERT_TRUE(series.ok());
  EXPECT_LE(series->points[0].fnr_mean, 0.1);
  EXPECT_LE(series->points[0].re_mean, 0.1);
}

TEST(IntegrationTest, PbBeatsTfOnDenseDataAtLargerK) {
  // The paper's headline: on dense data with k large enough that TF's
  // truncation degenerates, PB's FNR is far lower than TF's.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.5), 103);
  ASSERT_TRUE(db.ok());
  const size_t k = 60;
  auto truth = ComputeGroundTruth(*db, k);
  ASSERT_TRUE(truth.ok());
  SweepConfig config;
  config.epsilons = {1.0};
  config.repeats = 3;

  auto pb = RunEpsilonSweep("pb", PbMethod(*db, k, *truth), *truth, config);
  ASSERT_TRUE(pb.ok());

  TfOptions tf_options;
  tf_options.m = 2;
  auto runner = TfRunner::Create(*db, k, tf_options);
  ASSERT_TRUE(runner.ok());
  auto runner_ptr = std::make_shared<TfRunner>(std::move(runner).value());
  ReleaseMethod tf = [runner_ptr](double epsilon, Rng& rng)
      -> Result<std::vector<NoisyItemset>> {
    auto r = runner_ptr->Run(epsilon, rng);
    if (!r.ok()) return r.status();
    return std::move(r).value().released;
  };
  auto tf_series = RunEpsilonSweep("tf", tf, *truth, config);
  ASSERT_TRUE(tf_series.ok());

  EXPECT_LT(pb->points[0].fnr_mean, tf_series->points[0].fnr_mean)
      << "PB FNR " << pb->points[0].fnr_mean << " vs TF "
      << tf_series->points[0].fnr_mean;
  EXPECT_GT(tf_series->points[0].fnr_mean, 0.3)
      << "TF should be badly degraded in this regime";
}

TEST(IntegrationTest, FnrImprovesWithEpsilon) {
  // Loose monotonicity: FNR at ε=2.0 must beat FNR at ε=0.05 clearly.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.3), 107);
  ASSERT_TRUE(db.ok());
  const size_t k = 40;
  auto truth = ComputeGroundTruth(*db, k);
  ASSERT_TRUE(truth.ok());
  SweepConfig config;
  config.epsilons = {0.05, 2.0};
  config.repeats = 3;
  auto series =
      RunEpsilonSweep("pb", PbMethod(*db, k, *truth), *truth, config);
  ASSERT_TRUE(series.ok());
  EXPECT_GT(series->points[0].fnr_mean, series->points[1].fnr_mean);
}

TEST(IntegrationTest, MultiBasisPathOnSparseProfile) {
  // A scaled-down kosarak: λ > 12 forces the multi-basis machinery
  // (pairs, cliques, merging) end to end.
  auto db = GenerateDataset(SyntheticProfile::Kosarak(0.02), 109);
  ASSERT_TRUE(db.ok());
  const size_t k = 60;
  Rng rng(111);
  PrivBasisOptions options;
  auto result = RunPrivBasis(*db, k, 1.0, rng, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->lambda, 12u);
  EXPECT_GT(result->basis_set.Width(), 1u);
  EXPECT_LE(result->basis_set.Length(), options.max_basis_length);
  EXPECT_EQ(result->topk.size(), k);
  EXPECT_LE(result->epsilon_spent, 1.0 + 1e-9);
}

TEST(IntegrationTest, TfDegenerateRegimeMatchesTable2b) {
  // At paper scale kosarak+m=2+k=200 is degenerate for ε ≤ 1; the scaled
  // dataset keeps N smaller so γ (∝ 1/N) is even larger — still
  // degenerate.
  auto db = GenerateDataset(SyntheticProfile::Kosarak(0.02), 113);
  ASSERT_TRUE(db.ok());
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(*db, 100, options);
  ASSERT_TRUE(runner.ok());
  EXPECT_TRUE(runner->Effectiveness(1.0).degenerate);
}

TEST(IntegrationTest, EveryMechanismRoutesThroughAccountant) {
  // Audit: a full PB run plus a TF run both fit in a shared budget of
  // 2ε and fail beyond it.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.1), 115);
  ASSERT_TRUE(db.ok());
  PrivacyAccountant accountant(1.0);
  Rng rng(117);
  TfOptions tf_options;
  tf_options.m = 1;
  auto runner = TfRunner::Create(*db, 10, tf_options);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE(runner->Run(0.5, rng, &accountant).ok());
  ASSERT_TRUE(runner->Run(0.5, rng, &accountant).ok());
  EXPECT_FALSE(runner->Run(0.1, rng, &accountant).ok());
  EXPECT_NEAR(accountant.spent_epsilon(), 1.0, 1e-9);
}

}  // namespace
}  // namespace privbasis
