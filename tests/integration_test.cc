// End-to-end behaviour of the full pipeline on scaled-down paper
// profiles, driven through the Engine facade: the directional claims the
// evaluation section rests on.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "eval/experiment.h"

namespace privbasis {
namespace {

std::shared_ptr<Dataset> MakeProfileDataset(const SyntheticProfile& profile,
                                            uint64_t seed) {
  auto dataset = Dataset::FromProfile(profile, seed);
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  return dataset.ok() ? *dataset : nullptr;
}

TEST(IntegrationTest, MushroomPbNearZeroFnrAtModerateEpsilon) {
  // Paper Figure 1: PB FNR ≈ 0 for ε ≥ 0.5 on mushroom.
  auto dataset = MakeProfileDataset(SyntheticProfile::Mushroom(0.5), 101);
  ASSERT_NE(dataset, nullptr);
  auto truth = dataset->Truth(50);
  ASSERT_TRUE(truth.ok());
  SweepConfig config;
  config.epsilons = {1.0};
  config.repeats = 3;
  auto series = RunEpsilonSweep(
      "pb", EngineMethod(dataset, QuerySpec().WithTopK(50)), **truth, config);
  ASSERT_TRUE(series.ok());
  EXPECT_LE(series->points[0].fnr_mean, 0.1);
  EXPECT_LE(series->points[0].re_mean, 0.1);
}

TEST(IntegrationTest, PbBeatsTfOnDenseDataAtLargerK) {
  // The paper's headline: on dense data with k large enough that TF's
  // truncation degenerates, PB's FNR is far lower than TF's.
  auto dataset = MakeProfileDataset(SyntheticProfile::Mushroom(0.5), 103);
  ASSERT_NE(dataset, nullptr);
  const size_t k = 60;
  auto truth = dataset->Truth(k);
  ASSERT_TRUE(truth.ok());
  SweepConfig config;
  config.epsilons = {1.0};
  config.repeats = 3;

  auto pb = RunEpsilonSweep(
      "pb", EngineMethod(dataset, QuerySpec().WithTopK(k)), **truth, config);
  ASSERT_TRUE(pb.ok());

  QuerySpec tf_spec;
  tf_spec.WithMethod(QueryMethod::kTruncatedFrequency).WithTopK(k);
  tf_spec.tf.m = 2;
  auto tf_series =
      RunEpsilonSweep("tf", EngineMethod(dataset, tf_spec), **truth, config);
  ASSERT_TRUE(tf_series.ok());

  EXPECT_LT(pb->points[0].fnr_mean, tf_series->points[0].fnr_mean)
      << "PB FNR " << pb->points[0].fnr_mean << " vs TF "
      << tf_series->points[0].fnr_mean;
  EXPECT_GT(tf_series->points[0].fnr_mean, 0.3)
      << "TF should be badly degraded in this regime";
}

TEST(IntegrationTest, FnrImprovesWithEpsilon) {
  // Loose monotonicity: FNR at ε=2.0 must beat FNR at ε=0.05 clearly.
  auto dataset = MakeProfileDataset(SyntheticProfile::Mushroom(0.3), 107);
  ASSERT_NE(dataset, nullptr);
  const size_t k = 40;
  auto truth = dataset->Truth(k);
  ASSERT_TRUE(truth.ok());
  SweepConfig config;
  config.epsilons = {0.05, 2.0};
  config.repeats = 3;
  auto series = RunEpsilonSweep(
      "pb", EngineMethod(dataset, QuerySpec().WithTopK(k)), **truth, config);
  ASSERT_TRUE(series.ok());
  EXPECT_GT(series->points[0].fnr_mean, series->points[1].fnr_mean);
}

TEST(IntegrationTest, MultiBasisPathOnSparseProfile) {
  // A scaled-down kosarak: λ > 12 forces the multi-basis machinery
  // (pairs, cliques, merging) end to end.
  auto dataset = MakeProfileDataset(SyntheticProfile::Kosarak(0.02), 109);
  ASSERT_NE(dataset, nullptr);
  const size_t k = 60;
  PrivBasisOptions options;
  auto release = Engine::Run(
      *dataset, QuerySpec().WithTopK(k).WithEpsilon(1.0).WithSeed(111));
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_GT(release->lambda, 12u);
  EXPECT_GT(release->basis_set.Width(), 1u);
  EXPECT_LE(release->basis_set.Length(), options.max_basis_length);
  EXPECT_EQ(release->itemsets.size(), k);
  EXPECT_LE(release->epsilon_spent, 1.0 + 1e-9);
  // Ledger agreement: the release's diagnostics ARE the ledger's numbers.
  EXPECT_NEAR(release->epsilon_spent,
              dataset->accountant()->spent_epsilon(), 1e-12);
}

TEST(IntegrationTest, TfDegenerateRegimeMatchesTable2b) {
  // At paper scale kosarak+m=2+k=200 is degenerate for ε ≤ 1; the scaled
  // dataset keeps N smaller so γ (∝ 1/N) is even larger — still
  // degenerate.
  auto dataset = MakeProfileDataset(SyntheticProfile::Kosarak(0.02), 113);
  ASSERT_NE(dataset, nullptr);
  TfOptions options;
  options.m = 2;
  auto runner = dataset->Tf(100, options);
  ASSERT_TRUE(runner.ok());
  EXPECT_TRUE((*runner)->Effectiveness(1.0).degenerate);
}

TEST(IntegrationTest, EveryMechanismRoutesThroughAccountant) {
  // Audit: PB and TF queries on one dataset share its ledger; the budget
  // refuses the query that would overdraw it.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.1), 115);
  ASSERT_TRUE(db.ok());
  auto dataset =
      Dataset::Create(std::move(db).value(), {.total_epsilon = 1.0});

  QuerySpec tf_spec;
  tf_spec.WithMethod(QueryMethod::kTruncatedFrequency).WithTopK(10);
  tf_spec.tf.m = 1;
  ASSERT_TRUE(
      Engine::Run(*dataset, QuerySpec(tf_spec).WithEpsilon(0.5).WithSeed(1))
          .ok());
  ASSERT_TRUE(
      Engine::Run(*dataset, QuerySpec(tf_spec).WithEpsilon(0.5).WithSeed(2))
          .ok());
  auto over =
      Engine::Run(*dataset, QuerySpec(tf_spec).WithEpsilon(0.1).WithSeed(3));
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_NEAR(dataset->accountant()->spent_epsilon(), 1.0, 1e-9);
}

}  // namespace
}  // namespace privbasis
