#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_util.h"

namespace privbasis {
namespace {

TEST(DatasetIoTest, ParsesSimpleFimi) {
  auto result = ReadFimiString("1 2 3\n2 3\n3\n");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& db = result->db;
  EXPECT_EQ(db.NumTransactions(), 3u);
  EXPECT_EQ(db.UniverseSize(), 3u);
  // Raw ids 1,2,3 remapped to dense 0,1,2 in first-appearance order.
  EXPECT_EQ(result->dense_to_raw, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(DatasetIoTest, RemapsInFirstAppearanceOrder) {
  auto result = ReadFimiString("100 7\n7 9\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dense_to_raw, (std::vector<uint64_t>{100, 7, 9}));
  EXPECT_EQ(result->db.Transaction(0)[0], 0u);  // 100 -> 0
  EXPECT_EQ(result->db.Transaction(1)[0], 1u);  // 7 -> 1
}

TEST(DatasetIoTest, SkipsBlankLines) {
  auto result = ReadFimiString("1 2\n\n   \n3\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.NumTransactions(), 2u);
}

TEST(DatasetIoTest, HandlesExtraWhitespace) {
  auto result = ReadFimiString("  1   2 \t 3\r\n4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.NumTransactions(), 2u);
  EXPECT_EQ(result->db.Transaction(0).size(), 3u);
}

TEST(DatasetIoTest, RejectsMalformedToken) {
  auto result = ReadFimiString("1 banana 3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DatasetIoTest, DuplicateItemsInLineDeduped) {
  auto result = ReadFimiString("5 5 5\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.Transaction(0).size(), 1u);
}

TEST(DatasetIoTest, WriteStringRoundTrip) {
  TransactionDatabase db = testing::MakeDb({{0, 1, 2}, {1}, {0, 2}});
  std::string text = WriteFimiString(db);
  auto reread = ReadFimiString(text);
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread->db.NumTransactions(), db.NumTransactions());
  // Dense ids in the rewritten file match original dense ids only up to
  // first-appearance remap; supports must agree exactly.
  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    EXPECT_EQ(reread->db.Transaction(t).size(), db.Transaction(t).size());
  }
}

TEST(DatasetIoTest, FileRoundTrip) {
  TransactionDatabase db = testing::MakeRandomDb({.seed = 4});
  std::string path =
      (std::filesystem::temp_directory_path() / "privbasis_io_test.dat")
          .string();
  auto write = WriteFimiFile(db, path);
  ASSERT_TRUE(write.ok()) << write;
  auto reread = ReadFimiFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  // Empty transactions serialize to blank lines, which the FIMI reader
  // skips (real FIMI files have none); non-empty content round-trips.
  size_t non_empty = 0;
  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    non_empty += !db.Transaction(t).empty();
  }
  EXPECT_EQ(reread->db.NumTransactions(), non_empty);
  EXPECT_EQ(reread->db.TotalItemOccurrences(), db.TotalItemOccurrences());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  auto result = ReadFimiFile("/nonexistent/path/to/data.dat");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DatasetIoTest, EmptyInput) {
  auto result = ReadFimiString("");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.NumTransactions(), 0u);
}

}  // namespace
}  // namespace privbasis
