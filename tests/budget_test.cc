#include "dp/budget.h"

#include <gtest/gtest.h>

namespace privbasis {
namespace {

TEST(BudgetTest, TracksSpending) {
  PrivacyAccountant accountant(1.0);
  EXPECT_EQ(accountant.total_epsilon(), 1.0);
  EXPECT_EQ(accountant.spent_epsilon(), 0.0);
  ASSERT_TRUE(accountant.Consume(0.3, "step1").ok());
  ASSERT_TRUE(accountant.Consume(0.5, "step2").ok());
  EXPECT_NEAR(accountant.spent_epsilon(), 0.8, 1e-12);
  EXPECT_NEAR(accountant.remaining_epsilon(), 0.2, 1e-12);
}

TEST(BudgetTest, RecordsEntries) {
  PrivacyAccountant accountant(2.0);
  ASSERT_TRUE(accountant.Consume(0.5, "GetLambda").ok());
  ASSERT_TRUE(accountant.Consume(1.0, "BasisFreq").ok());
  ASSERT_EQ(accountant.entries().size(), 2u);
  EXPECT_EQ(accountant.entries()[0].label, "GetLambda");
  EXPECT_EQ(accountant.entries()[0].epsilon, 0.5);
  EXPECT_EQ(accountant.entries()[1].label, "BasisFreq");
}

TEST(BudgetTest, RejectsOverspend) {
  PrivacyAccountant accountant(1.0);
  ASSERT_TRUE(accountant.Consume(0.9, "a").ok());
  Status over = accountant.Consume(0.2, "b");
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kBudgetExhausted);
  // Failed consumption must not be recorded.
  EXPECT_NEAR(accountant.spent_epsilon(), 0.9, 1e-12);
  EXPECT_EQ(accountant.entries().size(), 1u);
}

TEST(BudgetTest, ToleratesFloatingPointSplits) {
  // α1 + α2 + α3 = 0.1 + 0.4 + 0.5 may not sum to exactly 1 in floating
  // point; the accountant must accept the full split.
  PrivacyAccountant accountant(1.0);
  ASSERT_TRUE(accountant.Consume(0.1, "a").ok());
  ASSERT_TRUE(accountant.Consume(0.4, "b").ok());
  ASSERT_TRUE(accountant.Consume(0.5, "c").ok());
  EXPECT_NEAR(accountant.spent_epsilon(), 1.0, 1e-9);
}

TEST(BudgetTest, RejectsNonPositiveEpsilon) {
  PrivacyAccountant accountant(1.0);
  EXPECT_FALSE(accountant.Consume(0.0, "zero").ok());
  EXPECT_FALSE(accountant.Consume(-0.1, "negative").ok());
  EXPECT_FALSE(
      accountant.Consume(std::numeric_limits<double>::quiet_NaN(), "nan")
          .ok());
  EXPECT_FALSE(
      accountant.Consume(std::numeric_limits<double>::infinity(), "inf")
          .ok());
}

TEST(BudgetTest, ExactFullSpend) {
  PrivacyAccountant accountant(0.5);
  ASSERT_TRUE(accountant.Consume(0.5, "all").ok());
  EXPECT_FALSE(accountant.Consume(1e-6, "more").ok());
}

}  // namespace
}  // namespace privbasis
