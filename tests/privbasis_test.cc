#include "core/privbasis.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "fim/topk.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

/// One PrivBasis query through the public entry point (Engine::Run),
/// threading an external Rng so multi-release tests draw from one
/// continuing stream exactly as the pre-Engine free function did.
Result<Release> RunPb(const TransactionDatabase& db, size_t k,
                      double epsilon, Rng& rng,
                      const PrivBasisOptions& options = {}) {
  QuerySpec spec;
  spec.k = k;
  spec.epsilon = epsilon;
  spec.pb = options;
  auto handle = Dataset::Borrow(db);
  return Engine::Run(*handle, spec, rng);
}

TEST(GetLambdaTest, HighEpsilonPicksRankClosestToThreshold) {
  // Items with clearly separated supports; fk1 sits exactly at the
  // support of the 3rd item, so λ should be 3 at high ε.
  TransactionDatabase::Builder builder(6);
  // Supports: item0=50, item1=40, item2=30, item3=20, item4=10, item5=5.
  std::vector<int> supports{50, 40, 30, 20, 10, 5};
  for (int t = 0; t < 50; ++t) {
    std::vector<Item> txn;
    for (Item i = 0; i < 6; ++i) {
      if (t < supports[i]) txn.push_back(i);
    }
    builder.AddTransaction(txn);
  }
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());
  Rng rng(1);
  int hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t lambda = GetLambda(*db, /*fk1_support=*/30, /*epsilon=*/50.0,
                                rng);
    hits += lambda == 3;
  }
  EXPECT_GE(hits, 48);
}

TEST(GetLambdaTest, LowEpsilonStillReturnsValidRank) {
  TransactionDatabase db = MakeRandomDb({.seed = 2, .universe = 10});
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t lambda = GetLambda(db, 5, 0.01, rng);
    EXPECT_GE(lambda, 1u);
    EXPECT_LE(lambda, 10u);
  }
}

TEST(GetFreqElementsTest, HighEpsilonSelectsTrueTop) {
  std::vector<uint64_t> supports{100, 90, 80, 5, 4, 3, 2, 1};
  Rng rng(5);
  auto picks = GetFreqElements(supports, 3, /*epsilon=*/100.0,
                               /*monotonic=*/true, rng);
  ASSERT_TRUE(picks.ok());
  std::unordered_set<size_t> set(picks->begin(), picks->end());
  EXPECT_EQ(set, (std::unordered_set<size_t>{0, 1, 2}));
}

TEST(GetFreqElementsTest, ZeroCountEmpty) {
  std::vector<uint64_t> supports{10, 20};
  Rng rng(7);
  auto picks = GetFreqElements(supports, 0, 1.0, true, rng);
  ASSERT_TRUE(picks.ok());
  EXPECT_TRUE(picks->empty());
}

TEST(GetFreqElementsTest, RejectsOverdraw) {
  std::vector<uint64_t> supports{10};
  Rng rng(9);
  EXPECT_FALSE(GetFreqElements(supports, 2, 1.0, true, rng).ok());
}

TEST(GetFreqElementsTest, WithoutReplacement) {
  std::vector<uint64_t> supports(20, 7);  // all tie
  Rng rng(11);
  auto picks = GetFreqElements(supports, 20, 1.0, true, rng);
  ASSERT_TRUE(picks.ok());
  std::unordered_set<size_t> set(picks->begin(), picks->end());
  EXPECT_EQ(set.size(), 20u);
}

TEST(CountPairSupportsTest, MatchesBruteForce) {
  TransactionDatabase db = MakeRandomDb({.seed = 4, .universe = 10});
  std::vector<Item> items{0, 2, 5, 7};
  auto counts = CountPairSupports(db, items);
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_EQ(counts[i * items.size() + j],
                db.SupportOf(Itemset({items[i], items[j]})))
          << items[i] << "," << items[j];
    }
  }
}

TEST(CountPairSupportsTest, EmptyItems) {
  TransactionDatabase db = MakeDb({{0, 1}});
  EXPECT_TRUE(CountPairSupports(db, {}).empty());
}

TEST(PrivBasisQueryTest, ValidatesArguments) {
  TransactionDatabase db = MakeDb({{0, 1}});
  Rng rng(13);
  EXPECT_FALSE(RunPb(db, 0, 1.0, rng).ok());
  EXPECT_FALSE(RunPb(db, 5, 0.0, rng).ok());
  PrivBasisOptions bad;
  bad.alpha1 = 0.5;
  bad.alpha2 = 0.5;
  bad.alpha3 = 0.5;
  EXPECT_FALSE(RunPb(db, 5, 1.0, rng, bad).ok());
  PrivBasisOptions zero;
  zero.alpha1 = 0.0;
  EXPECT_FALSE(RunPb(db, 5, 1.0, rng, zero).ok());
}

TEST(PrivBasisQueryTest, RejectsEmptyDatabase) {
  TransactionDatabase db = MakeDb({});
  Rng rng(15);
  EXPECT_FALSE(RunPb(db, 5, 1.0, rng).ok());
}

TEST(PrivBasisQueryTest, HighEpsilonRecoversExactTopKSingleBasisPath) {
  // Dense correlated data with few distinct items: λ ≤ 12 single-basis
  // path; at huge ε the release must equal the exact top-k.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.1), 17);
  ASSERT_TRUE(db.ok());
  const size_t k = 25;
  auto truth = MineTopK(*db, k);
  ASSERT_TRUE(truth.ok());
  Rng rng(19);
  auto result = RunPb(*db, k, /*epsilon=*/200.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->lambda, 12u);
  EXPECT_EQ(result->basis_set.Width(), 1u);
  std::unordered_set<Itemset, ItemsetHash> released;
  for (const auto& r : result->itemsets) released.insert(r.items);
  size_t hits = 0;
  for (const auto& fi : truth->itemsets) hits += released.contains(fi.items);
  EXPECT_GE(hits, k - 1);  // allow one boundary tie swap
}

TEST(PrivBasisQueryTest, HighEpsilonAccurateMultiBasisPath) {
  // Sparse long-tail data: λ > 12 path with pair selection and basis
  // construction.
  SyntheticProfile profile;
  profile.name = "sparse";
  profile.kind = SyntheticProfile::Kind::kMarketBasket;
  profile.num_transactions = 4000;
  profile.universe_size = 400;
  profile.zipf_exponent = 0.8;
  profile.mean_transaction_length = 8;
  profile.patterns = {{{3, 9, 15}, 0.08, 0.0}, {{5, 12}, 0.09, 0.0}};
  auto db = GenerateDataset(profile, 21);
  ASSERT_TRUE(db.ok());
  const size_t k = 60;
  auto truth = MineTopK(*db, k);
  ASSERT_TRUE(truth.ok());
  Rng rng(23);
  auto result = RunPb(*db, k, /*epsilon=*/400.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->lambda, 12u);
  EXPECT_GT(result->basis_set.Width(), 1u);
  std::unordered_set<Itemset, ItemsetHash> released;
  for (const auto& r : result->itemsets) released.insert(r.items);
  size_t hits = 0;
  for (const auto& fi : truth->itemsets) hits += released.contains(fi.items);
  // The basis path is an approximation even at huge ε (the basis may not
  // cover everything); demand at least 85% recovery.
  EXPECT_GE(hits, k * 85 / 100);
}

TEST(PrivBasisQueryTest, NeverExceedsBudget) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 25, .num_transactions = 100, .universe = 15});
  Rng rng(27);
  for (double epsilon : {0.1, 0.5, 1.0, 2.0}) {
    auto result = RunPb(db, 10, epsilon, rng);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_LE(result->epsilon_spent, epsilon * (1.0 + 1e-9));
    EXPECT_GT(result->epsilon_spent, 0.0);
  }
}

TEST(PrivBasisQueryTest, ReleasesAtMostKItemsets) {
  TransactionDatabase db = MakeRandomDb({.seed = 29, .universe = 12});
  Rng rng(31);
  auto result = RunPb(db, 8, 1.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->itemsets.size(), 8u);
}

TEST(PrivBasisQueryTest, BasisLengthRespectsOption) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 33, .num_transactions = 200, .universe = 40,
       .item_prob = 0.3});
  Rng rng(35);
  PrivBasisOptions options;
  options.max_basis_length = 6;
  options.single_basis_lambda_cap = 4;  // force the multi-basis path
  auto result = RunPb(db, 30, 5.0, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->basis_set.Length(), 6u);
}

TEST(PrivBasisQueryTest, LambdaCapGuardsAgainstWildSamples) {
  TransactionDatabase db = MakeRandomDb({.seed = 37, .universe = 30});
  Rng rng(39);
  PrivBasisOptions options;
  options.lambda_cap = 5;
  auto result = RunPb(db, 10, 0.05, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->lambda, 5u);
}

TEST(PrivBasisQueryTest, Fk1HintMatchesInternalComputation) {
  TransactionDatabase db = MakeRandomDb({.seed = 41, .universe = 12});
  const size_t k = 10;
  auto top = MineTopK(db, 11);  // ceil(1.1 · 10)
  ASSERT_TRUE(top.ok());
  PrivBasisOptions with_hint;
  with_hint.fk1_support_hint = top->kth_support;
  // Identical seeds must produce identical releases with and without the
  // hint (the hint only skips the internal mining).
  Rng rng1(43), rng2(43);
  auto a = RunPb(db, k, 1.0, rng1);
  auto b = RunPb(db, k, 1.0, rng2, with_hint);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->itemsets.size(), b->itemsets.size());
  for (size_t i = 0; i < a->itemsets.size(); ++i) {
    EXPECT_EQ(a->itemsets[i].items, b->itemsets[i].items);
    EXPECT_EQ(a->itemsets[i].noisy_count, b->itemsets[i].noisy_count);
  }
}

TEST(PrivBasisQueryTest, NaiveLambda2StillWorks) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 45, .num_transactions = 150, .universe = 30,
       .item_prob = 0.3});
  Rng rng(47);
  PrivBasisOptions options;
  options.naive_lambda2 = true;
  options.single_basis_lambda_cap = 4;
  auto result = RunPb(db, 20, 2.0, rng, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->itemsets.empty());
}

}  // namespace
}  // namespace privbasis
