#include "fim/topk.h"

#include <gtest/gtest.h>

#include "fim/brute_force.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

// Reference: mine everything (capped length for brute force), sort
// canonically, take the prefix.
std::vector<FrequentItemset> ReferenceTopK(const TransactionDatabase& db,
                                           size_t k, size_t max_length) {
  auto all = MineBruteForce(db, {.min_support = 1, .max_length = max_length});
  EXPECT_TRUE(all.ok());
  auto itemsets = all->itemsets;
  if (itemsets.size() > k) itemsets.resize(k);
  return itemsets;
}

class TopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKPropertyTest, MatchesBruteForcePrefix) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = GetParam(), .num_transactions = 60, .universe = 10,
       .item_prob = 0.4});
  for (size_t k : {1, 5, 20, 100}) {
    auto topk = MineTopK(db, k, /*max_length=*/4);
    ASSERT_TRUE(topk.ok());
    auto expected = ReferenceTopK(db, k, 4);
    EXPECT_EQ(topk->itemsets, expected) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(TopKTest, KthSupportMatchesLastItemset) {
  TransactionDatabase db = MakeRandomDb({.seed = 3});
  auto topk = MineTopK(db, 15);
  ASSERT_TRUE(topk.ok());
  ASSERT_FALSE(topk->itemsets.empty());
  EXPECT_EQ(topk->kth_support, topk->itemsets.back().support);
}

TEST(TopKTest, FewerItemsetsThanK) {
  TransactionDatabase db = MakeDb({{0}, {0, 1}});
  auto topk = MineTopK(db, 1000);
  ASSERT_TRUE(topk.ok());
  // Only {0}, {1}, {0,1} exist.
  EXPECT_EQ(topk->itemsets.size(), 3u);
}

TEST(TopKTest, RejectsZeroK) {
  TransactionDatabase db = MakeDb({{0}});
  EXPECT_FALSE(MineTopK(db, 0).ok());
}

TEST(TopKTest, MaxLengthCap) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}});
  auto topk = MineTopK(db, 100, /*max_length=*/2);
  ASSERT_TRUE(topk.ok());
  for (const auto& fi : topk->itemsets) {
    EXPECT_LE(fi.items.size(), 2u);
  }
  // 3 singletons + 3 pairs.
  EXPECT_EQ(topk->itemsets.size(), 6u);
}

TEST(TopKTest, DeterministicTieBreak) {
  // All items tie: canonical order prefers shorter, then lexicographic.
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1, 2}});
  auto topk = MineTopK(db, 4);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->itemsets.size(), 4u);
  EXPECT_EQ(topk->itemsets[0].items, Itemset({0}));
  EXPECT_EQ(topk->itemsets[1].items, Itemset({1}));
  EXPECT_EQ(topk->itemsets[2].items, Itemset({2}));
  EXPECT_EQ(topk->itemsets[3].items, Itemset({0, 1}));
}

TEST(TopKTest, DescendingSupports) {
  TransactionDatabase db = MakeRandomDb({.seed = 8, .universe = 12});
  auto topk = MineTopK(db, 50);
  ASSERT_TRUE(topk.ok());
  for (size_t i = 1; i < topk->itemsets.size(); ++i) {
    EXPECT_GE(topk->itemsets[i - 1].support, topk->itemsets[i].support);
  }
}

TEST(TopKTest, SupportsAreExact) {
  TransactionDatabase db = MakeRandomDb({.seed = 21, .universe = 12});
  auto topk = MineTopK(db, 30);
  ASSERT_TRUE(topk.ok());
  for (const auto& fi : topk->itemsets) {
    EXPECT_EQ(fi.support, db.SupportOf(fi.items));
  }
}

TEST(TopKTest, DenseDataDoesNotExplode) {
  // 40 near-constant attributes: full mining at low support would emit
  // ~2^40 patterns; top-k must stay output-bounded.
  TransactionDatabase::Builder builder;
  Rng rng(5);
  for (int t = 0; t < 300; ++t) {
    std::vector<Item> txn;
    for (Item i = 0; i < 40; ++i) {
      if (rng.Bernoulli(0.9)) txn.push_back(i);
    }
    builder.AddTransaction(txn);
  }
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());
  auto topk = MineTopK(*db, 200);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->itemsets.size(), 200u);
  // Top patterns on dense data are high-order combinations.
  EXPECT_GT(topk->itemsets.back().items.size(), 1u);
}

TEST(ComputeTopKStatsTest, CountsUniqueItemsPairsTriples) {
  std::vector<FrequentItemset> topk{
      {Itemset({0}), 10}, {Itemset({1}), 9},      {Itemset({0, 1}), 8},
      {Itemset({0, 2}), 7}, {Itemset({0, 1, 2}), 6}, {Itemset({3, 4, 5}), 5},
  };
  TopKStats stats = ComputeTopKStats(topk);
  EXPECT_EQ(stats.lambda, 6u);   // items 0..5
  EXPECT_EQ(stats.lambda2, 2u);  // two pairs
  EXPECT_EQ(stats.lambda3, 2u);  // two triples
  EXPECT_EQ(stats.fk_count, 5u);
}

TEST(ComputeTopKStatsTest, EmptyInput) {
  TopKStats stats = ComputeTopKStats({});
  EXPECT_EQ(stats.lambda, 0u);
  EXPECT_EQ(stats.fk_count, 0u);
}

}  // namespace
}  // namespace privbasis
