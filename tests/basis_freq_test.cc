#include "core/basis_freq.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/vertical_index.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

BasisFreqOptions NoNoise() {
  BasisFreqOptions options;
  options.inject_noise = false;
  return options;
}

TEST(BasisFreqTest, ExactCountsWithoutNoise) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1}, {1, 2}, {0}});
  BasisSet basis({Itemset({0, 1, 2})});
  Rng rng(1);
  auto result = BasisFreq(db, basis, /*k=*/0, 1.0, rng, nullptr, NoNoise());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_candidates, 7u);
  VerticalIndex index(db);
  for (const auto& c : result->topk) {
    EXPECT_NEAR(c.noisy_count,
                static_cast<double>(index.SupportOf(c.items)), 1e-9)
        << c.items.ToString();
  }
}

// Property: without noise, BasisFreq recovers exact supports for every
// candidate itemset on random databases and random (overlapping) bases,
// under both superset-sum implementations.
struct BfCase {
  uint64_t seed;
  bool fast;
};

class BasisFreqExactnessTest : public ::testing::TestWithParam<BfCase> {};

TEST_P(BasisFreqExactnessTest, AllCandidatesExact) {
  const auto& param = GetParam();
  TransactionDatabase db = MakeRandomDb(
      {.seed = param.seed, .num_transactions = 60, .universe = 12});
  Rng basis_rng(param.seed + 100);
  BasisSet basis;
  for (int i = 0; i < 3; ++i) {
    std::vector<Item> items;
    for (Item it = 0; it < 12; ++it) {
      if (basis_rng.Bernoulli(0.3)) items.push_back(it);
    }
    if (items.empty()) items.push_back(static_cast<Item>(i));
    basis.Add(Itemset(std::move(items)));
  }
  BasisFreqOptions options = NoNoise();
  options.use_fast_superset_sum = param.fast;
  Rng rng(param.seed);
  auto result = BasisFreq(db, basis, 0, 1.0, rng, nullptr, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->num_candidates, 0u);
  VerticalIndex index(db);
  for (const auto& c : result->topk) {
    EXPECT_NEAR(c.noisy_count,
                static_cast<double>(index.SupportOf(c.items)), 1e-6)
        << c.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasisFreqExactnessTest,
    ::testing::Values(BfCase{1, true}, BfCase{1, false}, BfCase{2, true},
                      BfCase{2, false}, BfCase{3, true}, BfCase{3, false},
                      BfCase{4, true}, BfCase{4, false}));

TEST(BasisFreqTest, FastAndNaiveSupersetSumsAgreeWithNoise) {
  // With the same RNG seed both variants must produce identical output
  // (noise draws happen before the transform).
  TransactionDatabase db = MakeRandomDb({.seed = 5});
  BasisSet basis({Itemset({0, 1, 2, 3}), Itemset({2, 3, 4})});
  BasisFreqOptions fast, naive;
  naive.use_fast_superset_sum = false;
  Rng rng1(42), rng2(42);
  auto a = BasisFreq(db, basis, 0, 1.0, rng1, nullptr, fast);
  auto b = BasisFreq(db, basis, 0, 1.0, rng2, nullptr, naive);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->topk.size(), b->topk.size());
  for (size_t i = 0; i < a->topk.size(); ++i) {
    EXPECT_EQ(a->topk[i].items, b->topk[i].items);
    EXPECT_NEAR(a->topk[i].noisy_count, b->topk[i].noisy_count, 1e-6);
  }
}

TEST(BasisFreqTest, TopKSelectsHighestExactCountsWithoutNoise) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}, {0, 1, 2}, {2}});
  BasisSet basis({Itemset({0, 1, 2})});
  Rng rng(7);
  auto result = BasisFreq(db, basis, 2, 1.0, rng, nullptr, NoNoise());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->topk.size(), 2u);
  // Counts: {0}=3 {1}=3 {0,1}=3 {2}=2 ... tie-break: shorter, then lex.
  EXPECT_EQ(result->topk[0].items, Itemset({0}));
  EXPECT_EQ(result->topk[1].items, Itemset({1}));
}

TEST(BasisFreqTest, OverlappingBasesFuseToOneEstimatePerItemset) {
  TransactionDatabase db = MakeDb({{0, 1, 2, 3}, {0, 1}, {2, 3}});
  BasisSet basis({Itemset({0, 1, 2}), Itemset({1, 2, 3})});
  Rng rng(9);
  auto result = BasisFreq(db, basis, 0, 1.0, rng, nullptr, NoNoise());
  ASSERT_TRUE(result.ok());
  // Candidates: subsets of either basis, deduplicated: 7 + 7 − 3 = 11.
  EXPECT_EQ(result->num_candidates, 11u);
  size_t occurrences = 0;
  for (const auto& c : result->topk) {
    if (c.items == Itemset({1, 2})) ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(BasisFreqTest, NoiseMagnitudeMatchesEquation4) {
  // Single basis of length l, itemset of size x: empirical error variance
  // of the noisy count over many runs ≈ 2^{l−x+1}·(w/ε)².
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1}, {2}});
  BasisSet basis({Itemset({0, 1, 2})});
  const double epsilon = 1.0;
  const Itemset target({0, 1});
  const double exact = 2.0;
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    auto result = BasisFreq(db, basis, 0, epsilon, rng);
    ASSERT_TRUE(result.ok());
    for (const auto& c : result->topk) {
      if (c.items == target) {
        double err = c.noisy_count - exact;
        sum += err;
        sum_sq += err * err;
      }
    }
  }
  double mean = sum / trials;
  double var = sum_sq / trials - mean * mean;
  // 2 bins summed, each Lap(1): variance 2·2 = 4 (count domain).
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(BasisFreqTest, ChargesAccountant) {
  TransactionDatabase db = MakeDb({{0}});
  BasisSet basis({Itemset({0})});
  PrivacyAccountant accountant(1.0);
  Rng rng(13);
  auto result = BasisFreq(db, basis, 1, 0.6, rng, &accountant);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(accountant.spent_epsilon(), 0.6, 1e-12);
  // Second call exceeding the budget must fail.
  auto over = BasisFreq(db, basis, 1, 0.6, rng, &accountant);
  EXPECT_FALSE(over.ok());
}

TEST(BasisFreqTest, RejectsExcessiveBasisLength) {
  TransactionDatabase db = MakeDb({{0}}, /*universe=*/30);
  std::vector<Item> big;
  for (Item i = 0; i < 25; ++i) big.push_back(i);
  BasisSet basis({Itemset(std::move(big))});
  Rng rng(15);
  EXPECT_FALSE(BasisFreq(db, basis, 1, 1.0, rng).ok());
}

TEST(BasisFreqTest, RejectsNonPositiveEpsilon) {
  TransactionDatabase db = MakeDb({{0}});
  BasisSet basis({Itemset({0})});
  Rng rng(17);
  EXPECT_FALSE(BasisFreq(db, basis, 1, 0.0, rng).ok());
}

TEST(BasisFreqTest, EmptyBasisSetYieldsNothing) {
  TransactionDatabase db = MakeDb({{0}});
  Rng rng(19);
  auto result = BasisFreq(db, BasisSet(), 5, 1.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->topk.empty());
  EXPECT_EQ(result->num_candidates, 0u);
}

TEST(BasisFreqTest, KLimitsOutput) {
  TransactionDatabase db = MakeRandomDb({.seed = 6});
  BasisSet basis({Itemset({0, 1, 2, 3, 4})});
  Rng rng(21);
  auto result = BasisFreq(db, basis, 3, 1.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->topk.size(), 3u);
  EXPECT_EQ(result->num_candidates, 31u);
}

TEST(BasisFreqTest, NoisyCountsSortedDescending) {
  TransactionDatabase db = MakeRandomDb({.seed = 7});
  BasisSet basis({Itemset({0, 1, 2, 3})});
  Rng rng(23);
  auto result = BasisFreq(db, basis, 10, 0.5, rng);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->topk.size(); ++i) {
    EXPECT_GE(result->topk[i - 1].noisy_count, result->topk[i].noisy_count);
  }
}

}  // namespace
}  // namespace privbasis
