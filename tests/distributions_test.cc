#include "common/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace privbasis {
namespace {

TEST(LaplaceTest, ZeroMean) {
  Rng rng(1);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += SampleLaplace(rng, 2.0);
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

// Variance of Lap(b) is 2b²; sweep several scales.
class LaplaceVarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceVarianceTest, MatchesTwoBSquared) {
  const double scale = GetParam();
  Rng rng(static_cast<uint64_t>(scale * 100) + 3);
  double sum = 0, sum_sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double x = SampleLaplace(rng, scale);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  double expected = 2.0 * scale * scale;
  EXPECT_NEAR(var, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceVarianceTest,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0));

TEST(LaplaceTest, CdfInverseRoundTrip) {
  for (double u : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    for (double scale : {0.5, 1.0, 4.0}) {
      double x = LaplaceInverseCdf(u, scale);
      EXPECT_NEAR(LaplaceCdf(x, scale), u, 1e-12);
    }
  }
}

TEST(LaplaceTest, CdfSymmetry) {
  for (double x : {0.1, 0.5, 1.0, 2.5}) {
    EXPECT_NEAR(LaplaceCdf(x, 1.0) + LaplaceCdf(-x, 1.0), 1.0, 1e-12);
  }
  EXPECT_NEAR(LaplaceCdf(0.0, 1.0), 0.5, 1e-12);
}

TEST(LaplaceTest, EmpiricalCdfMatches) {
  Rng rng(5);
  const int n = 200000;
  int below_one = 0;
  for (int i = 0; i < n; ++i) {
    if (SampleLaplace(rng, 1.0) < 1.0) ++below_one;
  }
  EXPECT_NEAR(below_one / static_cast<double>(n), LaplaceCdf(1.0, 1.0), 0.005);
}

TEST(ExponentialTest, MeanIsInverseRate) {
  Rng rng(7);
  for (double rate : {0.5, 1.0, 4.0}) {
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += SampleExponential(rng, rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.02 / rate + 0.01);
  }
}

TEST(ExponentialTest, NonNegative) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SampleExponential(rng, 1.0), 0.0);
  }
}

TEST(GumbelTest, MeanIsEulerGamma) {
  Rng rng(11);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += SampleGumbel(rng);
  EXPECT_NEAR(sum / n, 0.5772156649, 0.01);
}

TEST(GumbelTest, VarianceIsPiSquaredOverSix) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double g = SampleGumbel(rng);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(var, M_PI * M_PI / 6.0, 0.05);
}

TEST(SampleDiscreteTest, RespectsWeights) {
  Rng rng(15);
  std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> histogram(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[SampleDiscrete(rng, weights)];
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(histogram[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(histogram[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(SampleDiscreteTest, ZeroWeightNeverChosen) {
  Rng rng(17);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(SampleDiscrete(rng, weights), 1u);
  }
}

// Zipf sampling frequencies must match the pmf across n and s.
struct ZipfCase {
  uint64_t n;
  double s;
};

class ZipfTest : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfTest, EmpiricalMatchesPmf) {
  const auto [n, s] = GetParam();
  ZipfDistribution zipf(n, s);
  Rng rng(19);
  const int draws = 300000;
  std::vector<int> histogram(std::min<uint64_t>(n, 16), 0);
  for (int i = 0; i < draws; ++i) {
    uint64_t r = zipf.Sample(rng);
    ASSERT_LT(r, n);
    if (r < histogram.size()) ++histogram[r];
  }
  for (size_t r = 0; r < histogram.size(); ++r) {
    double expected = zipf.Pmf(r);
    double observed = histogram[r] / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.012 + expected * 0.05)
        << "rank " << r << " n=" << n << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfTest,
    ::testing::Values(ZipfCase{10, 1.0}, ZipfCase{100, 0.6},
                      ZipfCase{100, 1.2}, ZipfCase{100000, 1.05},
                      ZipfCase{1000000, 0.8}));

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(500, 1.1);
  double total = 0;
  for (uint64_t i = 0; i < 500; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(21);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, MonotonePmf) {
  ZipfDistribution zipf(1000, 0.9);
  for (uint64_t i = 0; i + 1 < 50; ++i) {
    EXPECT_GT(zipf.Pmf(i), zipf.Pmf(i + 1));
  }
}

TEST(SampleDistinctTest, ProducesDistinctInRange) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    auto picks = SampleDistinct(rng, 50, 10);
    std::set<uint64_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    for (uint64_t p : picks) EXPECT_LT(p, 50u);
  }
}

TEST(SampleDistinctTest, FullUniverse) {
  Rng rng(25);
  auto picks = SampleDistinct(rng, 8, 8);
  std::set<uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SampleDistinctTest, UniformMarginals) {
  Rng rng(27);
  std::vector<int> counts(10, 0);
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    for (uint64_t p : SampleDistinct(rng, 10, 3)) ++counts[p];
  }
  // Each element appears with probability 3/10 per trial.
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials), 0.3, 0.01);
  }
}

}  // namespace
}  // namespace privbasis
