#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "data/vertical_index.h"

namespace privbasis {
namespace {

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticProfile profile = SyntheticProfile::Mushroom(0.05);
  auto a = GenerateDataset(profile, 7);
  auto b = GenerateDataset(profile, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumTransactions(), b->NumTransactions());
  for (size_t t = 0; t < a->NumTransactions(); ++t) {
    auto ta = a->Transaction(t);
    auto tb = b->Transaction(t);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticProfile profile = SyntheticProfile::Mushroom(0.05);
  auto a = GenerateDataset(profile, 1);
  auto b = GenerateDataset(profile, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  size_t diffs = 0;
  for (size_t t = 0; t < a->NumTransactions(); ++t) {
    if (a->Transaction(t).size() != b->Transaction(t).size() ||
        !std::equal(a->Transaction(t).begin(), a->Transaction(t).end(),
                    b->Transaction(t).begin())) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, a->NumTransactions() / 2);
}

TEST(SyntheticTest, CategoricalTransactionsHaveOneItemPerAttribute) {
  SyntheticProfile profile = SyntheticProfile::Mushroom(0.02);
  auto db = GenerateDataset(profile, 3);
  ASSERT_TRUE(db.ok());
  size_t attrs = profile.attributes.size();
  for (size_t t = 0; t < db->NumTransactions(); ++t) {
    EXPECT_EQ(db->Transaction(t).size(), attrs);
  }
}

TEST(SyntheticTest, CategoricalItemsStayInAttributeRanges) {
  SyntheticProfile profile = SyntheticProfile::PumsbStar(0.01);
  auto db = GenerateDataset(profile, 5);
  ASSERT_TRUE(db.ok());
  // Attribute a's items occupy [offset, offset + num_values).
  std::vector<Item> offsets;
  Item offset = 0;
  for (const auto& attr : profile.attributes) {
    offsets.push_back(offset);
    offset += attr.num_values;
  }
  for (size_t t = 0; t < std::min<size_t>(db->NumTransactions(), 200); ++t) {
    auto txn = db->Transaction(t);
    for (size_t a = 0; a < txn.size(); ++a) {
      EXPECT_GE(txn[a], offsets[a]);
      EXPECT_LT(txn[a], offsets[a] + profile.attributes[a].num_values);
    }
  }
}

TEST(SyntheticTest, MarketBasketRespectsUniverse) {
  SyntheticProfile profile = SyntheticProfile::Retail(0.02);
  auto db = GenerateDataset(profile, 11);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->UniverseSize(), profile.universe_size);
}

TEST(SyntheticTest, PlantedPatternBoostsSupport) {
  // A pattern of rare items planted at 10% must have support near 10%·N,
  // vastly above the chance co-occurrence of three rank-1000 items.
  SyntheticProfile profile;
  profile.name = "planted";
  profile.kind = SyntheticProfile::Kind::kMarketBasket;
  profile.num_transactions = 20000;
  profile.universe_size = 5000;
  profile.zipf_exponent = 1.1;
  profile.mean_transaction_length = 6;
  profile.patterns = {{{1000, 1001, 1002}, 0.10, 0.0}};
  auto db = GenerateDataset(profile, 13);
  ASSERT_TRUE(db.ok());
  VerticalIndex index(*db);
  double freq = index.FrequencyOf(Itemset({1000, 1001, 1002}));
  EXPECT_NEAR(freq, 0.10, 0.01);
}

TEST(SyntheticTest, HeadMixtureFlattensTop) {
  // With a flat head, top-rank frequencies are much closer to each other
  // than pure Zipf would give.
  SyntheticProfile profile;
  profile.name = "headed";
  profile.kind = SyntheticProfile::Kind::kMarketBasket;
  profile.num_transactions = 20000;
  profile.universe_size = 100000;
  profile.zipf_exponent = 1.05;
  profile.mean_transaction_length = 20;
  profile.head_weight = 0.5;
  profile.head_size = 100;
  profile.head_exponent = 0.3;
  auto db = GenerateDataset(profile, 17);
  ASSERT_TRUE(db.ok());
  double f0 = db->ItemFrequency(0);
  double f50 = db->ItemFrequency(50);
  ASSERT_GT(f50, 0.0);
  EXPECT_LT(f0 / f50, 6.0);  // pure Zipf(1.05) ratio would be ~51^1.05 ≈ 62
}

TEST(SyntheticTest, ScaleMultipliesTransactionCount) {
  auto half = SyntheticProfile::Kosarak(0.5);
  auto full = SyntheticProfile::Kosarak(1.0);
  EXPECT_NEAR(static_cast<double>(half.num_transactions) /
                  static_cast<double>(full.num_transactions),
              0.5, 0.01);
  EXPECT_EQ(half.universe_size, full.universe_size);
}

TEST(SyntheticTest, TotalUniverseSizeCategorical) {
  auto profile = SyntheticProfile::Mushroom();
  uint32_t total = 0;
  for (const auto& a : profile.attributes) total += a.num_values;
  EXPECT_EQ(profile.TotalUniverseSize(), total);
  EXPECT_NEAR(total, 119, 5);  // paper: |I| = 119
}

TEST(SyntheticTest, RejectsZeroTransactions) {
  SyntheticProfile profile;
  profile.kind = SyntheticProfile::Kind::kMarketBasket;
  profile.num_transactions = 0;
  profile.universe_size = 10;
  EXPECT_FALSE(GenerateDataset(profile, 1).ok());
}

TEST(SyntheticTest, RejectsPatternOutsideUniverse) {
  SyntheticProfile profile;
  profile.kind = SyntheticProfile::Kind::kMarketBasket;
  profile.num_transactions = 10;
  profile.universe_size = 10;
  profile.patterns = {{{5, 20}, 0.1, 0.0}};
  EXPECT_FALSE(GenerateDataset(profile, 1).ok());
}

TEST(SyntheticTest, RejectsSingletonPattern) {
  SyntheticProfile profile;
  profile.kind = SyntheticProfile::Kind::kMarketBasket;
  profile.num_transactions = 10;
  profile.universe_size = 10;
  profile.patterns = {{{5}, 0.1, 0.0}};
  EXPECT_FALSE(GenerateDataset(profile, 1).ok());
}

TEST(SyntheticTest, RejectsCategoricalWithoutAttributes) {
  SyntheticProfile profile;
  profile.kind = SyntheticProfile::Kind::kCategorical;
  profile.num_transactions = 10;
  EXPECT_FALSE(GenerateDataset(profile, 1).ok());
}

TEST(SyntheticTest, AllPaperProfilesPresent) {
  auto profiles = SyntheticProfile::AllPaperProfiles(0.01);
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "retail");
  EXPECT_EQ(profiles[1].name, "mushroom");
  EXPECT_EQ(profiles[2].name, "pumsb-star");
  EXPECT_EQ(profiles[3].name, "kosarak");
  EXPECT_EQ(profiles[4].name, "aol");
}

TEST(SyntheticTest, DominantValueIsModal) {
  // At 2% scale the mushroom attribute-0 dominant value (p=0.995) must
  // dominate empirically.
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.05), 23);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db->ItemFrequency(0), 0.97);
}

}  // namespace
}  // namespace privbasis
