#include "core/error_variance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privbasis {
namespace {

TEST(VarianceUnitsTest, PowersOfTwo) {
  // nv = 2^{|Bi| − |X|} (Algorithm 1, line 16).
  EXPECT_EQ(VarianceUnits(3, 3), 1.0);
  EXPECT_EQ(VarianceUnits(3, 2), 2.0);
  EXPECT_EQ(VarianceUnits(3, 1), 4.0);
  EXPECT_EQ(VarianceUnits(10, 1), 512.0);
  EXPECT_EQ(VarianceUnits(0, 0), 1.0);
}

TEST(CombineVarianceUnitsTest, TwoEstimates) {
  // v1·v2/(v1+v2).
  std::vector<double> units{2.0, 2.0};
  EXPECT_NEAR(CombineVarianceUnits(units), 1.0, 1e-12);
  units = {1.0, 3.0};
  EXPECT_NEAR(CombineVarianceUnits(units), 0.75, 1e-12);
}

TEST(CombineVarianceUnitsTest, SingleEstimateUnchanged) {
  std::vector<double> units{7.0};
  EXPECT_NEAR(CombineVarianceUnits(units), 7.0, 1e-12);
}

TEST(CombineVarianceUnitsTest, EmptyIsInfinite) {
  EXPECT_TRUE(std::isinf(CombineVarianceUnits({})));
}

TEST(CombineVarianceUnitsTest, OrderIndependent) {
  std::vector<double> a{1.0, 2.0, 4.0};
  std::vector<double> b{4.0, 1.0, 2.0};
  EXPECT_NEAR(CombineVarianceUnits(a), CombineVarianceUnits(b), 1e-12);
}

TEST(CombineVarianceUnitsTest, PairwiseFoldMatchesHarmonic) {
  // Folding v <- v·u/(v+u) pairwise equals the harmonic composition.
  std::vector<double> units{2.0, 3.0, 6.0};
  double folded = units[0];
  for (size_t i = 1; i < units.size(); ++i) {
    folded = folded * units[i] / (folded + units[i]);
  }
  EXPECT_NEAR(CombineVarianceUnits(units), folded, 1e-12);
  EXPECT_NEAR(folded, 1.0, 1e-12);  // 1/(1/2+1/3+1/6)
}

TEST(CombineVarianceUnitsTest, FusionNeverWorseThanBest) {
  std::vector<double> units{5.0, 100.0};
  double combined = CombineVarianceUnits(units);
  EXPECT_LT(combined, 5.0);
}

TEST(AverageCaseEvTest, SingleBasisSingleQuery) {
  BasisSet basis({Itemset({0, 1, 2})});
  std::vector<Itemset> queries{Itemset({0})};
  // w=1: w²·2^{3−1} = 4.
  EXPECT_NEAR(AverageCaseEv(basis, queries), 4.0, 1e-12);
}

TEST(AverageCaseEvTest, WidthSquaredScaling) {
  // Same geometry, doubled width: EV scales by w².
  BasisSet one({Itemset({0, 1})});
  BasisSet two({Itemset({0, 1}), Itemset({2, 3})});
  std::vector<Itemset> queries{Itemset({0})};
  EXPECT_NEAR(AverageCaseEv(two, queries) / AverageCaseEv(one, queries), 4.0,
              1e-12);
}

TEST(AverageCaseEvTest, MultiCoverageReducesEv) {
  // A query covered by two bases fuses estimates and beats single
  // coverage at the same width.
  BasisSet overlap({Itemset({0, 1}), Itemset({0, 2})});
  BasisSet disjoint({Itemset({0, 1}), Itemset({2, 3})});
  std::vector<Itemset> queries{Itemset({0})};
  EXPECT_LT(AverageCaseEv(overlap, queries),
            AverageCaseEv(disjoint, queries));
}

TEST(AverageCaseEvTest, UncoveredQueryIsInfinite) {
  BasisSet basis({Itemset({0, 1})});
  std::vector<Itemset> queries{Itemset({5})};
  EXPECT_TRUE(std::isinf(AverageCaseEv(basis, queries)));
}

TEST(AverageCaseEvTest, EmptyQueriesZero) {
  BasisSet basis({Itemset({0})});
  EXPECT_EQ(AverageCaseEv(basis, {}), 0.0);
}

TEST(AverageCaseEvTest, TripleGroupingBeatsSingletons) {
  // §4.2: for k individual items, bases of size 3 reduce error variance
  // vs one singleton basis per item (2^{l−1}/l² minimal at l = 3).
  std::vector<Itemset> queries;
  std::vector<Itemset> singleton_bases;
  for (Item i = 0; i < 12; ++i) {
    queries.push_back(Itemset({i}));
    singleton_bases.push_back(Itemset({i}));
  }
  std::vector<Itemset> triple_bases;
  for (Item i = 0; i < 12; i += 3) {
    triple_bases.push_back(Itemset({i, static_cast<Item>(i + 1),
                                    static_cast<Item>(i + 2)}));
  }
  double ev_singleton = AverageCaseEv(BasisSet(singleton_bases), queries);
  double ev_triples = AverageCaseEv(BasisSet(triple_bases), queries);
  // Paper: ratio (2^{3−1}/3²) = 4/9 of the singleton EV.
  EXPECT_NEAR(ev_triples / ev_singleton, 4.0 / 9.0, 1e-9);
}

TEST(WorstCaseEvTest, Formula) {
  BasisSet basis({Itemset({0, 1, 2}), Itemset({3})});
  // w²·2^l = 4·8.
  EXPECT_NEAR(WorstCaseEv(basis), 32.0, 1e-12);
}

TEST(EvUnitsToFrequencyVarianceTest, MatchesEquation4) {
  // EV[nf_i(X)] = 2^{l−|X|+1}·w²/(ε²N²): units = w²·2^{l−|X|},
  // conversion multiplies by 2/(ε²N²).
  const double epsilon = 0.5;
  const uint64_t n = 1000;
  const double w = 3, l = 4, x_len = 2;
  double units = w * w * VarianceUnits(l, x_len);
  double expected = std::pow(2.0, l - x_len + 1) * w * w /
                    (epsilon * epsilon * n * n);
  EXPECT_NEAR(EvUnitsToFrequencyVariance(units, epsilon, n), expected, 1e-15);
}

}  // namespace
}  // namespace privbasis
