#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace privbasis {
namespace {

TEST(EffectiveThreadsTest, ExplicitRequestWins) {
  EXPECT_EQ(EffectiveThreads(5), 5u);
  EXPECT_EQ(EffectiveThreads(1), 1u);
  // Clamped to the global ceiling.
  EXPECT_EQ(EffectiveThreads(100000), kMaxThreads);
  // 0 resolves to the env/hardware default, always at least 1.
  EXPECT_GE(EffectiveThreads(0), 1u);
  EXPECT_LE(EffectiveThreads(0), kMaxThreads);
}

TEST(ThreadPoolTest, ParallelForCoversEveryElementOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7, 4,
                   [&](size_t begin, size_t end, size_t) {
                     for (size_t i = begin; i < end; ++i) ++hits[i];
                   });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ShardDecompositionIndependentOfParallelism) {
  // Shard boundaries must depend only on (range, grain): record them at
  // parallelism 1 and 8 and compare.
  auto shards_at = [](size_t parallelism) {
    ThreadPool pool(4);
    std::mutex mu;
    std::vector<std::tuple<size_t, size_t, size_t>> shards;
    pool.ParallelFor(3, 1003, 13, parallelism,
                     [&](size_t begin, size_t end, size_t shard) {
                       std::lock_guard<std::mutex> lock(mu);
                       shards.emplace_back(begin, end, shard);
                     });
    std::sort(shards.begin(), shards.end());
    return shards;
  };
  EXPECT_EQ(shards_at(1), shards_at(8));
}

TEST(ThreadPoolTest, SequentialParallelismRunsInShardOrder) {
  ThreadPool pool(2);
  std::vector<size_t> order;
  pool.ParallelFor(0, 100, 10, 1, [&](size_t, size_t, size_t shard) {
    order.push_back(shard);  // no lock needed: parallelism 1
  });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, RethrowsShardException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1, 4,
                       [&](size_t begin, size_t, size_t) {
                         if (begin == 57) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(0, 8, 1, 4, [&](size_t, size_t, size_t) {
    uint64_t local = 0;
    // Inner region on a worker thread: must complete inline without
    // deadlocking on the shared queue.
    pool.ParallelFor(0, 100, 10, 4,
                     [&](size_t begin, size_t end, size_t) {
                       for (size_t i = begin; i < end; ++i) local += i;
                     });
    total += local;
  });
  EXPECT_EQ(total.load(), 8u * (99u * 100u / 2));
}

TEST(ThreadPoolTest, RunAllExecutesEveryTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> ran(17);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < ran.size(); ++i) {
    tasks.push_back([&ran, i] { ++ran[i]; });
  }
  pool.RunAll(tasks, 4);
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPoolTest, StressManyRegions) {
  // Hammer one pool with many variously-shaped regions and verify the
  // reduction every time; catches lost shards, double execution, and
  // completion-signal races.
  ThreadPool pool(4);
  Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    const size_t n = 1 + rng.UniformInt(5000);
    const size_t grain = 1 + rng.UniformInt(200);
    const size_t parallelism = 1 + rng.UniformInt(8);
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, n, grain, parallelism,
                     [&](size_t begin, size_t end, size_t) {
                       uint64_t local = 0;
                       for (size_t i = begin; i < end; ++i) local += i + 1;
                       sum += local;
                     });
    ASSERT_EQ(sum.load(), static_cast<uint64_t>(n) * (n + 1) / 2)
        << "n=" << n << " grain=" << grain << " par=" << parallelism;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  uint64_t sum = 0;  // single-threaded by construction: no atomics needed
  pool.ParallelFor(0, 1000, 37, 8, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 999u * 1000u / 2);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, 1, 4, [&](size_t, size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, TrySubmitShedsBeyondBoundedDepth) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Park the only worker so queued tasks stay queued.
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
      ++ran;
    });
    // Wait until the worker has dequeued the blocker.
    while (pool.QueueDepth() != 0) std::this_thread::yield();
    EXPECT_TRUE(pool.TrySubmit([&] { ++ran; }, 2));
    EXPECT_TRUE(pool.TrySubmit([&] { ++ran; }, 2));
    EXPECT_EQ(pool.QueueDepth(), 2u);
    // Queue at the bound: the third offer is shed, not queued.
    EXPECT_FALSE(pool.TrySubmit([&] { ++ran; }, 2));
    EXPECT_EQ(pool.QueueDepth(), 2u);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  }
  // Accepted tasks keep the never-dropped guarantee (the destructor
  // drains the queue); the shed task never ran.
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, TrySubmitUnblockedQueueAccepts) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    // An idle pool drains as fast as we submit: a generous bound never
    // sheds, and every accepted task runs exactly once.
    EXPECT_TRUE(pool.TrySubmit([&] { ++ran; }, 64));
  }
  while (ran.load() != 32) std::this_thread::yield();
}

TEST(RngForkStreamTest, DeterministicAndNonAdvancing) {
  Rng parent(42);
  Rng a = parent.ForkStream(3);
  Rng b = parent.ForkStream(3);
  Rng c = parent.ForkStream(4);
  // Same stream id → identical child; different id → different stream.
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  // ForkStream is const: the parent sequence is unchanged.
  Rng fresh(42);
  EXPECT_EQ(parent.Next(), fresh.Next());
}

}  // namespace
}  // namespace privbasis
