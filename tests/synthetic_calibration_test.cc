// Calibration guard: the synthetic profiles must stay in the qualitative
// regime of the paper's Table 2(a) (see DESIGN.md §2.2). Run at reduced
// scale so the suite stays fast; bands are loose because the statistics
// are scale-sensitive near the top-k boundary.
#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "fim/topk.h"

namespace privbasis {
namespace {

struct Band {
  SyntheticProfile profile;
  size_t k;
  uint32_t lambda_min, lambda_max;
  double avg_len_min, avg_len_max;
};

class CalibrationTest : public ::testing::TestWithParam<Band> {};

TEST_P(CalibrationTest, RegimeMatchesPaper) {
  const Band& band = GetParam();
  auto db = GenerateDataset(band.profile, 42);
  ASSERT_TRUE(db.ok());
  DatasetStats stats = ComputeDatasetStats(*db);
  EXPECT_GE(stats.avg_transaction_len, band.avg_len_min);
  EXPECT_LE(stats.avg_transaction_len, band.avg_len_max);

  auto topk = MineTopK(*db, band.k);
  ASSERT_TRUE(topk.ok());
  TopKStats ts = ComputeTopKStats(topk->itemsets);
  EXPECT_GE(ts.lambda, band.lambda_min) << band.profile.name;
  EXPECT_LE(ts.lambda, band.lambda_max) << band.profile.name;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CalibrationTest,
    ::testing::Values(
        // mushroom at 50% scale: dense single-basis regime, λ near 11.
        Band{SyntheticProfile::Mushroom(0.5), 100, 8, 16, 23.5, 24.5},
        // pumsb-star at 20% scale: λ below the single-basis cap + margin.
        Band{SyntheticProfile::PumsbStar(0.2), 200, 10, 22, 49.5, 50.5},
        // retail at 30% scale: the larger-λ multi-basis regime.
        Band{SyntheticProfile::Retail(0.3), 100, 20, 70, 10.0, 12.5},
        // kosarak at 5% scale: multi-basis with rich pair structure.
        Band{SyntheticProfile::Kosarak(0.05), 200, 25, 80, 7.0, 8.6}),
    [](const auto& param_info) {
      return param_info.param.profile.name == "pumsb-star"
                 ? std::string("pumsb_star")
                 : param_info.param.profile.name;
    });

TEST(CalibrationTest, MushroomDenseRegimeHasHighOrderTopK) {
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.5), 42);
  ASSERT_TRUE(db.ok());
  auto topk = MineTopK(*db, 100);
  ASSERT_TRUE(topk.ok());
  size_t high_order = 0;
  for (const auto& fi : topk->itemsets) {
    high_order += fi.items.size() >= 3;
  }
  // Dense data: a large share of the top-100 are triples or bigger.
  EXPECT_GE(high_order, 25u);
}

TEST(CalibrationTest, AolSingletonDominatedRegime) {
  // AOL at 3% scale: top-k dominated by singletons, no triples.
  auto db = GenerateDataset(SyntheticProfile::Aol(0.03), 42);
  ASSERT_TRUE(db.ok());
  auto topk = MineTopK(*db, 200);
  ASSERT_TRUE(topk.ok());
  TopKStats ts = ComputeTopKStats(topk->itemsets);
  EXPECT_GE(ts.lambda, 140u);
  EXPECT_EQ(ts.lambda3, 0u);
}

}  // namespace
}  // namespace privbasis
