#include <gtest/gtest.h>

#include "fim/apriori.h"
#include "fim/brute_force.h"
#include "fim/fpgrowth.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(BruteForceTest, TextbookExample) {
  // Classic market-basket example with obvious frequent itemsets.
  TransactionDatabase db = MakeDb({
      {0, 1, 2},
      {0, 1},
      {0, 2},
      {1, 2},
      {0, 1, 2},
  });
  MiningOptions options{.min_support = 3, .max_length = 3};
  auto result = MineBruteForce(db, options);
  ASSERT_TRUE(result.ok());
  // Supports: {0}=4 {1}=4 {2}=4 {0,1}=3 {0,2}=3 {1,2}=3 {0,1,2}=2.
  EXPECT_EQ(result->itemsets.size(), 6u);
  EXPECT_EQ(result->itemsets.front().support, 4u);
}

TEST(BruteForceTest, RequiresLengthCap) {
  TransactionDatabase db = MakeDb({{0}});
  EXPECT_FALSE(MineBruteForce(db, {.min_support = 1, .max_length = 0}).ok());
}

TEST(BruteForceTest, RejectsZeroSupport) {
  TransactionDatabase db = MakeDb({{0}});
  EXPECT_FALSE(MineBruteForce(db, {.min_support = 0, .max_length = 2}).ok());
}

TEST(AprioriTest, MatchesBruteForceOnExample) {
  TransactionDatabase db = MakeDb({
      {0, 1, 3}, {1, 2}, {0, 1, 2}, {0, 2}, {0, 1, 2, 3},
  });
  MiningOptions options{.min_support = 2, .max_length = 4};
  auto brute = MineBruteForce(db, options);
  auto apriori = MineApriori(db, options);
  ASSERT_TRUE(brute.ok() && apriori.ok());
  EXPECT_EQ(apriori->itemsets, brute->itemsets);
}

TEST(FpGrowthTest, MatchesBruteForceOnExample) {
  TransactionDatabase db = MakeDb({
      {0, 1, 3}, {1, 2}, {0, 1, 2}, {0, 2}, {0, 1, 2, 3},
  });
  MiningOptions options{.min_support = 2, .max_length = 4};
  auto brute = MineBruteForce(db, options);
  auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(brute.ok() && fp.ok());
  EXPECT_EQ(fp->itemsets, brute->itemsets);
}

// The central miner-agreement property: Apriori == FP-Growth == brute
// force across randomized databases, thresholds, and length caps.
struct MinerAgreementCase {
  uint64_t seed;
  uint64_t min_support;
  size_t max_length;
};

class MinerAgreementTest
    : public ::testing::TestWithParam<MinerAgreementCase> {};

TEST_P(MinerAgreementTest, AllThreeAgree) {
  const auto& param = GetParam();
  TransactionDatabase db = MakeRandomDb(
      {.seed = param.seed, .num_transactions = 70, .universe = 11,
       .item_prob = 0.35});
  MiningOptions options{.min_support = param.min_support,
                        .max_length = param.max_length};
  auto brute = MineBruteForce(db, options);
  auto apriori = MineApriori(db, options);
  auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(brute.ok() && apriori.ok() && fp.ok());
  EXPECT_EQ(apriori->itemsets, brute->itemsets) << "apriori vs brute";
  EXPECT_EQ(fp->itemsets, brute->itemsets) << "fpgrowth vs brute";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerAgreementTest,
    ::testing::Values(
        MinerAgreementCase{1, 2, 3}, MinerAgreementCase{2, 5, 3},
        MinerAgreementCase{3, 10, 4}, MinerAgreementCase{4, 3, 2},
        MinerAgreementCase{5, 7, 5}, MinerAgreementCase{6, 15, 3},
        MinerAgreementCase{7, 2, 1}, MinerAgreementCase{8, 4, 4},
        MinerAgreementCase{9, 20, 2}, MinerAgreementCase{10, 1, 2}));

TEST(MinerAgreementTest, UnboundedLengthAprioriVsFpGrowth) {
  // Brute force needs a cap; Apriori and FP-Growth also agree unbounded.
  TransactionDatabase db = MakeRandomDb({.seed = 99, .universe = 9});
  MiningOptions options{.min_support = 5};
  auto apriori = MineApriori(db, options);
  auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(apriori.ok() && fp.ok());
  EXPECT_EQ(apriori->itemsets, fp->itemsets);
}

TEST(FpGrowthTest, MaxLengthCapRespected) {
  TransactionDatabase db = MakeRandomDb({.seed = 12});
  MiningOptions options{.min_support = 2, .max_length = 2};
  auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(fp.ok());
  for (const auto& fi : fp->itemsets) {
    EXPECT_LE(fi.items.size(), 2u);
  }
}

TEST(FpGrowthTest, MinSupportBoundary) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}, {0}});
  auto fp = MineFpGrowth(db, {.min_support = 2});
  ASSERT_TRUE(fp.ok());
  // {0}=3, {1}=2, {0,1}=2 all qualify at support 2.
  EXPECT_EQ(fp->itemsets.size(), 3u);
  auto fp3 = MineFpGrowth(db, {.min_support = 3});
  ASSERT_TRUE(fp3.ok());
  EXPECT_EQ(fp3->itemsets.size(), 1u);
  EXPECT_EQ(fp3->itemsets[0].items, Itemset({0}));
}

TEST(FpGrowthTest, TruncatesOnMaxPatterns) {
  TransactionDatabase db = MakeRandomDb({.seed = 31, .item_prob = 0.5});
  MiningOptions options{.min_support = 1, .max_patterns = 10};
  auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(fp.ok());
  EXPECT_TRUE(fp->aborted);
  // Truncation contract: exactly max_patterns patterns, each exact.
  ASSERT_EQ(fp->itemsets.size(), 10u);
  for (const auto& fi : fp->itemsets) {
    EXPECT_EQ(fi.support, db.SupportOf(fi.items));
  }
}

TEST(AprioriTest, TruncatesOnMaxPatterns) {
  TransactionDatabase db = MakeRandomDb({.seed = 31, .item_prob = 0.5});
  MiningOptions options{.min_support = 1, .max_patterns = 10};
  auto ap = MineApriori(db, options);
  ASSERT_TRUE(ap.ok());
  EXPECT_TRUE(ap->aborted);
  ASSERT_EQ(ap->itemsets.size(), 10u);
  for (const auto& fi : ap->itemsets) {
    EXPECT_EQ(fi.support, db.SupportOf(fi.items));
  }
}

TEST(FpGrowthTest, EmptyDatabase) {
  TransactionDatabase db = MakeDb({}, /*universe=*/5);
  auto fp = MineFpGrowth(db, {.min_support = 1});
  ASSERT_TRUE(fp.ok());
  EXPECT_TRUE(fp->itemsets.empty());
}

TEST(FpGrowthTest, SupportsAreExact) {
  TransactionDatabase db = MakeRandomDb({.seed = 44, .universe = 10});
  auto fp = MineFpGrowth(db, {.min_support = 3});
  ASSERT_TRUE(fp.ok());
  ASSERT_FALSE(fp->itemsets.empty());
  for (const auto& fi : fp->itemsets) {
    EXPECT_EQ(fi.support, db.SupportOf(fi.items)) << fi.items.ToString();
  }
}

TEST(SortCanonicalTest, OrdersBySupportLengthLex) {
  std::vector<FrequentItemset> items{
      {Itemset({1, 2}), 5},
      {Itemset({0}), 5},
      {Itemset({3}), 9},
      {Itemset({1, 3}), 5},
  };
  SortCanonical(&items);
  EXPECT_EQ(items[0].items, Itemset({3}));     // support 9
  EXPECT_EQ(items[1].items, Itemset({0}));     // support 5, length 1
  EXPECT_EQ(items[2].items, Itemset({1, 2}));  // support 5, lex smaller
  EXPECT_EQ(items[3].items, Itemset({1, 3}));
}

}  // namespace
}  // namespace privbasis
