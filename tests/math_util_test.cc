#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace privbasis {
namespace {

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-8);
}

TEST(LogChooseTest, MatchesDirect) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogChoose(10, 5), std::log(252.0), 1e-9);
  EXPECT_NEAR(LogChoose(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(7, 7), 0.0, 1e-12);
}

TEST(LogChooseTest, KGreaterThanNIsNegInf) {
  EXPECT_EQ(LogChoose(3, 4), -std::numeric_limits<double>::infinity());
}

TEST(ChooseSaturatingTest, ExactSmall) {
  EXPECT_EQ(ChooseSaturating(5, 2), 10u);
  EXPECT_EQ(ChooseSaturating(10, 3), 120u);
  EXPECT_EQ(ChooseSaturating(52, 5), 2598960u);
  EXPECT_EQ(ChooseSaturating(0, 0), 1u);
  EXPECT_EQ(ChooseSaturating(4, 0), 1u);
  EXPECT_EQ(ChooseSaturating(4, 4), 1u);
  EXPECT_EQ(ChooseSaturating(3, 5), 0u);
}

TEST(ChooseSaturatingTest, LargeExactValues) {
  // C(61, 30) ≈ 2.32e17 still fits in uint64.
  EXPECT_EQ(ChooseSaturating(61, 30), 232714176627630544ull);
}

TEST(ChooseSaturatingTest, SaturatesOnOverflow) {
  EXPECT_EQ(ChooseSaturating(1000, 500),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(ChooseSaturating(200, 100),
            std::numeric_limits<uint64_t>::max());
}

TEST(LogCandidateSpaceSizeTest, MatchesDirectSum) {
  // n=10, m=3: 10 + 45 + 120 = 175.
  EXPECT_NEAR(LogCandidateSpaceSize(10, 3), std::log(175.0), 1e-9);
  // m=1: just n.
  EXPECT_NEAR(LogCandidateSpaceSize(16470, 1), std::log(16470.0), 1e-9);
}

TEST(LogCandidateSpaceSizeTest, ApproximatesPaperTable2b) {
  // Paper: kosarak |U| ≈ 8.5e8 at |I|=41270, m=2.
  double log_u = LogCandidateSpaceSize(41270, 2);
  EXPECT_NEAR(std::exp(log_u), 8.5e8, 0.5e8);
  // Paper: pumsb-star |U| ≈ 1.5e9 at |I|=2088, m=3.
  log_u = LogCandidateSpaceSize(2088, 3);
  EXPECT_NEAR(std::exp(log_u) / 1.5e9, 1.0, 0.05);
}

TEST(LogCandidateSpaceSizeTest, CapsAtUniverse) {
  // m beyond n: all subsets counted once each.
  double log_u = LogCandidateSpaceSize(4, 10);
  EXPECT_NEAR(std::exp(log_u), 15.0, 1e-6);  // 2^4 − 1
}

TEST(MeanTest, Basic) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Mean({2.0}), 2.0, 1e-12);
  EXPECT_NEAR(Mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_NEAR(Median({5.0}), 5.0, 1e-12);
  EXPECT_NEAR(Median({3.0, 1.0, 2.0}), 2.0, 1e-12);
  EXPECT_NEAR(Median({4.0, 1.0, 3.0, 2.0}), 2.5, 1e-12);
}

TEST(MedianTest, DoesNotRequireSortedInput) {
  EXPECT_NEAR(Median({9.0, 1.0, 5.0, 3.0, 7.0}), 5.0, 1e-12);
}

TEST(SampleStdDevTest, KnownValue) {
  EXPECT_EQ(SampleStdDev({}), 0.0);
  EXPECT_EQ(SampleStdDev({1.0}), 0.0);
  // Sample stddev of {1,2,3,4}: sqrt(5/3).
  EXPECT_NEAR(SampleStdDev({1.0, 2.0, 3.0, 4.0}), std::sqrt(5.0 / 3.0),
              1e-12);
}

TEST(StandardErrorTest, ScalesWithSqrtN) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(StandardError(xs), SampleStdDev(xs) / 2.0, 1e-12);
  EXPECT_EQ(StandardError({7.0}), 0.0);
}

/// Brute-force reference: k literal `+= 1.0` steps.
double AddOnesBrute(double x, uint64_t k) {
  for (uint64_t i = 0; i < k; ++i) x += 1.0;
  return x;
}

TEST(AddOnesSequentiallyTest, MatchesBruteForceAroundBoundaries) {
  // Fractional starts crossing several power-of-two boundaries, plus the
  // 2^52/2^53 precision edges on both signs (where += 1.0 starts to
  // round), and saturated magnitudes.
  const double cases[] = {0.0,          -0.3,       0.37,
                          -127.75,      1e6 + 0.1,  0x1p52 - 2.5,
                          0x1p53 - 3.5, -0x1p53,    -0x1p53 - 2.0,
                          -0x1p60,      0x1p60,     1e15 + 0.37};
  for (double x : cases) {
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{7},
                       uint64_t{1000}}) {
      EXPECT_EQ(AddOnesSequentially(x, k), AddOnesBrute(x, k))
          << "x=" << x << " k=" << k;
    }
  }
}

TEST(AddOnesSequentiallyTest, ExactForIntegerCounts) {
  // The BasisFreq no-noise path: counts from zero stay exact integers.
  EXPECT_EQ(AddOnesSequentially(0.0, 1u << 20), double{1u << 20});
  // Huge k on a saturated value returns quickly and matches sequential
  // semantics (every step is absorbed).
  EXPECT_EQ(AddOnesSequentially(0x1p54, uint64_t{1} << 40), 0x1p54);
}

}  // namespace
}  // namespace privbasis
