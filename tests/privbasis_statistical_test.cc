// Statistical behaviour of the PrivBasis sub-steps that unit tests can
// only check pointwise: selection-quality trends in ε, fusion variance
// reduction, and the grouped GetLambda matching its direct counterpart.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_set>

#include "common/logspace.h"
#include "core/basis_freq.h"
#include "core/privbasis.h"
#include "engine/engine.h"
#include "data/vertical_index.h"
#include "fim/topk.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(PrivBasisStatisticalTest, GetLambdaMatchesDirectExponentialMechanism) {
  // GetLambda groups equal-count ranks; its selection distribution must
  // equal the direct (ungrouped) exponential mechanism over ranks.
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}, {0, 2}, {0}, {3}});
  // Supports: 0->5? no: item0 in 4 txns, item1 in 2, item2 1, item3 1.
  const uint64_t fk1 = 2;
  const double epsilon = 1.2;
  const double n = static_cast<double>(db.NumTransactions());

  // Direct distribution over ranks (1-based), counts sorted desc: 4,2,1,1.
  std::vector<double> counts{4, 2, 1, 1};
  std::vector<double> log_weights;
  for (double c : counts) {
    log_weights.push_back(epsilon / 2.0 *
                          (n - std::abs(c - static_cast<double>(fk1))));
  }
  Rng rng(3);
  const int trials = 200000;
  std::map<uint32_t, int> grouped, direct;
  for (int t = 0; t < trials; ++t) {
    grouped[GetLambda(db, fk1, epsilon, rng)]++;
    direct[static_cast<uint32_t>(SampleLogWeights(rng, log_weights)) + 1]++;
  }
  for (uint32_t rank = 1; rank <= 4; ++rank) {
    double pg = grouped[rank] / static_cast<double>(trials);
    double pd = direct[rank] / static_cast<double>(trials);
    EXPECT_NEAR(pg, pd, 0.01) << "rank " << rank;
  }
}

TEST(PrivBasisStatisticalTest, GetFreqElementsQualityImprovesWithEpsilon) {
  // Precision of the selected set (overlap with the true top) must rise
  // with the budget.
  std::vector<uint64_t> supports;
  for (int i = 0; i < 50; ++i) {
    supports.push_back(1000 - 15 * static_cast<uint64_t>(i));
  }
  auto precision_at = [&](double epsilon) {
    Rng rng(11);
    double hits = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      auto picks = GetFreqElements(supports, 10, epsilon, true, rng);
      EXPECT_TRUE(picks.ok());
      for (size_t idx : *picks) hits += idx < 10;
    }
    return hits / (trials * 10);
  };
  double lo = precision_at(0.002);
  double hi = precision_at(1.0);
  EXPECT_GT(hi, lo + 0.2);
  EXPECT_GT(hi, 0.9);
}

TEST(PrivBasisStatisticalTest, FusionReducesEmpiricalVariance) {
  // An itemset covered by two bases must have lower empirical error
  // variance than the same itemset covered by one, at equal ε and w.
  TransactionDatabase db = MakeDb({{0, 1, 2, 3}, {0, 1}, {2, 3}, {0, 3}});
  const Itemset target({0, 1});
  VerticalIndex index(db);
  const double exact = static_cast<double>(index.SupportOf(target));

  BasisSet overlap({Itemset({0, 1, 2}), Itemset({0, 1, 3})});
  BasisSet disjoint({Itemset({0, 1, 2}), Itemset({3})});

  auto variance_with = [&](const BasisSet& basis, uint64_t seed) {
    Rng rng(seed);
    double sum = 0, sum_sq = 0;
    const int trials = 8000;
    for (int t = 0; t < trials; ++t) {
      auto result = BasisFreq(db, basis, 0, 1.0, rng);
      EXPECT_TRUE(result.ok());
      for (const auto& c : result->topk) {
        if (c.items == target) {
          double err = c.noisy_count - exact;
          sum += err;
          sum_sq += err * err;
        }
      }
    }
    double mean = sum / trials;
    return sum_sq / trials - mean * mean;
  };
  double var_overlap = variance_with(overlap, 13);
  double var_single = variance_with(disjoint, 17);
  // Equation 4 + fusion: overlap variance = v/2 of the single-coverage
  // case here (two symmetric estimates) — demand at least 30% reduction.
  EXPECT_LT(var_overlap, var_single * 0.7);
}

TEST(PrivBasisStatisticalTest, FnrDegradesGracefullyInK) {
  // With the budget fixed, asking for more itemsets costs accuracy; the
  // trend must be visible (paper Figures 1–4 across k).
  TransactionDatabase db = MakeRandomDb(
      {.seed = 19, .num_transactions = 400, .universe = 16,
       .item_prob = 0.45});
  auto fnr_at = [&](size_t k) {
    auto truth = MineTopK(db, k);
    EXPECT_TRUE(truth.ok());
    std::unordered_set<Itemset, ItemsetHash> actual;
    for (const auto& fi : truth->itemsets) actual.insert(fi.items);
    Rng rng(23);
    double missed = 0;
    const int trials = 30;
    // One warm handle + the external-Rng overload: every trial draws
    // from the continuing stream, as the pre-Engine free function did.
    auto handle = Dataset::Borrow(db);
    const QuerySpec spec = QuerySpec().WithTopK(k).WithEpsilon(0.4);
    for (int t = 0; t < trials; ++t) {
      auto result = Engine::Run(*handle, spec, rng);
      EXPECT_TRUE(result.ok());
      std::unordered_set<Itemset, ItemsetHash> released;
      for (const auto& r : result->itemsets) released.insert(r.items);
      for (const auto& items : actual) missed += !released.contains(items);
    }
    return missed / (trials * static_cast<double>(k));
  };
  double small_k = fnr_at(10);
  double large_k = fnr_at(60);
  EXPECT_LT(small_k, large_k + 0.05);
}

TEST(PrivBasisStatisticalTest, ReleasedCountsUnbiasedAtFixedBasis) {
  // For a fixed basis, BasisFreq's estimate of a covered itemset is a sum
  // of Laplace-noised bins: unbiased around the exact support.
  TransactionDatabase db = MakeRandomDb({.seed = 29, .universe = 8});
  VerticalIndex index(db);
  BasisSet basis({Itemset({0, 1, 2, 3})});
  const Itemset target({0, 1});
  const double exact = static_cast<double>(index.SupportOf(target));
  Rng rng(31);
  double sum = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto result = BasisFreq(db, basis, 0, 1.0, rng);
    ASSERT_TRUE(result.ok());
    for (const auto& c : result->topk) {
      if (c.items == target) sum += c.noisy_count;
    }
  }
  EXPECT_NEAR(sum / trials, exact, 0.15);
}

}  // namespace
}  // namespace privbasis
