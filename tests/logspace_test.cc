#include "common/logspace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace privbasis {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

TEST(LogAddExpTest, MatchesDirectForSmallValues) {
  EXPECT_NEAR(LogAddExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAddExp(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(LogAddExpTest, HandlesHugeExponents) {
  // exp(1000) overflows, but log-space addition must not.
  double r = LogAddExp(1000.0, 1000.0);
  EXPECT_NEAR(r, 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAddExp(1000.0, 0.0), 1000.0, 1e-9);
}

TEST(LogAddExpTest, NegInfIdentity) {
  EXPECT_EQ(LogAddExp(kNegInf, 3.0), 3.0);
  EXPECT_EQ(LogAddExp(3.0, kNegInf), 3.0);
  EXPECT_EQ(LogAddExp(kNegInf, kNegInf), kNegInf);
}

TEST(LogSumExpTest, MatchesDirect) {
  std::vector<double> xs{std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(xs), std::log(6.0), 1e-12);
}

TEST(LogSumExpTest, EmptyIsNegInf) {
  EXPECT_EQ(LogSumExp({}), kNegInf);
}

TEST(LogSumExpTest, LargeUniformVector) {
  std::vector<double> xs(1000, 500.0);
  EXPECT_NEAR(LogSumExp(xs), 500.0 + std::log(1000.0), 1e-9);
}

TEST(SampleLogWeightsTest, RespectsRatios) {
  Rng rng(1);
  // Weights 1 : e : e² (log weights 0, 1, 2).
  std::vector<double> lw{0.0, 1.0, 2.0};
  std::vector<int> histogram(3, 0);
  const int n = 150000;
  for (int i = 0; i < n; ++i) ++histogram[SampleLogWeights(rng, lw)];
  double z = 1.0 + std::exp(1.0) + std::exp(2.0);
  for (size_t i = 0; i < 3; ++i) {
    double expected = std::exp(static_cast<double>(i)) / z;
    EXPECT_NEAR(histogram[i] / static_cast<double>(n), expected, 0.01);
  }
}

TEST(SampleLogWeightsTest, HugeWeightsDoNotOverflow) {
  Rng rng(3);
  // Differences matter, absolute sizes must not: 10000 vs 10001.
  std::vector<double> lw{10000.0, 10001.0};
  int second = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) second += SampleLogWeights(rng, lw) == 1;
  double expected = std::exp(1.0) / (1.0 + std::exp(1.0));
  EXPECT_NEAR(second / static_cast<double>(n), expected, 0.01);
}

TEST(SampleLogWeightsTest, SkipsNegInf) {
  Rng rng(5);
  std::vector<double> lw{kNegInf, 0.0, kNegInf};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SampleLogWeights(rng, lw), 1u);
  }
}

TEST(GumbelMaxSamplerTest, SingleOfferWins) {
  Rng rng(7);
  GumbelMaxSampler sampler(&rng);
  EXPECT_FALSE(sampler.HasWinner());
  sampler.Offer(42, 1.5);
  ASSERT_TRUE(sampler.HasWinner());
  EXPECT_EQ(sampler.WinnerKey(), 42u);
}

TEST(GumbelMaxSamplerTest, GroupOfferEquivalentToIndividualOffers) {
  // A group of m identical candidates must win exactly as often as m
  // individually-offered candidates with the same log weight.
  Rng rng(9);
  const int n = 120000;
  int group_wins = 0;
  for (int i = 0; i < n; ++i) {
    GumbelMaxSampler sampler(&rng);
    sampler.OfferGroup(0, 0.0, 9.0);  // 9 candidates at weight 1
    sampler.Offer(1, 0.0);            // 1 candidate at weight 1
    group_wins += sampler.WinnerKey() == 0;
  }
  EXPECT_NEAR(group_wins / static_cast<double>(n), 0.9, 0.01);
}

TEST(GumbelMaxSamplerTest, ZeroCountGroupIgnored) {
  Rng rng(11);
  GumbelMaxSampler sampler(&rng);
  sampler.OfferGroup(0, 0.0, 0.0);
  EXPECT_FALSE(sampler.HasWinner());
  sampler.OfferGroup(1, kNegInf, 5.0);
  EXPECT_FALSE(sampler.HasWinner());
}

TEST(GumbelMaxSamplerTest, WinnerScoreIsMax) {
  Rng rng(13);
  GumbelMaxSampler sampler(&rng);
  sampler.Offer(0, 0.0);
  double first = sampler.WinnerScore();
  sampler.Offer(1, 1000.0);
  EXPECT_EQ(sampler.WinnerKey(), 1u);
  EXPECT_GT(sampler.WinnerScore(), first);
}

}  // namespace
}  // namespace privbasis
