// Empirical ε-indistinguishability checks: run a mechanism many times on
// two neighbouring inputs and verify the output-probability ratios stay
// within e^ε (plus statistical slack). These are smoke tests against
// calibration bugs (wrong sensitivity, budget mis-splits), not proofs —
// but they catch exactly the class of mistakes DP implementations
// actually make.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "dp/exponential_mechanism.h"
#include "dp/geometric_mechanism.h"
#include "dp/laplace_mechanism.h"

namespace privbasis {
namespace {

/// Checks max over outcomes of |log(P(o|D)/P(o|D'))| <= eps + slack given
/// two outcome histograms.
void CheckRatioBound(const std::map<int64_t, int>& histogram_d,
                     const std::map<int64_t, int>& histogram_d_prime,
                     int trials, double epsilon, double slack) {
  for (const auto& [outcome, count_d] : histogram_d) {
    auto found = histogram_d_prime.find(outcome);
    // Ignore rare outcomes: their ratio estimates are pure noise.
    if (count_d < trials / 200) continue;
    ASSERT_NE(found, histogram_d_prime.end())
        << "outcome " << outcome << " never seen under D'";
    double ratio = std::log(static_cast<double>(count_d) /
                            static_cast<double>(found->second));
    EXPECT_LE(std::abs(ratio), epsilon + slack) << "outcome " << outcome;
  }
}

TEST(PrivacyPropertyTest, LaplaceCountQuery) {
  // Counting query: D has count 10, neighbouring D' has count 11
  // (sensitivity 1). Discretize the noisy output to integers.
  const double epsilon = 0.5;
  Rng rng(1);
  const int trials = 400000;
  std::map<int64_t, int> histogram_d, histogram_d_prime;
  for (int t = 0; t < trials; ++t) {
    histogram_d[std::llround(LaplacePerturb(rng, 10.0, 1.0, epsilon))]++;
    histogram_d_prime[std::llround(
        LaplacePerturb(rng, 11.0, 1.0, epsilon))]++;
  }
  // Discretizing to unit bins keeps the ratio bound: each bin integrates
  // the density over one unit, and densities are e^ε-close pointwise.
  CheckRatioBound(histogram_d, histogram_d_prime, trials, epsilon, 0.08);
}

TEST(PrivacyPropertyTest, GeometricCountQuery) {
  const double epsilon = 0.4;
  Rng rng(3);
  const int trials = 400000;
  std::map<int64_t, int> histogram_d, histogram_d_prime;
  for (int t = 0; t < trials; ++t) {
    histogram_d[GeometricPerturb(rng, 20, 1.0, epsilon)]++;
    histogram_d_prime[GeometricPerturb(rng, 21, 1.0, epsilon)]++;
  }
  CheckRatioBound(histogram_d, histogram_d_prime, trials, epsilon, 0.08);
}

TEST(PrivacyPropertyTest, ExponentialMechanismSelection) {
  // Neighbouring quality vectors: one tuple moved q by <= sensitivity 1
  // on every coordinate (worst case: +1 on one, −1 on another is not
  // allowed for monotone, so exercise the non-monotone mechanism).
  const double epsilon = 0.6;
  std::vector<double> q_d{5.0, 4.0, 2.0, 1.0};
  std::vector<double> q_d_prime{4.0, 5.0, 3.0, 1.0};  // each moved <= 1
  EmOptions options{.epsilon = epsilon, .sensitivity = 1.0,
                    .monotonic = false};
  Rng rng(5);
  const int trials = 400000;
  std::map<int64_t, int> histogram_d, histogram_d_prime;
  for (int t = 0; t < trials; ++t) {
    auto a = ExponentialMechanismSelect(rng, q_d, options);
    auto b = ExponentialMechanismSelect(rng, q_d_prime, options);
    ASSERT_TRUE(a.ok() && b.ok());
    histogram_d[static_cast<int64_t>(*a)]++;
    histogram_d_prime[static_cast<int64_t>(*b)]++;
  }
  CheckRatioBound(histogram_d, histogram_d_prime, trials, epsilon, 0.05);
}

TEST(PrivacyPropertyTest, GroupedEmMatchesPrivacyOfDirectEm) {
  // The grouped (count-bucketed) sampler must induce the same output
  // distribution as the direct exponential mechanism — privacy follows.
  const double factor = 0.7;
  std::vector<uint64_t> counts{9, 9, 3, 0};
  Rng rng(7);
  const int trials = 300000;
  std::vector<int> grouped(4, 0), direct(4, 0);
  std::vector<double> log_weights;
  for (uint64_t c : counts) {
    log_weights.push_back(factor * static_cast<double>(c));
  }
  for (int t = 0; t < trials; ++t) {
    GroupedEmPool pool(counts);
    auto r = pool.SelectK(rng, 1, factor);
    ASSERT_TRUE(r.ok());
    grouped[r->front()]++;
    direct[SampleLogWeights(rng, log_weights)]++;
  }
  for (size_t i = 0; i < 4; ++i) {
    double pg = grouped[i] / static_cast<double>(trials);
    double pd = direct[i] / static_cast<double>(trials);
    EXPECT_NEAR(pg, pd, 0.01) << "candidate " << i;
  }
}

TEST(PrivacyPropertyTest, SequentialCompositionViaAccountantSplit) {
  // Two Laplace queries at ε/2 each must satisfy ε overall: empirically,
  // the joint (pair) outcome ratio respects e^ε. Coarse-grained to keep
  // the joint histogram dense.
  const double epsilon = 0.8;
  Rng rng(9);
  const int trials = 500000;
  std::map<int64_t, int> histogram_d, histogram_d_prime;
  auto run = [&](double c1, double c2, std::map<int64_t, int>* histogram) {
    double a = LaplacePerturb(rng, c1, 1.0, epsilon / 2);
    double b = LaplacePerturb(rng, c2, 1.0, epsilon / 2);
    // Encode the coarse pair (round to 3-unit bins).
    int64_t key = std::llround(a / 3.0) * 1000 + std::llround(b / 3.0);
    (*histogram)[key]++;
  };
  for (int t = 0; t < trials; ++t) {
    run(10.0, 20.0, &histogram_d);
    run(11.0, 21.0, &histogram_d_prime);  // one tuple affects both queries
  }
  CheckRatioBound(histogram_d, histogram_d_prime, trials, epsilon, 0.12);
}

}  // namespace
}  // namespace privbasis
