#include "data/transaction_db.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;

TEST(TransactionDbTest, BuilderBasics) {
  TransactionDatabase db = MakeDb({{0, 1}, {1, 2}, {2}});
  EXPECT_EQ(db.NumTransactions(), 3u);
  EXPECT_EQ(db.UniverseSize(), 3u);
  EXPECT_EQ(db.TotalItemOccurrences(), 5u);
}

TEST(TransactionDbTest, TransactionsSortedAndDeduped) {
  TransactionDatabase db = MakeDb({{3, 1, 2, 1, 3}});
  auto txn = db.Transaction(0);
  ASSERT_EQ(txn.size(), 3u);
  EXPECT_EQ(txn[0], 1u);
  EXPECT_EQ(txn[1], 2u);
  EXPECT_EQ(txn[2], 3u);
}

TEST(TransactionDbTest, EmptyTransactionsCountTowardN) {
  TransactionDatabase db = MakeDb({{}, {0}, {}});
  EXPECT_EQ(db.NumTransactions(), 3u);
  EXPECT_EQ(db.Transaction(0).size(), 0u);
}

TEST(TransactionDbTest, DeclaredUniverseEnforced) {
  TransactionDatabase::Builder builder(3);
  builder.AddTransaction(std::vector<Item>{0, 5});
  auto result = std::move(builder).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransactionDbTest, DeclaredUniverseLargerThanItems) {
  TransactionDatabase db = MakeDb({{0, 1}}, /*universe=*/10);
  EXPECT_EQ(db.UniverseSize(), 10u);
  EXPECT_EQ(db.ItemSupports().size(), 10u);
  EXPECT_EQ(db.ItemSupports()[9], 0u);
}

TEST(TransactionDbTest, ItemSupports) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 2}, {0}});
  EXPECT_EQ(db.ItemSupports()[0], 3u);
  EXPECT_EQ(db.ItemSupports()[1], 1u);
  EXPECT_EQ(db.ItemSupports()[2], 1u);
  EXPECT_NEAR(db.ItemFrequency(0), 1.0, 1e-12);
  EXPECT_NEAR(db.ItemFrequency(1), 1.0 / 3.0, 1e-12);
}

TEST(TransactionDbTest, SupportOfItemset) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(db.SupportOf(Itemset({0, 1})), 2u);
  EXPECT_EQ(db.SupportOf(Itemset({0, 1, 2})), 1u);
  EXPECT_EQ(db.SupportOf(Itemset({1})), 3u);
  EXPECT_EQ(db.SupportOf(Itemset()), 4u);  // empty set: all transactions
  EXPECT_NEAR(db.FrequencyOf(Itemset({0, 1})), 0.5, 1e-12);
}

TEST(TransactionDbTest, ItemsByFrequency) {
  TransactionDatabase db = MakeDb({{0, 2}, {2}, {1, 2}, {1}});
  auto order = db.ItemsByFrequency();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // support 3
  EXPECT_EQ(order[1], 1u);  // support 2
  EXPECT_EQ(order[2], 0u);  // support 1
}

TEST(TransactionDbTest, ItemsByFrequencyTieBreaksById) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}});
  auto order = db.ItemsByFrequency();
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(TransactionDbTest, ProjectOnto) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {1, 2}, {0}});
  TransactionDatabase projected = db.ProjectOnto(Itemset({1, 2}));
  EXPECT_EQ(projected.NumTransactions(), 3u);
  EXPECT_EQ(projected.UniverseSize(), db.UniverseSize());
  EXPECT_EQ(projected.Transaction(0).size(), 2u);
  EXPECT_EQ(projected.Transaction(2).size(), 0u);  // item 0 removed
  EXPECT_EQ(projected.ItemSupports()[0], 0u);
  EXPECT_EQ(projected.ItemSupports()[1], 2u);
}

TEST(TransactionDbTest, ProjectionPreservesSubsetSupports) {
  TransactionDatabase db = testing::MakeRandomDb({.seed = 9});
  Itemset keep({0, 1, 2, 3});
  TransactionDatabase projected = db.ProjectOnto(keep);
  // Supports of itemsets inside the projection must be unchanged.
  EXPECT_EQ(projected.SupportOf(Itemset({0, 1})), db.SupportOf(Itemset({0, 1})));
  EXPECT_EQ(projected.SupportOf(Itemset({2, 3})), db.SupportOf(Itemset({2, 3})));
  EXPECT_EQ(projected.SupportOf(Itemset({0, 1, 2, 3})),
            db.SupportOf(Itemset({0, 1, 2, 3})));
}

TEST(TransactionDbTest, ItemsetAddTransactionOverload) {
  TransactionDatabase::Builder builder;
  builder.AddTransaction(Itemset({4, 2}));
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Transaction(0)[0], 2u);
  EXPECT_EQ(db->Transaction(0)[1], 4u);
}

TEST(TransactionDbTest, EmptyDatabase) {
  TransactionDatabase::Builder builder;
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTransactions(), 0u);
  EXPECT_EQ(db->UniverseSize(), 0u);
}

}  // namespace
}  // namespace privbasis
