#include "eval/release_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace privbasis {
namespace {

std::vector<NoisyItemset> Sample() {
  return {
      {Itemset({0}), 123.5},
      {Itemset({2, 7}), 45.0},
      {Itemset({1, 3, 9}), -2.25},
  };
}

TEST(ReleaseIoTest, StringRoundTrip) {
  std::string text = WriteReleaseTsv(Sample());
  auto reread = ReadReleaseTsv(text);
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*reread)[i].items, Sample()[i].items);
    EXPECT_NEAR((*reread)[i].noisy_count, Sample()[i].noisy_count, 1e-6);
  }
}

TEST(ReleaseIoTest, HeaderAndBlankLinesSkipped) {
  auto result = ReadReleaseTsv("# comment\n\n1 2\t10.5\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].items, Itemset({1, 2}));
}

TEST(ReleaseIoTest, RejectsMissingTab) {
  EXPECT_FALSE(ReadReleaseTsv("1 2 10.5\n").ok());
}

TEST(ReleaseIoTest, RejectsEmptyItemset) {
  EXPECT_FALSE(ReadReleaseTsv("\t10.5\n").ok());
}

TEST(ReleaseIoTest, RejectsMalformedCount) {
  EXPECT_FALSE(ReadReleaseTsv("1 2\tnotanumber\n").ok());
}

TEST(ReleaseIoTest, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "privbasis_release_test.tsv")
          .string();
  ASSERT_TRUE(WriteReleaseTsvFile(Sample(), path).ok());
  auto reread = ReadReleaseTsvFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->size(), 3u);
  std::remove(path.c_str());
}

TEST(ReleaseIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadReleaseTsvFile("/no/such/file.tsv").ok());
}

TEST(ReleaseIoTest, EmptyRelease) {
  std::string text = WriteReleaseTsv({});
  auto reread = ReadReleaseTsv(text);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread->empty());
}

}  // namespace
}  // namespace privbasis
