// The budget write-ahead ledger: golden-file frame bytes, CRC/torn-tail
// rejection, replay semantics (never refund), and failpoint-injected
// append failures.
#include "store/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "store/io.h"

namespace privbasis::store {
namespace {

std::string HexDecode(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>(
        std::stoi(std::string(hex.substr(i, 2)), nullptr, 16)));
  }
  return out;
}

/// Fresh path under the build dir; removed up front so reruns are clean.
std::string TempPath(const std::string& name) {
  const std::string path = "wal_test_" + name;
  std::remove(path.c_str());
  return path;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value (zlib-compatible polynomial).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

// ---- golden frame bytes (the byte-exact wire contract of the file) ----

TEST(WalCodecTest, ReserveRecordGoldenBytes) {
  WalRecord record;
  record.type = WalRecord::Type::kReserve;
  record.txn = 7;
  record.epsilon = 0.5;
  record.dataset = "ds-1";
  record.label = "q";
  const std::string payload = EncodeWalRecord(record);
  EXPECT_EQ(payload, HexDecode("010700000000000000"
                               "000000000000e03f"
                               "040064732d31"
                               "010071"));
  EXPECT_EQ(EncodeWalFrame(payload),
            HexDecode("1a0000006687c9c0"
                      "010700000000000000000000000000e03f040064732d31"
                      "010071"));
}

TEST(WalCodecTest, CommitAndAbortGoldenBytes) {
  WalRecord commit;
  commit.type = WalRecord::Type::kCommit;
  commit.txn = 7;
  commit.epsilon = 0.25;
  commit.dataset = "ds-1";
  commit.label = "q";
  EXPECT_EQ(EncodeWalRecord(commit),
            HexDecode("020700000000000000000000000000d03f040064732d31"
                      "010071"));

  WalRecord abort_record;
  abort_record.type = WalRecord::Type::kAbort;
  abort_record.txn = 9;
  EXPECT_EQ(EncodeWalFrame(EncodeWalRecord(abort_record)),
            HexDecode("090000004033cbc0030900000000000000"));
}

TEST(WalCodecTest, DecodeRoundTripsEveryType) {
  WalRecord reserve;
  reserve.type = WalRecord::Type::kReserve;
  reserve.txn = 123456789;
  reserve.epsilon = 0.123456;
  reserve.dataset = "retail";
  reserve.label = "pb k=100 (ε = 1)";
  auto decoded = DecodeWalRecord(EncodeWalRecord(reserve));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecord::Type::kReserve);
  EXPECT_EQ(decoded->txn, reserve.txn);
  EXPECT_EQ(decoded->epsilon, reserve.epsilon);  // bit-exact
  EXPECT_EQ(decoded->dataset, reserve.dataset);
  EXPECT_EQ(decoded->label, reserve.label);
}

TEST(WalCodecTest, UnknownRecordTypeIsVersionSkewNotCorruption) {
  std::string payload = EncodeWalRecord(WalRecord{});
  payload[0] = 42;  // a type only a future version writes
  auto decoded = DecodeWalRecord(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WalCodecTest, TruncatedAndOversizedPayloadsRejected) {
  const std::string payload = EncodeWalRecord(WalRecord{});
  EXPECT_EQ(DecodeWalRecord(payload.substr(0, payload.size() - 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeWalRecord(payload + "x").status().code(),
            StatusCode::kInvalidArgument);
}

// ---- open/replay ------------------------------------------------------

TEST(WalTest, FreshFileReplaysEmpty) {
  const std::string path = TempPath("fresh.wal");
  auto wal = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE((*wal)->recovered().ledgers.empty());
  EXPECT_EQ((*wal)->recovered().next_txn, 1u);
  // The header alone is on disk.
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "PBWAL001");
  std::remove(path.c_str());
}

TEST(WalTest, ReplayChargesCommitsAbortsAndInFlightReservations) {
  const std::string path = TempPath("replay.wal");
  {
    auto wal = BudgetWal::Open(path, FsyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    // committed at less than reserved: replay charges the actual
    auto t1 = (*wal)->AppendReserve("a", 0.5, "q1");
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE((*wal)->AppendCommit(*t1, "a", 0.25, "q1").ok());
    // aborted: replay charges the FULL reservation
    auto t2 = (*wal)->AppendReserve("a", 0.5, "q2");
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE((*wal)->AppendAbort(*t2).ok());
    // in-flight at "crash": full reservation too, on another dataset
    ASSERT_TRUE((*wal)->AppendReserve("b", 0.125, "q3").ok());
  }
  auto wal = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  const WalReplay& replay = (*wal)->recovered();
  ASSERT_EQ(replay.ledgers.count("a"), 1u);
  ASSERT_EQ(replay.ledgers.count("b"), 1u);
  EXPECT_EQ(replay.ledgers.at("a").spent, 0.75);  // 0.25 + 0.5, exact
  EXPECT_EQ(replay.ledgers.at("b").spent, 0.125);
  EXPECT_EQ(replay.in_flight, 1u);
  EXPECT_EQ(replay.next_txn, 4u);
  EXPECT_FALSE(replay.truncated_tail);
  ASSERT_EQ(replay.ledgers.at("a").entries.size(), 2u);
  EXPECT_EQ(replay.ledgers.at("a").entries[0].label, "q1");
  EXPECT_EQ(replay.ledgers.at("a").entries[1].label, "q2 (aborted)");
  EXPECT_EQ(replay.ledgers.at("b").entries[0].label,
            "q3 (in-flight at crash)");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsTruncatedAndAppendsContinue) {
  const std::string path = TempPath("torn.wal");
  uint64_t txn1 = 0;
  {
    auto wal = BudgetWal::Open(path, FsyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    auto t = (*wal)->AppendReserve("a", 0.5, "q1");
    ASSERT_TRUE(t.ok());
    txn1 = *t;
    ASSERT_TRUE((*wal)->AppendCommit(txn1, "a", 0.5, "q1").ok());
  }
  // Simulate a crash mid-append: half a frame of garbage at the tail.
  {
    auto file = AppendFile::Open(path, "test");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(
        file->Append(std::string("\x20\x00\x00\x00garbage", 11)).ok());
  }
  auto reopened = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->recovered().truncated_tail);
  EXPECT_EQ((*reopened)->recovered().ledgers.at("a").spent, 0.5);
  // New appends land at the truncated boundary and replay cleanly.
  auto t2 = (*reopened)->AppendReserve("a", 0.25, "q2");
  ASSERT_TRUE(t2.ok());
  EXPECT_GT(*t2, txn1);
  ASSERT_TRUE((*reopened)->AppendCommit(*t2, "a", 0.25, "q2").ok());
  reopened->reset();

  auto final_open = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(final_open.ok());
  EXPECT_FALSE((*final_open)->recovered().truncated_tail);
  EXPECT_EQ((*final_open)->recovered().ledgers.at("a").spent, 0.75);
  std::remove(path.c_str());
}

TEST(WalTest, CorruptedFrameCrcDropsTail) {
  const std::string path = TempPath("crc.wal");
  {
    auto wal = BudgetWal::Open(path, FsyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    auto t1 = (*wal)->AppendReserve("a", 0.5, "q1");
    ASSERT_TRUE((*wal)->AppendCommit(*t1, "a", 0.5, "q1").ok());
    auto t2 = (*wal)->AppendReserve("a", 0.25, "q2");
    ASSERT_TRUE((*wal)->AppendCommit(*t2, "a", 0.25, "q2").ok());
  }
  // Flip one byte in the LAST frame's payload: that frame and everything
  // after it (nothing) vanish; the earlier records survive.
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[mutated.size() - 2] ^= 0x01;
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(mutated.data(), 1, mutated.size(), f);
    std::fclose(f);
  }
  auto reopened = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->recovered().truncated_tail);
  // q2's reserve+commit were in the dropped tail region only if the flip
  // hit the commit frame; what must hold either way: q1's commit
  // survived and nothing was double-charged.
  EXPECT_GE((*reopened)->recovered().ledgers.at("a").spent, 0.5);
  EXPECT_LE((*reopened)->recovered().ledgers.at("a").spent, 1.0);
  std::remove(path.c_str());
}

TEST(WalTest, ForeignFileAndVersionSkewRefused) {
  const std::string path = TempPath("foreign.wal");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a WAL at all", f);
    std::fclose(f);
  }
  EXPECT_EQ(BudgetWal::Open(path, FsyncMode::kNever).status().code(),
            StatusCode::kIoError);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("PBWAL999", f);  // right magic, future version
    std::fclose(f);
  }
  EXPECT_EQ(BudgetWal::Open(path, FsyncMode::kNever).status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(WalTest, EnospcAppendFailsCleanAndHeals) {
  const std::string path = TempPath("enospc.wal");
  auto wal = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  auto t1 = (*wal)->AppendReserve("a", 0.5, "q1");
  ASSERT_TRUE(t1.ok());

  // Disk "fills" for exactly one append.
  ASSERT_TRUE(failpoint::Configure("wal_append=error:ENOSPC").ok());
  auto failed = (*wal)->AppendReserve("a", 0.25, "q2");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  failpoint::Reset();

  // The WAL healed: later appends work and replay sees no gap.
  ASSERT_TRUE((*wal)->AppendCommit(*t1, "a", 0.5, "q1").ok());
  wal->reset();
  auto reopened = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->recovered().truncated_tail);
  EXPECT_EQ((*reopened)->recovered().ledgers.at("a").spent, 0.5);
  std::remove(path.c_str());
}

TEST(WalTest, TornAppendIsRolledBackBeforeNextAppend) {
  const std::string path = TempPath("tornappend.wal");
  auto wal = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  auto t1 = (*wal)->AppendReserve("a", 0.5, "q1");
  ASSERT_TRUE(t1.ok());

  // A crash-shaped failure: 12 bytes of the frame land, then EIO.
  ASSERT_TRUE(failpoint::Configure("wal_append=torn:12").ok());
  auto failed = (*wal)->AppendCommit(*t1, "a", 0.5, "q1");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  failpoint::Reset();

  // Self-heal truncated the 12 garbage bytes: the retried commit must
  // replay cleanly with no torn tail.
  ASSERT_TRUE((*wal)->AppendCommit(*t1, "a", 0.5, "q1").ok());
  wal->reset();
  auto reopened = BudgetWal::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->recovered().truncated_tail);
  EXPECT_EQ((*reopened)->recovered().ledgers.at("a").spent, 0.5);
  std::remove(path.c_str());
}

TEST(WalTest, FsyncModesAppendIdentically) {
  for (const FsyncMode mode :
       {FsyncMode::kAlways, FsyncMode::kCommit, FsyncMode::kNever}) {
    const std::string path =
        TempPath(std::string("mode_") + FsyncModeName(mode));
    auto wal = BudgetWal::Open(path, mode);
    ASSERT_TRUE(wal.ok());
    auto t = (*wal)->AppendReserve("a", 0.5, "q");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*wal)->AppendCommit(*t, "a", 0.5, "q").ok());
    wal->reset();
    auto reopened = BudgetWal::Open(path, mode);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ((*reopened)->recovered().ledgers.at("a").spent, 0.5);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace privbasis::store
