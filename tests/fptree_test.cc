#include "fim/fptree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fim/apriori.h"
#include "fim/brute_force.h"
#include "fim/fpgrowth.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(FpTreeTest, RanksOrderedByDescendingSupport) {
  // supports: 0 -> 1, 1 -> 2, 2 -> 3.
  TransactionDatabase db = MakeDb({{0, 1, 2}, {1, 2}, {2}});
  FpTree tree(db, 1);
  ASSERT_EQ(tree.NumRanks(), 3u);
  EXPECT_EQ(tree.ItemAt(0), 2u);
  EXPECT_EQ(tree.ItemAt(1), 1u);
  EXPECT_EQ(tree.ItemAt(2), 0u);
  EXPECT_EQ(tree.SupportAt(0), 3u);
  EXPECT_EQ(tree.SupportAt(1), 2u);
  EXPECT_EQ(tree.SupportAt(2), 1u);
}

TEST(FpTreeTest, MinSupportFiltersItems) {
  TransactionDatabase db = MakeDb({{0, 1}, {1}, {1}});
  FpTree tree(db, 2);
  ASSERT_EQ(tree.NumRanks(), 1u);
  EXPECT_EQ(tree.ItemAt(0), 1u);
  EXPECT_TRUE(FpTree(db, 10).Empty());
}

TEST(FpTreeTest, SharedPrefixesCompress) {
  // Identical transactions must share one path: nodes = root + |t|.
  TransactionDatabase db =
      MakeDb({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}});
  FpTree tree(db, 1);
  EXPECT_EQ(tree.NumNodes(), 4u);  // root + 3 items
}

TEST(FpTreeTest, DisjointTransactionsBranch) {
  TransactionDatabase db = MakeDb({{0, 1}, {2, 3}});
  FpTree tree(db, 1);
  EXPECT_EQ(tree.NumNodes(), 5u);  // root + 2 + 2
}

TEST(FpTreeTest, ConditionalTreeSupportsArePairSupports) {
  // The conditional tree of rank r reports, for every other item x, the
  // support of {item(r), x}.
  TransactionDatabase db = MakeRandomDb(
      {.seed = 3, .num_transactions = 60, .universe = 8, .item_prob = 0.5});
  FpTree tree(db, 1);
  for (uint32_t rank = 0; rank < tree.NumRanks(); ++rank) {
    FpTree cond = tree.ConditionalTree(rank, 1);
    Item base = tree.ItemAt(rank);
    for (uint32_t crank = 0; crank < cond.NumRanks(); ++crank) {
      Item other = cond.ItemAt(crank);
      EXPECT_EQ(cond.SupportAt(crank),
                db.SupportOf(Itemset({base, other})))
          << "pair {" << base << "," << other << "}";
    }
  }
}

TEST(FpTreeTest, ConditionalTreeRespectsMinSupport) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}, {0, 2}});
  FpTree tree(db, 1);
  // Condition on the rank of item 1 (support 2): item 0 co-occurs twice.
  uint32_t rank1 = 0;
  for (uint32_t r = 0; r < tree.NumRanks(); ++r) {
    if (tree.ItemAt(r) == 1) rank1 = r;
  }
  FpTree cond_loose = tree.ConditionalTree(rank1, 1);
  EXPECT_EQ(cond_loose.NumRanks(), 1u);
  FpTree cond_tight = tree.ConditionalTree(rank1, 3);
  EXPECT_TRUE(cond_tight.Empty());
}

TEST(FpTreeTest, EmptyDatabase) {
  TransactionDatabase db = MakeDb({}, /*universe=*/3);
  FpTree tree(db, 1);
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.NumNodes(), 1u);  // just the root
}

TEST(FpTreeTest, NodeCountBoundedByOccurrences) {
  TransactionDatabase db = MakeRandomDb({.seed = 7, .num_transactions = 100});
  FpTree tree(db, 1);
  EXPECT_LE(tree.NumNodes(), db.TotalItemOccurrences() + 1);
}

/// Structural invariants of the CSR arena: children slices sorted by rank
/// (binary-searchable via FindChild), ranks strictly ascending along
/// every root path, and the per-rank node index covering every node with
/// counts summing to the rank's support.
TEST(FpTreeTest, CsrLayoutInvariants) {
  for (uint64_t seed : {3u, 11u, 29u}) {
    TransactionDatabase db = MakeRandomDb(
        {.seed = seed, .num_transactions = 120, .universe = 10,
         .item_prob = 0.4});
    FpTree tree(db, 2);
    size_t children_seen = 0;
    for (uint32_t node = 0; node < tree.NumNodes(); ++node) {
      auto kids = tree.Children(node);
      children_seen += kids.size();
      for (size_t i = 0; i < kids.size(); ++i) {
        EXPECT_EQ(tree.NodeParent(kids[i]), node);
        if (node != 0) {
          EXPECT_GT(tree.NodeRank(kids[i]), tree.NodeRank(node));
        }
        if (i > 0) {
          EXPECT_LT(tree.NodeRank(kids[i - 1]), tree.NodeRank(kids[i]));
        }
        EXPECT_EQ(tree.FindChild(node, tree.NodeRank(kids[i])), kids[i]);
      }
      EXPECT_EQ(tree.FindChild(node, FpTree::kNil - 2), FpTree::kNil);
    }
    EXPECT_EQ(children_seen, tree.NumNodes() - 1);  // every node but root

    size_t indexed = 0;
    for (uint32_t rank = 0; rank < tree.NumRanks(); ++rank) {
      uint64_t total = 0;
      for (uint32_t node : tree.NodesOfRank(rank)) {
        EXPECT_EQ(tree.NodeRank(node), rank);
        total += tree.NodeCount(node);
        ++indexed;
      }
      EXPECT_EQ(total, tree.SupportAt(rank)) << "rank " << rank;
    }
    EXPECT_EQ(indexed, tree.NumNodes() - 1);

    const auto& order = tree.RanksBySupport();
    ASSERT_EQ(order.size(), tree.NumRanks());
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_GE(tree.SupportAt(order[i - 1]), tree.SupportAt(order[i]));
    }
  }
}

/// Conditional trees keep the same invariants and the monotone remap
/// preserves the relative order of surviving items.
TEST(FpTreeTest, ConditionalTreeKeepsRelativeRankOrder) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 17, .num_transactions = 80, .universe = 9, .item_prob = 0.5});
  FpTree tree(db, 1);
  for (uint32_t rank = 1; rank < tree.NumRanks(); ++rank) {
    FpTree cond = tree.ConditionalTree(rank, 2);
    // Surviving items appear in the same relative order as in the parent.
    std::vector<uint32_t> parent_positions;
    for (uint32_t cr = 0; cr < cond.NumRanks(); ++cr) {
      Item item = cond.ItemAt(cr);
      uint32_t pos = FpTree::kNil;
      for (uint32_t pr = 0; pr < rank; ++pr) {
        if (tree.ItemAt(pr) == item) pos = pr;
      }
      ASSERT_NE(pos, FpTree::kNil);
      parent_positions.push_back(pos);
    }
    EXPECT_TRUE(std::is_sorted(parent_positions.begin(),
                               parent_positions.end()));
  }
}

/// End-to-end oracle check: the CSR-arena tree mines exactly the
/// brute-force pattern sets on seeded random databases, at every thread
/// count.
TEST(FpTreeTest, MinesIdenticalPatternSetsToBruteForce) {
  for (uint64_t seed : {5u, 23u, 71u}) {
    TransactionDatabase db = MakeRandomDb(
        {.seed = seed, .num_transactions = 70, .universe = 11,
         .item_prob = 0.45});
    MiningOptions options;
    options.min_support = 3;
    options.max_length = 6;
    auto want = MineBruteForce(db, options);
    ASSERT_TRUE(want.ok());
    for (size_t threads : {1u, 2u, 8u}) {
      options.num_threads = threads;
      auto got = MineFpGrowth(db, options);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->itemsets, want->itemsets)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

/// Oracle coverage for the >64-rank build path: trees with more than 64
/// frequent items cannot pack paths into one 64-bit key and take the
/// lexicographic BuildFromPaths merge instead. Cross-check FP-Growth
/// against Apriori (an independent implementation) on such a tree.
TEST(FpTreeTest, WideTreeUsesPathMergeAndMatchesApriori) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 97, .num_transactions = 400, .universe = 90,
       .item_prob = 0.15});
  MiningOptions options;
  options.min_support = 2;
  options.max_length = 4;
  FpTree tree(db, options.min_support);
  ASSERT_GT(tree.NumRanks(), 64u) << "universe too sparse for this test";
  auto want = MineApriori(db, options);
  ASSERT_TRUE(want.ok());
  for (size_t threads : {1u, 4u}) {
    options.num_threads = threads;
    auto got = MineFpGrowth(db, options);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->itemsets, want->itemsets) << "threads=" << threads;
  }
}

/// The parallel first projection level must keep the truncation contract
/// deterministic: identical truncated sets at every thread count, with
/// the early-stop flag engaged (max_patterns far below the full count).
TEST(FpTreeTest, TruncatedMineIdenticalAcrossThreadCounts) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 41, .num_transactions = 90, .universe = 12,
       .item_prob = 0.5});
  std::vector<MiningResult> results;
  for (size_t threads : {1u, 2u, 8u}) {
    MiningOptions options;
    options.min_support = 2;
    options.max_patterns = 25;
    options.num_threads = threads;
    auto result = MineFpGrowth(db, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->aborted);
    EXPECT_EQ(result->itemsets.size(), 25u);
    results.push_back(std::move(result).value());
  }
  EXPECT_EQ(results[0].itemsets, results[1].itemsets);
  EXPECT_EQ(results[0].itemsets, results[2].itemsets);
}

}  // namespace
}  // namespace privbasis
