#include "fim/fptree.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(FpTreeTest, RanksOrderedByDescendingSupport) {
  // supports: 0 -> 1, 1 -> 2, 2 -> 3.
  TransactionDatabase db = MakeDb({{0, 1, 2}, {1, 2}, {2}});
  FpTree tree(db, 1);
  ASSERT_EQ(tree.NumRanks(), 3u);
  EXPECT_EQ(tree.ItemAt(0), 2u);
  EXPECT_EQ(tree.ItemAt(1), 1u);
  EXPECT_EQ(tree.ItemAt(2), 0u);
  EXPECT_EQ(tree.SupportAt(0), 3u);
  EXPECT_EQ(tree.SupportAt(1), 2u);
  EXPECT_EQ(tree.SupportAt(2), 1u);
}

TEST(FpTreeTest, MinSupportFiltersItems) {
  TransactionDatabase db = MakeDb({{0, 1}, {1}, {1}});
  FpTree tree(db, 2);
  ASSERT_EQ(tree.NumRanks(), 1u);
  EXPECT_EQ(tree.ItemAt(0), 1u);
  EXPECT_TRUE(FpTree(db, 10).Empty());
}

TEST(FpTreeTest, SharedPrefixesCompress) {
  // Identical transactions must share one path: nodes = root + |t|.
  TransactionDatabase db =
      MakeDb({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}});
  FpTree tree(db, 1);
  EXPECT_EQ(tree.NumNodes(), 4u);  // root + 3 items
}

TEST(FpTreeTest, DisjointTransactionsBranch) {
  TransactionDatabase db = MakeDb({{0, 1}, {2, 3}});
  FpTree tree(db, 1);
  EXPECT_EQ(tree.NumNodes(), 5u);  // root + 2 + 2
}

TEST(FpTreeTest, ConditionalTreeSupportsArePairSupports) {
  // The conditional tree of rank r reports, for every other item x, the
  // support of {item(r), x}.
  TransactionDatabase db = MakeRandomDb(
      {.seed = 3, .num_transactions = 60, .universe = 8, .item_prob = 0.5});
  FpTree tree(db, 1);
  for (uint32_t rank = 0; rank < tree.NumRanks(); ++rank) {
    FpTree cond = tree.ConditionalTree(rank, 1);
    Item base = tree.ItemAt(rank);
    for (uint32_t crank = 0; crank < cond.NumRanks(); ++crank) {
      Item other = cond.ItemAt(crank);
      EXPECT_EQ(cond.SupportAt(crank),
                db.SupportOf(Itemset({base, other})))
          << "pair {" << base << "," << other << "}";
    }
  }
}

TEST(FpTreeTest, ConditionalTreeRespectsMinSupport) {
  TransactionDatabase db = MakeDb({{0, 1}, {0, 1}, {0, 2}});
  FpTree tree(db, 1);
  // Condition on the rank of item 1 (support 2): item 0 co-occurs twice.
  uint32_t rank1 = 0;
  for (uint32_t r = 0; r < tree.NumRanks(); ++r) {
    if (tree.ItemAt(r) == 1) rank1 = r;
  }
  FpTree cond_loose = tree.ConditionalTree(rank1, 1);
  EXPECT_EQ(cond_loose.NumRanks(), 1u);
  FpTree cond_tight = tree.ConditionalTree(rank1, 3);
  EXPECT_TRUE(cond_tight.Empty());
}

TEST(FpTreeTest, EmptyDatabase) {
  TransactionDatabase db = MakeDb({}, /*universe=*/3);
  FpTree tree(db, 1);
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.NumNodes(), 1u);  // just the root
}

TEST(FpTreeTest, NodeCountBoundedByOccurrences) {
  TransactionDatabase db = MakeRandomDb({.seed = 7, .num_transactions = 100});
  FpTree tree(db, 1);
  EXPECT_LE(tree.NumNodes(), db.TotalItemOccurrences() + 1);
}

}  // namespace
}  // namespace privbasis
