#include "data/itemset.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace privbasis {
namespace {

TEST(ItemsetTest, SortsAndDeduplicates) {
  Itemset s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 5u);
}

TEST(ItemsetTest, EmptySet) {
  Itemset s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains(0));
}

TEST(ItemsetTest, FromSortedIsIdentity) {
  Itemset s = Itemset::FromSorted({2, 4, 6});
  EXPECT_EQ(s, Itemset({6, 4, 2}));
}

TEST(ItemsetTest, Contains) {
  Itemset s({10, 20, 30});
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(20));
  EXPECT_TRUE(s.Contains(30));
  EXPECT_FALSE(s.Contains(15));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Contains(31));
}

TEST(ItemsetTest, SubsetRelation) {
  Itemset small({1, 3});
  Itemset big({1, 2, 3, 4});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(Itemset().IsSubsetOf(small));
  EXPECT_FALSE(Itemset({5}).IsSubsetOf(big));
}

TEST(ItemsetTest, SubsetOfSpan) {
  std::vector<Item> sorted{1, 2, 3, 4};
  EXPECT_TRUE(Itemset({2, 4}).IsSubsetOf(std::span<const Item>(sorted)));
  EXPECT_FALSE(Itemset({2, 5}).IsSubsetOf(std::span<const Item>(sorted)));
}

TEST(ItemsetTest, SetOperations) {
  Itemset a({1, 2, 3});
  Itemset b({3, 4});
  EXPECT_EQ(a.Union(b), Itemset({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), Itemset({3}));
  EXPECT_EQ(a.Difference(b), Itemset({1, 2}));
  EXPECT_EQ(b.Difference(a), Itemset({4}));
  EXPECT_EQ(a.Union(Itemset()), a);
  EXPECT_EQ(a.Intersect(Itemset()), Itemset());
}

TEST(ItemsetTest, With) {
  Itemset s({1, 5});
  EXPECT_EQ(s.With(3), Itemset({1, 3, 5}));
  EXPECT_EQ(s.With(5), s);
  EXPECT_EQ(s.With(0), Itemset({0, 1, 5}));
  EXPECT_EQ(s.With(9), Itemset({1, 5, 9}));
}

TEST(ItemsetTest, Ordering) {
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1}), Itemset({1, 2}));  // prefix is smaller
  EXPECT_LT(Itemset({0, 9}), Itemset({1}));
}

TEST(ItemsetTest, ToString) {
  EXPECT_EQ(Itemset({3, 1}).ToString(), "{1, 3}");
  EXPECT_EQ(Itemset().ToString(), "{}");
}

TEST(ItemsetTest, HashConsistentWithEquality) {
  ItemsetHash hash;
  EXPECT_EQ(hash(Itemset({1, 2, 3})), hash(Itemset({3, 2, 1})));
  std::unordered_set<Itemset, ItemsetHash> set;
  set.insert(Itemset({1, 2}));
  set.insert(Itemset({2, 1}));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(Itemset({1, 2})));
  EXPECT_FALSE(set.contains(Itemset({1, 3})));
}

TEST(ItemsetTest, VectorHashMatchesContent) {
  ItemVectorHash hash;
  EXPECT_EQ(hash({1, 2, 3}), hash({1, 2, 3}));
  EXPECT_NE(hash({1, 2, 3}), hash({1, 2, 4}));
}

TEST(ForEachSubsetTest, EnumeratesAllNonEmptySubsets) {
  Itemset base({1, 2, 3});
  std::vector<Itemset> seen;
  ForEachSubset(base, 0, [&](const Itemset& s) { seen.push_back(s); });
  EXPECT_EQ(seen.size(), 7u);  // 2³ − 1
  std::unordered_set<Itemset, ItemsetHash> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), 7u);
  for (const auto& s : seen) {
    EXPECT_TRUE(s.IsSubsetOf(base));
    EXPECT_FALSE(s.empty());
  }
}

TEST(ForEachSubsetTest, RespectsMaxSize) {
  Itemset base({1, 2, 3, 4});
  size_t count = 0;
  ForEachSubset(base, 2, [&](const Itemset& s) {
    EXPECT_LE(s.size(), 2u);
    ++count;
  });
  EXPECT_EQ(count, 10u);  // C(4,1) + C(4,2)
}

TEST(ForEachSubsetTest, EmptyBaseYieldsNothing) {
  size_t count = 0;
  ForEachSubset(Itemset(), 0, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace privbasis
