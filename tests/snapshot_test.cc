// Dataset snapshots: golden bytes, lossless round trip, corruption and
// version-skew rejection, and atomic-write failure injection.
#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/failpoint.h"
#include "store/io.h"

namespace privbasis::store {
namespace {

std::string HexDecode(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>(
        std::stoi(std::string(hex.substr(i, 2)), nullptr, 16)));
  }
  return out;
}

TransactionDatabase SmallDb() {
  TransactionDatabase::Builder builder(3);
  builder.AddTransaction(std::vector<Item>{0, 2});
  builder.AddTransaction(std::vector<Item>{1});
  auto db = std::move(builder).Build();
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

TEST(SnapshotTest, GoldenBytes) {
  // universe 3, transactions [[0,2],[1]] — the full 52-byte file.
  EXPECT_EQ(EncodeSnapshot(SmallDb()),
            HexDecode("5042534e41503031"            // "PBSNAP01"
                      "03000000"                    // universe
                      "0200000000000000"            // N
                      "0300000000000000"            // Σ|t|
                      "0200000001000000"            // lengths
                      "000000000200000001000000"    // items
                      "70a221ae"));                 // CRC32 of the body
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  TransactionDatabase::Builder builder(100);
  for (uint32_t i = 0; i < 50; ++i) {
    builder.AddTransaction(std::vector<Item>{i % 100, (i * 7) % 100,
                                             (i * 13 + 5) % 100});
  }
  builder.AddTransaction(std::vector<Item>{});  // empty transactions count
  auto db = std::move(builder).Build();
  ASSERT_TRUE(db.ok());

  auto decoded = DecodeSnapshot(EncodeSnapshot(*db));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->NumTransactions(), db->NumTransactions());
  EXPECT_EQ(decoded->UniverseSize(), db->UniverseSize());
  EXPECT_EQ(decoded->TotalItemOccurrences(), db->TotalItemOccurrences());
  EXPECT_EQ(decoded->ItemSupports(), db->ItemSupports());
  for (size_t i = 0; i < db->NumTransactions(); ++i) {
    const auto a = db->Transaction(i);
    const auto b = decoded->Transaction(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(SnapshotTest, CorruptionAndTruncationRejected) {
  const std::string good = EncodeSnapshot(SmallDb());

  std::string flipped = good;
  flipped[20] ^= 0x01;
  EXPECT_EQ(DecodeSnapshot(flipped).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(DecodeSnapshot(good.substr(0, good.size() - 5)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeSnapshot("PB").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeSnapshot("definitely not a snapshot").status().code(),
            StatusCode::kIoError);
}

TEST(SnapshotTest, VersionSkewRefused) {
  std::string skewed = EncodeSnapshot(SmallDb());
  skewed[6] = '9';
  skewed[7] = '9';
  EXPECT_EQ(DecodeSnapshot(skewed).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, FileRoundTripAndAtomicReplace) {
  const std::string path = "snapshot_test_file.snap";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteSnapshotFile(path, SmallDb(), /*fsync=*/false).ok());
  auto read_back = ReadSnapshotFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->NumTransactions(), 2u);

  // A failed rewrite must leave the existing snapshot untouched (the
  // atomic write dies before the rename).
  ASSERT_TRUE(failpoint::Configure("snapshot_write=error:ENOSPC").ok());
  TransactionDatabase::Builder builder(1);
  builder.AddTransaction(std::vector<Item>{0});
  auto other = std::move(builder).Build();
  ASSERT_TRUE(other.ok());
  const Status failed = WriteSnapshotFile(path, *other, /*fsync=*/false);
  failpoint::Reset();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
  auto survived = ReadSnapshotFile(path);
  ASSERT_TRUE(survived.ok());
  EXPECT_EQ(survived->NumTransactions(), 2u);  // the ORIGINAL content
  EXPECT_FALSE(FileExists(path + ".tmp"));     // no partial temp left

  // Same for a failed rename.
  ASSERT_TRUE(failpoint::Configure("snapshot_rename=error:EIO").ok());
  const Status rename_failed =
      WriteSnapshotFile(path, *other, /*fsync=*/false);
  failpoint::Reset();
  ASSERT_FALSE(rename_failed.ok());
  EXPECT_EQ(rename_failed.code(), StatusCode::kIoError);
  auto survived2 = ReadSnapshotFile(path);
  ASSERT_TRUE(survived2.ok());
  EXPECT_EQ(survived2->NumTransactions(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privbasis::store
