// HTTP layer contract (server/http.h + server/event_loop.h) and the
// same-dataset query batcher (core/batch_exec.h):
//   * request-line strictness — any extra or embedded whitespace is a
//     400, never a silently mis-split target (RFC 7230 §3.1.1);
//   * the pure-buffer parser handles byte-at-a-time delivery and
//     pipelined requests;
//   * HttpCall parses the status token after the first space (an
//     "HTTP/2 200" status line must not read garbage at offset 9);
//   * 204 responses carry no Content-Length and no body
//     (RFC 7230 §3.3.2), and the connection stays usable after one;
//   * the epoll loop serves pipelined requests and keeps parked
//     keep-alive connections from starving workers;
//   * batched queries release bit-identical results to unbatched runs
//     at the same seed, with ε charged per query.
#include "server/http.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_exec.h"
#include "engine/dataset.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"

namespace privbasis::server {
namespace {

using ::privbasis::testing::MakeRandomDb;

constexpr int64_t kCallTimeoutMs = 30'000;

std::unique_ptr<QueryServer> StartServer(ServerOptions options = {}) {
  auto server = std::make_unique<QueryServer>(std::move(options));
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started;
  return server;
}

// --- request-line strictness -------------------------------------------

HttpParseOutcome ParseOne(std::string text, HttpRequest* request = nullptr) {
  HttpRequest scratch;
  return ParseHttpRequest(&text, HttpLimits{},
                          request != nullptr ? request : &scratch)
      .outcome;
}

TEST(HttpParseTest, RejectsWhitespaceVariantsInRequestLine) {
  // An unencoded space in the target would silently truncate it to
  // "/a" under a naive 3-token split; all such lines must be 400s.
  for (const char* line : {
           "GET /a b HTTP/1.1",      // space inside the target
           "GET  /a HTTP/1.1",       // double space = empty token
           "GET /a HTTP/1.1 ",       // trailing space = 4th token
           "GET /a HTTP/1.1 extra",  // explicit 4th token
           "GET\t/a HTTP/1.1",       // tab is not a token separator
           "GET /a\tHTTP/1.1",
           "GET /a",                 // missing version
           " GET /a HTTP/1.1",       // leading space
       }) {
    EXPECT_EQ(ParseOne(std::string(line) + "\r\n\r\n",
                       nullptr),
              HttpParseOutcome::kMalformed)
        << "line: [" << line << "]";
  }
  HttpRequest request;
  ASSERT_EQ(ParseOne("GET /a%20b HTTP/1.1\r\n\r\n", &request),
            HttpParseOutcome::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/a%20b");
  EXPECT_EQ(request.version, "HTTP/1.1");
}

TEST(HttpParseTest, LiveServerRejectsWhitespaceRequestLine) {
  auto server = StartServer();
  auto fd = net::ConnectTcp(server->host(), server->port(),
                            net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(net::WriteAll(*fd, "GET /health z HTTP/1.1\r\nHost: t\r\n\r\n",
                            net::DeadlineAfterMs(kCallTimeoutMs))
                  .ok());
  char buf[512];
  auto n = net::ReadSome(*fd, buf, sizeof(buf),
                         net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(n.ok()) << n.status();
  ASSERT_GT(*n, 12u);
  EXPECT_EQ(std::string(buf, 12), "HTTP/1.1 400");
}

// --- incremental + pipelined parsing -----------------------------------

TEST(HttpParseTest, ParsesByteAtATime) {
  const std::string wire =
      "POST /v1/query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  std::string buffer;
  HttpRequest request;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer.push_back(wire[i]);
    ASSERT_EQ(ParseHttpRequest(&buffer, HttpLimits{}, &request).outcome,
              HttpParseOutcome::kNeedMore)
        << "after " << (i + 1) << " bytes";
  }
  buffer.push_back(wire.back());
  ASSERT_EQ(ParseHttpRequest(&buffer, HttpLimits{}, &request).outcome,
            HttpParseOutcome::kOk);
  EXPECT_EQ(request.body, "body");
  EXPECT_TRUE(buffer.empty());  // fully consumed
}

TEST(HttpParseTest, PipelinedRequestsConsumeOneAtATime) {
  std::string buffer =
      "GET /first HTTP/1.1\r\n\r\n"
      "POST /second HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
  HttpRequest request;
  ASSERT_EQ(ParseHttpRequest(&buffer, HttpLimits{}, &request).outcome,
            HttpParseOutcome::kOk);
  EXPECT_EQ(request.target, "/first");
  ASSERT_EQ(ParseHttpRequest(&buffer, HttpLimits{}, &request).outcome,
            HttpParseOutcome::kOk);
  EXPECT_EQ(request.target, "/second");
  EXPECT_EQ(request.body, "ok");
  EXPECT_TRUE(buffer.empty());
}

// --- HttpCall status-line parsing --------------------------------------

/// One-shot fake origin: accepts a single connection, reads the request
/// head, writes `response` verbatim, closes.
Result<HttpResponse> CallFakeOrigin(const std::string& response) {
  PRIVBASIS_ASSIGN_OR_RETURN(net::Fd listen, net::ListenTcp("127.0.0.1", 0));
  PRIVBASIS_ASSIGN_OR_RETURN(uint16_t port, net::LocalPort(listen));
  std::thread origin([&listen, response] {
    auto conn = net::AcceptWithDeadline(listen, net::DeadlineAfterMs(5000));
    if (!conn.ok() || !conn->valid()) return;
    char buf[4096];
    (void)net::ReadSome(*conn, buf, sizeof(buf), net::DeadlineAfterMs(5000));
    (void)net::WriteAll(*conn, response, net::DeadlineAfterMs(5000));
  });
  auto result = HttpCall("127.0.0.1", port, "GET", "/", "", 5000);
  origin.join();
  return result;
}

TEST(HttpCallTest, ParsesStatusAfterFirstSpaceNotFixedOffset) {
  // "HTTP/2 200 OK": a fixed offset 9 would read "0 O" as the code.
  auto h2 = CallFakeOrigin("HTTP/2 200 OK\r\nContent-Length: 2\r\n\r\nhi");
  ASSERT_TRUE(h2.ok()) << h2.status();
  EXPECT_EQ(h2->status, 200);
  EXPECT_EQ(h2->body, "hi");

  // No reason phrase at all is legal.
  auto bare = CallFakeOrigin("HTTP/1.1 404\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_EQ(bare->status, 404);

  // 204 without Content-Length (the correct framing).
  auto no_content = CallFakeOrigin("HTTP/1.1 204 No Content\r\n\r\n");
  ASSERT_TRUE(no_content.ok()) << no_content.status();
  EXPECT_EQ(no_content->status, 204);
  EXPECT_TRUE(no_content->body.empty());

  // Garbage status tokens are errors, not creative parses.
  EXPECT_FALSE(CallFakeOrigin("HTTP/1.1 ABC\r\n\r\n").ok());
  EXPECT_FALSE(CallFakeOrigin("HTTP/1.1 2000 OK\r\n\r\n").ok());
  EXPECT_FALSE(CallFakeOrigin("HTTP/1.1\r\n\r\n").ok());
}

// --- 204 framing ---------------------------------------------------------

TEST(HttpResponseTest, SerializeOmitsFramingOn204) {
  HttpResponse no_content;
  no_content.status = 204;
  no_content.body = "ignored";  // a 204 must not carry a body
  const std::string wire = SerializeHttpResponse(no_content);
  EXPECT_TRUE(wire.starts_with("HTTP/1.1 204 No Content\r\n")) << wire;
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos) << wire;
  EXPECT_EQ(wire.find("Content-Type"), std::string::npos) << wire;
  EXPECT_TRUE(wire.ends_with("\r\n\r\n")) << wire;
  EXPECT_EQ(wire.find("ignored"), std::string::npos) << wire;

  HttpResponse ok;
  ok.status = 200;
  ok.body = "{}";
  const std::string ok_wire = SerializeHttpResponse(ok);
  EXPECT_NE(ok_wire.find("Content-Length: 2\r\n"), std::string::npos)
      << ok_wire;
  EXPECT_TRUE(ok_wire.ends_with("\r\n\r\n{}")) << ok_wire;
}

TEST(HttpResponseTest, ConnectionSurvives204Delete) {
  // If the 204 carried "Content-Length: 0" a strict client would
  // still be fine — but one that trusts RFC 7230 framing for 204 and a
  // server that (incorrectly) appended a body would desync. Pin the
  // whole exchange on one keep-alive connection: DELETE → 204 with no
  // framing headers, then a /healthz on the SAME socket still answers.
  TransactionDatabase db = MakeRandomDb({.seed = 21});
  auto server = StartServer();
  const std::string id = *server->registry().Register(Dataset::Create(db));

  auto fd = net::ConnectTcp(server->host(), server->port(),
                            net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(net::WriteAll(*fd,
                            "DELETE /v1/datasets/" + id +
                                " HTTP/1.1\r\nHost: t\r\n\r\n",
                            net::DeadlineAfterMs(kCallTimeoutMs))
                  .ok());
  std::string raw;
  char buf[2048];
  while (raw.find("\r\n\r\n") == std::string::npos) {
    auto n = net::ReadSome(*fd, buf, sizeof(buf),
                           net::DeadlineAfterMs(kCallTimeoutMs));
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 0u);
    raw.append(buf, *n);
  }
  EXPECT_TRUE(raw.starts_with("HTTP/1.1 204")) << raw;
  EXPECT_EQ(raw.find("Content-Length"), std::string::npos) << raw;
  // Head only — no body may follow a 204.
  EXPECT_TRUE(raw.ends_with("\r\n\r\n")) << raw;

  ASSERT_TRUE(net::WriteAll(*fd, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
                            net::DeadlineAfterMs(kCallTimeoutMs))
                  .ok());
  auto n = net::ReadSome(*fd, buf, sizeof(buf),
                         net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(n.ok()) << n.status();
  ASSERT_GT(*n, 12u);
  EXPECT_EQ(std::string(buf, 12), "HTTP/1.1 200");
}

// --- event loop ----------------------------------------------------------

TEST(EventLoopTest, ServesPipelinedRequests) {
  auto server = StartServer();
  auto fd = net::ConnectTcp(server->host(), server->port(),
                            net::DeadlineAfterMs(kCallTimeoutMs));
  ASSERT_TRUE(fd.ok()) << fd.status();
  // Two requests in one write; the loop must answer both, in order,
  // without losing the second to a buffer reset.
  ASSERT_TRUE(net::WriteAll(*fd,
                            "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                            "GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n",
                            net::DeadlineAfterMs(kCallTimeoutMs))
                  .ok());
  std::string raw;
  char buf[8192];
  // Both responses are 200 with bodies; read until two heads + the
  // second body's closing brace arrived.
  size_t got = 0;
  while (got < 2) {
    auto n = net::ReadSome(*fd, buf, sizeof(buf),
                           net::DeadlineAfterMs(kCallTimeoutMs));
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 0u) << "peer closed after " << got << " responses";
    raw.append(buf, *n);
    got = 0;
    for (size_t pos = 0;
         (pos = raw.find("HTTP/1.1 200", pos)) != std::string::npos;
         pos += 12) {
      ++got;
    }
    if (got >= 2 && raw.find("\"batching\"") != std::string::npos) break;
  }
  EXPECT_GE(got, 2u);
  // First body is /healthz, second /v1/stats — order preserved.
  EXPECT_LT(raw.find("\"status\":\"ok\""), raw.find("\"queries\""));
}

TEST(EventLoopTest, ParkedKeepAliveConnectionsDontStarveWorkers) {
  // Thread-per-connection served each parked client a dedicated worker;
  // the event loop parks them for the price of an fd. With ONE worker
  // thread and several parked connections, a live request must still be
  // answered promptly.
  ServerOptions options;
  options.num_threads = 1;
  auto server = StartServer(std::move(options));

  std::vector<net::Fd> parked;
  for (int i = 0; i < 6; ++i) {
    auto fd = net::ConnectTcp(server->host(), server->port(),
                              net::DeadlineAfterMs(kCallTimeoutMs));
    ASSERT_TRUE(fd.ok()) << fd.status();
    // Half stay idle, half stall mid-request head — both park in the
    // loop, neither may occupy the worker.
    if (i % 2 == 0) {
      ASSERT_TRUE(net::WriteAll(*fd, "GET /healthz HT",
                                net::DeadlineAfterMs(kCallTimeoutMs))
                      .ok());
    }
    parked.push_back(std::move(*fd));
  }

  const auto started = std::chrono::steady_clock::now();
  auto health = HttpCall(server->host(), server->port(), "GET", "/healthz",
                         "", kCallTimeoutMs);
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  // Generous bound: with a starved pool this would block until the
  // parked clients' 30 s deadlines fire.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

// --- query batching ------------------------------------------------------

TEST(BatchExecTest, FusedOpsSplitBackExactly) {
  TransactionDatabase db = MakeRandomDb({.seed = 31, .num_transactions = 300});
  auto dataset = Dataset::Create(db);
  std::shared_ptr<const CountExecutor> direct = dataset->EnsureCountExecutor();
  ASSERT_NE(direct, nullptr);
  // Under PRIVBASIS_SHARDS this is the dataset's sharded executor rather
  // than a DirectCountExecutor; the fused/solo equivalence below must
  // hold either way.
  ASSERT_GE(direct->NumShards(), 1u);

  auto stats = std::make_shared<BatchStats>();
  BatchingCountExecutor batcher(
      direct, {.window_us = 2'000'000, .max_batch = 4}, stats);

  // Two members per round: both queries registered in flight before the
  // worker threads start, so the leader's target is 2 and neither op
  // passes through solo.
  batcher.BeginQuery();
  batcher.BeginQuery();

  const std::vector<Itemset> queries_a = {Itemset({1, 2}), Itemset({3})};
  const std::vector<Itemset> queries_b = {Itemset({2, 5}), Itemset({1}),
                                          Itemset({4, 7})};
  const std::vector<Item> items_a = {1, 2, 3, 5};
  const std::vector<Item> items_b = {2, 4, 6};
  BasisSet bases_a({Itemset({1, 2}), Itemset({3, 4})});
  BasisSet bases_b({Itemset({2, 5, 6})});

  Result<std::vector<uint64_t>> many_a = Status::Internal("unset");
  Result<std::vector<uint64_t>> pair_a = Status::Internal("unset");
  Result<std::vector<std::vector<uint64_t>>> bins_a =
      Status::Internal("unset");
  std::thread member_a([&] {
    many_a = batcher.SupportOfMany(queries_a, nullptr);
    pair_a = batcher.PairSupports(items_a, nullptr);
    bins_a = batcher.BasisBinCounts(bases_a, nullptr);
  });
  auto many_b = batcher.SupportOfMany(queries_b, nullptr);
  auto pair_b = batcher.PairSupports(items_b, nullptr);
  auto bins_b = batcher.BasisBinCounts(bases_b, nullptr);
  member_a.join();
  batcher.EndQuery();
  batcher.EndQuery();

  for (const auto* r : {&many_a, &pair_a}) {
    ASSERT_TRUE(r->ok()) << r->status();
  }
  ASSERT_TRUE(bins_a.ok()) << bins_a.status();
  ASSERT_TRUE(many_b.ok() && pair_b.ok() && bins_b.ok());

  // Every member's slice equals its solo (unbatched) run, bit for bit.
  EXPECT_EQ(*many_a, *direct->SupportOfMany(queries_a, nullptr));
  EXPECT_EQ(*many_b, *direct->SupportOfMany(queries_b, nullptr));
  EXPECT_EQ(*pair_a, *direct->PairSupports(items_a, nullptr));
  EXPECT_EQ(*pair_b, *direct->PairSupports(items_b, nullptr));
  EXPECT_EQ(*bins_a, *direct->BasisBinCounts(bases_a, nullptr));
  EXPECT_EQ(*bins_b, *direct->BasisBinCounts(bases_b, nullptr));

  // The scans actually fused (2 members each round, 3 op kinds).
  EXPECT_GE(stats->batches.load(), 3u);
  EXPECT_GE(stats->scans_saved.load(), 3u);
  EXPECT_EQ(stats->batched_queries.load(), stats->batches.load() * 2);
}

TEST(BatchExecTest, ServedBatchedQueriesBitIdenticalToUnbatched) {
  TransactionDatabase db = MakeRandomDb({.seed = 41, .num_transactions = 200});

  ServerOptions batched_options;
  batched_options.num_threads = 8;
  batched_options.batch_window_us = 20'000;
  batched_options.max_batch = 8;
  auto batched = StartServer(std::move(batched_options));
  auto batched_dataset = Dataset::Create(db);
  const std::string batched_id =
      *batched->registry().Register(batched_dataset);

  ServerOptions plain_options;
  plain_options.num_threads = 8;
  plain_options.batch_window_us = 0;  // off (and env-proof)
  plain_options.max_batch = 8;
  auto plain = StartServer(std::move(plain_options));
  auto plain_dataset = Dataset::Create(db);
  const std::string plain_id = *plain->registry().Register(plain_dataset);

  // A storm of same-dataset queries (distinct seeds) against each
  // server. On the batched one their candidate-support scans fuse; the
  // responses must nonetheless be byte-identical to the unbatched
  // server's.
  constexpr int kClients = 8;
  auto storm = [&](QueryServer& server, const std::string& id) {
    std::vector<std::string> bodies(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const std::string request = "{\"dataset\":\"" + id +
                                    "\",\"k\":10,\"epsilon\":1.0,\"seed\":" +
                                    std::to_string(100 + c) + "}";
        auto response = HttpCall(server.host(), server.port(), "POST",
                                 "/v1/query", request, kCallTimeoutMs);
        if (response.ok() && response->status == 200) {
          bodies[c] = std::move(response->body);
        }
      });
    }
    for (auto& t : clients) t.join();
    return bodies;
  };
  const std::vector<std::string> batched_bodies = storm(*batched, batched_id);
  const std::vector<std::string> plain_bodies = storm(*plain, plain_id);

  for (int c = 0; c < kClients; ++c) {
    ASSERT_FALSE(batched_bodies[c].empty()) << "client " << c;
    ASSERT_FALSE(plain_bodies[c].empty()) << "client " << c;
    // Byte-compare the releases except "spent_total" — the ledger's
    // cumulative spend at response time depends on which concurrent
    // client committed first on EACH server, not on batching.
    auto b = ReleaseFromJson(*json::Parse(batched_bodies[c]));
    auto p = ReleaseFromJson(*json::Parse(plain_bodies[c]));
    ASSERT_TRUE(b.ok() && p.ok()) << "client " << c;
    b->epsilon_spent_total = p->epsilon_spent_total = 0;
    EXPECT_EQ(ReleaseToJson(*b).Dump(), ReleaseToJson(*p).Dump())
        << "client " << c;
  }
  // ε was charged per QUERY, not per fused batch: both ledgers carry
  // one entry set per client and identical totals.
  EXPECT_EQ(batched_dataset->accountant()->ledger().size(),
            plain_dataset->accountant()->ledger().size());
  EXPECT_EQ(batched_dataset->accountant()->spent_epsilon(),
            plain_dataset->accountant()->spent_epsilon());

  // The batched server reports its config (fusions are load-dependent,
  // so only the knobs are asserted here).
  auto stats = HttpCall(batched->host(), batched->port(), "GET", "/v1/stats",
                        "", kCallTimeoutMs);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto parsed = json::Parse(stats->body);
  ASSERT_TRUE(parsed.ok());
  auto snapshot = StatsFromJson(*parsed);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->batch_window_us, 20'000);
  EXPECT_EQ(snapshot->batch_max, 8u);
}

}  // namespace
}  // namespace privbasis::server
