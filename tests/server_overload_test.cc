// Overload contract of the query server (server/server.h +
// server/admission.h), exercised in process at 2× capacity:
//   * a query whose predicted latency blows the SLO is refused with an
//     immediate 429 + Retry-After + the predicted cost, ε untouched;
//   * a connection arriving past the bounded worker queue is shed with
//     an immediate 503 + Retry-After — no request ever waits a deadline
//     out just to learn the server was full;
//   * a client deadline expiring mid-scan answers 408, frees the
//     worker, and charges the full reservation (fail-closed);
//   * under a 2×-capacity storm of mixed cheap/expensive queries with
//     failpoint-slowed scans, accepted ε sums exactly to the ledger and
//     admitted latencies stay within the SLO;
//   * admission never perturbs determinism: an admitted query is
//     bit-identical to a direct Engine::Run.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "server/admission.h"
#include "server/wire.h"
#include "test_util.h"

namespace privbasis::server {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

constexpr int64_t kCallTimeoutMs = 30'000;

std::unique_ptr<QueryServer> StartServer(ServerOptions options = {}) {
  auto server = std::make_unique<QueryServer>(std::move(options));
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started;
  return server;
}

Result<HttpResponse> Call(const QueryServer& server,
                          const std::string& method,
                          const std::string& target,
                          const std::string& body = "") {
  return HttpCall(server.host(), server.port(), method, target, body,
                  kCallTimeoutMs);
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

TEST(AdmissionControllerTest, DecideShedsOnCostAndQueueButNotCheapWork) {
  AdmissionController admission({.slo_ms = 100, .max_queue_depth = 4});

  // Cheap work admits regardless of backlog: a query that already holds
  // a worker IS the capacity, so a full queue alone must never starve
  // the server into zero throughput.
  EXPECT_TRUE(admission.Decide(1e4, 0).admit);
  EXPECT_TRUE(admission.Decide(1e4, 4).admit);

  // Predicted cost above the SLO sheds even with an empty queue.
  const AdmissionDecision expensive = admission.Decide(1e7, 0);
  EXPECT_FALSE(expensive.admit);
  EXPECT_EQ(expensive.reason, ShedReason::kPredictedCost);
  EXPECT_GT(expensive.predicted_ms, 100.0);
  EXPECT_GE(expensive.retry_after_s, 1);
  EXPECT_LE(expensive.retry_after_s, 60);

  // Expensive work meeting a full queue sheds as queue pressure (the
  // backlog ahead of it has eaten its latency headroom).
  const AdmissionDecision crowded = admission.Decide(1e7, 4);
  EXPECT_FALSE(crowded.admit);
  EXPECT_EQ(crowded.reason, ShedReason::kQueueFull);

  // Brand-new connections are bounded purely by depth (no spec yet).
  EXPECT_FALSE(admission.ShedConnection(3));
  EXPECT_TRUE(admission.ShedConnection(4));

  // Disabled knobs admit everything.
  AdmissionController off({});
  EXPECT_TRUE(off.Decide(1e12, 1000).admit);
  EXPECT_FALSE(off.ShedConnection(1000));
}

TEST(AdmissionControllerTest, CostModelOrdersSpecsAndCalibrates) {
  DatasetStats stats;
  stats.num_transactions = 1000;
  stats.avg_transaction_len = 8.0;
  stats.total_occurrences = 8000;

  // More k, more predicted work; subsampling scales it down.
  const QuerySpec k5 = QuerySpec().WithTopK(5);
  const QuerySpec k100 = QuerySpec().WithTopK(100);
  EXPECT_LT(CostModel::WorkUnits(stats, k5),
            CostModel::WorkUnits(stats, k100));
  EXPECT_LT(CostModel::WorkUnits(stats, QuerySpec(k100).WithAmplification(
                                            0.5)),
            CostModel::WorkUnits(stats, k100));
  EXPECT_GT(CostModel::WorkUnits(
                stats, QuerySpec().WithMethod(
                           QueryMethod::kTruncatedFrequency)),
            0.0);

  // Observations re-anchor the ns-per-unit EWMA; garbage observations
  // are ignored.
  CostModel model;
  const double before = model.PredictMs(1000.0);
  model.Observe(0.0, 5.0);
  model.Observe(1000.0, -1.0);
  EXPECT_DOUBLE_EQ(model.PredictMs(1000.0), before);
  model.Observe(1000.0, 1.0);  // observed 1000 ns/unit >> the 57 seed
  EXPECT_GT(model.PredictMs(1000.0), before);
}

TEST(ServerOverloadTest, PredictedCostShedIs429ImmediatelyLedgerUntouched) {
  // Large enough that the seeded cost model predicts well over 1 ms.
  TransactionDatabase db = MakeRandomDb(
      {.seed = 31, .num_transactions = 5000, .universe = 24,
       .item_prob = 0.3});
  ServerOptions options;
  options.admission.slo_ms = 1;
  auto server = StartServer(std::move(options));
  auto dataset = Dataset::Create(db, {.total_epsilon = 5.0});
  const std::string id = *server->registry().Register(dataset);

  const auto started = std::chrono::steady_clock::now();
  auto shed = Call(*server, "POST", "/v1/query",
                   "{\"dataset\":\"" + id +
                       "\",\"k\":100,\"epsilon\":0.5,\"seed\":3}");
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->status, 429);
  // The refusal is immediate — milliseconds, not a served-query's worth
  // of latency (generous bound for loaded CI machines).
  EXPECT_LT(ElapsedMs(started), 2500.0);

  // The shed names its own backoff and its reasoning.
  ASSERT_NE(shed->Header("Retry-After"), nullptr);
  auto body = json::Parse(shed->body);
  ASSERT_TRUE(body.ok());
  ASSERT_NE(body->Find("predicted_ms"), nullptr);
  EXPECT_GT(*body->Find("predicted_ms")->GetDouble(), 1.0);
  EXPECT_NE(body->Find("error"), nullptr);

  // Nothing was reserved, spent, or itemized.
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 0.0);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);
  EXPECT_TRUE(dataset->accountant()->ledger().empty());

  // The same SLO still admits cheap work: the model discriminates by
  // predicted cost, not blanket refusal.
  const std::string tiny = *server->registry().Register(
      Dataset::Create(MakeDb({{0, 1, 2}, {0, 1}, {1, 2}, {0, 2}, {1}})));
  auto cheap = Call(*server, "POST", "/v1/query",
                    "{\"dataset\":\"" + tiny +
                        "\",\"k\":3,\"epsilon\":0.5,\"seed\":4}");
  ASSERT_TRUE(cheap.ok()) << cheap.status();
  EXPECT_EQ(cheap->status, 200);

  const auto counters = server->counters();
  EXPECT_EQ(counters.queries_shed_predicted, 1u);
  EXPECT_EQ(counters.queries_admitted, 1u);
  EXPECT_EQ(counters.queries_completed, 1u);

  // /v1/stats mirrors the same counters and the live calibration.
  auto stats = Call(*server, "GET", "/v1/stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->status, 200);
  auto parsed = json::Parse(stats->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->Find("queries")->Find("shed_predicted")->GetUint(), 1u);
  EXPECT_EQ(*parsed->Find("queries")->Find("completed")->GetUint(), 1u);
  EXPECT_EQ(*parsed->Find("admission")->Find("slo_ms")->GetUint(), 1u);
  EXPECT_GT(*parsed->Find("admission")->Find("ns_per_unit")->GetDouble(),
            0.0);
}

TEST(ServerOverloadTest, DeadlineMidScanIs408AndChargesFullReservation) {
  TransactionDatabase db =
      MakeRandomDb({.seed = 13, .num_transactions = 200});
  auto server = StartServer();
  auto dataset = Dataset::Create(db, {.total_epsilon = 2.0});
  const std::string id = *server->registry().Register(dataset);

  // Stall the BasisFreq scan well past the client deadline: the cancel
  // token fires mid-scan, after the ε reservation.
  ASSERT_TRUE(failpoint::Configure("basis_freq_chunk=sleep:800").ok());
  auto cancelled = Call(*server, "POST", "/v1/query",
                        "{\"dataset\":\"" + id +
                            "\",\"k\":10,\"epsilon\":1.0,\"seed\":7,"
                            "\"deadline_ms\":200}");
  failpoint::Reset();
  ASSERT_TRUE(cancelled.ok()) << cancelled.status();
  EXPECT_EQ(cancelled->status, 408);

  // Fail-closed: noise may have been observed, so the aborted lease
  // charges its FULL reservation — never a refund, never a partial.
  EXPECT_DOUBLE_EQ(dataset->accountant()->spent_epsilon(), 1.0);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);
  ASSERT_EQ(dataset->accountant()->ledger().size(), 1u);

  const auto counters = server->counters();
  EXPECT_EQ(counters.queries_admitted, 1u);
  EXPECT_EQ(counters.queries_cancelled, 1u);
  EXPECT_EQ(counters.queries_completed, 0u);

  // The worker is free and the dataset still serves: the identical spec
  // without the stall completes and the ledger extends coherently.
  auto ok = Call(*server, "POST", "/v1/query",
                 "{\"dataset\":\"" + id +
                     "\",\"k\":10,\"epsilon\":1.0,\"seed\":7}");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->status, 200);
  EXPECT_DOUBLE_EQ(dataset->accountant()->reserved_epsilon(), 0.0);
  EXPECT_GT(dataset->accountant()->ledger().size(), 1u);
  EXPECT_GT(dataset->accountant()->spent_epsilon(), 1.0);
  EXPECT_LE(dataset->accountant()->spent_epsilon(), 2.0 + 1e-9);
}

TEST(ServerOverloadTest, TwoXCapacityStormShedsPromptlyConservesEpsilon) {
  // 12 one-shot clients against 2 workers + a 2-deep queue, every scan
  // failpoint-slowed to ~250 ms: three times the server's standing
  // capacity arrives at once. Contract: every refusal is an immediate
  // 503 + Retry-After (never a 408 after waiting, never a hang), every
  // completion lands within the SLO, and accepted ε sums exactly to the
  // ledger.
  TransactionDatabase db = MakeRandomDb(
      {.seed = 21, .num_transactions = 400, .universe = 24,
       .item_prob = 0.3});
  ServerOptions options;
  options.num_threads = 2;
  options.admission.slo_ms = 10'000;
  options.admission.max_queue_depth = 2;
  auto server = StartServer(std::move(options));
  auto dataset = Dataset::Create(db, {.total_epsilon = 100.0});
  const std::string id = *server->registry().Register(dataset);

  ASSERT_TRUE(failpoint::Configure("basis_freq_chunk=sleep:250").ok());

  constexpr int kClients = 12;
  struct Outcome {
    int status = 0;
    double elapsed_ms = 0.0;
    double spent = 0.0;
    bool has_retry_after = false;
    bool transport_error = false;
  };
  std::vector<Outcome> outcomes(kClients);
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Mixed load: alternate cheap and expensive specs.
      const std::string body =
          "{\"dataset\":\"" + id + "\",\"k\":" +
          std::to_string(c % 2 == 0 ? 5 : 40) +
          ",\"epsilon\":0.25,\"seed\":" + std::to_string(2000 + c) + "}";
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto started = std::chrono::steady_clock::now();
      auto response = Call(*server, "POST", "/v1/query", body);
      outcomes[c].elapsed_ms = ElapsedMs(started);
      if (!response.ok()) {
        outcomes[c].transport_error = true;
        return;
      }
      outcomes[c].status = response->status;
      outcomes[c].has_retry_after =
          response->Header("Retry-After") != nullptr;
      if (response->status == 200) {
        auto release = ReleaseFromJson(*json::Parse(response->body));
        if (release.ok()) outcomes[c].spent = release->epsilon_spent;
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  failpoint::Reset();

  int completed = 0;
  int shed = 0;
  double accepted_total = 0.0;
  double max_completed_ms = 0.0;
  for (const Outcome& outcome : outcomes) {
    ASSERT_FALSE(outcome.transport_error);
    if (outcome.status == 200) {
      ++completed;
      accepted_total += outcome.spent;
      max_completed_ms = std::max(max_completed_ms, outcome.elapsed_ms);
    } else {
      // Every refusal is a connection shed: immediate, retryable, and
      // self-describing. A 408 here would mean someone waited the
      // deadline out just to be turned away.
      ASSERT_EQ(outcome.status, 503) << "unexpected status";
      EXPECT_TRUE(outcome.has_retry_after);
      EXPECT_LT(outcome.elapsed_ms, 2000.0);
      ++shed;
    }
  }
  // 12 simultaneous arrivals, 4 slots (2 running + 2 queued), each held
  // ≥250 ms: sheds must happen, and everything accepted must finish.
  EXPECT_GT(shed, 0);
  EXPECT_GE(completed, 2);
  EXPECT_EQ(completed + shed, kClients);
  EXPECT_LE(max_completed_ms,
            static_cast<double>(server->admission().options().slo_ms));

  // ε conservation under overload: the ledger is exactly the accepted
  // spends — sheds and cancels left no trace, commits lost nothing.
  EXPECT_NEAR(dataset->accountant()->spent_epsilon(), accepted_total, 1e-9);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);
  double itemized = 0.0;
  for (const auto& entry : dataset->accountant()->ledger()) {
    itemized += entry.epsilon;
  }
  EXPECT_NEAR(itemized, accepted_total, 1e-9);
  // Every completed query itemized at least one ledger entry; nothing
  // else wrote any.
  EXPECT_GE(dataset->accountant()->ledger().size(),
            static_cast<size_t>(completed));

  const auto counters = server->counters();
  EXPECT_EQ(counters.connections_shed, static_cast<uint64_t>(shed));
  EXPECT_EQ(counters.queries_completed, static_cast<uint64_t>(completed));
  EXPECT_EQ(counters.queries_admitted, counters.queries_completed);

  // Determinism survives admission: a served query after the storm is
  // bit-identical to a direct Engine::Run on the same data.
  const QuerySpec spec =
      QuerySpec().WithTopK(8).WithEpsilon(0.25).WithSeed(777);
  json::Value body = QuerySpecToJson(spec);
  body.Set("dataset", id);
  auto served = Call(*server, "POST", "/v1/query", body.Dump());
  ASSERT_TRUE(served.ok()) << served.status();
  ASSERT_EQ(served->status, 200);
  auto release = ReleaseFromJson(*json::Parse(served->body));
  ASSERT_TRUE(release.ok()) << release.status();
  auto direct = Engine::Run(*Dataset::Create(db), spec);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_EQ(release->itemsets.size(), direct->itemsets.size());
  for (size_t i = 0; i < release->itemsets.size(); ++i) {
    EXPECT_EQ(release->itemsets[i].items, direct->itemsets[i].items);
    EXPECT_EQ(release->itemsets[i].noisy_count,
              direct->itemsets[i].noisy_count);
  }
}

}  // namespace
}  // namespace privbasis::server
