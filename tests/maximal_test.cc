#include "fim/maximal.h"

#include <gtest/gtest.h>

#include "fim/fpgrowth.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(MaximalTest, SimpleExample) {
  TransactionDatabase db = MakeDb({
      {0, 1, 2}, {0, 1, 2}, {0, 1}, {3},  {3},
  });
  auto maximal = MineMaximal(db, 2);
  ASSERT_TRUE(maximal.ok());
  // Frequent at support 2: {0},{1},{2},{3},{0,1},{0,2},{1,2},{0,1,2}.
  // Maximal: {0,1,2} and {3}; canonical order breaks the support tie by
  // ascending length, so {3} comes first.
  ASSERT_EQ(maximal->size(), 2u);
  EXPECT_EQ((*maximal)[0].items, Itemset({3}));
  EXPECT_EQ((*maximal)[1].items, Itemset({0, 1, 2}));
}

// Property: (1) every maximal itemset is frequent with no frequent
// superset; (2) every frequent itemset is a subset of some maximal one —
// exactly Proposition 3's "maximal frequent itemsets form a basis set".
class MaximalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaximalPropertyTest, Proposition3BasisProperty) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = GetParam(), .num_transactions = 50, .universe = 9,
       .item_prob = 0.45});
  const uint64_t theta = 5;
  auto all = MineFpGrowth(db, {.min_support = theta});
  auto maximal = MineMaximal(db, theta);
  ASSERT_TRUE(all.ok() && maximal.ok());

  // (1) no maximal itemset is a subset of another.
  for (size_t i = 0; i < maximal->size(); ++i) {
    for (size_t j = 0; j < maximal->size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE((*maximal)[i].items.IsSubsetOf((*maximal)[j].items));
    }
  }
  // (2) every frequent itemset is covered by some maximal itemset.
  for (const auto& fi : all->itemsets) {
    bool covered = false;
    for (const auto& m : *maximal) {
      if (fi.items.IsSubsetOf(m.items)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << fi.items.ToString();
  }
  // (3) maximal ⊆ frequent.
  for (const auto& m : *maximal) {
    EXPECT_GE(m.support, theta);
    EXPECT_EQ(m.support, db.SupportOf(m.items));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(MaximalTest, FilterMaximalOnHandBuiltCollection) {
  std::vector<FrequentItemset> frequent{
      {Itemset({0}), 5}, {Itemset({1}), 5},    {Itemset({0, 1}), 4},
      {Itemset({2}), 3}, {Itemset({0, 2}), 3},
  };
  auto maximal = FilterMaximal(frequent);
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].items, Itemset({0, 1}));
  EXPECT_EQ(maximal[1].items, Itemset({0, 2}));
}

TEST(MaximalTest, AllIndependentItemsAreMaximal) {
  std::vector<FrequentItemset> frequent{
      {Itemset({0}), 5}, {Itemset({1}), 4}, {Itemset({2}), 3}};
  auto maximal = FilterMaximal(frequent);
  EXPECT_EQ(maximal.size(), 3u);
}

TEST(MaximalTest, EmptyInput) {
  EXPECT_TRUE(FilterMaximal({}).empty());
}

}  // namespace
}  // namespace privbasis
