#include "core/basis.h"

#include <gtest/gtest.h>

namespace privbasis {
namespace {

TEST(BasisSetTest, WidthAndLength) {
  BasisSet b({Itemset({0, 1, 2}), Itemset({3, 4})});
  EXPECT_EQ(b.Width(), 2u);
  EXPECT_EQ(b.Length(), 3u);
  EXPECT_FALSE(b.Empty());
  EXPECT_TRUE(BasisSet().Empty());
  EXPECT_EQ(BasisSet().Length(), 0u);
}

TEST(BasisSetTest, Covers) {
  BasisSet b({Itemset({0, 1, 2}), Itemset({3, 4})});
  EXPECT_TRUE(b.Covers(Itemset({0, 1})));
  EXPECT_TRUE(b.Covers(Itemset({3, 4})));
  EXPECT_TRUE(b.Covers(Itemset({2})));
  EXPECT_FALSE(b.Covers(Itemset({0, 3})));  // spans two bases
  EXPECT_FALSE(b.Covers(Itemset({9})));
  EXPECT_TRUE(b.Covers(Itemset()));  // empty set is a subset of anything
}

TEST(BasisSetTest, CoveringBases) {
  BasisSet b({Itemset({0, 1, 2}), Itemset({1, 2, 3}), Itemset({4})});
  EXPECT_EQ(b.CoveringBases(Itemset({1, 2})), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(b.CoveringBases(Itemset({0})), (std::vector<size_t>{0}));
  EXPECT_TRUE(b.CoveringBases(Itemset({0, 4})).empty());
}

TEST(BasisSetTest, MergeReducesWidth) {
  // Proposition 4: merging keeps coverage and reduces w by one.
  BasisSet b({Itemset({0, 1}), Itemset({2, 3}), Itemset({4})});
  Itemset query({0, 1});
  b.Merge(0, 1);
  EXPECT_EQ(b.Width(), 2u);
  EXPECT_TRUE(b.Covers(query));
  EXPECT_TRUE(b.Covers(Itemset({2, 3})));
  EXPECT_TRUE(b.Covers(Itemset({0, 3})));  // newly covered by the union
  EXPECT_EQ(b.basis(0), Itemset({0, 1, 2, 3}));
}

TEST(BasisSetTest, MergeOrderIndependent) {
  BasisSet a({Itemset({0}), Itemset({1}), Itemset({2})});
  BasisSet b = a;
  a.Merge(0, 2);
  b.Merge(2, 0);
  EXPECT_EQ(a.bases()[0], b.bases()[0]);
  EXPECT_EQ(a.Width(), b.Width());
}

TEST(BasisSetTest, CandidateUpperBound) {
  BasisSet b({Itemset({0, 1, 2}), Itemset({3, 4})});
  // (2³−1) + (2²−1) = 7 + 3.
  EXPECT_EQ(b.CandidateUpperBound(), 10u);
  EXPECT_EQ(BasisSet().CandidateUpperBound(), 0u);
}

TEST(BasisSetTest, AllItems) {
  BasisSet b({Itemset({2, 5}), Itemset({1, 2}), Itemset({9})});
  EXPECT_EQ(b.AllItems(), Itemset({1, 2, 5, 9}));
}

TEST(BasisSetTest, ToStringMentionsShape) {
  BasisSet b({Itemset({0, 1})});
  std::string s = b.ToString();
  EXPECT_NE(s.find("w=1"), std::string::npos);
  EXPECT_NE(s.find("l=2"), std::string::npos);
}

}  // namespace
}  // namespace privbasis
