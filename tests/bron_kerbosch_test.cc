#include "graph/bron_kerbosch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace privbasis {
namespace {

std::set<Itemset> AsSet(const std::vector<Itemset>& cliques) {
  return std::set<Itemset>(cliques.begin(), cliques.end());
}

TEST(BronKerboschTest, TriangleWithPendant) {
  // 0-1-2 triangle plus edge 2-3: maximal cliques {0,1,2} and {2,3}.
  ItemGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  auto cliques = FindMaximalCliques(g);
  EXPECT_EQ(AsSet(cliques),
            (std::set<Itemset>{Itemset({0, 1, 2}), Itemset({2, 3})}));
}

TEST(BronKerboschTest, CompleteGraphIsOneClique) {
  ItemGraph g;
  for (Item a = 0; a < 6; ++a) {
    for (Item b = a + 1; b < 6; ++b) g.AddEdge(a, b);
  }
  auto cliques = FindMaximalCliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], Itemset({0, 1, 2, 3, 4, 5}));
}

TEST(BronKerboschTest, EmptyGraphNoCliques) {
  ItemGraph g;
  EXPECT_TRUE(FindMaximalCliques(g).empty());
}

TEST(BronKerboschTest, IsolatedNodesAreSingletonCliques) {
  ItemGraph g;
  g.AddNode(1);
  g.AddNode(2);
  auto cliques = FindMaximalCliques(g);
  EXPECT_EQ(AsSet(cliques), (std::set<Itemset>{Itemset({1}), Itemset({2})}));
}

TEST(BronKerboschTest, MinSizeFiltersSingletons) {
  ItemGraph g;
  g.AddEdge(0, 1);
  g.AddNode(5);
  auto cliques = FindMaximalCliques(g, 2);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], Itemset({0, 1}));
}

TEST(BronKerboschTest, StarGraph) {
  // Star: center 0, leaves 1..4 -> maximal cliques are the 4 edges.
  ItemGraph g;
  for (Item leaf = 1; leaf <= 4; ++leaf) g.AddEdge(0, leaf);
  auto cliques = FindMaximalCliques(g);
  EXPECT_EQ(cliques.size(), 4u);
  for (const auto& c : cliques) {
    EXPECT_EQ(c.size(), 2u);
    EXPECT_TRUE(c.Contains(0));
  }
}

TEST(BronKerboschTest, TwoTrianglesSharingAnEdge) {
  // 0-1-2 and 1-2-3: cliques {0,1,2}, {1,2,3}.
  ItemGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  auto cliques = FindMaximalCliques(g);
  EXPECT_EQ(AsSet(cliques),
            (std::set<Itemset>{Itemset({0, 1, 2}), Itemset({1, 2, 3})}));
}

TEST(BronKerboschTest, OutputSortedBySizeThenLex) {
  ItemGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 4);
  auto cliques = FindMaximalCliques(g);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], Itemset({2, 3, 4}));  // bigger first
  EXPECT_EQ(cliques[1], Itemset({0, 1}));
}

// Reference: brute-force maximal-clique enumeration over all subsets.
std::set<Itemset> BruteForceCliques(const ItemGraph& g) {
  std::vector<Item> nodes = g.Nodes();
  size_t n = nodes.size();
  std::vector<Itemset> all_cliques;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<Item> members;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) members.push_back(nodes[i]);
    }
    bool is_clique = true;
    for (size_t i = 0; i < members.size() && is_clique; ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (!g.HasEdge(members[i], members[j])) {
          is_clique = false;
          break;
        }
      }
    }
    if (is_clique) all_cliques.push_back(Itemset(members));
  }
  std::set<Itemset> maximal;
  for (const auto& c : all_cliques) {
    bool is_maximal = true;
    for (const auto& other : all_cliques) {
      if (c != other && c.IsSubsetOf(other)) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.insert(c);
  }
  return maximal;
}

class BronKerboschPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BronKerboschPropertyTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(GetParam());
  ItemGraph g;
  const Item n = 10;
  for (Item i = 0; i < n; ++i) g.AddNode(i);
  for (Item a = 0; a < n; ++a) {
    for (Item b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(0.4)) g.AddEdge(a, b);
    }
  }
  EXPECT_EQ(AsSet(FindMaximalCliques(g)), BruteForceCliques(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BronKerboschPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace privbasis
