// Shared helpers for the test suite: random small databases, exact
// reference computations, and unwrap assertions.
#ifndef PRIVBASIS_TESTS_TEST_UTIL_H_
#define PRIVBASIS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/transaction_db.h"

namespace privbasis::testing {

/// ASSERT-style unwrap of a Result<T>.
#define PRIVBASIS_ASSERT_OK(expr)                                   \
  do {                                                              \
    const auto& _st = (expr);                                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                        \
  } while (false)

#define PRIVBASIS_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                  \
  auto PRIVBASIS_CONCAT_(_r_, __LINE__) = (rexpr);                  \
  ASSERT_TRUE(PRIVBASIS_CONCAT_(_r_, __LINE__).ok())                \
      << PRIVBASIS_CONCAT_(_r_, __LINE__).status().ToString();      \
  lhs = std::move(PRIVBASIS_CONCAT_(_r_, __LINE__)).value()

/// Parameters of a random test database.
struct RandomDbSpec {
  uint64_t seed = 1;
  size_t num_transactions = 60;
  uint32_t universe = 12;
  double item_prob = 0.25;  ///< independent inclusion probability per item
};

/// Generates a small random database: each item joins each transaction
/// independently with probability item_prob (geometrically decaying by
/// item id so frequencies differ).
inline TransactionDatabase MakeRandomDb(const RandomDbSpec& spec) {
  Rng rng(spec.seed * 0x9e3779b9ULL + 17);
  TransactionDatabase::Builder builder(spec.universe);
  for (size_t t = 0; t < spec.num_transactions; ++t) {
    std::vector<Item> txn;
    for (Item i = 0; i < spec.universe; ++i) {
      double p = spec.item_prob * std::pow(0.85, static_cast<double>(i)) +
                 0.02;
      if (rng.Bernoulli(p)) txn.push_back(i);
    }
    builder.AddTransaction(txn);
  }
  auto db = std::move(builder).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

/// Builds a database from explicit transactions.
inline TransactionDatabase MakeDb(std::vector<std::vector<Item>> txns,
                                  uint32_t universe = 0) {
  TransactionDatabase::Builder builder(universe);
  for (auto& t : txns) builder.AddTransaction(std::move(t));
  auto db = std::move(builder).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

}  // namespace privbasis::testing

#endif  // PRIVBASIS_TESTS_TEST_UTIL_H_
