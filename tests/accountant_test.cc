// The Engine's privacy-budget ledger: reserve/commit semantics, overdraft
// refusal, fail-safe abort charging, and thread safety.
#include "engine/accountant.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

namespace privbasis {
namespace {

TEST(AccountantTest, AcquireCommitTracksSpend) {
  Accountant accountant(1.0);
  EXPECT_EQ(accountant.total_epsilon(), 1.0);
  {
    auto lease = accountant.Acquire(0.4, "q1");
    ASSERT_TRUE(lease.ok());
    EXPECT_NEAR(accountant.reserved_epsilon(), 0.4, 1e-12);
    EXPECT_EQ(accountant.spent_epsilon(), 0.0);
    lease->Commit(0.4);
  }
  EXPECT_NEAR(accountant.spent_epsilon(), 0.4, 1e-12);
  EXPECT_EQ(accountant.reserved_epsilon(), 0.0);
  EXPECT_NEAR(accountant.remaining_epsilon(), 0.6, 1e-12);
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].label, "q1");
  EXPECT_NEAR(ledger[0].epsilon, 0.4, 1e-12);
}

TEST(AccountantTest, CommitLessThanReservedReleasesRemainder) {
  Accountant accountant(1.0);
  auto lease = accountant.Acquire(0.5, "amplified");
  ASSERT_TRUE(lease.ok());
  lease->Commit(0.3);  // e.g. an amplified run's end-to-end ε < target
  EXPECT_NEAR(accountant.spent_epsilon(), 0.3, 1e-12);
  EXPECT_NEAR(accountant.remaining_epsilon(), 0.7, 1e-12);
}

TEST(AccountantTest, OverdraftReturnsBudgetExhausted) {
  Accountant accountant(1.0);
  auto first = accountant.Acquire(0.8, "a");
  ASSERT_TRUE(first.ok());
  // Outstanding reservations count against the budget.
  auto second = accountant.Acquire(0.3, "b");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBudgetExhausted);
  first->Commit(0.1);
  // After the small commit the headroom is back.
  auto third = accountant.Acquire(0.3, "c");
  EXPECT_TRUE(third.ok());
  third->CommitAll();
  EXPECT_NEAR(accountant.spent_epsilon(), 0.4, 1e-12);
}

TEST(AccountantTest, RejectsNonPositiveOrInfiniteReservation) {
  Accountant accountant(1.0);
  EXPECT_EQ(accountant.Acquire(0.0, "zero").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.Acquire(-1.0, "neg").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant
                .Acquire(std::numeric_limits<double>::infinity(), "inf")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(AccountantTest, AbandonedLeaseChargesFullReservation) {
  // Fail-safe: a mechanism that died mid-run may have observed noise, so
  // the uncommitted lease must charge its whole reservation.
  Accountant accountant(1.0);
  { auto lease = accountant.Acquire(0.6, "crashed"); ASSERT_TRUE(lease.ok()); }
  EXPECT_NEAR(accountant.spent_epsilon(), 0.6, 1e-12);
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].label, "crashed (aborted)");
}

TEST(AccountantTest, CommitIsIdempotent) {
  Accountant accountant(1.0);
  auto lease = accountant.Acquire(0.5, "q");
  ASSERT_TRUE(lease.ok());
  lease->Commit(0.5);
  lease->Commit(0.5);  // no effect
  EXPECT_NEAR(accountant.spent_epsilon(), 0.5, 1e-12);
  EXPECT_EQ(accountant.ledger().size(), 1u);
}

TEST(AccountantTest, BreakdownEntriesArePrefixedWithLeaseLabel) {
  Accountant accountant(1.0);
  auto lease = accountant.Acquire(1.0, "pb");
  ASSERT_TRUE(lease.ok());
  lease->Commit(1.0, {{"GetLambda", 0.1}, {"BasisFreq", 0.9}});
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].label, "pb/GetLambda");
  EXPECT_EQ(ledger[1].label, "pb/BasisFreq");
  EXPECT_NEAR(accountant.spent_epsilon(), 1.0, 1e-12);
}

TEST(AccountantTest, UnlimitedBudgetTracksButNeverRefuses) {
  Accountant accountant(Accountant::kUnlimited);
  for (int i = 0; i < 100; ++i) {
    auto lease = accountant.Acquire(10.0, "q");
    ASSERT_TRUE(lease.ok());
    lease->CommitAll();
  }
  EXPECT_NEAR(accountant.spent_epsilon(), 1000.0, 1e-9);
  EXPECT_EQ(accountant.remaining_epsilon(),
            std::numeric_limits<double>::infinity());
}

TEST(AccountantTest, ConcurrentAcquiresNeverOversubscribe) {
  // 32 threads each try to take 0.1 from a budget of 1.0: exactly 10 can
  // ever succeed regardless of interleaving.
  Accountant accountant(1.0);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(32);
  for (int t = 0; t < 32; ++t) {
    threads.emplace_back([&accountant, &granted] {
      auto lease = accountant.Acquire(0.1, "t");
      if (lease.ok()) {
        lease->CommitAll();
        granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 10);
  EXPECT_NEAR(accountant.spent_epsilon(), 1.0, 1e-9);
}

}  // namespace
}  // namespace privbasis
