// The Engine's privacy-budget ledger: reserve/commit semantics, overdraft
// refusal, fail-safe abort charging, and thread safety.
#include "engine/accountant.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <random>
#include <thread>
#include <vector>

namespace privbasis {
namespace {

TEST(AccountantTest, AcquireCommitTracksSpend) {
  Accountant accountant(1.0);
  EXPECT_EQ(accountant.total_epsilon(), 1.0);
  {
    auto lease = accountant.Acquire(0.4, "q1");
    ASSERT_TRUE(lease.ok());
    EXPECT_NEAR(accountant.reserved_epsilon(), 0.4, 1e-12);
    EXPECT_EQ(accountant.spent_epsilon(), 0.0);
    lease->Commit(0.4);
  }
  EXPECT_NEAR(accountant.spent_epsilon(), 0.4, 1e-12);
  EXPECT_EQ(accountant.reserved_epsilon(), 0.0);
  EXPECT_NEAR(accountant.remaining_epsilon(), 0.6, 1e-12);
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].label, "q1");
  EXPECT_NEAR(ledger[0].epsilon, 0.4, 1e-12);
}

TEST(AccountantTest, CommitLessThanReservedReleasesRemainder) {
  Accountant accountant(1.0);
  auto lease = accountant.Acquire(0.5, "amplified");
  ASSERT_TRUE(lease.ok());
  lease->Commit(0.3);  // e.g. an amplified run's end-to-end ε < target
  EXPECT_NEAR(accountant.spent_epsilon(), 0.3, 1e-12);
  EXPECT_NEAR(accountant.remaining_epsilon(), 0.7, 1e-12);
}

TEST(AccountantTest, OverdraftReturnsBudgetExhausted) {
  Accountant accountant(1.0);
  auto first = accountant.Acquire(0.8, "a");
  ASSERT_TRUE(first.ok());
  // Outstanding reservations count against the budget.
  auto second = accountant.Acquire(0.3, "b");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBudgetExhausted);
  first->Commit(0.1);
  // After the small commit the headroom is back.
  auto third = accountant.Acquire(0.3, "c");
  EXPECT_TRUE(third.ok());
  third->CommitAll();
  EXPECT_NEAR(accountant.spent_epsilon(), 0.4, 1e-12);
}

TEST(AccountantTest, RejectsNonPositiveOrInfiniteReservation) {
  Accountant accountant(1.0);
  EXPECT_EQ(accountant.Acquire(0.0, "zero").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.Acquire(-1.0, "neg").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant
                .Acquire(std::numeric_limits<double>::infinity(), "inf")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(AccountantTest, AbandonedLeaseChargesFullReservation) {
  // Fail-safe: a mechanism that died mid-run may have observed noise, so
  // the uncommitted lease must charge its whole reservation.
  Accountant accountant(1.0);
  { auto lease = accountant.Acquire(0.6, "crashed"); ASSERT_TRUE(lease.ok()); }
  EXPECT_NEAR(accountant.spent_epsilon(), 0.6, 1e-12);
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].label, "crashed (aborted)");
}

TEST(AccountantTest, CommitIsIdempotent) {
  Accountant accountant(1.0);
  auto lease = accountant.Acquire(0.5, "q");
  ASSERT_TRUE(lease.ok());
  lease->Commit(0.5);
  lease->Commit(0.5);  // no effect
  EXPECT_NEAR(accountant.spent_epsilon(), 0.5, 1e-12);
  EXPECT_EQ(accountant.ledger().size(), 1u);
}

TEST(AccountantTest, BreakdownEntriesArePrefixedWithLeaseLabel) {
  Accountant accountant(1.0);
  auto lease = accountant.Acquire(1.0, "pb");
  ASSERT_TRUE(lease.ok());
  lease->Commit(1.0, {{"GetLambda", 0.1}, {"BasisFreq", 0.9}});
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].label, "pb/GetLambda");
  EXPECT_EQ(ledger[1].label, "pb/BasisFreq");
  EXPECT_NEAR(accountant.spent_epsilon(), 1.0, 1e-12);
}

TEST(AccountantTest, UnlimitedBudgetTracksButNeverRefuses) {
  Accountant accountant(Accountant::kUnlimited);
  for (int i = 0; i < 100; ++i) {
    auto lease = accountant.Acquire(10.0, "q");
    ASSERT_TRUE(lease.ok());
    lease->CommitAll();
  }
  EXPECT_NEAR(accountant.spent_epsilon(), 1000.0, 1e-9);
  EXPECT_EQ(accountant.remaining_epsilon(),
            std::numeric_limits<double>::infinity());
}

TEST(AccountantTest, ConcurrentAcquiresNeverOversubscribe) {
  // 32 threads each try to take 0.1 from a budget of 1.0: exactly 10 can
  // ever succeed regardless of interleaving.
  Accountant accountant(1.0);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(32);
  for (int t = 0; t < 32; ++t) {
    threads.emplace_back([&accountant, &granted] {
      auto lease = accountant.Acquire(0.1, "t");
      if (lease.ok()) {
        lease->CommitAll();
        granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 10);
  EXPECT_NEAR(accountant.spent_epsilon(), 1.0, 1e-9);
}

/// In-memory journal with switchable failures, standing in for the store
/// layer's WAL. Counters need no locks: the Accountant calls all three
/// methods under its own mutex.
class FakeJournal : public AccountantJournal {
 public:
  bool fail_reserve = false;
  bool fail_commit = false;
  int reserves = 0;
  int commits = 0;
  int aborts = 0;

  Result<uint64_t> Reserve(double, const std::string&) override {
    if (fail_reserve) return Status::ResourceExhausted("journal: disk full");
    ++reserves;
    return next_txn_++;
  }
  Status Commit(uint64_t, double, const std::string&) override {
    if (fail_commit) return Status::IoError("journal: write failed");
    ++commits;
    return Status::OK();
  }
  Status Abort(uint64_t) override {
    ++aborts;
    return Status::OK();
  }

 private:
  uint64_t next_txn_ = 1;
};

TEST(AccountantTest, JournalReserveFailureRefusesWithLedgerUntouched) {
  Accountant accountant(1.0);
  auto journal = std::make_shared<FakeJournal>();
  accountant.AttachJournal(journal);

  journal->fail_reserve = true;
  auto refused = accountant.Acquire(0.5, "q");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // An unjournaled reservation never happened: nothing spent, nothing
  // reserved, nothing in the ledger.
  EXPECT_EQ(accountant.spent_epsilon(), 0.0);
  EXPECT_EQ(accountant.reserved_epsilon(), 0.0);
  EXPECT_TRUE(accountant.ledger().empty());

  journal->fail_reserve = false;
  auto granted = accountant.Acquire(0.5, "q");
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->CommitAll().ok());
  EXPECT_EQ(journal->commits, 1);
}

TEST(AccountantTest, JournalCommitFailureChargesFullReservation) {
  Accountant accountant(1.0);
  auto journal = std::make_shared<FakeJournal>();
  accountant.AttachJournal(journal);

  auto lease = accountant.Acquire(0.75, "q");
  ASSERT_TRUE(lease.ok());
  journal->fail_commit = true;
  const Status failed = lease->Commit(0.25);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The durable ledger holds an unresolved reservation that replay will
  // charge in full — the in-memory ledger must match it, not the smaller
  // actual the mechanism metered.
  EXPECT_EQ(accountant.spent_epsilon(), 0.75);
  EXPECT_EQ(accountant.reserved_epsilon(), 0.0);
  auto ledger = accountant.ledger();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].label, "q (journal failed)");
}

TEST(AccountantTest, JournalRecordsAbortOnLeaseDrop) {
  Accountant accountant(1.0);
  auto journal = std::make_shared<FakeJournal>();
  accountant.AttachJournal(journal);
  { auto lease = accountant.Acquire(0.5, "dies"); ASSERT_TRUE(lease.ok()); }
  EXPECT_EQ(journal->reserves, 1);
  EXPECT_EQ(journal->aborts, 1);
  EXPECT_EQ(journal->commits, 0);
  EXPECT_EQ(accountant.spent_epsilon(), 0.5);
}

TEST(AccountantTest, RestoreSeedsSpendOnceAndOnlyBeforeActivity) {
  Accountant accountant(1.0);
  ASSERT_TRUE(accountant.Restore(0.5, {{"boot", 0.5}}).ok());
  EXPECT_EQ(accountant.spent_epsilon(), 0.5);
  ASSERT_EQ(accountant.ledger().size(), 1u);
  EXPECT_EQ(accountant.ledger()[0].label, "boot");
  // A second restore would double-count.
  EXPECT_EQ(accountant.Restore(0.1, {}).code(),
            StatusCode::kFailedPrecondition);
  // And restoring over live activity is refused too.
  Accountant active(1.0);
  auto lease = active.Acquire(0.2, "q");
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(active.Restore(0.1, {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(active.Restore(-1.0, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST(AccountantTest, ConcurrentReserveAbortFuzzBalancesExactly) {
  // Dyadic ε values (k/1024 with small k) sum EXACTLY in binary64, so
  // this test can demand bit-exact bookkeeping — reserved must return to
  // precisely zero and spent must equal the per-thread expectation, no
  // tolerance — while threads race commits, partial commits, and drops.
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  Accountant accountant(Accountant::kUnlimited);
  auto journal = std::make_shared<FakeJournal>();
  accountant.AttachJournal(journal);

  std::atomic<bool> done{false};
  std::thread monitor([&accountant, &done] {
    // Committed spend is append-only: it must never regress mid-race.
    double last = 0.0;
    while (!done.load(std::memory_order_relaxed)) {
      const double spent = accountant.spent_epsilon();
      EXPECT_GE(spent, last);
      last = spent;
    }
  });

  std::vector<double> expected(kThreads, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&accountant, &expected, t] {
      std::mt19937_64 rng(1000 * t + 7);
      for (int i = 0; i < kIters; ++i) {
        const double eps = (1.0 + static_cast<double>(rng() % 16)) / 1024.0;
        auto lease = accountant.Acquire(eps, "fuzz");
        ASSERT_TRUE(lease.ok());
        switch (rng() % 3) {
          case 0:
            ASSERT_TRUE(lease->CommitAll().ok());
            expected[t] += eps;
            break;
          case 1:
            ASSERT_TRUE(lease->Commit(eps / 2.0).ok());
            expected[t] += eps / 2.0;
            break;
          default:
            // Drop the lease: fail-safe abort charges in full.
            expected[t] += eps;
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  done.store(true);
  monitor.join();

  double expected_total = 0.0;
  for (const double e : expected) expected_total += e;
  EXPECT_EQ(accountant.reserved_epsilon(), 0.0);           // exactly
  EXPECT_EQ(accountant.spent_epsilon(), expected_total);   // exactly
  EXPECT_EQ(accountant.ledger().size(),
            static_cast<size_t>(kThreads * kIters));
  EXPECT_EQ(journal->reserves, kThreads * kIters);
  EXPECT_EQ(journal->commits + journal->aborts, kThreads * kIters);
}

}  // namespace
}  // namespace privbasis
