#include "baseline/tf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "fim/topk.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

TEST(GammaTest, Equation3) {
  // γ = (4k/(εN))·(ln(k/ρ) + ln|U|).
  const uint64_t n = 88162;
  const size_t k = 100;
  const double epsilon = 1.0, rho = 0.9;
  const double log_u = std::log(16470.0);  // retail, m = 1
  double gamma = TfGamma(n, k, epsilon, rho, log_u);
  double expected =
      4.0 * 100 / (1.0 * 88162) * (std::log(100 / 0.9) + std::log(16470.0));
  EXPECT_NEAR(gamma, expected, 1e-12);
  // Paper Table 2(b): retail γ·N = 5768.
  EXPECT_NEAR(gamma * n, 5768.0, 5.0);
}

TEST(GammaTest, PaperTable2bRows) {
  // mushroom: |I|=119, m=2, k=100, N=8124 -> γ·N ≈ 5433.
  double log_u = TfLogCandidateSpace(119, 2);
  EXPECT_NEAR(TfGamma(8124, 100, 1.0, 0.9, log_u) * 8124, 5433.0, 10.0);
  // kosarak: |I|=41270, m=2, k=200, N=990002 -> γ·N ≈ 20733 (the paper
  // rounds |U| ≈ C(|I|,m); our exact Σ C(|I|,i) lands ~0.2% higher).
  log_u = TfLogCandidateSpace(41270, 2);
  EXPECT_NEAR(TfGamma(990002, 200, 1.0, 0.9, log_u) * 990002, 20733.0, 60.0);
  // AOL: |I|=2290685, m=1, k=200 -> γ·N ≈ 16038.
  log_u = TfLogCandidateSpace(2290685, 1);
  EXPECT_NEAR(TfGamma(647377, 200, 1.0, 0.9, log_u) * 647377, 16038.0, 30.0);
}

TEST(GammaTest, DegeneracyDetection) {
  // kosarak row: γ·N = 20733 > fk·N = 14142 -> degenerate.
  auto eff = ComputeTfEffectiveness(41270, 990002, 14142, 200, 2, 1.0, 0.9);
  EXPECT_TRUE(eff.degenerate);
  // mushroom row: γ·N = 5433 < fk·N = 4464? No — 5433 > 4464: degenerate
  // too (the paper's Table 2(b) shows TF ineffective for mushroom m=2).
  eff = ComputeTfEffectiveness(119, 8124, 4464, 100, 2, 1.0, 0.9);
  EXPECT_TRUE(eff.degenerate);
  // A clearly non-degenerate configuration: tiny k, large fk.
  eff = ComputeTfEffectiveness(100, 100000, 50000, 5, 1, 1.0, 0.9);
  EXPECT_FALSE(eff.degenerate);
}

TEST(TfRunnerTest, CreateValidatesArguments) {
  TransactionDatabase db = MakeRandomDb({.seed = 1});
  EXPECT_FALSE(TfRunner::Create(db, 0, {}).ok());
  TfOptions bad;
  bad.m = 0;
  EXPECT_FALSE(TfRunner::Create(db, 5, bad).ok());
}

TEST(TfRunnerTest, FailsWhenFewerThanKItemsets) {
  TransactionDatabase db = MakeDb({{0}});
  TfOptions options;
  options.m = 1;
  EXPECT_FALSE(TfRunner::Create(db, 10, options).ok());
}

TEST(TfRunnerTest, FkMatchesTopKMining) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 3, .num_transactions = 100, .universe = 12});
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(db, 10, options);
  ASSERT_TRUE(runner.ok());
  auto topk = MineTopK(db, 10, 2);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(runner->fk_count(), topk->kth_support);
}

TEST(TfRunnerTest, ExplicitSetContainsEverythingAboveFloor) {
  TransactionDatabase db = MakeRandomDb({.seed = 5, .universe = 10});
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(db, 8, options);
  ASSERT_TRUE(runner.ok());
  EXPECT_GE(runner->num_explicit(), 8u);
  EXPECT_GE(runner->floor_support(), 1u);
}

class TfSelectionVariantTest
    : public ::testing::TestWithParam<TfOptions::Selection> {};

TEST_P(TfSelectionVariantTest, HighEpsilonRecoversTopK) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 7, .num_transactions = 200, .universe = 14,
       .item_prob = 0.4});
  const size_t k = 12;
  TfOptions options;
  options.m = 2;
  options.selection = GetParam();
  auto runner = TfRunner::Create(db, k, options);
  ASSERT_TRUE(runner.ok());
  auto truth = MineTopK(db, k, 2);
  ASSERT_TRUE(truth.ok());

  Rng rng(9);
  auto result = runner->Run(/*epsilon=*/500.0, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->released.size(), k);
  std::unordered_set<Itemset, ItemsetHash> released;
  for (const auto& r : result->released) released.insert(r.items);
  size_t hits = 0;
  for (const auto& fi : truth->itemsets) hits += released.contains(fi.items);
  EXPECT_GE(hits, k - 1);
}

TEST_P(TfSelectionVariantTest, ReleasedCountsNearExactAtHighEpsilon) {
  TransactionDatabase db = MakeRandomDb({.seed = 11, .universe = 10});
  TfOptions options;
  options.m = 2;
  options.selection = GetParam();
  auto runner = TfRunner::Create(db, 5, options);
  ASSERT_TRUE(runner.ok());
  VerticalIndex index(db);
  Rng rng(13);
  auto result = runner->Run(1000.0, rng);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->released) {
    double exact = static_cast<double>(index.SupportOf(r.items));
    EXPECT_NEAR(r.noisy_count, exact, 0.5) << r.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TfSelectionVariantTest,
    ::testing::Values(TfOptions::Selection::kExponentialMechanism,
                      TfOptions::Selection::kLaplaceNoise));

TEST(TfRunnerTest, ReleasesExactlyKDistinctItemsets) {
  TransactionDatabase db = MakeRandomDb({.seed = 15, .universe = 12});
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(db, 10, options);
  ASSERT_TRUE(runner.ok());
  Rng rng(17);
  for (double epsilon : {0.2, 1.0, 5.0}) {
    auto result = runner->Run(epsilon, rng);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->released.size(), 10u);
    std::unordered_set<Itemset, ItemsetHash> unique;
    for (const auto& r : result->released) unique.insert(r.items);
    EXPECT_EQ(unique.size(), 10u) << "epsilon " << epsilon;
  }
}

TEST(TfRunnerTest, ItemsetLengthsRespectM) {
  TransactionDatabase db = MakeRandomDb({.seed = 19, .universe = 12});
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(db, 10, options);
  ASSERT_TRUE(runner.ok());
  Rng rng(21);
  auto result = runner->Run(0.1, rng);  // low ε: implicit draws happen
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->released) {
    EXPECT_GE(r.items.size(), 1u);
    EXPECT_LE(r.items.size(), 2u);
  }
}

TEST(TfRunnerTest, M1UsesSingletonFastPath) {
  TransactionDatabase db = MakeRandomDb({.seed = 23, .universe = 20});
  TfOptions options;
  options.m = 1;
  auto runner = TfRunner::Create(db, 5, options);
  ASSERT_TRUE(runner.ok());
  EXPECT_LE(runner->num_explicit(), 20u);
  Rng rng(25);
  auto result = runner->Run(1.0, rng);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->released) {
    EXPECT_EQ(r.items.size(), 1u);
  }
}

TEST(TfRunnerTest, DiagnosticsConsistent) {
  TransactionDatabase db = MakeRandomDb({.seed = 27, .universe = 12});
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(db, 10, options);
  ASSERT_TRUE(runner.ok());
  Rng rng(29);
  auto result = runner->Run(0.5, rng);
  ASSERT_TRUE(result.ok());
  double fk =
      static_cast<double>(runner->fk_count()) /
      static_cast<double>(db.NumTransactions());
  EXPECT_NEAR(result->truncated_freq, fk - result->gamma, 1e-12);
  EXPECT_EQ(result->degenerate, result->truncated_freq <= 0.0);
  auto eff = runner->Effectiveness(0.5);
  EXPECT_NEAR(eff.gamma_count,
              result->gamma * static_cast<double>(db.NumTransactions()), 1e-6);
}

TEST(TfRunnerTest, ChargesAccountant) {
  TransactionDatabase db = MakeRandomDb({.seed = 31, .universe = 10});
  TfOptions options;
  options.m = 1;
  auto runner = TfRunner::Create(db, 5, options);
  ASSERT_TRUE(runner.ok());
  PrivacyAccountant accountant(1.0);
  Rng rng(33);
  ASSERT_TRUE(runner->Run(0.7, rng, &accountant).ok());
  EXPECT_NEAR(accountant.spent_epsilon(), 0.7, 1e-12);
  EXPECT_FALSE(runner->Run(0.7, rng, &accountant).ok());
}

TEST(TfRunnerTest, LowEpsilonDegeneratePathSelectsImplicit) {
  // Tiny ε on a small dataset: γ >> fk, selection is near-uniform over U,
  // so most winners come from the implicit mass.
  TransactionDatabase db = MakeRandomDb(
      {.seed = 35, .num_transactions = 60, .universe = 18,
       .item_prob = 0.3});
  TfOptions options;
  options.m = 2;
  auto runner = TfRunner::Create(db, 10, options);
  ASSERT_TRUE(runner.ok());
  Rng rng(37);
  auto result = runner->Run(0.01, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degenerate);
  EXPECT_EQ(result->released.size(), 10u);
}

TEST(TfRunnerTest, ExplicitLimitRaisesFloorForM1) {
  // More singletons than the explicit cap: the m=1 path must raise its
  // floor until the set fits instead of failing.
  TransactionDatabase db = testing::MakeRandomDb(
      {.seed = 43, .num_transactions = 100, .universe = 30,
       .item_prob = 0.5});
  TfOptions options;
  options.m = 1;
  options.explicit_limit = 5;
  auto runner = TfRunner::Create(db, 3, options);
  ASSERT_TRUE(runner.ok());
  EXPECT_LE(runner->num_explicit(), 5u);
  EXPECT_GT(runner->floor_support(), 1u);
  Rng rng(45);
  auto result = runner->Run(1.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->released.size(), 3u);
}

TEST(TfRunnerTest, ExplicitLimitRaisesFloorForM2) {
  TransactionDatabase db = testing::MakeRandomDb(
      {.seed = 47, .num_transactions = 100, .universe = 20,
       .item_prob = 0.5});
  TfOptions options;
  options.m = 2;
  options.explicit_limit = 10;
  auto runner = TfRunner::Create(db, 4, options);
  ASSERT_TRUE(runner.ok());
  EXPECT_LE(runner->num_explicit(), 10u);
  Rng rng(49);
  auto result = runner->Run(2.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->released.size(), 4u);
}

TEST(TfRunnerTest, RejectsNonPositiveEpsilon) {
  TransactionDatabase db = MakeRandomDb({.seed = 39, .universe = 10});
  TfOptions options;
  options.m = 1;
  auto runner = TfRunner::Create(db, 5, options);
  ASSERT_TRUE(runner.ok());
  Rng rng(41);
  EXPECT_FALSE(runner->Run(0.0, rng).ok());
}

}  // namespace
}  // namespace privbasis
