#include "dp/amplification.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/amplified.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "fim/topk.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeRandomDb;

/// One subsampled query through the public entry point
/// (QuerySpec::WithAmplification → Engine::Run) with an external Rng.
Result<Release> RunAmplified(const TransactionDatabase& db, size_t k,
                             double epsilon, Rng& rng,
                             const AmplifiedOptions& options = {}) {
  QuerySpec spec;
  spec.k = k;
  spec.epsilon = epsilon;
  spec.sampling_rate = options.sampling_rate;
  spec.pb = options.base;
  auto handle = Dataset::Borrow(db);
  return Engine::Run(*handle, spec, rng);
}

TEST(AmplificationTest, FormulaBasics) {
  // q = 1: no amplification.
  EXPECT_NEAR(AmplifiedEpsilon(1.0, 0.7), 0.7, 1e-12);
  // Amplified epsilon is below the mechanism epsilon for q < 1.
  EXPECT_LT(AmplifiedEpsilon(0.5, 0.7), 0.7);
  // Small-ε regime: ε(q, ε') ≈ q·ε'.
  EXPECT_NEAR(AmplifiedEpsilon(0.1, 0.01), 0.001, 1e-5);
}

TEST(AmplificationTest, InverseRoundTrip) {
  for (double q : {0.1, 0.3, 0.7, 1.0}) {
    for (double target : {0.1, 0.5, 1.0, 2.0}) {
      double mechanism = MechanismEpsilonForTarget(q, target);
      EXPECT_GE(mechanism, target);
      EXPECT_NEAR(AmplifiedEpsilon(q, mechanism), target, 1e-9)
          << "q=" << q << " target=" << target;
    }
  }
}

TEST(AmplificationTest, MonotoneInQ) {
  // Smaller q -> more amplification -> larger usable mechanism budget.
  double e_small_q = MechanismEpsilonForTarget(0.1, 1.0);
  double e_big_q = MechanismEpsilonForTarget(0.9, 1.0);
  EXPECT_GT(e_small_q, e_big_q);
}

TEST(PoissonSubsampleTest, KeepsAboutQFraction) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 1, .num_transactions = 5000, .universe = 8});
  Rng rng(3);
  auto sample = PoissonSubsample(db, 0.3, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_NEAR(static_cast<double>(sample->NumTransactions()) / 5000.0, 0.3,
              0.03);
  EXPECT_EQ(sample->UniverseSize(), db.UniverseSize());
}

TEST(PoissonSubsampleTest, FullRateIsIdentityCount) {
  TransactionDatabase db = MakeRandomDb({.seed = 5});
  Rng rng(7);
  auto sample = PoissonSubsample(db, 1.0, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumTransactions(), db.NumTransactions());
  EXPECT_EQ(sample->TotalItemOccurrences(), db.TotalItemOccurrences());
}

TEST(PoissonSubsampleTest, ValidatesRate) {
  TransactionDatabase db = MakeRandomDb({.seed = 9});
  Rng rng(11);
  EXPECT_FALSE(PoissonSubsample(db, 0.0, rng).ok());
  EXPECT_FALSE(PoissonSubsample(db, 1.5, rng).ok());
}

TEST(PoissonSubsampleTest, FrequenciesPreservedInExpectation) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 13, .num_transactions = 3000, .universe = 8,
       .item_prob = 0.5});
  Rng rng(15);
  double acc = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    auto sample = PoissonSubsample(db, 0.4, rng);
    ASSERT_TRUE(sample.ok());
    ASSERT_GT(sample->NumTransactions(), 0u);
    acc += sample->ItemFrequency(0);
  }
  EXPECT_NEAR(acc / trials, db.ItemFrequency(0), 0.01);
}

TEST(AmplifiedPrivBasisTest, HighEpsilonStillAccurate) {
  auto db = GenerateDataset(SyntheticProfile::Mushroom(0.3), 17);
  ASSERT_TRUE(db.ok());
  const size_t k = 20;
  auto truth = MineTopK(*db, k);
  ASSERT_TRUE(truth.ok());

  AmplifiedOptions options;
  options.sampling_rate = 0.5;
  Rng rng(19);
  auto result = RunAmplified(*db, k, /*epsilon=*/50.0, rng, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Rescaled counts must approximate the full-data supports.
  size_t checked = 0;
  for (const auto& r : result->itemsets) {
    double exact = static_cast<double>(db->SupportOf(r.items));
    if (exact > 0) {
      EXPECT_NEAR(r.noisy_count / exact, 1.0, 0.15) << r.items.ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, k / 2);
}

TEST(AmplifiedPrivBasisTest, ReportsEndToEndEpsilon) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = 21, .num_transactions = 400, .universe = 10});
  AmplifiedOptions options;
  options.sampling_rate = 0.4;
  Rng rng(23);
  const double target = 1.0;
  auto result = RunAmplified(db, 10, target, rng, options);
  ASSERT_TRUE(result.ok());
  // The reported end-to-end guarantee never exceeds the target.
  EXPECT_LE(result->epsilon_spent, target + 1e-9);
}

TEST(AmplifiedPrivBasisTest, ValidatesArguments) {
  TransactionDatabase db = MakeRandomDb({.seed = 25});
  Rng rng(27);
  EXPECT_FALSE(RunAmplified(db, 10, 0.0, rng).ok());
  AmplifiedOptions bad;
  bad.sampling_rate = 0.0;
  EXPECT_FALSE(RunAmplified(db, 10, 1.0, rng, bad).ok());
}

}  // namespace
}  // namespace privbasis
