#include "core/construct_basis.h"

#include <gtest/gtest.h>

#include "core/error_variance.h"
#include "fim/fpgrowth.h"
#include "graph/bron_kerbosch.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeRandomDb;

TEST(ConstructBasisTest, SinglePairYieldsOneBasis) {
  auto basis = ConstructBasisSet({0, 1}, {Itemset({0, 1})});
  ASSERT_TRUE(basis.ok());
  EXPECT_TRUE(basis->Covers(Itemset({0, 1})));
  EXPECT_TRUE(basis->Covers(Itemset({0})));
}

TEST(ConstructBasisTest, LooseItemsPackedInTriples) {
  // 7 items, no pairs: ⌈7/3⌉ = 3 initial groups; the EV-driven
  // redistribution may dissolve small groups into others (width beats
  // length while 2^{l−1}/l² stays small), but every item stays covered
  // and no basis exceeds the length cap.
  auto basis = ConstructBasisSet({0, 1, 2, 3, 4, 5, 6}, {});
  ASSERT_TRUE(basis.ok());
  for (Item i = 0; i < 7; ++i) {
    EXPECT_TRUE(basis->Covers(Itemset({i}))) << i;
  }
  EXPECT_LE(basis->Width(), 3u);
  EXPECT_LE(basis->Length(), 12u);
}

TEST(ConstructBasisTest, CliquesBecomeBases) {
  // Pairs forming a triangle {0,1,2} plus the edge {3,4}.
  std::vector<Itemset> pairs{Itemset({0, 1}), Itemset({0, 2}),
                             Itemset({1, 2}), Itemset({3, 4})};
  auto basis = ConstructBasisSet({0, 1, 2, 3, 4}, pairs);
  ASSERT_TRUE(basis.ok());
  EXPECT_TRUE(basis->Covers(Itemset({0, 1, 2})));
  EXPECT_TRUE(basis->Covers(Itemset({3, 4})));
  for (const auto& pair : pairs) {
    EXPECT_TRUE(basis->Covers(pair)) << pair.ToString();
  }
}

TEST(ConstructBasisTest, RespectsMaxLength) {
  // A large clique cannot be merged beyond the cap.
  std::vector<Item> items;
  std::vector<Itemset> pairs;
  for (Item i = 0; i < 10; ++i) {
    items.push_back(i);
    for (Item j = i + 1; j < 10; ++j) pairs.push_back(Itemset({i, j}));
  }
  ConstructBasisOptions options;
  options.max_basis_length = 12;
  auto basis = ConstructBasisSet(items, pairs, options);
  ASSERT_TRUE(basis.ok());
  EXPECT_LE(basis->Length(), 12u);
  EXPECT_TRUE(basis->Covers(Itemset(items)));  // the 10-clique itself
}

TEST(ConstructBasisTest, OversizedCliqueSplitCoversAllEdges) {
  // An 8-clique under a length cap of 4 must be split into bases of
  // length <= 4 that still cover every pair (the queries P holds).
  std::vector<Item> items;
  std::vector<Itemset> pairs;
  for (Item i = 0; i < 8; ++i) {
    items.push_back(i);
    for (Item j = i + 1; j < 8; ++j) pairs.push_back(Itemset({i, j}));
  }
  ConstructBasisOptions options;
  options.max_basis_length = 4;
  auto basis = ConstructBasisSet(items, pairs, options);
  ASSERT_TRUE(basis.ok());
  EXPECT_LE(basis->Length(), 4u);
  for (const auto& pair : pairs) {
    EXPECT_TRUE(basis->Covers(pair)) << pair.ToString();
  }
  for (Item i = 0; i < 8; ++i) {
    EXPECT_TRUE(basis->Covers(Itemset({i})));
  }
}

TEST(ConstructBasisTest, HardLengthCapAlwaysHolds) {
  // Random graphs, tight cap: no basis may ever exceed it.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    std::vector<Item> items;
    std::vector<Itemset> pairs;
    for (Item i = 0; i < 14; ++i) items.push_back(i);
    for (Item i = 0; i < 14; ++i) {
      for (Item j = i + 1; j < 14; ++j) {
        if (rng.Bernoulli(0.5)) pairs.push_back(Itemset({i, j}));
      }
    }
    ConstructBasisOptions options;
    options.max_basis_length = 5;
    auto basis = ConstructBasisSet(items, pairs, options);
    ASSERT_TRUE(basis.ok());
    EXPECT_LE(basis->Length(), 5u) << "seed " << seed;
    for (const auto& pair : pairs) {
      EXPECT_TRUE(basis->Covers(pair)) << pair.ToString();
    }
  }
}

TEST(ConstructBasisTest, EmptyInputs) {
  auto basis = ConstructBasisSet({}, {});
  ASSERT_TRUE(basis.ok());
  EXPECT_TRUE(basis->Empty());
}

TEST(ConstructBasisTest, RejectsNonPairs) {
  EXPECT_FALSE(ConstructBasisSet({0, 1, 2}, {Itemset({0, 1, 2})}).ok());
  EXPECT_FALSE(ConstructBasisSet({0}, {Itemset({0})}).ok());
}

TEST(ConstructBasisTest, RejectsTinyLengthCap) {
  ConstructBasisOptions options;
  options.max_basis_length = 2;
  EXPECT_FALSE(ConstructBasisSet({0, 1}, {}, options).ok());
}

TEST(ConstructBasisTest, MergingNeverIncreasesEv) {
  // The returned basis set's average-case EV over F ∪ P must be no worse
  // than the un-merged cliques + triples construction.
  std::vector<Item> items{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<Itemset> pairs{Itemset({0, 1}), Itemset({1, 2}),
                             Itemset({3, 4})};
  auto basis = ConstructBasisSet(items, pairs);
  ASSERT_TRUE(basis.ok());

  // Reference: raw maximal cliques + triples of loose items.
  ItemGraph graph = ItemGraph::FromItemsAndPairs(items, pairs);
  std::vector<Itemset> raw = FindMaximalCliques(graph, 2);
  raw.push_back(Itemset({5, 6, 7}));
  BasisSet unoptimized(raw);

  std::vector<Itemset> queries;
  for (Item it : items) queries.push_back(Itemset({it}));
  for (const auto& p : pairs) queries.push_back(p);
  EXPECT_LE(AverageCaseEv(*basis, queries),
            AverageCaseEv(unoptimized, queries) + 1e-9);
}

// The paper's coverage invariant (Propositions 4 + 5): a basis set built
// from the exact θ-frequent items and pairs covers every exact θ-frequent
// itemset.
class CoveragePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoveragePropertyTest, CoversAllThetaFrequentItemsets) {
  TransactionDatabase db = MakeRandomDb(
      {.seed = GetParam(), .num_transactions = 80, .universe = 12,
       .item_prob = 0.4});
  const uint64_t theta = 12;
  auto all = MineFpGrowth(db, {.min_support = theta});
  ASSERT_TRUE(all.ok());

  std::vector<Item> freq_items;
  std::vector<Itemset> freq_pairs;
  for (const auto& fi : all->itemsets) {
    if (fi.items.size() == 1) freq_items.push_back(fi.items[0]);
    if (fi.items.size() == 2) freq_pairs.push_back(fi.items);
  }
  auto basis = ConstructBasisSet(freq_items, freq_pairs);
  ASSERT_TRUE(basis.ok());
  for (const auto& fi : all->itemsets) {
    EXPECT_TRUE(basis->Covers(fi.items))
        << "uncovered θ-frequent itemset " << fi.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveragePropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ConstructBasisTest, DuplicateItemsHandled) {
  auto basis = ConstructBasisSet({0, 0, 1, 1}, {});
  ASSERT_TRUE(basis.ok());
  EXPECT_TRUE(basis->Covers(Itemset({0})));
  EXPECT_TRUE(basis->Covers(Itemset({1})));
  // No item may appear in two B2 groups.
  size_t zero_count = 0;
  for (const auto& b : basis->bases()) zero_count += b.Contains(0);
  EXPECT_EQ(zero_count, 1u);
}

}  // namespace
}  // namespace privbasis
