// The Engine facade: central validation, budget metering across repeated
// queries, cache transparency (warm == cold, bit for bit), and
// concurrency determinism — including once-only cold builds under the
// per-cache-entry locking.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/failpoint.h"

#include "data/synthetic.h"
#include "test_util.h"

namespace privbasis {
namespace {

using ::privbasis::testing::MakeDb;
using ::privbasis::testing::MakeRandomDb;

std::shared_ptr<Dataset> SmallDataset(double total_epsilon =
                                          Accountant::kUnlimited) {
  return Dataset::Create(MakeRandomDb({.seed = 7, .num_transactions = 200}),
                         {.total_epsilon = total_epsilon});
}

bool SameRelease(const std::vector<NoisyItemset>& a,
                 const std::vector<NoisyItemset>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].items == b[i].items) || a[i].noisy_count != b[i].noisy_count) {
      return false;
    }
  }
  return true;
}

TEST(QuerySpecTest, ValidateCentralizesOptionChecks) {
  EXPECT_FALSE(QuerySpec().WithTopK(0).Validate().ok());
  EXPECT_FALSE(QuerySpec().WithEpsilon(0.0).Validate().ok());
  EXPECT_FALSE(QuerySpec().WithEpsilon(-1.0).Validate().ok());
  EXPECT_FALSE(
      QuerySpec()
          .WithEpsilon(std::numeric_limits<double>::infinity())
          .Validate()
          .ok());
  EXPECT_FALSE(QuerySpec().WithThreshold(1.5, 10).Validate().ok());
  EXPECT_FALSE(QuerySpec().WithThreshold(0.1, 0).Validate().ok());
  EXPECT_FALSE(QuerySpec().WithAmplification(0.0).Validate().ok());
  EXPECT_FALSE(QuerySpec().WithAmplification(1.5).Validate().ok());
  EXPECT_FALSE(QuerySpec().WithRules(0.0).Validate().ok());

  QuerySpec bad_alpha;
  bad_alpha.pb.alpha1 = 0.5;
  bad_alpha.pb.alpha2 = 0.5;
  bad_alpha.pb.alpha3 = 0.5;
  EXPECT_FALSE(bad_alpha.Validate().ok());
  QuerySpec zero_alpha;
  zero_alpha.pb.alpha1 = 0.0;
  EXPECT_FALSE(zero_alpha.Validate().ok());
  QuerySpec bad_eta;
  bad_eta.pb.eta = 0.9;
  EXPECT_FALSE(bad_eta.Validate().ok());
  QuerySpec nan_theta;
  nan_theta.theta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(nan_theta.Validate().ok());

  QuerySpec tf;
  tf.WithMethod(QueryMethod::kTruncatedFrequency);
  tf.tf.m = 0;
  EXPECT_FALSE(tf.Validate().ok());
  tf.tf.m = 2;
  EXPECT_TRUE(tf.Validate().ok());
  // Threshold mode and amplification are PrivBasis-only.
  EXPECT_FALSE(QuerySpec(tf).WithThreshold(0.1, 10).Validate().ok());
  EXPECT_FALSE(QuerySpec(tf).WithAmplification(0.5).Validate().ok());

  EXPECT_TRUE(QuerySpec().Validate().ok());
  EXPECT_TRUE(QuerySpec().WithThreshold(0.1, 100).Validate().ok());
}

TEST(EngineTest, InvalidSpecRejectedBeforeAnySpend) {
  auto dataset = SmallDataset(1.0);
  auto release = Engine::Run(*dataset, QuerySpec().WithTopK(0));
  EXPECT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 0.0);
}

TEST(EngineTest, BudgetExhaustionAcrossRepeatedQueries) {
  auto dataset = SmallDataset(/*total_epsilon=*/1.0);
  QuerySpec spec = QuerySpec().WithTopK(5).WithEpsilon(0.4);
  ASSERT_TRUE(Engine::Run(*dataset, QuerySpec(spec).WithSeed(1)).ok());
  ASSERT_TRUE(Engine::Run(*dataset, QuerySpec(spec).WithSeed(2)).ok());
  // Third 0.4 query would overdraw 1.0: refused with kBudgetExhausted
  // before any noise is drawn, and nothing is recorded.
  auto third = Engine::Run(*dataset, QuerySpec(spec).WithSeed(3));
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_NEAR(dataset->accountant()->spent_epsilon(), 0.8, 1e-9);
  // A smaller query still fits.
  auto small = Engine::Run(
      *dataset, QuerySpec(spec).WithEpsilon(0.2).WithSeed(4));
  EXPECT_TRUE(small.ok());
  EXPECT_NEAR(dataset->accountant()->remaining_epsilon(), 0.0, 1e-9);
}

TEST(EngineTest, PreNoiseFailureChargesNothing) {
  // A deterministic setup failure (TF preprocessing: fewer than k
  // itemsets of length ≤ m) happens before the budget reservation, so
  // it must not consume any of a finite dataset budget.
  auto dataset = Dataset::Create(MakeDb({{0, 1}, {0, 1}, {1}}),
                                 {.total_epsilon = 1.0});
  QuerySpec spec;
  spec.WithMethod(QueryMethod::kTruncatedFrequency)
      .WithTopK(1000)
      .WithEpsilon(0.5);
  spec.tf.m = 1;
  auto release = Engine::Run(*dataset, spec);
  EXPECT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 0.0);
  EXPECT_TRUE(dataset->accountant()->ledger().empty());
  // The budget is fully available for a valid follow-up query.
  auto ok = Engine::Run(
      *dataset, QuerySpec().WithTopK(2).WithEpsilon(1.0).WithSeed(1));
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(EngineTest, EpsilonSpentComesFromLedger) {
  auto dataset = SmallDataset();
  auto release = Engine::Run(
      *dataset, QuerySpec().WithTopK(10).WithEpsilon(0.8).WithSeed(5));
  ASSERT_TRUE(release.ok());
  EXPECT_GT(release->epsilon_spent, 0.0);
  EXPECT_LE(release->epsilon_spent, 0.8 + 1e-9);
  // The release's number IS the ledger's number.
  EXPECT_NEAR(release->epsilon_spent, dataset->accountant()->spent_epsilon(),
              1e-12);
  // And the itemized entries sum to it.
  double itemized = 0.0;
  for (const auto& entry : dataset->accountant()->ledger()) {
    itemized += entry.epsilon;
  }
  EXPECT_NEAR(itemized, release->epsilon_spent, 1e-12);
}

TEST(EngineTest, AmplifiedSpendEqualsMeteredSpend) {
  auto dataset = SmallDataset();
  const double target = 1.0;
  auto release = Engine::Run(*dataset, QuerySpec()
                                           .WithTopK(10)
                                           .WithEpsilon(target)
                                           .WithAmplification(0.5)
                                           .WithSeed(9));
  ASSERT_TRUE(release.ok()) << release.status();
  // End-to-end guarantee ≤ target, and reported == committed.
  EXPECT_LE(release->epsilon_spent, target + 1e-9);
  EXPECT_GT(release->epsilon_spent, 0.0);
  EXPECT_NEAR(release->epsilon_spent, dataset->accountant()->spent_epsilon(),
              1e-12);
}

TEST(EngineTest, WarmCacheResultsIdenticalToColdCache) {
  TransactionDatabase db = MakeRandomDb({.seed = 11, .num_transactions = 300});
  QuerySpec spec = QuerySpec().WithTopK(12).WithEpsilon(1.0).WithSeed(77);

  // Cold: a fresh handle per run.
  auto cold = Engine::Run(*Dataset::Create(db), spec);
  ASSERT_TRUE(cold.ok());

  // Warm: one handle, second query hits every cache.
  auto dataset = Dataset::Create(db);
  auto first = Engine::Run(*dataset, spec);
  ASSERT_TRUE(first.ok());
  auto counters_after_first = dataset->cache_counters();
  auto warm = Engine::Run(*dataset, spec);
  ASSERT_TRUE(warm.ok());
  auto counters_after_second = dataset->cache_counters();

  // The second run rebuilt nothing...
  EXPECT_EQ(counters_after_second.margin_mines,
            counters_after_first.margin_mines);
  EXPECT_EQ(counters_after_second.index_builds,
            counters_after_first.index_builds);
  // ...and produced the bit-identical release.
  EXPECT_TRUE(SameRelease(cold->itemsets, warm->itemsets));
  EXPECT_TRUE(SameRelease(first->itemsets, warm->itemsets));
  EXPECT_EQ(cold->lambda, warm->lambda);
  EXPECT_EQ(cold->lambda2, warm->lambda2);
}

TEST(EngineTest, ConcurrentRunsBitIdenticalToSequential) {
  auto dataset = SmallDataset();
  constexpr int kQueries = 8;

  // Sequential reference, one seed per query.
  std::vector<std::vector<NoisyItemset>> sequential(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    auto release = Engine::Run(
        *dataset,
        QuerySpec().WithTopK(10).WithEpsilon(1.0).WithSeed(100 + q));
    ASSERT_TRUE(release.ok());
    sequential[q] = std::move(release->itemsets);
  }

  // Same queries, all at once, on a second (cold) shared handle.
  auto shared = SmallDataset();
  std::vector<std::vector<NoisyItemset>> concurrent(kQueries);
  std::vector<Status> statuses(kQueries);
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&shared, &concurrent, &statuses, q] {
      auto release = Engine::Run(
          *shared,
          QuerySpec().WithTopK(10).WithEpsilon(1.0).WithSeed(100 + q));
      statuses[q] = release.status();
      if (release.ok()) concurrent[q] = std::move(release->itemsets);
    });
  }
  for (auto& thread : threads) thread.join();

  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(statuses[q].ok()) << statuses[q];
    EXPECT_TRUE(SameRelease(sequential[q], concurrent[q])) << "query " << q;
  }
  // All eight queries were metered.
  EXPECT_NEAR(shared->accountant()->spent_epsilon(),
              dataset->accountant()->spent_epsilon(), 1e-9);
}

TEST(EngineTest, ExternalRngOverloadMatchesSeededRun) {
  // The advanced overload threading a caller-owned Rng must produce the
  // bit-identical release a seeded run does — for every spec variant
  // (the contract the sweep harness and statistical tests rely on).
  TransactionDatabase db = MakeRandomDb({.seed = 13, .num_transactions = 250});
  auto dataset = Dataset::Create(db);
  const QuerySpec variants[] = {
      QuerySpec().WithTopK(15).WithEpsilon(1.0).WithSeed(21),
      QuerySpec().WithThreshold(0.3, 40).WithEpsilon(1.0).WithSeed(23),
      QuerySpec().WithTopK(15).WithEpsilon(1.0).WithAmplification(0.6)
          .WithSeed(25),
  };
  for (const QuerySpec& spec : variants) {
    Rng rng(spec.seed);
    auto via_rng = Engine::Run(*dataset, spec, rng);
    ASSERT_TRUE(via_rng.ok()) << via_rng.status();
    auto via_seed = Engine::Run(*dataset, spec);
    ASSERT_TRUE(via_seed.ok()) << via_seed.status();
    EXPECT_TRUE(SameRelease(via_rng->itemsets, via_seed->itemsets));
    EXPECT_NEAR(via_rng->epsilon_spent, via_seed->epsilon_spent, 1e-12);
  }
}

TEST(DatasetTest, ConcurrentColdBuildsBuildEachEntryOnce) {
  // Per-cache-entry locking: many threads first-touching a fresh handle
  // across ALL cache kinds at once must build every entry exactly once
  // (no double build on one entry, no lost build), and every thread must
  // read the same values.
  TransactionDatabase db = MakeRandomDb({.seed = 41, .num_transactions = 200});
  auto dataset = Dataset::Create(db);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint64_t> margins(kThreads);
  std::vector<Status> statuses(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dataset, &margins, &statuses, t] {
      dataset->Stats();
      if (dataset->Index() == nullptr) {
        statuses[t] = Status::Internal("null index");
        return;
      }
      auto margin = dataset->MarginSupport(10, 1.0);
      if (!margin.ok()) {
        statuses[t] = margin.status();
        return;
      }
      margins[t] = *margin;
      auto truth = dataset->Truth(12);
      if (!truth.ok()) statuses[t] = truth.status();
      TfOptions tf;
      tf.m = 2;
      auto runner = dataset->Tf(8, tf);
      if (!runner.ok()) statuses[t] = runner.status();
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << statuses[t];
    EXPECT_EQ(margins[t], margins[0]);
  }
  const auto counters = dataset->cache_counters();
  EXPECT_EQ(counters.stats_builds, 1u);
  EXPECT_EQ(counters.index_builds, 1u);
  EXPECT_EQ(counters.margin_mines, 1u);
  EXPECT_EQ(counters.truth_mines, 1u);
  EXPECT_EQ(counters.tf_builds, 1u);
}

TEST(EngineTest, ThresholdModeFiltersByNoisyFrequency) {
  TransactionDatabase db = MakeDb({{0, 1, 2}, {0, 1, 2}, {0, 1}, {0}, {1, 2},
                                   {0, 1, 2}, {0, 2}, {0, 1}});
  auto dataset = Dataset::Create(db);
  const double theta = 0.3;
  auto release = Engine::Run(
      *dataset,
      QuerySpec().WithThreshold(theta, 40).WithEpsilon(300.0).WithSeed(3));
  ASSERT_TRUE(release.ok());
  ASSERT_FALSE(release->itemsets.empty());
  const double theta_count = theta * static_cast<double>(8);
  for (const auto& itemset : release->itemsets) {
    EXPECT_GE(itemset.noisy_count, theta_count);
  }
}

TEST(EngineTest, RuleDerivationRidesTheRelease) {
  // Near-exact release at huge ε: rules must connect released subsets.
  TransactionDatabase db = MakeDb(
      {{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}, {2}});
  auto dataset = Dataset::Create(db);
  auto release = Engine::Run(*dataset, QuerySpec()
                                           .WithTopK(6)
                                           .WithEpsilon(500.0)
                                           .WithRules(0.5)
                                           .WithSeed(17));
  ASSERT_TRUE(release.ok());
  EXPECT_FALSE(release->rules.empty());
  for (const auto& rule : release->rules) {
    EXPECT_GE(rule.confidence, 0.5);
  }
}

TEST(EngineTest, TfMethodSharesRunnerAcrossQueries) {
  auto dataset = SmallDataset();
  QuerySpec spec;
  spec.WithMethod(QueryMethod::kTruncatedFrequency).WithTopK(8);
  spec.tf.m = 2;
  ASSERT_TRUE(Engine::Run(*dataset, QuerySpec(spec).WithSeed(1)).ok());
  auto counters = dataset->cache_counters();
  EXPECT_EQ(counters.tf_builds, 1u);
  ASSERT_TRUE(Engine::Run(*dataset, QuerySpec(spec).WithSeed(2)).ok());
  EXPECT_EQ(dataset->cache_counters().tf_builds, 1u);  // reused
  // A different configuration builds its own runner.
  QuerySpec other = spec;
  other.tf.m = 1;
  ASSERT_TRUE(Engine::Run(*dataset, QuerySpec(other).WithSeed(3)).ok());
  EXPECT_EQ(dataset->cache_counters().tf_builds, 2u);
}

TEST(EngineTest, PreCancelledQueryChargesNothing) {
  auto dataset = SmallDataset(2.0);
  CancelToken token;
  token.Cancel();
  auto release = Engine::Run(
      *dataset, QuerySpec().WithTopK(10).WithEpsilon(1.0).WithCancel(&token));
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kCancelled);
  // Refused before the reservation: the ledger never saw this query.
  EXPECT_EQ(dataset->accountant()->spent_epsilon(), 0.0);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);
  EXPECT_TRUE(dataset->accountant()->ledger().empty());
  // The identical spec without the token runs normally.
  auto ok = Engine::Run(*dataset, QuerySpec().WithTopK(10).WithEpsilon(1.0));
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(EngineTest, DeadlineMidScanChargesFullReservation) {
  auto dataset = SmallDataset(4.0);
  QuerySpec spec = QuerySpec().WithTopK(10).WithEpsilon(1.0);
  // Warm the margin cache so the pre-reservation Prepare step is
  // instant; the deadline must fire INSIDE the post-reservation
  // BasisFreq scan, which the failpoint holds past the deadline.
  ASSERT_TRUE(dataset->MarginSupport(spec.k, spec.pb.eta).ok());
  ASSERT_TRUE(failpoint::Configure("basis_freq_chunk=sleep:800").ok());
  const CancelToken token = CancelToken::AfterMs(200);
  auto release = Engine::Run(*dataset, QuerySpec(spec).WithCancel(&token));
  failpoint::Reset();
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kCancelled)
      << release.status();
  // The token fired after the reservation: fail closed — the FULL
  // reservation is charged (noise may already have been observed) and
  // nothing stays reserved.
  EXPECT_DOUBLE_EQ(dataset->accountant()->spent_epsilon(), 1.0);
  EXPECT_EQ(dataset->accountant()->reserved_epsilon(), 0.0);
  ASSERT_EQ(dataset->accountant()->ledger().size(), 1u);
  // A later query on the same dataset is unaffected, and the two
  // spends add up in the ledger.
  auto ok = Engine::Run(*dataset, spec);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_DOUBLE_EQ(dataset->accountant()->spent_epsilon(),
                   1.0 + ok->epsilon_spent);
}

TEST(EngineTest, CancelledColdBuildCachesNothing) {
  auto dataset = SmallDataset();
  CancelToken token;
  token.Cancel();
  // A cancelled cold margin build must not poison the cache...
  EXPECT_FALSE(dataset->MarginSupport(10, 1.1, &token).ok());
  EXPECT_EQ(dataset->cache_counters().margin_mines, 1u);
  // ...the next caller retries and succeeds.
  ASSERT_TRUE(dataset->MarginSupport(10, 1.1).ok());
  EXPECT_EQ(dataset->cache_counters().margin_mines, 2u);
}

TEST(DatasetTest, BorrowSharesCallerStorage) {
  TransactionDatabase db = MakeRandomDb({.seed = 31});
  auto handle = Dataset::Borrow(db);
  EXPECT_EQ(&handle->db(), &db);
  EXPECT_TRUE(Engine::Run(*handle, QuerySpec().WithTopK(5)).ok());
}

TEST(DatasetTest, TruthSharesTheHandleIndex) {
  auto dataset = SmallDataset();
  auto truth = dataset->Truth(10);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ((*truth)->index.get(), dataset->Index().get());
  // The one mining pass also warmed both margin keys.
  auto counters = dataset->cache_counters();
  EXPECT_EQ(counters.truth_mines, 1u);
  EXPECT_EQ(counters.index_builds, 1u);
  ASSERT_TRUE(dataset->MarginSupport(10, 1.1).ok());
  ASSERT_TRUE(dataset->MarginSupport(10, 1.2).ok());
  EXPECT_EQ(dataset->cache_counters().margin_mines, 0u);
}

}  // namespace
}  // namespace privbasis
