// Figure 3: PB vs TF on the Retail dataset, k = 50 and k = 100, over
// ε ∈ [0.2, 1.0]. Paper: PB λ = 20 / 40 (several bases of length ≈ 7),
// TF m = 1. Retail's dense near-ties below fk make FNR worse than on the
// other datasets for both methods — the shape to check here.
#include "bench_common.h"

int main() {
  using namespace privbasis;
  bench::RunFigure("Figure 3: Retail (sparse, larger lambda, few bases)",
                   SyntheticProfile::Retail(BenchScale()),
                   {{/*k=*/50, /*tf_m=*/1, /*eta=*/1.2},
                    {/*k=*/100, /*tf_m=*/1, /*eta=*/1.1}},
                   PaperEpsilonGridSparse());
  return 0;
}
