// Perf-trajectory smoke suite: times every counting-engine hot path with
// min-of-N wall timings and emits one PRIVBASIS_JSON line per phase —
// the input `tools/perf_trajectory.py` scrapes into BENCH_<rev>.json.
//
// Unlike the Google-Benchmark micro benches this is a plain binary with a
// fixed, fast (~seconds) workload, so CI can run it on every push and
// diff the numbers against the committed baseline. Dense-intersection
// phases run at both SIMD levels (tagged simd=scalar/avx2) for a
// built-in A/B; everything else runs at the active level.
//
// Knobs: PRIVBASIS_SMOKE_REPS (min-of-N repetitions, default 5, min 3),
// PRIVBASIS_SMOKE_SCALE (dataset scale multiplier, default 1.0), plus
// the usual PRIVBASIS_THREADS / PRIVBASIS_SIMD / PRIVBASIS_BITMAP_DENSITY.
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/basis_freq.h"
#include "data/synthetic.h"
#include "data/vertical_index.h"
#include "engine/engine.h"
#include "eval/ground_truth.h"
#include "fim/apriori.h"
#include "fim/fpgrowth.h"
#include "fim/fptree.h"
#include "server/server.h"
#include "server/wire.h"

namespace privbasis::bench {
namespace {

size_t SmokeReps() {
  const int64_t reps = GetEnvInt("PRIVBASIS_SMOKE_REPS", 5);
  return static_cast<size_t>(std::max<int64_t>(3, reps));
}

double SmokeScale() {
  const double scale = GetEnvDouble("PRIVBASIS_SMOKE_SCALE", 1.0);
  return std::clamp(scale, 0.01, 10.0);
}

/// Runs `fn` reps times, collecting wall seconds per run, and emits the
/// PRIVBASIS_JSON line. `fn` must do the full phase work each call.
void TimePhase(const char* phase, const std::function<void()>& fn,
               std::initializer_list<std::pair<const char*, std::string>>
                   tags = {}) {
  const size_t reps = SmokeReps();
  std::vector<double> samples;
  samples.reserve(reps);
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  EmitJsonSamples(phase, samples, tags);
}

void RunSuite() {
  const double scale = SmokeScale();
  TransactionDatabase mushroom = Unwrap(
      GenerateDataset(SyntheticProfile::Mushroom(1.0 * scale), 42),
      "GenerateDataset(mushroom)");
  TransactionDatabase kosarak = Unwrap(
      GenerateDataset(SyntheticProfile::Kosarak(0.05 * scale), 42),
      "GenerateDataset(kosarak)");

  // Dense intersections at both SIMD levels (A/B built in).
  {
    VerticalIndex index(mushroom);
    auto queries = DenseQueries(mushroom, 512, 4, 7);
    std::vector<simd::Level> levels{simd::Level::kScalar};
    if (simd::Avx2Supported()) levels.push_back(simd::Level::kAvx2);
    // EmitJsonSamples stamps the active simd level, so the two runs land
    // under distinct trajectory keys without an explicit tag.
    for (simd::Level level : levels) {
      const simd::Level prev = simd::SetLevel(level);
      TimePhase(
          "intersect_dense",
          [&] {
            uint64_t sink = 0;
            for (const auto& q : queries) sink += index.SupportOf(q);
            if (sink == 0) std::abort();
          },
          {{"dataset", "mushroom"}});
      simd::SetLevel(prev);
    }
  }

  // Batched support counting over the pool.
  {
    VerticalIndex index(kosarak);
    auto queries = DenseQueries(kosarak, 2048, 3, 11);
    std::vector<uint64_t> out(queries.size());
    TimePhase(
        "support_of_many",
        [&] { index.SupportOfMany(queries, std::span<uint64_t>(out)); },
        {{"dataset", "kosarak"}});
  }

  // Index construction (CSR fill + bitmap build).
  TimePhase(
      "index_build",
      [&] {
        VerticalIndex index(kosarak);
        if (index.NumTransactions() == 0) std::abort();
      },
      {{"dataset", "kosarak"}});

  // BasisFreq packed-mask scan, zero noise so counting dominates.
  {
    BasisSet basis = MakeFrequentItemBasis(kosarak, 8, 8);
    Rng rng(1);
    BasisFreqOptions options;
    options.inject_noise = false;
    TimePhase(
        "basis_freq_scan",
        [&] {
          auto result = BasisFreq(kosarak, basis, 100, 1.0, rng, nullptr,
                                  options);
          UnwrapStatus(result.status(), "BasisFreq");
        },
        {{"dataset", "kosarak"}});
  }

  // Global FP-tree construction alone, then full mines.
  TimePhase(
      "fptree_build",
      [&] {
        FpTree tree(kosarak, kosarak.NumTransactions() / 100);
        if (tree.NumNodes() == 0) std::abort();
      },
      {{"dataset", "kosarak"}});
  {
    MiningOptions options;
    options.min_support = mushroom.NumTransactions() * 40 / 100;
    TimePhase(
        "fpgrowth_mine",
        [&] {
          auto result = MineFpGrowth(mushroom, options);
          UnwrapStatus(result.status(), "MineFpGrowth");
        },
        {{"dataset", "mushroom"}});
    TimePhase(
        "apriori_mine",
        [&] {
          auto result = MineApriori(mushroom, options);
          UnwrapStatus(result.status(), "MineApriori");
        },
        {{"dataset", "mushroom"}});
  }

  // Ground-truth top-k (the path behind every figure bench).
  TimePhase(
      "ground_truth",
      [&] {
        auto truth = ComputeGroundTruth(kosarak, 200);
        UnwrapStatus(truth.status(), "ComputeGroundTruth");
      },
      {{"dataset", "kosarak"}});

  // Engine facade, cold vs warm Dataset handle. "Setup" is the
  // data-dependent state a PrivBasis query needs (the exact top-⌈ηk⌉
  // margin): a cold handle mines it, a warm handle answers from the
  // memoized cache — the whole point of sharing Dataset across queries.
  // The query phases time a full Engine::Run either way; the mechanism
  // cost (selection + BasisFreq scan) is common to both.
  {
    const size_t k = 200;
    const QuerySpec spec =
        QuerySpec().WithTopK(k).WithEpsilon(1.0).WithSeed(9);
    TimePhase(
        "engine_setup_cold",
        [&] {
          auto handle = Dataset::Borrow(kosarak);
          if (!handle->MarginSupport(k, spec.pb.eta).ok()) std::abort();
        },
        {{"dataset", "kosarak"}});

    auto warm = Dataset::Borrow(kosarak);
    if (!warm->MarginSupport(k, spec.pb.eta).ok()) std::abort();
    TimePhase(
        "engine_setup_warm",
        [&] {
          if (!warm->MarginSupport(k, spec.pb.eta).ok()) std::abort();
        },
        {{"dataset", "kosarak"}});

    TimePhase(
        "engine_query_cold",
        [&] {
          auto handle = Dataset::Borrow(kosarak);
          auto release = Engine::Run(*handle, spec);
          UnwrapStatus(release.status(), "Engine::Run (cold)");
        },
        {{"dataset", "kosarak"}});
    TimePhase(
        "engine_query_warm",
        [&] {
          auto release = Engine::Run(*warm, spec);
          UnwrapStatus(release.status(), "Engine::Run (warm)");
        },
        {{"dataset", "kosarak"}});

    // Sharded scatter-gather: the same warm query through a
    // LocalShardExecutor at 1/2/4 shards. Releases are bit-identical
    // across fanouts (exact counting consumes no RNG); this phase tracks
    // the merge overhead and the intra-query parallelism win.
    for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
      Dataset::Options shard_options;
      shard_options.num_shards = num_shards;
      auto sharded = Dataset::Borrow(kosarak, shard_options);
      // Warm the margin cache and the executor build so the phase times
      // steady-state sharded queries only.
      if (!sharded->MarginSupport(k, spec.pb.eta).ok()) std::abort();
      UnwrapStatus(Engine::Run(*sharded, spec).status(),
                   "Engine::Run (shard warm-up)");
      TimePhase(
          "shard_scaling",
          [&] {
            auto release = Engine::Run(*sharded, spec);
            UnwrapStatus(release.status(), "Engine::Run (sharded)");
          },
          {{"dataset", "kosarak"}, {"shards", std::to_string(num_shards)}});
    }
  }

  // Query-server round trip over loopback HTTP: the full service path
  // (accept, parse, route, Engine::Run on a warm handle, serialize) for
  // a batch of 16 requests. Measures the wire + dispatch overhead the
  // server adds on top of engine_query_warm.
  {
    server::ServerOptions options;
    options.num_threads = 4;
    server::QueryServer qserver(options);
    UnwrapStatus(qserver.Start(), "QueryServer::Start");
    const std::string id =
        *qserver.registry().Register(Dataset::Borrow(kosarak));
    const std::string body =
        "{\"dataset\":\"" + id + "\",\"k\":50,\"epsilon\":1.0,\"seed\":9}";
    // Warm the handle's caches once so the phase times steady-state
    // requests, not the first-touch mine.
    {
      auto warm_up = server::HttpCall(qserver.host(), qserver.port(), "POST",
                                      "/v1/query", body, 60'000);
      UnwrapStatus(warm_up.status(), "server warm-up query");
      if (warm_up->status != 200) std::abort();
    }
    TimePhase(
        "server_latency",
        [&] {
          for (int i = 0; i < 16; ++i) {
            auto response = server::HttpCall(qserver.host(), qserver.port(),
                                             "POST", "/v1/query", body,
                                             60'000);
            UnwrapStatus(response.status(), "server query");
            if (response->status != 200) std::abort();
          }
        },
        {{"dataset", "kosarak"}});
    qserver.Stop();
  }

  // Oversubscribed serving with the admission machinery active: 8
  // concurrent clients against 4 workers + a bounded queue (deep enough
  // that nothing sheds — this phase tracks the admitted path's tail
  // latency, not shed timing). Emits per-request samples plus p50/p99:
  // the overload-safety regression signal is the p99 the bounded queue
  // and cost-model bookkeeping add under 2x concurrency.
  {
    server::ServerOptions options;
    options.num_threads = 4;
    options.admission.slo_ms = 30'000;
    options.admission.max_queue_depth = 16;
    server::QueryServer qserver(options);
    UnwrapStatus(qserver.Start(), "QueryServer::Start (overload)");
    const std::string id =
        *qserver.registry().Register(Dataset::Borrow(kosarak));
    const std::string body =
        "{\"dataset\":\"" + id + "\",\"k\":50,\"epsilon\":1.0,\"seed\":9}";
    {
      auto warm_up = server::HttpCall(qserver.host(), qserver.port(), "POST",
                                      "/v1/query", body, 60'000);
      UnwrapStatus(warm_up.status(), "server warm-up query (overload)");
      if (warm_up->status != 200) std::abort();
    }
    constexpr size_t kClients = 8;
    constexpr size_t kPerClient = 8;
    std::vector<double> latencies(kClients * kPerClient, 0.0);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t r = 0; r < kPerClient; ++r) {
          WallTimer timer;
          auto response = server::HttpCall(qserver.host(), qserver.port(),
                                           "POST", "/v1/query", body,
                                           60'000);
          UnwrapStatus(response.status(), "server query (overload)");
          if (response->status != 200) std::abort();
          latencies[c * kPerClient + r] = timer.ElapsedSeconds();
        }
      });
    }
    for (auto& client : clients) client.join();
    qserver.Stop();
    std::sort(latencies.begin(), latencies.end());
    const double p50 = latencies[latencies.size() / 2];
    const double p99 =
        latencies[static_cast<size_t>(
            0.99 * static_cast<double>(latencies.size() - 1))];
    EmitJsonSamples("server_overload", latencies, {{"dataset", "kosarak"}},
                    {{"p50_ms", p50 * 1e3}, {"p99_ms", p99 * 1e3}});
  }

  // Same-dataset fan-out: 8 concurrent clients firing the identical
  // query at one dataset, with the query batcher off and then on. The
  // batched server groups the candidate-support phases of concurrent
  // admitted requests into one shared scan, so a round of 8 queries
  // costs ~1 scan instead of 8; releases stay bit-identical either way
  // (exact counts merge before any noise draw). Emits one phase per
  // mode plus the throughput ratio — the acceptance signal is
  // batching_speedup >= 1.5 on the batched phase.
  {
    constexpr size_t kClients = 8;
    auto run_fanout = [&](server::ServerOptions options) {
      server::QueryServer qserver(options);
      UnwrapStatus(qserver.Start(), "QueryServer::Start (fanout)");
      const std::string id =
          *qserver.registry().Register(Dataset::Borrow(kosarak));
      const std::string body =
          "{\"dataset\":\"" + id + "\",\"k\":50,\"epsilon\":1.0,\"seed\":9}";
      {
        auto warm_up = server::HttpCall(qserver.host(), qserver.port(), "POST",
                                        "/v1/query", body, 60'000);
        UnwrapStatus(warm_up.status(), "server warm-up query (fanout)");
        if (warm_up->status != 200) std::abort();
      }
      const size_t reps = SmokeReps();
      std::vector<double> samples;
      samples.reserve(reps);
      for (size_t r = 0; r < reps; ++r) {
        WallTimer timer;
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (size_t c = 0; c < kClients; ++c) {
          clients.emplace_back([&] {
            auto response = server::HttpCall(qserver.host(), qserver.port(),
                                             "POST", "/v1/query", body,
                                             60'000);
            UnwrapStatus(response.status(), "server query (fanout)");
            if (response->status != 200) std::abort();
          });
        }
        for (auto& client : clients) client.join();
        samples.push_back(timer.ElapsedSeconds());
      }
      qserver.Stop();
      return samples;
    };
    auto min_of = [](const std::vector<double>& samples) {
      double min_s = samples[0];
      for (double s : samples) min_s = std::min(min_s, s);
      return min_s;
    };
    server::ServerOptions plain;
    plain.num_threads = kClients;
    plain.batch_window_us = 0;  // explicitly off, immune to env overrides
    const std::vector<double> plain_samples = run_fanout(plain);
    server::ServerOptions batched;
    batched.num_threads = kClients;
    batched.batch_window_us = 20'000;
    batched.max_batch = kClients;
    const std::vector<double> batched_samples = run_fanout(batched);
    const double speedup = min_of(plain_samples) / min_of(batched_samples);
    EmitJsonSamples("server_fanout_plain", plain_samples,
                    {{"dataset", "kosarak"}});
    EmitJsonSamples("server_fanout_batched", batched_samples,
                    {{"dataset", "kosarak"}},
                    {{"batching_speedup", speedup}});
  }
}

}  // namespace
}  // namespace privbasis::bench

int main() {
  privbasis::bench::RunSuite();
  return 0;
}
