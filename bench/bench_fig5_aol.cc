// Figure 5: PB vs TF on the AOL search-log dataset, k = 100 and k = 200,
// over ε ∈ [0.5, 1.0]. Paper: λ ≈ k (171 singletons + 29 pairs in the
// top 200, no triples) — the regime where TF degenerates into frequent-
// item mining (m = 1) and comes closest to PB; the gap should be small.
#include "bench_common.h"

int main() {
  using namespace privbasis;
  bench::RunFigure("Figure 5: AOL (lambda ~ k, many singleton bases)",
                   SyntheticProfile::Aol(BenchScale()),
                   {{/*k=*/100, /*tf_m=*/1, /*eta=*/1.1},
                    {/*k=*/200, /*tf_m=*/1, /*eta=*/1.1}},
                   PaperEpsilonGridAol());
  return 0;
}
