// Shared helpers for the bench binaries: dataset generation + ground
// truth with progress logging, and method adapters for the sweep harness.
#ifndef PRIVBASIS_BENCH_BENCH_COMMON_H_
#define PRIVBASIS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include <algorithm>
#include <vector>

#include "baseline/tf.h"
#include "common/env.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/privbasis.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/table_printer.h"

namespace privbasis::bench {

/// Dies with a message on error — bench binaries have no recovery path.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Escapes a string for embedding in a JSON string literal, so scrapers
/// never see a malformed PRIVBASIS_JSON line no matter what lands in a
/// series label or dataset name.
inline std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable timing line: one JSON object per line, prefixed with
/// "PRIVBASIS_JSON " so scrapers can `grep PRIVBASIS_JSON` it out of the
/// human-readable tables. Every line carries the effective thread count
/// and the active SIMD level, so perf trajectories stay comparable
/// across machines and knobs. `samples` holds one wall-time measurement
/// per repetition (min-of-N is the trajectory statistic; one-shot phases
/// pass a single sample and get reps=1, min=mean).
///
///   PRIVBASIS_JSON {"phase":"ground_truth","dataset":"kosarak","k":100,
///                   "reps":3,"min_ms":912.4,"mean_ms":934.1,
///                   "threads":4,"simd":"avx2","seconds":0.912412}
inline void EmitJsonSamples(
    const char* phase, const std::vector<double>& samples,
    std::initializer_list<std::pair<const char*, std::string>> tags = {},
    std::initializer_list<std::pair<const char*, double>> values = {}) {
  double min_s = 0.0;
  double sum_s = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    min_s = (i == 0) ? samples[i] : std::min(min_s, samples[i]);
    sum_s += samples[i];
  }
  const double mean_s =
      samples.empty() ? 0.0 : sum_s / static_cast<double>(samples.size());
  std::printf("PRIVBASIS_JSON {\"phase\":\"%s\"", EscapeJson(phase).c_str());
  for (const auto& [key, value] : tags) {
    std::printf(",\"%s\":\"%s\"", EscapeJson(key).c_str(),
                EscapeJson(value).c_str());
  }
  for (const auto& [key, value] : values) {
    std::printf(",\"%s\":%g", EscapeJson(key).c_str(), value);
  }
  std::printf(",\"reps\":%zu,\"min_ms\":%.6f,\"mean_ms\":%.6f", samples.size(),
              min_s * 1e3, mean_s * 1e3);
  std::printf(",\"threads\":%zu,\"simd\":\"%s\",\"seconds\":%.6f}\n",
              EffectiveThreads(0), simd::LevelName(simd::ActiveLevel()),
              min_s);
  std::fflush(stdout);
}

inline void EmitJsonTiming(
    const char* phase, double seconds,
    std::initializer_list<std::pair<const char*, std::string>> tags = {},
    std::initializer_list<std::pair<const char*, double>> values = {}) {
  EmitJsonSamples(phase, std::vector<double>{seconds}, tags, values);
}

/// Generates a profile's dataset with a fixed per-profile seed and prints
/// generation stats.
inline TransactionDatabase MakeDataset(const SyntheticProfile& profile,
                                       uint64_t seed = 42) {
  WallTimer timer;
  TransactionDatabase db =
      Unwrap(GenerateDataset(profile, seed), "GenerateDataset");
  std::printf("[data] %-11s %s  (%.2fs)\n", profile.name.c_str(),
              ComputeDatasetStats(db).ToString().c_str(),
              timer.ElapsedSeconds());
  EmitJsonTiming("generate", timer.ElapsedSeconds(),
                 {{"dataset", profile.name}},
                 {{"transactions", static_cast<double>(db.NumTransactions())}});
  std::fflush(stdout);
  return db;
}

/// PrivBasis as a ReleaseMethod through the Engine, with the fk1 hint
/// wired from ground truth.
inline ReleaseMethod PbMethod(const TransactionDatabase& db, size_t k,
                              const GroundTruth& truth,
                              PrivBasisOptions options = {}) {
  options.fk1_support_hint = (options.eta >= 1.15)
                                 ? truth.fk1_support_eta12
                                 : truth.fk1_support_eta11;
  QuerySpec spec;
  spec.k = k;
  spec.pb = options;
  return EngineMethod(Dataset::Borrow(db), spec);
}

/// Same, against an already-shared Dataset handle (the fk1 hint comes
/// from the handle's margin cache).
inline ReleaseMethod PbMethod(std::shared_ptr<Dataset> dataset, size_t k,
                              PrivBasisOptions options = {}) {
  QuerySpec spec;
  spec.k = k;
  spec.pb = options;
  return EngineMethod(std::move(dataset), spec);
}

/// TF as a ReleaseMethod, reusing one TfRunner across the sweep.
inline ReleaseMethod TfMethod(std::shared_ptr<TfRunner> runner) {
  return [runner](double epsilon,
                  Rng& rng) -> Result<std::vector<NoisyItemset>> {
    auto result = runner->Run(epsilon, rng);
    if (!result.ok()) return result.status();
    return std::move(result).value().released;
  };
}

/// One (k, TF-m) configuration of a figure: the paper plots PB and TF at
/// the same k, with m the best-precision TF length cap it reports.
struct FigureCurve {
  size_t k;
  size_t tf_m;
  double eta = 1.1;  ///< PB safety margin (paper: 1.1 or 1.2 by k)
};

/// Runs one full figure through the Engine: generate the dataset once
/// into a shared handle, then for each curve mine ground truth (cached on
/// the handle, index shared across curves) and sweep PB and TF over the ε
/// grid; print both panels.
inline void RunFigure(const std::string& title,
                      const SyntheticProfile& profile,
                      const std::vector<FigureCurve>& curves,
                      const std::vector<double>& eps_grid) {
  std::shared_ptr<Dataset> dataset = Dataset::Create(MakeDataset(profile));
  SweepConfig config;
  config.epsilons = eps_grid;
  config.repeats = BenchRepeats();

  std::vector<SweepSeries> all_series;
  for (const auto& curve : curves) {
    WallTimer timer;
    std::shared_ptr<const GroundTruth> truth =
        Unwrap(dataset->Truth(curve.k), "Dataset::Truth");
    TopKStats stats = truth->stats;
    std::printf("[truth] k=%zu lambda=%u lambda2=%u lambda3=%u fk*N=%llu "
                "(%.2fs)\n",
                curve.k, stats.lambda, stats.lambda2, stats.lambda3,
                static_cast<unsigned long long>(stats.fk_count),
                timer.ElapsedSeconds());
    EmitJsonTiming("ground_truth", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}},
                   {{"k", static_cast<double>(curve.k)}});
    std::fflush(stdout);

    PrivBasisOptions pb_options;
    pb_options.eta = curve.eta;
    std::string pb_label = "PB,k=" + std::to_string(curve.k) +
                           ",lam=" + std::to_string(stats.lambda);
    timer.Reset();
    all_series.push_back(Unwrap(
        RunEpsilonSweep(pb_label, PbMethod(dataset, curve.k, pb_options),
                        *truth, config),
        "PB sweep"));
    EmitJsonTiming("sweep", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}, {"series", pb_label}});

    timer.Reset();
    QuerySpec tf_spec;
    tf_spec.method = QueryMethod::kTruncatedFrequency;
    tf_spec.k = curve.k;
    tf_spec.tf.m = curve.tf_m;
    auto tf_runner =
        Unwrap(dataset->Tf(curve.k, tf_spec.tf), "Dataset::Tf");
    std::printf("[tf] k=%zu m=%zu explicit=%zu floor=%llu (%.2fs)\n",
                curve.k, curve.tf_m, tf_runner->num_explicit(),
                static_cast<unsigned long long>(tf_runner->floor_support()),
                timer.ElapsedSeconds());
    std::fflush(stdout);
    EmitJsonTiming("tf_prepare", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}},
                   {{"k", static_cast<double>(curve.k)},
                    {"m", static_cast<double>(curve.tf_m)}});
    std::string tf_label = "TF,k=" + std::to_string(curve.k) +
                           ",m=" + std::to_string(curve.tf_m);
    timer.Reset();
    all_series.push_back(Unwrap(
        RunEpsilonSweep(tf_label, EngineMethod(dataset, tf_spec), *truth,
                        config),
        "TF sweep"));
    EmitJsonTiming("sweep", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}, {"series", tf_label}});
  }
  PrintFigure(std::cout, title, all_series);
}

}  // namespace privbasis::bench

#endif  // PRIVBASIS_BENCH_BENCH_COMMON_H_
