// Shared helpers for the bench binaries: dataset generation + ground
// truth with progress logging, and method adapters for the sweep harness.
#ifndef PRIVBASIS_BENCH_BENCH_COMMON_H_
#define PRIVBASIS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "baseline/tf.h"
#include "common/env.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/privbasis.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/table_printer.h"

namespace privbasis::bench {

/// Dies with a message on error — bench binaries have no recovery path.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Machine-readable timing line: one JSON object per line, prefixed with
/// "PRIVBASIS_JSON " so scrapers can `grep PRIVBASIS_JSON` it out of the
/// human-readable tables. Every line carries the effective thread count,
/// so perf trajectories stay comparable across machines and knobs.
///
///   PRIVBASIS_JSON {"phase":"ground_truth","dataset":"kosarak",
///                   "k":100,"threads":4,"seconds":1.234567}
inline void EmitJsonTiming(
    const char* phase, double seconds,
    std::initializer_list<std::pair<const char*, std::string>> tags = {},
    std::initializer_list<std::pair<const char*, double>> values = {}) {
  std::printf("PRIVBASIS_JSON {\"phase\":\"%s\"", phase);
  for (const auto& [key, value] : tags) {
    std::printf(",\"%s\":\"%s\"", key, value.c_str());
  }
  for (const auto& [key, value] : values) {
    std::printf(",\"%s\":%g", key, value);
  }
  std::printf(",\"threads\":%zu,\"seconds\":%.6f}\n",
              EffectiveThreads(0), seconds);
  std::fflush(stdout);
}

/// Generates a profile's dataset with a fixed per-profile seed and prints
/// generation stats.
inline TransactionDatabase MakeDataset(const SyntheticProfile& profile,
                                       uint64_t seed = 42) {
  WallTimer timer;
  TransactionDatabase db =
      Unwrap(GenerateDataset(profile, seed), "GenerateDataset");
  std::printf("[data] %-11s %s  (%.2fs)\n", profile.name.c_str(),
              ComputeDatasetStats(db).ToString().c_str(),
              timer.ElapsedSeconds());
  EmitJsonTiming("generate", timer.ElapsedSeconds(),
                 {{"dataset", profile.name}},
                 {{"transactions", static_cast<double>(db.NumTransactions())}});
  std::fflush(stdout);
  return db;
}

/// PrivBasis as a ReleaseMethod, with the fk1 hint wired from ground
/// truth.
inline ReleaseMethod PbMethod(const TransactionDatabase& db, size_t k,
                              const GroundTruth& truth,
                              PrivBasisOptions options = {}) {
  options.fk1_support_hint = (options.eta >= 1.15)
                                 ? truth.fk1_support_eta12
                                 : truth.fk1_support_eta11;
  return [&db, k,
          options](double epsilon,
                   Rng& rng) -> Result<std::vector<NoisyItemset>> {
    auto result = RunPrivBasis(db, k, epsilon, rng, options);
    if (!result.ok()) return result.status();
    return std::move(result).value().topk;
  };
}

/// TF as a ReleaseMethod, reusing one TfRunner across the sweep.
inline ReleaseMethod TfMethod(std::shared_ptr<TfRunner> runner) {
  return [runner](double epsilon,
                  Rng& rng) -> Result<std::vector<NoisyItemset>> {
    auto result = runner->Run(epsilon, rng);
    if (!result.ok()) return result.status();
    return std::move(result).value().released;
  };
}

/// One (k, TF-m) configuration of a figure: the paper plots PB and TF at
/// the same k, with m the best-precision TF length cap it reports.
struct FigureCurve {
  size_t k;
  size_t tf_m;
  double eta = 1.1;  ///< PB safety margin (paper: 1.1 or 1.2 by k)
};

/// Runs one full figure: generate the dataset, then for each curve mine
/// ground truth and sweep PB and TF over the ε grid; print both panels.
inline void RunFigure(const std::string& title,
                      const SyntheticProfile& profile,
                      const std::vector<FigureCurve>& curves,
                      const std::vector<double>& eps_grid) {
  TransactionDatabase db = MakeDataset(profile);
  SweepConfig config;
  config.epsilons = eps_grid;
  config.repeats = BenchRepeats();

  std::vector<SweepSeries> all_series;
  for (const auto& curve : curves) {
    WallTimer timer;
    GroundTruth truth =
        Unwrap(ComputeGroundTruth(db, curve.k), "ComputeGroundTruth");
    TopKStats stats = truth.stats;
    std::printf("[truth] k=%zu lambda=%u lambda2=%u lambda3=%u fk*N=%llu "
                "(%.2fs)\n",
                curve.k, stats.lambda, stats.lambda2, stats.lambda3,
                static_cast<unsigned long long>(stats.fk_count),
                timer.ElapsedSeconds());
    EmitJsonTiming("ground_truth", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}},
                   {{"k", static_cast<double>(curve.k)}});
    std::fflush(stdout);

    PrivBasisOptions pb_options;
    pb_options.eta = curve.eta;
    std::string pb_label = "PB,k=" + std::to_string(curve.k) +
                           ",lam=" + std::to_string(stats.lambda);
    timer.Reset();
    all_series.push_back(Unwrap(
        RunEpsilonSweep(pb_label, PbMethod(db, curve.k, truth, pb_options),
                        truth, config),
        "PB sweep"));
    EmitJsonTiming("sweep", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}, {"series", pb_label}});

    timer.Reset();
    TfOptions tf_options;
    tf_options.m = curve.tf_m;
    auto tf_runner = std::make_shared<TfRunner>(
        Unwrap(TfRunner::Create(db, curve.k, tf_options), "TfRunner"));
    std::printf("[tf] k=%zu m=%zu explicit=%zu floor=%llu (%.2fs)\n",
                curve.k, curve.tf_m, tf_runner->num_explicit(),
                static_cast<unsigned long long>(tf_runner->floor_support()),
                timer.ElapsedSeconds());
    std::fflush(stdout);
    EmitJsonTiming("tf_prepare", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}},
                   {{"k", static_cast<double>(curve.k)},
                    {"m", static_cast<double>(curve.tf_m)}});
    std::string tf_label = "TF,k=" + std::to_string(curve.k) +
                           ",m=" + std::to_string(curve.tf_m);
    timer.Reset();
    all_series.push_back(Unwrap(
        RunEpsilonSweep(tf_label, TfMethod(tf_runner), truth, config),
        "TF sweep"));
    EmitJsonTiming("sweep", timer.ElapsedSeconds(),
                   {{"dataset", profile.name}, {"series", tf_label}});
  }
  PrintFigure(std::cout, title, all_series);
}

}  // namespace privbasis::bench

#endif  // PRIVBASIS_BENCH_BENCH_COMMON_H_
