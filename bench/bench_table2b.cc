// Reproduces Table 2(b): effectiveness of the TF approach per dataset —
// k, fk·N (over itemsets of length ≤ m), the paper's m, |U| ≈ Σ C(|I|,i),
// and γ·N at ε = 1, ρ = 0.9. Rows where γ·N ≥ fk·N mark the regime where
// truncation prunes nothing and TF degenerates (§3.1).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "baseline/gamma.h"
#include "bench_common.h"
#include "fim/topk.h"

namespace privbasis {
namespace {

struct Config {
  SyntheticProfile profile;
  size_t k;
  size_t m;
  uint64_t paper_fk;
  double paper_gamma_n;
};

void Run() {
  double scale = BenchScale();
  const double epsilon = 1.0;
  const double rho = 0.9;
  std::vector<Config> configs = {
      {SyntheticProfile::Retail(scale), 100, 1, 1192, 5768},
      {SyntheticProfile::Mushroom(scale), 100, 2, 4464, 5433},
      {SyntheticProfile::PumsbStar(scale), 200, 3, 28613, 21235},
      {SyntheticProfile::Kosarak(scale), 200, 2, 14142, 20733},
      {SyntheticProfile::Aol(scale), 200, 1, 12450, 16038},
  };
  std::printf("Table 2(b): TF effectiveness (epsilon=%.1f rho=%.1f, "
              "scale=%.2f)\n", epsilon, rho, scale);
  TextTable table({"dataset", "k", "fk*N", "m", "|U|", "gamma*N",
                   "degenerate", "paper fk*N", "paper g*N"});
  for (auto& config : configs) {
    TransactionDatabase db = bench::MakeDataset(config.profile);
    TopKResult topk =
        bench::Unwrap(MineTopK(db, config.k, config.m), "MineTopK");
    TfEffectiveness eff = ComputeTfEffectiveness(
        db.UniverseSize(), db.NumTransactions(), topk.kth_support, config.k,
        config.m, epsilon, rho);
    char u_buf[32];
    std::snprintf(u_buf, sizeof(u_buf), "%.2e", std::exp(eff.log_u));
    table.AddRow({config.profile.name, std::to_string(config.k),
                  std::to_string(eff.fk_count), std::to_string(config.m),
                  u_buf, TextTable::Num(eff.gamma_count, 0),
                  eff.degenerate ? "YES" : "no",
                  std::to_string(config.paper_fk),
                  TextTable::Num(config.paper_gamma_n, 0)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
