// Figure 1: PB vs TF on the Mushroom dataset, k = 50 and k = 100, FNR and
// relative error over ε ∈ [0.1, 1.0]. Paper: PB λ = 8 / 11 (single-basis
// regime), TF at its best m (4 and 2); PB's FNR stays near 0 from ε = 0.5
// while TF exceeds 0.6 FNR at k = 100 even at ε = 1.
#include "bench_common.h"

int main() {
  using namespace privbasis;
  bench::RunFigure("Figure 1: Mushroom (dense, small lambda, single basis)",
                   SyntheticProfile::Mushroom(BenchScale()),
                   {{/*k=*/50, /*tf_m=*/4, /*eta=*/1.2},
                    {/*k=*/100, /*tf_m=*/2, /*eta=*/1.1}},
                   PaperEpsilonGridDense());
  return 0;
}
