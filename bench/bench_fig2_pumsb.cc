// Figure 2: PB vs TF on the Pumsb-star dataset, k = 50 and k = 150, over
// ε ∈ [0.1, 1.0]. Paper: PB λ = 11 / 12 (single basis), TF m = 4 / 2;
// TF's FNR is above 0.7 at k = 150 even at ε = 1 while PB stays near 0.
#include "bench_common.h"

int main() {
  using namespace privbasis;
  bench::RunFigure("Figure 2: Pumsb-star (dense census, single basis)",
                   SyntheticProfile::PumsbStar(BenchScale()),
                   {{/*k=*/50, /*tf_m=*/4, /*eta=*/1.2},
                    {/*k=*/150, /*tf_m=*/2, /*eta=*/1.1}},
                   PaperEpsilonGridDense());
  return 0;
}
