// Ablation: the η safety margin of GetLambda. η = 1 targets fk exactly
// (risking a too-small λ, which loses top-k itemsets outright); larger η
// over-provisions λ and thins the per-item selection budget. The paper
// uses 1.1 or 1.2.
#include <cmath>

#include "bench_common.h"

namespace privbasis {
namespace {

void Run() {
  auto profile = SyntheticProfile::Retail(BenchScale());
  TransactionDatabase db = bench::MakeDataset(profile);
  const size_t k = 100;
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");
  SweepConfig config;
  config.epsilons = {0.5, 1.0};
  config.repeats = BenchRepeats();

  std::printf("Ablation: eta safety margin (retail, k=%zu)\n", k);
  TextTable table({"eta", "eps", "FNR", "+/-", "RE", "+/-"});
  for (double eta : {1.0, 1.1, 1.2, 1.35, 1.5}) {
    PrivBasisOptions options;
    options.eta = eta;
    // The fk1 hint depends on η, so mine it per configuration.
    size_t k1 = static_cast<size_t>(std::ceil(eta * static_cast<double>(k)));
    TopKResult top = bench::Unwrap(MineTopK(db, k1), "MineTopK");
    options.fk1_support_hint = top.kth_support;
    SweepSeries series = bench::Unwrap(
        RunEpsilonSweep("eta", bench::PbMethod(db, k, truth, options), truth,
                        config),
        "sweep");
    for (const auto& p : series.points) {
      table.AddRow({TextTable::Num(eta, 2), TextTable::Num(p.epsilon, 1),
                    TextTable::Num(p.fnr_mean, 4),
                    TextTable::Num(p.fnr_stderr, 4),
                    TextTable::Num(p.re_mean, 4),
                    TextTable::Num(p.re_stderr, 4)});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
