// Ablation: basis length cap ℓ. §4.2 shows the per-item error variance of
// splitting k items into bases of length ℓ scales as 2^{ℓ−1}/ℓ²·k²V —
// minimized at ℓ = 3 — while BasisFreq runtime grows as O(w·3^ℓ). This
// bench sweeps the max_basis_length cap on the kosarak profile and
// reports FNR / RE alongside the theoretical 2^{ℓ−1}/ℓ² factor.
#include "bench_common.h"

namespace privbasis {
namespace {

void Run() {
  auto profile = SyntheticProfile::Kosarak(BenchScale());
  TransactionDatabase db = bench::MakeDataset(profile);
  const size_t k = 200;
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");

  SweepConfig config;
  config.epsilons = {0.5, 1.0};
  config.repeats = BenchRepeats();

  std::printf("Ablation: basis length cap (kosarak, k=%zu)\n", k);
  TextTable table({"max_len", "2^(l-1)/l^2", "eps", "FNR", "+/-", "RE",
                   "+/-", "w", "l"});
  for (size_t cap : {3, 5, 7, 9, 12}) {
    PrivBasisOptions options;
    options.max_basis_length = cap;
    options.fk1_support_hint = truth.fk1_support_eta11;
    // Probe the constructed basis shape once (fixed seed).
    QuerySpec probe_spec = QuerySpec().WithTopK(k).WithSeed(7);
    probe_spec.pb = options;
    auto probe = Engine::Run(*Dataset::Borrow(db), probe_spec);
    size_t w = probe.ok() ? probe->basis_set.Width() : 0;
    size_t len = probe.ok() ? probe->basis_set.Length() : 0;

    SweepSeries series = bench::Unwrap(
        RunEpsilonSweep("cap=" + std::to_string(cap),
                        bench::PbMethod(db, k, truth, options), truth, config),
        "sweep");
    double theory = static_cast<double>(uint64_t{1} << (cap - 1)) /
                    (static_cast<double>(cap) * static_cast<double>(cap));
    for (const auto& p : series.points) {
      table.AddRow({std::to_string(cap), TextTable::Num(theory, 3),
                    TextTable::Num(p.epsilon, 1),
                    TextTable::Num(p.fnr_mean, 4),
                    TextTable::Num(p.fnr_stderr, 4),
                    TextTable::Num(p.re_mean, 4),
                    TextTable::Num(p.re_stderr, 4), std::to_string(w),
                    std::to_string(len)});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
