// Ablation: privacy amplification by Poisson subsampling (core/amplified).
// At a fixed end-to-end ε, sweeping the sampling rate q trades binomial
// sampling error against the Laplace noise saved by the amplified
// mechanism budget ε' = ln(1 + (e^ε − 1)/q). On kosarak (N ≈ 10^6) the
// sampling error at q ≥ 0.25 is small, so moderate subsampling should be
// near-free while q → 0 must eventually hurt.
#include "bench_common.h"
#include "dp/amplification.h"

namespace privbasis {
namespace {

void Run() {
  auto profile = SyntheticProfile::Kosarak(BenchScale());
  TransactionDatabase db = bench::MakeDataset(profile);
  const size_t k = 200;
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");
  SweepConfig config;
  config.epsilons = {0.2, 0.5};
  config.repeats = BenchRepeats();

  std::vector<SweepSeries> series;
  // One shared handle: the q = 1 rows reuse the cached margin; each
  // subsampled run mines its own subsample margin as before.
  auto dataset = Dataset::Borrow(db);
  // q = 1 is plain PrivBasis (the baseline row).
  for (double q : {1.0, 0.5, 0.25, 0.1}) {
    QuerySpec spec;
    spec.k = k;
    if (q < 1.0) spec.sampling_rate = q;
    ReleaseMethod method = EngineMethod(dataset, spec);
    char label[48];
    std::snprintf(label, sizeof(label), "q=%.2f(eps'=%.2f@0.5)", q,
                  MechanismEpsilonForTarget(q, 0.5));
    series.push_back(bench::Unwrap(
        RunEpsilonSweep(label, method, truth, config), "sweep"));
  }
  PrintFigure(std::cout,
              "Subsampling amplification ablation (kosarak, k=200)", series);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
