// Ablation: the λ2 heuristic. §4.4 argues that the naive λ2 = η·k − λ
// requests far too many pairs (thinning the pair budget and inflating the
// bases) and proposes λ2' / sqrt(max(1, λ2'/λ)). This bench compares both
// on kosarak, the dataset with the richest pair structure.
#include "bench_common.h"

namespace privbasis {
namespace {

void Run() {
  auto profile = SyntheticProfile::Kosarak(BenchScale());
  TransactionDatabase db = bench::MakeDataset(profile);
  const size_t k = 200;
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");
  SweepConfig config;
  config.epsilons = {0.3, 0.5, 1.0};
  config.repeats = BenchRepeats();

  std::printf("Ablation: lambda2 heuristic vs naive (kosarak, k=%zu)\n", k);
  std::vector<SweepSeries> all;
  for (bool naive : {false, true}) {
    PrivBasisOptions options;
    options.naive_lambda2 = naive;
    all.push_back(bench::Unwrap(
        RunEpsilonSweep(naive ? "naive:eta*k-lam" : "paper:sqrt-damped",
                        bench::PbMethod(db, k, truth, options), truth,
                        config),
        "sweep"));
  }
  PrintFigure(std::cout, "lambda2 heuristic ablation", all);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
