// Microbenchmarks for Algorithm 1 (BasisFreq), validating the paper's
// running-time analysis O(w·|D| + w·3^ℓ): runtime should scale linearly
// in the width w and exponentially in the length ℓ, and the zeta-
// transform superset sum should beat the naive O(3^ℓ) enumeration.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "core/basis_freq.h"
#include "data/synthetic.h"

namespace privbasis {
namespace {

using ::privbasis::bench::MakeFrequentItemBasis;

TransactionDatabase MakeDb() {
  SyntheticProfile profile = SyntheticProfile::Kosarak(0.05);
  auto db = GenerateDataset(profile, 42);
  if (!db.ok()) std::abort();
  return std::move(db).value();
}

const TransactionDatabase& Db() {
  static TransactionDatabase db = MakeDb();
  return db;
}

void BM_BasisFreqWidth(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis =
      MakeFrequentItemBasis(db, static_cast<size_t>(state.range(0)), 6);
  Rng rng(1);
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BasisFreqWidth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Complexity(benchmark::oN);

void BM_BasisFreqLength(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis =
      MakeFrequentItemBasis(db, 4, static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BasisFreqLength)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_SupersetSum(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis =
      MakeFrequentItemBasis(db, 4, static_cast<size_t>(state.range(0)));
  Rng rng(1);
  BasisFreqOptions options;
  options.use_fast_superset_sum = state.range(1) != 0;
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng, nullptr, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SupersetSum)
    ->Args({10, 0})  // naive O(3^l)
    ->Args({10, 1})  // zeta O(l 2^l)
    ->Args({12, 0})
    ->Args({12, 1});

/// Sharded-scan scaling: same pipeline at increasing thread counts. The
/// output is bit-identical across args (see BasisFreqOptions), so this
/// isolates pure scan parallelism.
void BM_BasisFreqThreads(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis = MakeFrequentItemBasis(db, 8, 8);
  Rng rng(1);
  BasisFreqOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng, nullptr, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BasisFreqThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace privbasis

BENCHMARK_MAIN();
