// Microbenchmarks for Algorithm 1 (BasisFreq), validating the paper's
// running-time analysis O(w·|D| + w·3^ℓ): runtime should scale linearly
// in the width w and exponentially in the length ℓ, and the zeta-
// transform superset sum should beat the naive O(3^ℓ) enumeration.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/basis_freq.h"
#include "data/synthetic.h"

namespace privbasis {
namespace {

TransactionDatabase MakeDb() {
  SyntheticProfile profile = SyntheticProfile::Kosarak(0.05);
  auto db = GenerateDataset(profile, 42);
  if (!db.ok()) std::abort();
  return std::move(db).value();
}

const TransactionDatabase& Db() {
  static TransactionDatabase db = MakeDb();
  return db;
}

/// Bases of the given width and length over the most frequent items.
BasisSet MakeBasis(const TransactionDatabase& db, size_t width,
                   size_t length) {
  std::vector<Item> order = db.ItemsByFrequency();
  BasisSet basis;
  size_t cursor = 0;
  for (size_t i = 0; i < width; ++i) {
    std::vector<Item> items;
    for (size_t j = 0; j < length; ++j) {
      items.push_back(order[cursor++ % order.size()]);
    }
    basis.Add(Itemset(std::move(items)));
  }
  return basis;
}

void BM_BasisFreqWidth(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis = MakeBasis(db, static_cast<size_t>(state.range(0)), 6);
  Rng rng(1);
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BasisFreqWidth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Complexity(benchmark::oN);

void BM_BasisFreqLength(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis = MakeBasis(db, 4, static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BasisFreqLength)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_SupersetSum(benchmark::State& state) {
  const auto& db = Db();
  BasisSet basis = MakeBasis(db, 4, static_cast<size_t>(state.range(0)));
  Rng rng(1);
  BasisFreqOptions options;
  options.use_fast_superset_sum = state.range(1) != 0;
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng, nullptr, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SupersetSum)
    ->Args({10, 0})  // naive O(3^l)
    ->Args({10, 1})  // zeta O(l 2^l)
    ->Args({12, 0})
    ->Args({12, 1});

}  // namespace
}  // namespace privbasis

BENCHMARK_MAIN();
