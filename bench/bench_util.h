// Lightweight helpers shared by the micro benches (kept separate from
// bench_common.h, which pulls in the whole sweep harness).
#ifndef PRIVBASIS_BENCH_BENCH_UTIL_H_
#define PRIVBASIS_BENCH_BENCH_UTIL_H_

#include <vector>

#include "core/basis.h"
#include "data/transaction_db.h"

namespace privbasis::bench {

/// Bases of the given width and length over the most frequent items.
inline BasisSet MakeFrequentItemBasis(const TransactionDatabase& db,
                                      size_t width, size_t length) {
  std::vector<Item> order = db.ItemsByFrequency();
  BasisSet basis;
  size_t cursor = 0;
  for (size_t i = 0; i < width; ++i) {
    std::vector<Item> items;
    for (size_t j = 0; j < length; ++j) {
      items.push_back(order[cursor++ % order.size()]);
    }
    basis.Add(Itemset(std::move(items)));
  }
  return basis;
}

}  // namespace privbasis::bench

#endif  // PRIVBASIS_BENCH_BENCH_UTIL_H_
