// Lightweight helpers shared by the micro benches (kept separate from
// bench_common.h, which pulls in the whole sweep harness).
#ifndef PRIVBASIS_BENCH_BENCH_UTIL_H_
#define PRIVBASIS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/basis.h"
#include "data/transaction_db.h"

namespace privbasis::bench {

/// Random itemsets over the most frequent items — the regime where the
/// dense bitmap backend engages. Shared by the micro benches and the
/// smoke suite so their "dense query" workloads stay identical.
inline std::vector<Itemset> DenseQueries(const TransactionDatabase& db,
                                         size_t count, size_t size,
                                         uint64_t seed) {
  std::vector<Item> order = db.ItemsByFrequency();
  const size_t pool = std::min<size_t>(order.size(), 64);
  Rng rng(seed);
  std::vector<Itemset> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<Item> items;
    for (size_t j = 0; j < size; ++j) {
      items.push_back(order[rng.UniformInt(pool)]);
    }
    queries.push_back(Itemset(std::move(items)));
  }
  return queries;
}

/// Bases of the given width and length over the most frequent items.
inline BasisSet MakeFrequentItemBasis(const TransactionDatabase& db,
                                      size_t width, size_t length) {
  std::vector<Item> order = db.ItemsByFrequency();
  BasisSet basis;
  size_t cursor = 0;
  for (size_t i = 0; i < width; ++i) {
    std::vector<Item> items;
    for (size_t j = 0; j < length; ++j) {
      items.push_back(order[cursor++ % order.size()]);
    }
    basis.Add(Itemset(std::move(items)));
  }
  return basis;
}

}  // namespace privbasis::bench

#endif  // PRIVBASIS_BENCH_BENCH_UTIL_H_
