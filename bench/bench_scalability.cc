// Scalability study for §4.2's running-time analysis: PrivBasis runtime
// is O(w·|D| + w·3^ℓ), i.e. linear in the dataset size for fixed basis
// shape. Sweeps N (via generator scale) and k on the kosarak profile and
// reports wall-clock per phase.
#include "bench_common.h"
#include "fim/topk.h"

namespace privbasis {
namespace {

void Run() {
  std::printf("Scalability: PrivBasis wall-clock vs N and k (kosarak)\n");
  TextTable table({"N", "k", "mine_s", "pb_run_s", "w", "l", "|D|"});
  for (double scale : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    auto profile = SyntheticProfile::Kosarak(scale * BenchScale());
    TransactionDatabase db =
        bench::Unwrap(GenerateDataset(profile, 42), "GenerateDataset");
    for (size_t k : {100, 400}) {
      WallTimer mine_timer;
      TopKResult top = bench::Unwrap(
          MineTopK(db, static_cast<size_t>(1.1 * static_cast<double>(k)) + 1),
          "MineTopK");
      double mine_s = mine_timer.ElapsedSeconds();

      QuerySpec spec = QuerySpec().WithTopK(k).WithSeed(7);
      spec.pb.fk1_support_hint = top.kth_support;
      auto handle = Dataset::Borrow(db);
      WallTimer run_timer;
      auto result = Engine::Run(*handle, spec);
      double run_s = run_timer.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      table.AddRow({std::to_string(db.NumTransactions()), std::to_string(k),
                    TextTable::Num(mine_s, 3), TextTable::Num(run_s, 3),
                    std::to_string(result->basis_set.Width()),
                    std::to_string(result->basis_set.Length()),
                    std::to_string(db.TotalItemOccurrences())});
    }
  }
  table.Print(std::cout);
  std::printf("\nExpectation: pb_run_s grows ~linearly in |D| at fixed k "
              "(the O(w*|D|) scan dominates).\n");
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
