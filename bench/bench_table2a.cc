// Reproduces Table 2(a): per-dataset parameters N, |I|, avg |t|, and the
// top-k statistics λ (unique items), λ2 (pairs), λ3 (triples) at the
// paper's k per dataset. Paper values are printed alongside for
// comparison (our datasets are calibrated synthetics; see DESIGN.md §2.2).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "fim/topk.h"

namespace privbasis {
namespace {

struct PaperRow {
  const char* name;
  uint64_t n;
  uint64_t universe;
  double avg_len;
  size_t k;
  uint32_t lambda, lambda2, lambda3;
  uint64_t fk_count;
};

// Table 2(a)/(b) reference values from the paper.
constexpr PaperRow kPaperRows[] = {
    {"retail", 88162, 16470, 11.3, 100, 38, 37, 21, 1192},
    {"mushroom", 8124, 119, 24.0, 100, 11, 30, 36, 4464},
    {"pumsb-star", 49046, 2088, 50.0, 200, 17, 31, 50, 28613},
    {"kosarak", 990002, 41270, 8.1, 200, 44, 84, 58, 14142},
    {"aol", 647377, 2290685, 34.0, 200, 171, 29, 0, 12450},
};

void Run() {
  double scale = BenchScale();
  std::printf("Table 2(a): dataset parameters (scale=%.2f)\n", scale);
  TextTable table({"dataset", "N", "|I|", "avg|t|", "k", "lambda", "l2",
                   "l3", "fk*N", "paper: lam", "l2", "l3", "fk*N"});
  auto profiles = SyntheticProfile::AllPaperProfiles(scale);
  for (size_t i = 0; i < profiles.size(); ++i) {
    const auto& paper = kPaperRows[i];
    TransactionDatabase db = bench::MakeDataset(profiles[i]);
    DatasetStats stats = ComputeDatasetStats(db);
    TopKResult topk = bench::Unwrap(MineTopK(db, paper.k), "MineTopK");
    TopKStats ts = ComputeTopKStats(topk.itemsets);
    table.AddRow({profiles[i].name, std::to_string(stats.num_transactions),
                  std::to_string(stats.universe_size),
                  TextTable::Num(stats.avg_transaction_len, 1),
                  std::to_string(paper.k), std::to_string(ts.lambda),
                  std::to_string(ts.lambda2), std::to_string(ts.lambda3),
                  std::to_string(ts.fk_count), std::to_string(paper.lambda),
                  std::to_string(paper.lambda2), std::to_string(paper.lambda3),
                  std::to_string(paper.fk_count)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
