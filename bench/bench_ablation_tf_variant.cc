// Ablation: the TF baseline's two selection mechanisms. Bhaskar et al.
// propose both (i) Laplace-perturbed truncated frequencies and (ii)
// repeated exponential-mechanism sampling; the figures use one method per
// plot. This bench runs both on mushroom to confirm the choice does not
// change the comparison against PrivBasis.
#include "bench_common.h"

namespace privbasis {
namespace {

void Run() {
  auto profile = SyntheticProfile::Mushroom(BenchScale());
  TransactionDatabase db = bench::MakeDataset(profile);
  const size_t k = 100;
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");
  SweepConfig config;
  config.epsilons = {0.2, 0.5, 1.0};
  config.repeats = BenchRepeats();

  std::vector<SweepSeries> series;
  for (auto selection : {TfOptions::Selection::kExponentialMechanism,
                         TfOptions::Selection::kLaplaceNoise}) {
    TfOptions options;
    options.m = 2;
    options.selection = selection;
    auto runner = std::make_shared<TfRunner>(
        bench::Unwrap(TfRunner::Create(db, k, options), "TfRunner"));
    const char* label =
        selection == TfOptions::Selection::kExponentialMechanism
            ? "TF-EM"
            : "TF-Laplace";
    series.push_back(bench::Unwrap(
        RunEpsilonSweep(label, bench::TfMethod(runner), truth, config),
        "sweep"));
  }
  // PrivBasis reference line.
  series.push_back(bench::Unwrap(
      RunEpsilonSweep("PB", bench::PbMethod(db, k, truth), truth, config),
      "sweep"));
  PrintFigure(std::cout, "TF selection-variant ablation (mushroom, k=100)",
              series);
}

}  // namespace
}  // namespace privbasis

int main() {
  privbasis::Run();
  return 0;
}
