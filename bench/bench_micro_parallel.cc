// Microbenchmarks for the parallel counting engine: BasisFreq scan
// throughput vs. thread count, hybrid bitmap vs. galloping intersection
// throughput, batch support queries, and parallel index construction.
//
// Speedup expectations: the scan and index build scale with physical
// cores; the bitmap backend beats galloping on dense itemsets regardless
// of thread count.
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/basis_freq.h"
#include "data/synthetic.h"
#include "data/vertical_index.h"

namespace privbasis {
namespace {

using ::privbasis::bench::DenseQueries;
using ::privbasis::bench::MakeFrequentItemBasis;

const TransactionDatabase& Kosarak() {
  static TransactionDatabase db = [] {
    auto r = GenerateDataset(SyntheticProfile::Kosarak(0.05), 42);
    if (!r.ok()) std::abort();
    return std::move(r).value();
  }();
  return db;
}

const TransactionDatabase& Mushroom() {
  static TransactionDatabase db = [] {
    auto r = GenerateDataset(SyntheticProfile::Mushroom(1.0), 42);
    if (!r.ok()) std::abort();
    return std::move(r).value();
  }();
  return db;
}

/// Sharded scan throughput: the exact BasisFreq pipeline, zero noise so
/// the counting loop dominates.
void BM_ScanThreads(benchmark::State& state) {
  const auto& db = Kosarak();
  BasisSet basis = MakeFrequentItemBasis(db, 8, 8);
  Rng rng(1);
  BasisFreqOptions options;
  options.inject_noise = false;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = BasisFreq(db, basis, 100, 1.0, rng, nullptr, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.NumTransactions()));
}
BENCHMARK(BM_ScanThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Intersection throughput, bitmap backend vs. pure galloping: arg is the
/// density threshold in 1/1024 units (1024 disables bitmaps).
void BM_IntersectBackend(benchmark::State& state) {
  const auto& db = Mushroom();
  VerticalIndex::Options options;
  options.density_threshold = static_cast<double>(state.range(0)) / 1024.0;
  VerticalIndex index(db, options);
  auto queries = DenseQueries(db, 512, 4, 7);
  for (auto _ : state) {
    uint64_t sink = 0;
    for (const auto& q : queries) sink += index.SupportOf(q);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_IntersectBackend)->Arg(1024)->Arg(16)->Arg(0);

/// Kernel-level A/B: the same dense-intersection workload pinned to the
/// scalar (arg 0) vs AVX2 (arg 1) kernels. Supports are identical; only
/// the time differs.
void BM_IntersectSimdLevel(benchmark::State& state) {
  const auto& db = Mushroom();
  VerticalIndex index(db, {.density_threshold = 1.0 / 64.0});
  auto queries = DenseQueries(db, 512, 4, 7);
  const simd::Level level =
      state.range(0) ? simd::Level::kAvx2 : simd::Level::kScalar;
  if (level == simd::Level::kAvx2 && !simd::Avx2Supported()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const simd::Level prev = simd::SetLevel(level);
  for (auto _ : state) {
    uint64_t sink = 0;
    for (const auto& q : queries) sink += index.SupportOf(q);
    benchmark::DoNotOptimize(sink);
  }
  simd::SetLevel(prev);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(simd::LevelName(level));
}
BENCHMARK(BM_IntersectSimdLevel)->Arg(0)->Arg(1);

/// Batch support counting across the pool.
void BM_SupportOfManyThreads(benchmark::State& state) {
  const auto& db = Kosarak();
  VerticalIndex index(db);
  auto queries = DenseQueries(db, 2048, 3, 11);
  std::vector<uint64_t> out(queries.size());
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    index.SupportOfMany(queries, std::span<uint64_t>(out), threads);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_SupportOfManyThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

/// Parallel index construction (CSR fill + bitmap build).
void BM_IndexBuildThreads(benchmark::State& state) {
  const auto& db = Kosarak();
  VerticalIndex::Options options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    VerticalIndex index(db, options);
    benchmark::DoNotOptimize(index.NumDenseItems());
  }
}
BENCHMARK(BM_IndexBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace privbasis

BENCHMARK_MAIN();
