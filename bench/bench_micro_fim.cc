// Microbenchmarks for the mining substrate: FP-Growth vs Apriori at
// matching thresholds, and exact top-k mining (the evaluation's ground-
// truth path).
#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "fim/apriori.h"
#include "fim/eclat.h"
#include "fim/fpgrowth.h"
#include "fim/topk.h"

namespace privbasis {
namespace {

const TransactionDatabase& Mushroom() {
  static TransactionDatabase db = [] {
    auto r = GenerateDataset(SyntheticProfile::Mushroom(1.0), 42);
    if (!r.ok()) std::abort();
    return std::move(r).value();
  }();
  return db;
}

const TransactionDatabase& Kosarak() {
  static TransactionDatabase db = [] {
    auto r = GenerateDataset(SyntheticProfile::Kosarak(0.05), 42);
    if (!r.ok()) std::abort();
    return std::move(r).value();
  }();
  return db;
}

void BM_FpGrowthMushroom(benchmark::State& state) {
  const auto& db = Mushroom();
  MiningOptions options;
  options.min_support =
      db.NumTransactions() * static_cast<uint64_t>(state.range(0)) / 100;
  for (auto _ : state) {
    auto result = MineFpGrowth(db, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FpGrowthMushroom)->Arg(60)->Arg(50)->Arg(40);

void BM_AprioriMushroom(benchmark::State& state) {
  const auto& db = Mushroom();
  MiningOptions options;
  options.min_support =
      db.NumTransactions() * static_cast<uint64_t>(state.range(0)) / 100;
  for (auto _ : state) {
    auto result = MineApriori(db, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AprioriMushroom)->Arg(60)->Arg(50)->Arg(40);

void BM_TopKKosarak(benchmark::State& state) {
  const auto& db = Kosarak();
  for (auto _ : state) {
    auto result = MineTopK(db, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TopKKosarak)->Arg(100)->Arg(200)->Arg(400);

/// Ground-truth mining scaling: exact top-k with root conditional trees
/// dispatched across the pool (result is thread-count independent).
void BM_TopKThreads(benchmark::State& state) {
  const auto& db = Kosarak();
  for (auto _ : state) {
    auto result =
        MineTopK(db, 200, 0, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TopKThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Eclat scaling: root equivalence classes as pool tasks.
void BM_EclatThreads(benchmark::State& state) {
  const auto& db = Mushroom();
  MiningOptions options;
  options.min_support = db.NumTransactions() * 40 / 100;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = MineEclat(db, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EclatThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace privbasis

BENCHMARK_MAIN();
