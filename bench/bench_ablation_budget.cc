// Ablation: privacy-budget split (α1, α2, α3). The paper fixes
// 0.1/0.4/0.5 and notes the choice "was not tuned and may not be
// optimal". This bench sweeps alternative splits on mushroom (single-
// basis regime) and kosarak (multi-basis regime) at k = 100.
#include "bench_common.h"

namespace privbasis {
namespace {

struct Split {
  double a1, a2, a3;
};

void RunOn(const SyntheticProfile& profile, size_t k) {
  TransactionDatabase db = bench::MakeDataset(profile);
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");
  SweepConfig config;
  config.epsilons = {0.5};
  config.repeats = BenchRepeats();

  std::printf("Ablation: budget split (%s, k=%zu, eps=0.5)\n",
              profile.name.c_str(), k);
  TextTable table({"a1", "a2", "a3", "FNR", "+/-", "RE", "+/-"});
  for (const Split& s : std::vector<Split>{{0.1, 0.4, 0.5},  // paper default
                                           {0.1, 0.2, 0.7},
                                           {0.1, 0.6, 0.3},
                                           {0.2, 0.4, 0.4},
                                           {0.05, 0.45, 0.5},
                                           {0.33, 0.33, 0.34}}) {
    PrivBasisOptions options;
    options.alpha1 = s.a1;
    options.alpha2 = s.a2;
    options.alpha3 = s.a3;
    SweepSeries series = bench::Unwrap(
        RunEpsilonSweep("split", bench::PbMethod(db, k, truth, options),
                        truth, config),
        "sweep");
    const auto& p = series.points.front();
    table.AddRow({TextTable::Num(s.a1, 2), TextTable::Num(s.a2, 2),
                  TextTable::Num(s.a3, 2), TextTable::Num(p.fnr_mean, 4),
                  TextTable::Num(p.fnr_stderr, 4),
                  TextTable::Num(p.re_mean, 4),
                  TextTable::Num(p.re_stderr, 4)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace
}  // namespace privbasis

int main() {
  using namespace privbasis;
  RunOn(SyntheticProfile::Mushroom(BenchScale()), 100);
  RunOn(SyntheticProfile::Kosarak(BenchScale()), 100);
  return 0;
}
