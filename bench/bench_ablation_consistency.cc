// Ablation: monotone-consistency post-processing (core/consistency.h,
// following the constrained-inference idea of [23] which the paper cites
// for histograms). Measures how much repairing subset-monotonicity
// violations in the PB release improves RE/FNR — for free, since it is
// post-processing.
#include "bench_common.h"
#include "core/consistency.h"

namespace privbasis {
namespace {

void RunOn(const SyntheticProfile& profile, size_t k) {
  TransactionDatabase db = bench::MakeDataset(profile);
  GroundTruth truth =
      bench::Unwrap(ComputeGroundTruth(db, k), "ComputeGroundTruth");
  SweepConfig config;
  config.epsilons = {0.2, 0.5, 1.0};
  config.repeats = BenchRepeats();

  PrivBasisOptions options;
  options.fk1_support_hint = truth.fk1_support_eta11;

  std::vector<SweepSeries> series;
  auto dataset = Dataset::Borrow(db);
  for (bool repair : {false, true}) {
    QuerySpec spec;
    spec.k = k;
    spec.pb = options;
    ReleaseMethod pb = EngineMethod(dataset, spec);
    ReleaseMethod method =
        [pb, repair](double epsilon,
                     Rng& rng) -> Result<std::vector<NoisyItemset>> {
      PRIVBASIS_ASSIGN_OR_RETURN(std::vector<NoisyItemset> released,
                                 pb(epsilon, rng));
      if (repair) EnforceMonotoneConsistency(&released);
      return released;
    };
    series.push_back(bench::Unwrap(
        RunEpsilonSweep(repair ? "PB+consistency" : "PB-raw", method, truth,
                        config),
        "sweep"));
  }
  PrintFigure(std::cout,
              "Consistency ablation: " + profile.name +
                  " k=" + std::to_string(k),
              series);
}

}  // namespace
}  // namespace privbasis

int main() {
  using namespace privbasis;
  RunOn(SyntheticProfile::Mushroom(BenchScale()), 100);
  RunOn(SyntheticProfile::Kosarak(BenchScale()), 200);
  return 0;
}
