// Figure 4: PB vs TF on the Kosarak dataset, k ∈ {100, 200, 300, 400},
// over ε ∈ [0.2, 1.0]. Paper: PB λ = 24/44/50/60 (multiple bases), TF
// m = 4/2/2/2; PB stays accurate through k = 400 while TF is acceptable
// only at k = 100 with ε ≥ 0.5.
#include "bench_common.h"

int main() {
  using namespace privbasis;
  bench::RunFigure("Figure 4: Kosarak (sparse clickstream, many bases)",
                   SyntheticProfile::Kosarak(BenchScale()),
                   {{/*k=*/100, /*tf_m=*/4, /*eta=*/1.2},
                    {/*k=*/200, /*tf_m=*/2, /*eta=*/1.1},
                    {/*k=*/300, /*tf_m=*/2, /*eta=*/1.1},
                    {/*k=*/400, /*tf_m=*/2, /*eta=*/1.1}},
                   PaperEpsilonGridSparse());
  return 0;
}
