// CountExecutor: the exact-counting seam of the private mechanisms.
//
// Every data-dependent quantity PrivBasis consumes during a query is an
// exact integer COUNT over the transactions — per-basis bin histograms
// (BasisFreq), pair supports (step 3), itemset supports (batch paths).
// Counts over a horizontal partition of the database merge by plain
// integer addition, exactly, in any grouping — which is what makes
// scatter-gather execution transparent: a mechanism that pulls its
// counts through this interface produces the bit-identical release at
// any shard count, because the noise is drawn once, from the merged
// counts, by the unchanged RNG stream.
//
// Implementations (src/shard): LocalShardExecutor fans the scan over an
// in-process ShardedDatabase; RemoteShardExecutor scatters to
// privbasis_shardd worker processes over the length-prefixed wire
// protocol. The interface lives in src/core (not src/shard) because the
// mechanisms must be able to call through it without core depending on
// the shard subsystem.
//
// Error contract: an executor that cannot produce the exact count —
// a dead worker, a fired deadline — returns a non-OK status
// (kUnavailable / kCancelled) and the mechanism unwinds. It must NEVER
// return partial or approximate counts: the engine's aborted-lease path
// then charges the full ε reservation (fail closed), exactly as for any
// other mid-run failure.
#ifndef PRIVBASIS_CORE_COUNT_EXEC_H_
#define PRIVBASIS_CORE_COUNT_EXEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/basis.h"
#include "data/itemset.h"

namespace privbasis {

class CountExecutor {
 public:
  virtual ~CountExecutor() = default;

  /// Number of horizontal shards the executor scatters over (≥ 1).
  /// Purely informational — results never depend on it.
  virtual size_t NumShards() const = 0;

  /// Exact BasisFreq bin histograms: out[i][mask] = number of
  /// transactions whose intersection with basis i is exactly the subset
  /// `mask` encodes. Identical to core CountBasisBins on the whole
  /// database (tests/shard_test.cc pins the equality bit for bit).
  virtual Result<std::vector<std::vector<uint64_t>>> BasisBinCounts(
      const BasisSet& basis_set, const CancelToken* cancel) const = 0;

  /// Exact pair supports restricted to `items`: dense upper-triangular
  /// counts, pair (i, j) with i < j at index i·|items| + j — the layout
  /// of core CountPairSupports.
  virtual Result<std::vector<uint64_t>> PairSupports(
      const std::vector<Item>& items, const CancelToken* cancel) const = 0;

  /// Exact batch supports: out[q] = support(queries[q]).
  virtual Result<std::vector<uint64_t>> SupportOfMany(
      std::span<const Itemset> queries, const CancelToken* cancel) const = 0;

  /// Exact per-item supports over the whole universe (index = item id).
  virtual Result<std::vector<uint64_t>> ItemSupports(
      const CancelToken* cancel) const = 0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_COUNT_EXEC_H_
