#include "core/threshold.h"

#include <algorithm>

namespace privbasis {

namespace detail {

void FilterByNoisyThreshold(double theta, size_t num_transactions,
                            std::vector<NoisyItemset>* released) {
  const double theta_count = theta * static_cast<double>(num_transactions);
  std::erase_if(*released, [theta_count](const NoisyItemset& itemset) {
    return itemset.noisy_count < theta_count;
  });
}

}  // namespace detail

}  // namespace privbasis
