#include "core/threshold.h"

#include <algorithm>

namespace privbasis {

namespace detail {

void FilterByNoisyThreshold(double theta, size_t num_transactions,
                            std::vector<NoisyItemset>* released) {
  const double theta_count = theta * static_cast<double>(num_transactions);
  std::erase_if(*released, [theta_count](const NoisyItemset& itemset) {
    return itemset.noisy_count < theta_count;
  });
}

}  // namespace detail

Result<PrivBasisResult> RunPrivBasisThreshold(
    const TransactionDatabase& db, double theta, size_t k_cap,
    double epsilon, Rng& rng, const PrivBasisOptions& options) {
  if (!(theta > 0.0) || theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  if (k_cap == 0) {
    return Status::InvalidArgument("k_cap must be >= 1");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(
      PrivBasisResult result, RunPrivBasis(db, k_cap, epsilon, rng, options));
  detail::FilterByNoisyThreshold(theta, db.NumTransactions(), &result.topk);
  return result;
}

}  // namespace privbasis
