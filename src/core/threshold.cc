#include "core/threshold.h"

#include <algorithm>

namespace privbasis {

Result<PrivBasisResult> RunPrivBasisThreshold(
    const TransactionDatabase& db, double theta, size_t k_cap,
    double epsilon, Rng& rng, const PrivBasisOptions& options) {
  if (!(theta > 0.0) || theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  if (k_cap == 0) {
    return Status::InvalidArgument("k_cap must be >= 1");
  }
  PRIVBASIS_ASSIGN_OR_RETURN(
      PrivBasisResult result, RunPrivBasis(db, k_cap, epsilon, rng, options));
  const double theta_count =
      theta * static_cast<double>(db.NumTransactions());
  // Post-processing filter on the already-released noisy counts: no
  // additional privacy cost.
  std::erase_if(result.topk, [theta_count](const NoisyItemset& itemset) {
    return itemset.noisy_count < theta_count;
  });
  return result;
}

}  // namespace privbasis
