#include "core/association_rules.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace privbasis {

std::string AssociationRule::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (supp=%.4f, conf=%.3f)", support,
                confidence);
  return antecedent.ToString() + " => " + consequent.ToString() + buf;
}

Result<std::vector<AssociationRule>> ExtractRules(
    const std::vector<NoisyItemset>& released, uint64_t num_transactions,
    const RuleOptions& options) {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  if (options.min_confidence < 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  const double n = static_cast<double>(num_transactions);

  // Noisy frequency per released itemset, floored at 1/N (noise can push
  // counts to or below zero; a rule denominator must stay positive).
  std::unordered_map<Itemset, double, ItemsetHash> freq;
  freq.reserve(released.size() * 2);
  for (const auto& r : released) {
    freq[r.items] = std::max(r.noisy_count, 1.0) / n;
  }

  std::vector<AssociationRule> rules;
  for (const auto& r : released) {
    if (r.items.size() < 2) continue;
    double support = std::max(r.noisy_count, 1.0) / n;
    if (support < options.min_support) continue;
    ForEachSubset(r.items, /*max_size=*/r.items.size() - 1,
                  [&](const Itemset& antecedent) {
                    if (options.max_antecedent != 0 &&
                        antecedent.size() > options.max_antecedent) {
                      return;
                    }
                    auto found = freq.find(antecedent);
                    if (found == freq.end()) return;
                    // Confidence capped at 1: noise can make
                    // f(X) > f(A) even though exact frequencies are
                    // monotone under set inclusion.
                    double confidence = std::min(1.0, support / found->second);
                    if (confidence < options.min_confidence) return;
                    rules.push_back(AssociationRule{
                        antecedent, r.items.Difference(antecedent), support,
                        confidence});
                  });
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

}  // namespace privbasis
