// Algorithm 2 (ConstructBasisSet): build a basis set covering all maximal
// cliques of the frequent-pairs graph (F, P), then greedily reshape it to
// minimize the average-case error variance over the queries Q = F ∪ P:
//
//   B1 <- maximal cliques of size >= 2          (Proposition 5)
//   B2 <- items of F \ P packed into triples    (2^{l-1}/l² minimal at l=3)
//   merge pairs of B1 while that reduces EV     (Proposition 4)
//   dissolve B2 bases into smallest others while that reduces EV
#ifndef PRIVBASIS_CORE_CONSTRUCT_BASIS_H_
#define PRIVBASIS_CORE_CONSTRUCT_BASIS_H_

#include <vector>

#include "common/status.h"
#include "core/basis.h"
#include "data/itemset.h"

namespace privbasis {

struct ConstructBasisOptions {
  /// Hard cap on any basis length: merges/moves that would exceed it are
  /// not considered (the paper limits ℓ to at most 12 — §4.2 running-time
  /// analysis).
  size_t max_basis_length = 12;
};

/// Builds a basis set from frequent items F and frequent pairs P. Each
/// pair must have exactly two items; pair endpoints missing from F are
/// treated as members of F. Purely post-processing — never touches the
/// dataset (this is what keeps Algorithm 3's step 4 free of privacy cost).
Result<BasisSet> ConstructBasisSet(const std::vector<Item>& freq_items,
                                   const std::vector<Itemset>& freq_pairs,
                                   const ConstructBasisOptions& options = {});

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_CONSTRUCT_BASIS_H_
