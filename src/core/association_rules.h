// Association rules from a private itemset release.
//
// The paper's introduction motivates frequent itemsets by association-
// rule mining ([5]); this module closes that loop: rules A -> B with
// support f(A ∪ B) and confidence f(A ∪ B)/f(A), computed purely from the
// *released noisy frequencies*. Because it only post-processes a DP
// release, it consumes no additional privacy budget (DP is closed under
// post-processing).
#ifndef PRIVBASIS_CORE_ASSOCIATION_RULES_H_
#define PRIVBASIS_CORE_ASSOCIATION_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fim/miner.h"

namespace privbasis {

/// A -> B with noisy support/confidence estimates.
struct AssociationRule {
  Itemset antecedent;   ///< A (non-empty)
  Itemset consequent;   ///< B (non-empty, disjoint from A)
  double support = 0;    ///< noisy f(A ∪ B)
  double confidence = 0; ///< noisy f(A ∪ B) / noisy f(A)

  std::string ToString() const;
};

struct RuleOptions {
  /// Keep only rules with confidence ≥ this.
  double min_confidence = 0.5;
  /// Keep only rules with (noisy) support ≥ this.
  double min_support = 0.0;
  /// Maximum antecedent size (0 = unbounded).
  size_t max_antecedent = 0;
};

/// Derives rules from released itemsets. For every released X with
/// |X| ≥ 2 and every proper non-empty A ⊂ X that was *also released*
/// (confidence needs f(A)), emits A -> X∖A when it clears the thresholds.
/// Noisy frequencies are clamped below at 1/N to keep confidences finite.
/// Output is sorted by descending confidence, then support.
Result<std::vector<AssociationRule>> ExtractRules(
    const std::vector<NoisyItemset>& released, uint64_t num_transactions,
    const RuleOptions& options = {});

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_ASSOCIATION_RULES_H_
