// Subsampled PrivBasis: run Algorithm 3 on a Poisson q-subsample with the
// amplification-adjusted budget so the end-to-end guarantee is the target
// ε (dp/amplification.h). An optional-extension experiment: for large
// datasets the binomial sampling error can be far smaller than the
// Laplace noise saved by the amplified budget.
#ifndef PRIVBASIS_CORE_AMPLIFIED_H_
#define PRIVBASIS_CORE_AMPLIFIED_H_

#include "core/privbasis.h"

namespace privbasis {

struct AmplifiedOptions {
  /// Poisson sampling rate q ∈ (0, 1].
  double sampling_rate = 0.5;
  PrivBasisOptions base;
};

/// DEPRECATED: thin wrapper kept for one PR — new code should go through
/// `Engine::Run` with `QuerySpec::WithAmplification` (engine/engine.h).
///
/// Runs PrivBasis on a Poisson subsample of `db` with mechanism budget
/// ε' = ln(1 + (e^ε − 1)/q), which amplifies back to ε-DP end to end.
/// Released counts are rescaled by 1/q to estimate full-dataset counts.
/// Note the fk1 hint in `options.base` is ignored (it would leak the
/// full dataset's statistics into the subsample run); the subsample's
/// own top-k margin is mined instead.
Result<PrivBasisResult> RunPrivBasisSubsampled(
    const TransactionDatabase& db, size_t k, double epsilon, Rng& rng,
    const AmplifiedOptions& options = {});

namespace detail {

/// Implementation behind RunPrivBasisSubsampled and Engine::Run: the
/// subsample run meters its mechanism budget ε' against an inner ledger,
/// and the amplified end-to-end guarantee ln(1 + q·(e^{ε'_spent} − 1)) —
/// never more than the target `epsilon` — is charged to `accountant` as
/// one entry, so reported spend always equals metered spend.
Result<PrivBasisResult> RunPrivBasisSubsampledImpl(
    const TransactionDatabase& db, size_t k, double epsilon, Rng& rng,
    const AmplifiedOptions& options, PrivacyAccountant& accountant);

}  // namespace detail

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_AMPLIFIED_H_
