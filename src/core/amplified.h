// Subsampled PrivBasis: run Algorithm 3 on a Poisson q-subsample with the
// amplification-adjusted budget so the end-to-end guarantee is the target
// ε (dp/amplification.h). An optional-extension experiment: for large
// datasets the binomial sampling error can be far smaller than the
// Laplace noise saved by the amplified budget.
#ifndef PRIVBASIS_CORE_AMPLIFIED_H_
#define PRIVBASIS_CORE_AMPLIFIED_H_

#include "core/privbasis.h"

namespace privbasis {

struct AmplifiedOptions {
  /// Poisson sampling rate q ∈ (0, 1].
  double sampling_rate = 0.5;
  PrivBasisOptions base;
};

namespace detail {

/// Implementation behind `Engine::Run` with
/// `QuerySpec::WithAmplification` (the public subsampled entry point):
/// runs PrivBasis on a Poisson q-subsample with mechanism budget
/// ε' = ln(1 + (e^ε − 1)/q), which amplifies back to ε-DP end to end;
/// released counts are rescaled by 1/q to estimate full-dataset counts.
/// The subsample run meters ε' against an inner ledger, and the
/// amplified end-to-end guarantee ln(1 + q·(e^{ε'_spent} − 1)) — never
/// more than the target `epsilon` — is charged to `accountant` as one
/// entry, so reported spend always equals metered spend. The fk1 hint in
/// `options.base` is ignored (it would leak the full dataset's
/// statistics into the subsample run); the subsample's own top-k margin
/// is mined instead.
Result<PrivBasisResult> RunPrivBasisSubsampledImpl(
    const TransactionDatabase& db, size_t k, double epsilon, Rng& rng,
    const AmplifiedOptions& options, PrivacyAccountant& accountant);

}  // namespace detail

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_AMPLIFIED_H_
