#include "core/consistency.h"

#include <algorithm>
#include <unordered_map>

namespace privbasis {

namespace {

/// Indices of `released` sorted by ascending itemset size (subsets before
/// supersets in every chain).
std::vector<size_t> BySize(const std::vector<NoisyItemset>& released) {
  std::vector<size_t> order(released.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return released[a].items.size() < released[b].items.size();
  });
  return order;
}

/// For each released itemset, the indices of its released *immediate-or-
/// deeper* subsets (any released proper subset). Quadratic in the release
/// size, which is k ≤ a few hundred — fine.
std::vector<std::vector<size_t>> SubsetLinks(
    const std::vector<NoisyItemset>& released) {
  std::vector<std::vector<size_t>> links(released.size());
  for (size_t i = 0; i < released.size(); ++i) {
    for (size_t j = 0; j < released.size(); ++j) {
      if (i == j) continue;
      if (released[j].items.size() < released[i].items.size() &&
          released[j].items.IsSubsetOf(released[i].items)) {
        links[i].push_back(j);
      }
    }
  }
  return links;
}

}  // namespace

size_t CountMonotoneViolations(const std::vector<NoisyItemset>& released,
                               double tolerance) {
  auto links = SubsetLinks(released);
  size_t violations = 0;
  for (size_t i = 0; i < released.size(); ++i) {
    for (size_t j : links[i]) {
      if (released[i].noisy_count > released[j].noisy_count + tolerance) {
        ++violations;
      }
    }
  }
  return violations;
}

size_t EnforceMonotoneConsistency(std::vector<NoisyItemset>* released) {
  auto& items = *released;
  size_t violations = CountMonotoneViolations(items);

  auto links = SubsetLinks(items);
  std::vector<size_t> order = BySize(items);

  // Lower monotone envelope: sweep subsets-first, capping each itemset by
  // the minimum of its subsets' (already-final) lower values.
  std::vector<double> lower(items.size());
  for (size_t idx : order) {
    double v = std::max(0.0, items[idx].noisy_count);
    for (size_t sub : links[idx]) v = std::min(v, lower[sub]);
    lower[idx] = v;
  }

  // Upper monotone envelope: sweep supersets-first, raising each itemset
  // to the maximum of its supersets' (already-final) upper values.
  std::vector<double> upper(items.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    upper[*it] = std::max(0.0, items[*it].noisy_count);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    size_t idx = *it;
    // Supersets of idx are exactly the entries whose links contain idx;
    // recompute via the reverse relation.
    for (size_t i = 0; i < items.size(); ++i) {
      if (i == idx) continue;
      if (items[idx].items.size() < items[i].items.size() &&
          items[idx].items.IsSubsetOf(items[i].items)) {
        upper[idx] = std::max(upper[idx], upper[i]);
      }
    }
  }

  // Midpoint of two monotone assignments is monotone.
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].noisy_count = 0.5 * (lower[i] + upper[i]);
  }
  return violations;
}

}  // namespace privbasis
