// Same-dataset query batching at the CountExecutor seam.
//
// N concurrent queries against one dataset each run their own counting
// scans even though the scans are over the same transactions —
// VerticalIndex::SupportOfMany and the fused CountBasisBins OR-word
// path exist precisely to amortize them. BatchingCountExecutor wraps
// any CountExecutor with a rendezvous gate per operation kind:
// concurrent calls of the same kind are collected for a bounded window
// (sized by the caller's live in-flight hint), fused into ONE inner
// scan, and the exact per-member counts are split back out.
//
// Determinism: the fusion merges/splits EXACT integer counts before any
// member draws noise, and a member that arrives alone passes through to
// the inner executor verbatim (same function, same cancel token) — so
// every query's release is bit-identical to its unbatched run at the
// same seed, whether or not co-riders showed up. The error contract is
// the CountExecutor one: a failed fused scan fails every member with
// the status (never partial counts), and a member whose own deadline
// fired during a shared scan gets kCancelled even when the scan
// finished — fail-closed either way.
//
// DirectCountExecutor adapts the unsharded direct-scan path (the same
// CountBasisBins / CountPairSupports / VerticalIndex::SupportOfMany
// calls the mechanisms make when no executor is attached) to the
// CountExecutor interface, so batching composes with fanout 1 as well
// as with the sharded executors.
#ifndef PRIVBASIS_CORE_BATCH_EXEC_H_
#define PRIVBASIS_CORE_BATCH_EXEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "core/count_exec.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"

namespace privbasis {

/// Monotone batching counters (one instance can be shared across every
/// dataset's batcher — the server aggregates them into /v1/stats).
struct BatchStats {
  std::atomic<uint64_t> batches{0};          ///< fused scans (≥ 2 members)
  std::atomic<uint64_t> batched_queries{0};  ///< members that rode one
  std::atomic<uint64_t> scans_saved{0};      ///< Σ over batches of (n − 1)
};

/// The unsharded direct-scan path behind the CountExecutor interface:
/// every op calls the exact function the mechanisms use when no
/// executor is attached, so attaching this executor never changes a
/// release bit.
class DirectCountExecutor : public CountExecutor {
 public:
  DirectCountExecutor(std::shared_ptr<const TransactionDatabase> db,
                      std::shared_ptr<const VerticalIndex> index,
                      size_t num_threads = 0)
      : db_(std::move(db)),
        index_(std::move(index)),
        num_threads_(num_threads) {}

  size_t NumShards() const override { return 1; }

  Result<std::vector<std::vector<uint64_t>>> BasisBinCounts(
      const BasisSet& basis_set, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> PairSupports(
      const std::vector<Item>& items, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> SupportOfMany(
      std::span<const Itemset> queries,
      const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> ItemSupports(
      const CancelToken* cancel) const override;

 private:
  std::shared_ptr<const TransactionDatabase> db_;
  std::shared_ptr<const VerticalIndex> index_;
  size_t num_threads_;
};

class BatchingCountExecutor : public CountExecutor {
 public:
  struct Options {
    /// Longest a batch leader waits for co-riders, in microseconds.
    /// ≤ 0 disables batching entirely (all ops pass straight through).
    int64_t window_us = 0;
    /// Members per fused scan (≤ 1 disables batching).
    size_t max_batch = 8;
  };

  /// `stats` may be null (counters dropped) or shared across executors.
  BatchingCountExecutor(std::shared_ptr<const CountExecutor> inner,
                        Options options,
                        std::shared_ptr<BatchStats> stats = nullptr);
  ~BatchingCountExecutor() override;

  /// Scheduling signal from the serving layer: queries bracket their
  /// Engine::Run with BeginQuery/EndQuery, and a round's target size is
  /// the number of queries currently in flight (capped by max_batch).
  /// With one query in flight, every op passes through immediately —
  /// batching never adds latency without co-riders. `window_hint_us`
  /// > 0 shrinks the wait window for this load level (the cost model's
  /// predicted latency makes long windows pointless for cheap queries).
  void BeginQuery(int64_t window_hint_us = 0);
  void EndQuery();

  const CountExecutor& inner() const { return *inner_; }

  size_t NumShards() const override { return inner_->NumShards(); }

  Result<std::vector<std::vector<uint64_t>>> BasisBinCounts(
      const BasisSet& basis_set, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> PairSupports(
      const std::vector<Item>& items, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> SupportOfMany(
      std::span<const Itemset> queries,
      const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> ItemSupports(
      const CancelToken* cancel) const override;

 private:
  /// One rendezvous round: members register (request pointer + their
  /// cancel token), the leader closes the round and runs the fused
  /// scan, everyone reads their slice. Requests are raw pointers into
  /// the members' stacks — valid because every member blocks in the
  /// gate until `done`.
  template <typename Req, typename Resp>
  struct Round {
    Mutex mu;
    CondVar cv;
    bool closed PB_GUARDED_BY(mu) = false;  ///< no further joiners
    bool done PB_GUARDED_BY(mu) = false;    ///< status/resps are valid
    std::vector<const Req*> reqs PB_GUARDED_BY(mu);
    std::vector<const CancelToken*> cancels PB_GUARDED_BY(mu);
    Status status PB_GUARDED_BY(mu) = Status::OK();
    std::vector<Resp> resps PB_GUARDED_BY(mu);
  };

  template <typename Req, typename Resp>
  struct Gate {
    Mutex mu;
    std::shared_ptr<Round<Req, Resp>> current PB_GUARDED_BY(mu);
  };

  /// Joins (or leads) a round on `gate`. `fuse` is called once by the
  /// leader with all member requests + the fused cancel token and must
  /// return one Resp per member, in member order.
  template <typename Req, typename Resp, typename Fuse>
  Result<Resp> RunBatched(Gate<Req, Resp>& gate, const Req& req,
                          const CancelToken* cancel, Fuse&& fuse) const;

  /// True when an op should skip the gate (batching off / nobody to
  /// share with).
  bool Passthrough() const;

  std::shared_ptr<const CountExecutor> inner_;
  Options options_;
  std::shared_ptr<BatchStats> stats_;

  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> window_hint_us_{0};

  struct BasisBinReq {
    const BasisSet* basis_set;
  };
  struct PairReq {
    const std::vector<Item>* items;
  };
  struct ManyReq {
    std::span<const Itemset> queries;
  };
  struct ItemReq {};

  mutable Gate<BasisBinReq, std::vector<std::vector<uint64_t>>> bin_gate_;
  mutable Gate<PairReq, std::vector<uint64_t>> pair_gate_;
  mutable Gate<ManyReq, std::vector<uint64_t>> many_gate_;
  mutable Gate<ItemReq, std::vector<uint64_t>> item_gate_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_BATCH_EXEC_H_
