#include "core/amplified.h"

#include "dp/amplification.h"

namespace privbasis {

namespace detail {

Result<PrivBasisResult> RunPrivBasisSubsampledImpl(
    const TransactionDatabase& db, size_t k, double epsilon, Rng& rng,
    const AmplifiedOptions& options, PrivacyAccountant& accountant) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  const double q = options.sampling_rate;
  PRIVBASIS_ASSIGN_OR_RETURN(TransactionDatabase sample,
                             PoissonSubsample(db, q, rng));
  if (sample.NumTransactions() == 0) {
    return Status::FailedPrecondition(
        "subsample is empty; raise sampling_rate or dataset size");
  }
  const double mechanism_epsilon = MechanismEpsilonForTarget(q, epsilon);
  PrivBasisOptions base = options.base;
  base.fk1_support_hint = 0;  // must be computed on the subsample
  // The subsample run spends against its own mechanism-budget ledger;
  // only the amplified end-to-end ε is charged to the caller's.
  PrivacyAccountant mechanism_accountant(mechanism_epsilon);
  PRIVBASIS_ASSIGN_OR_RETURN(
      PrivBasisResult result,
      RunPrivBasisImpl(sample, k, mechanism_epsilon, rng, base,
                       mechanism_accountant));
  // Rescale counts from the subsample to the full dataset.
  for (auto& itemset : result.topk) {
    itemset.noisy_count /= q;
  }
  // Charge (and report) the end-to-end guarantee, not the per-run
  // mechanism budget — read back from the ledger, not recomputed.
  const double amplified =
      AmplifiedEpsilon(q, mechanism_accountant.spent_epsilon());
  PRIVBASIS_RETURN_NOT_OK(accountant.Consume(
      amplified, "PrivBasis(subsampled q=" + std::to_string(q) + ")"));
  result.epsilon_spent = accountant.spent_epsilon();
  return result;
}

}  // namespace detail

}  // namespace privbasis
