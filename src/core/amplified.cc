#include "core/amplified.h"

#include "dp/amplification.h"

namespace privbasis {

Result<PrivBasisResult> RunPrivBasisSubsampled(
    const TransactionDatabase& db, size_t k, double epsilon, Rng& rng,
    const AmplifiedOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  const double q = options.sampling_rate;
  PRIVBASIS_ASSIGN_OR_RETURN(TransactionDatabase sample,
                             PoissonSubsample(db, q, rng));
  if (sample.NumTransactions() == 0) {
    return Status::FailedPrecondition(
        "subsample is empty; raise sampling_rate or dataset size");
  }
  const double mechanism_epsilon = MechanismEpsilonForTarget(q, epsilon);
  PrivBasisOptions base = options.base;
  base.fk1_support_hint = 0;  // must be computed on the subsample
  PRIVBASIS_ASSIGN_OR_RETURN(
      PrivBasisResult result,
      RunPrivBasis(sample, k, mechanism_epsilon, rng, base));
  // Rescale counts from the subsample to the full dataset.
  for (auto& itemset : result.topk) {
    itemset.noisy_count /= q;
  }
  // Report the end-to-end guarantee, not the per-run mechanism budget.
  result.epsilon_spent = AmplifiedEpsilon(q, result.epsilon_spent);
  return result;
}

}  // namespace privbasis
