// Algorithm 3 (PrivBasis): the end-to-end ε-DP top-k frequent itemset
// release.
//
//   1. λ  <- GetLambda(D, k, α1·ε)          number of items in the top k
//   2. F  <- GetFreqElements(items, λ, ...)  the λ most frequent items
//   3. P  <- GetFreqElements(pairs of F, λ2, ...)   (only when λ > 12)
//   4. B  <- ConstructBasisSet(F, P)         no privacy cost
//   5. top-k <- BasisFreq(D, B, k, α3·ε)
//
// Budget split α1 + α2 + α3 = 1 (defaults 0.1 / 0.4 / 0.5 as in §4.4);
// within step 2+3, α2·ε splits as β1 = α2·λ/(λ+λ2), β2 = α2 − β1. The λ2
// heuristic is λ2 = λ2'/sqrt(max(1, λ2'/λ)) with λ2' = η·k − λ.
#ifndef PRIVBASIS_CORE_PRIVBASIS_H_
#define PRIVBASIS_CORE_PRIVBASIS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/basis.h"
#include "core/basis_freq.h"
#include "data/transaction_db.h"
#include "dp/budget.h"
#include "fim/miner.h"

namespace privbasis {

/// Tunables of Algorithm 3. Defaults follow the paper.
struct PrivBasisOptions {
  /// Budget split across GetLambda / item+pair selection / BasisFreq.
  /// Must sum to ≤ 1 (the remainder is simply unspent).
  double alpha1 = 0.1;
  double alpha2 = 0.4;
  double alpha3 = 0.5;
  /// Safety margin η (paper: 1.1 or 1.2): GetLambda targets the
  /// ⌈η·k⌉-th itemset so that underestimating λ — the costlier error —
  /// becomes unlikely.
  double eta = 1.1;
  /// λ at or below this uses the single-basis fast path (paper: 12).
  size_t single_basis_lambda_cap = 12;
  /// Length cap handed to ConstructBasisSet (paper: 12).
  size_t max_basis_length = 12;
  /// Use the monotone-quality exponential mechanism (drops the 1/2 in the
  /// exponent) in GetFreqElements, as the pseudocode's e^{f·ε/λ} does.
  bool monotonic_em = true;
  /// Ablation switch: use the naive λ2 = η·k − λ instead of the paper's
  /// square-root-damped heuristic (§4.4 argues the naive choice spreads
  /// the pair budget too thin — bench_ablation_lambda2 measures it).
  bool naive_lambda2 = false;
  /// Practical guard: λ samples above this are clamped (a wild λ at tiny
  /// ε would otherwise make BasisFreq's width explode). 0 = min(3k, |I|).
  size_t lambda_cap = 0;
  /// Exact support of the ⌈η·k⌉-th most frequent itemset, if the caller
  /// already mined it (experiment harnesses reuse it across repetitions);
  /// 0 = compute internally. Using it changes nothing statistically —
  /// it is the same data-dependent quantity either way.
  uint64_t fk1_support_hint = 0;
  /// Cooperative cancellation for the non-BasisFreq scans (the fk1 mine
  /// and pair counting); the Engine also mirrors this into
  /// basis_freq.cancel. nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Scatter-gather seam (core/count_exec.h): when set, the exact pair
  /// supports of step 3 and the BasisFreq bin counts of step 5 come from
  /// the executor's merged per-shard counts instead of local scans.
  /// Bit-identical either way; mining (the fk1 hint) and the item-support
  /// scan stay on the caller, which retains the full database. Mirrored
  /// into basis_freq.exec when that is unset.
  const CountExecutor* exec = nullptr;
  BasisFreqOptions basis_freq;
};

/// Output of one PrivBasis run.
struct PrivBasisResult {
  /// The released top-k itemsets with noisy counts, best first.
  std::vector<NoisyItemset> topk;
  // Diagnostics (all derived from DP-released intermediates — safe to
  // expose):
  uint32_t lambda = 0;       ///< sampled λ
  uint32_t lambda2 = 0;      ///< pair-selection target (0 on the fast path)
  BasisSet basis_set;        ///< the basis set used by BasisFreq
  double epsilon_spent = 0;  ///< total privacy budget actually consumed
};

/// Validates the (k, ε, options) triple of one PrivBasis query: k ≥ 1,
/// ε > 0 and finite, α1/α2/α3 positive with α1+α2+α3 ≤ 1, η ≥ 1, and
/// max_basis_length ≥ 1. The single source of truth for option checks —
/// QuerySpec::Validate, the Engine, and the deprecated free functions all
/// route through it.
Status ValidatePrivBasisOptions(size_t k, double epsilon,
                                const PrivBasisOptions& options);

namespace detail {

/// Mechanism implementation behind Engine::Run (the single public entry
/// point — the pre-Engine free-function wrappers are gone): every ε
/// expenditure is drawn from `accountant`, which must be a fresh
/// run-scoped ledger with at least `epsilon` of headroom (the Engine
/// constructs one per call). `result.epsilon_spent` is read back from
/// the accountant, never recomputed.
Result<PrivBasisResult> RunPrivBasisImpl(const TransactionDatabase& db,
                                         size_t k, double epsilon, Rng& rng,
                                         const PrivBasisOptions& options,
                                         PrivacyAccountant& accountant);

}  // namespace detail

// --- exposed sub-steps (unit-tested individually) ----------------------

/// Step 1: samples λ, the number of unique items in the top k itemsets,
/// with the exponential mechanism over item ranks: quality of rank j is
/// (1 − |f_itemj − f_k1|)·N (sensitivity 1). `fk1_support` is the exact
/// support of the ⌈η·k⌉-th itemset.
uint32_t GetLambda(const TransactionDatabase& db, uint64_t fk1_support,
                   double epsilon, Rng& rng);

/// Steps 2/3 worker: selects `count` of the candidates by repeated
/// exponential mechanism without replacement, quality = absolute support,
/// per-round budget epsilon/count. Returns selected candidate indices.
Result<std::vector<size_t>> GetFreqElements(
    std::span<const uint64_t> candidate_supports, size_t count,
    double epsilon, bool monotonic, Rng& rng);

/// Exact pair-support counting restricted to `items`: one data scan,
/// returns the dense upper-triangular counts, pair (i, j) with i < j at
/// index i*|items| + j. A fired `cancel` token stops the scan within one
/// transaction chunk and returns the partial counts — the caller must
/// check the token and discard them (RunPrivBasisImpl does).
std::vector<uint64_t> CountPairSupports(const TransactionDatabase& db,
                                        const std::vector<Item>& items,
                                        const CancelToken* cancel = nullptr);

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_PRIVBASIS_H_
