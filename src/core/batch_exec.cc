#include "core/batch_exec.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <optional>
#include <utility>

#include "core/basis_freq.h"
#include "core/privbasis.h"

namespace privbasis {

namespace {

/// The cancel token a fused scan runs under. Member deadlines differ,
/// but counts merge exactly, so the shared scan may only be cut short
/// once EVERY member is past its deadline — the max. If any member has
/// no deadline the scan is uninterruptible (nullptr); members with
/// fired tokens still fail closed via the per-member post-check.
const CancelToken* FusedToken(const std::vector<const CancelToken*>& cancels,
                              std::optional<CancelToken>& storage) {
  std::chrono::steady_clock::time_point latest{};
  for (const CancelToken* token : cancels) {
    if (token == nullptr || !token->has_deadline()) return nullptr;
    latest = std::max(latest, token->deadline());
  }
  storage.emplace(latest);
  return &*storage;
}

}  // namespace

// ------------------------------------------------------ DirectCountExecutor

Result<std::vector<std::vector<uint64_t>>> DirectCountExecutor::BasisBinCounts(
    const BasisSet& basis_set, const CancelToken* cancel) const {
  return CountBasisBins(*db_, basis_set, num_threads_, cancel);
}

Result<std::vector<uint64_t>> DirectCountExecutor::PairSupports(
    const std::vector<Item>& items, const CancelToken* cancel) const {
  std::vector<uint64_t> counts = CountPairSupports(*db_, items, cancel);
  if (IsCancelled(cancel)) {
    return Status::Cancelled("pair counting cancelled mid-scan");
  }
  return counts;
}

Result<std::vector<uint64_t>> DirectCountExecutor::SupportOfMany(
    std::span<const Itemset> queries, const CancelToken* cancel) const {
  std::vector<uint64_t> counts =
      index_->SupportOfMany(queries, num_threads_, cancel);
  if (IsCancelled(cancel)) {
    return Status::Cancelled("batch support cancelled mid-scan");
  }
  return counts;
}

Result<std::vector<uint64_t>> DirectCountExecutor::ItemSupports(
    const CancelToken* cancel) const {
  if (IsCancelled(cancel)) {
    return Status::Cancelled("item supports cancelled");
  }
  return db_->ItemSupports();
}

// ---------------------------------------------------- BatchingCountExecutor

BatchingCountExecutor::BatchingCountExecutor(
    std::shared_ptr<const CountExecutor> inner, Options options,
    std::shared_ptr<BatchStats> stats)
    : inner_(std::move(inner)),
      options_(options),
      stats_(std::move(stats)) {}

BatchingCountExecutor::~BatchingCountExecutor() = default;

void BatchingCountExecutor::BeginQuery(int64_t window_hint_us) {
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (window_hint_us > 0) {
    window_hint_us_.store(window_hint_us, std::memory_order_relaxed);
  }
}

void BatchingCountExecutor::EndQuery() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

bool BatchingCountExecutor::Passthrough() const {
  return options_.window_us <= 0 || options_.max_batch <= 1 ||
         inflight_.load(std::memory_order_relaxed) <= 1;
}

template <typename Req, typename Resp, typename Fuse>
Result<Resp> BatchingCountExecutor::RunBatched(Gate<Req, Resp>& gate,
                                               const Req& req,
                                               const CancelToken* cancel,
                                               Fuse&& fuse) const {
  using R = Round<Req, Resp>;
  std::shared_ptr<R> round;
  size_t my_index = 0;
  bool leader = false;
  {
    MutexLock g(gate.mu);
    if (gate.current == nullptr) {
      gate.current = std::make_shared<R>();
      leader = true;
    }
    round = gate.current;
    MutexLock r(round->mu);
    my_index = round->reqs.size();
    round->reqs.push_back(&req);
    round->cancels.push_back(cancel);
    if (round->reqs.size() >= options_.max_batch) {
      // Full: detach so the next arrival starts a fresh round.
      round->closed = true;
      gate.current = nullptr;
    }
    round->cv.NotifyAll();  // the leader re-evaluates its target
  }

  if (leader) {
    // Wait (bounded) for co-riders. The target is the live in-flight
    // count — when this query is the only one left, there is nobody to
    // wait for and the round closes immediately.
    int64_t window_us = options_.window_us;
    const int64_t hint = window_hint_us_.load(std::memory_order_relaxed);
    if (hint > 0 && hint < window_us) window_us = hint;
    const auto close_at = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(window_us);
    {
      MutexLock r(round->mu);
      for (;;) {
        if (round->closed) break;
        const size_t target = std::clamp<size_t>(
            static_cast<size_t>(
                std::max<int64_t>(1, inflight_.load(std::memory_order_relaxed))),
            size_t{1}, options_.max_batch);
        if (round->reqs.size() >= target) break;
        if (round->cv.WaitUntil(round->mu, close_at) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
    // Close under gate → round lock order (a max_batch joiner may have
    // closed and detached it already).
    {
      MutexLock g(gate.mu);
      MutexLock r(round->mu);
      if (!round->closed) {
        round->closed = true;
        if (gate.current == round) gate.current = nullptr;
      }
    }
    // The member list is frozen; snapshot it so the fused scan runs
    // without any lock held.
    std::vector<const Req*> member_reqs;
    std::vector<const CancelToken*> member_cancels;
    {
      MutexLock r(round->mu);
      member_reqs = round->reqs;
      member_cancels = round->cancels;
    }
    const size_t n = member_reqs.size();
    if (n > 1 && stats_ != nullptr) {
      stats_->batches.fetch_add(1, std::memory_order_relaxed);
      stats_->batched_queries.fetch_add(n, std::memory_order_relaxed);
      stats_->scans_saved.fetch_add(n - 1, std::memory_order_relaxed);
    }
    Result<std::vector<Resp>> fused = fuse(member_reqs, member_cancels);
    {
      MutexLock r(round->mu);
      if (fused.ok()) {
        round->resps = std::move(*fused);
        if (round->resps.size() != n) {
          round->status = Status::Internal("fused batch split mismatch");
        }
      } else {
        round->status = fused.status();
      }
      round->done = true;
    }
    round->cv.NotifyAll();
  }

  Resp mine;
  {
    MutexLock r(round->mu);
    while (!round->done) round->cv.Wait(round->mu);
    if (!round->status.ok()) return round->status;
    mine = std::move(round->resps[my_index]);
  }
  // A shared scan only honors the LATEST member deadline; fail this
  // member closed if its own token fired meanwhile — exactly what its
  // solo scan would have done.
  if (IsCancelled(cancel)) {
    return Status::Cancelled("query cancelled during batched count");
  }
  return mine;
}

Result<std::vector<std::vector<uint64_t>>>
BatchingCountExecutor::BasisBinCounts(const BasisSet& basis_set,
                                      const CancelToken* cancel) const {
  if (Passthrough()) return inner_->BasisBinCounts(basis_set, cancel);
  using Resp = std::vector<std::vector<uint64_t>>;
  const BasisBinReq req{&basis_set};
  return RunBatched(
      bin_gate_, req, cancel,
      [this](const std::vector<const BasisBinReq*>& reqs,
             const std::vector<const CancelToken*>& cancels)
          -> Result<std::vector<Resp>> {
        if (reqs.size() == 1) {
          PRIVBASIS_ASSIGN_OR_RETURN(
              Resp bins,
              inner_->BasisBinCounts(*reqs[0]->basis_set, cancels[0]));
          std::vector<Resp> out;
          out.push_back(std::move(bins));
          return out;
        }
        // One scan over the concatenated bases; per-basis bin rows are
        // independent, so splitting rows back by member width is exact.
        std::optional<CancelToken> storage;
        const CancelToken* token = FusedToken(cancels, storage);
        BasisSet fused_set;
        for (const BasisBinReq* r : reqs) {
          for (const Itemset& basis : r->basis_set->bases()) {
            fused_set.Add(basis);
          }
        }
        PRIVBASIS_ASSIGN_OR_RETURN(Resp bins,
                                   inner_->BasisBinCounts(fused_set, token));
        std::vector<Resp> out;
        out.reserve(reqs.size());
        size_t row = 0;
        for (const BasisBinReq* r : reqs) {
          const size_t width = r->basis_set->Width();
          out.emplace_back(std::make_move_iterator(bins.begin() + row),
                           std::make_move_iterator(bins.begin() + row + width));
          row += width;
        }
        return out;
      });
}

Result<std::vector<uint64_t>> BatchingCountExecutor::PairSupports(
    const std::vector<Item>& items, const CancelToken* cancel) const {
  if (Passthrough()) return inner_->PairSupports(items, cancel);
  using Resp = std::vector<uint64_t>;
  const PairReq req{&items};
  return RunBatched(
      pair_gate_, req, cancel,
      [this](const std::vector<const PairReq*>& reqs,
             const std::vector<const CancelToken*>& cancels)
          -> Result<std::vector<Resp>> {
        if (reqs.size() == 1) {
          PRIVBASIS_ASSIGN_OR_RETURN(
              Resp counts, inner_->PairSupports(*reqs[0]->items, cancels[0]));
          std::vector<Resp> out;
          out.push_back(std::move(counts));
          return out;
        }
        // Fuse every member's pairs into one SupportOfMany scan, then
        // reshape each slice back into the dense m×m layout of
        // CountPairSupports. Pair supports are exact either way.
        std::optional<CancelToken> storage;
        const CancelToken* token = FusedToken(cancels, storage);
        std::vector<Itemset> queries;
        for (const PairReq* r : reqs) {
          const std::vector<Item>& member = *r->items;
          for (size_t i = 0; i < member.size(); ++i) {
            for (size_t j = i + 1; j < member.size(); ++j) {
              queries.push_back(Itemset{member[i], member[j]});
            }
          }
        }
        PRIVBASIS_ASSIGN_OR_RETURN(Resp counts,
                                   inner_->SupportOfMany(queries, token));
        std::vector<Resp> out;
        out.reserve(reqs.size());
        size_t pos = 0;
        for (const PairReq* r : reqs) {
          const size_t m = r->items->size();
          Resp dense(m * m, 0);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = i + 1; j < m; ++j) {
              dense[i * m + j] = counts[pos++];
            }
          }
          out.push_back(std::move(dense));
        }
        return out;
      });
}

Result<std::vector<uint64_t>> BatchingCountExecutor::SupportOfMany(
    std::span<const Itemset> queries, const CancelToken* cancel) const {
  if (Passthrough()) return inner_->SupportOfMany(queries, cancel);
  using Resp = std::vector<uint64_t>;
  const ManyReq req{queries};
  return RunBatched(
      many_gate_, req, cancel,
      [this](const std::vector<const ManyReq*>& reqs,
             const std::vector<const CancelToken*>& cancels)
          -> Result<std::vector<Resp>> {
        if (reqs.size() == 1) {
          PRIVBASIS_ASSIGN_OR_RETURN(
              Resp counts, inner_->SupportOfMany(reqs[0]->queries, cancels[0]));
          std::vector<Resp> out;
          out.push_back(std::move(counts));
          return out;
        }
        std::optional<CancelToken> storage;
        const CancelToken* token = FusedToken(cancels, storage);
        std::vector<Itemset> all;
        for (const ManyReq* r : reqs) {
          all.insert(all.end(), r->queries.begin(), r->queries.end());
        }
        PRIVBASIS_ASSIGN_OR_RETURN(Resp counts,
                                   inner_->SupportOfMany(all, token));
        std::vector<Resp> out;
        out.reserve(reqs.size());
        size_t pos = 0;
        for (const ManyReq* r : reqs) {
          const size_t len = r->queries.size();
          out.emplace_back(counts.begin() + pos, counts.begin() + pos + len);
          pos += len;
        }
        return out;
      });
}

Result<std::vector<uint64_t>> BatchingCountExecutor::ItemSupports(
    const CancelToken* cancel) const {
  if (Passthrough()) return inner_->ItemSupports(cancel);
  using Resp = std::vector<uint64_t>;
  const ItemReq req{};
  return RunBatched(item_gate_, req, cancel,
                    [this](const std::vector<const ItemReq*>& reqs,
                           const std::vector<const CancelToken*>& cancels)
                        -> Result<std::vector<Resp>> {
                      std::optional<CancelToken> storage;
                      const CancelToken* token =
                          reqs.size() == 1 ? cancels[0]
                                           : FusedToken(cancels, storage);
                      PRIVBASIS_ASSIGN_OR_RETURN(
                          Resp supports, inner_->ItemSupports(token));
                      // Identical answer for every member: share it.
                      std::vector<Resp> out(reqs.size() - 1, supports);
                      out.push_back(std::move(supports));
                      return out;
                    });
}

}  // namespace privbasis
