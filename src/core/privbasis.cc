#include "core/privbasis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logspace.h"
#include "core/construct_basis.h"
#include "core/count_exec.h"
#include "dp/budget.h"
#include "dp/exponential_mechanism.h"
#include "fim/topk.h"

namespace privbasis {

uint32_t GetLambda(const TransactionDatabase& db, uint64_t fk1_support,
                   double epsilon, Rng& rng) {
  // Quality of rank j (1-based): (1 − |f_itemj − θ|)·N = N − |c_j − θ·N|
  // in count units. Ranks sharing an item count share a quality, so we
  // offer one Gumbel per run of equal counts.
  std::vector<uint64_t> counts = db.ItemSupports();
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const double n = static_cast<double>(db.NumTransactions());
  const double theta_count = static_cast<double>(fk1_support);
  const double factor = epsilon / 2.0;  // GS_q = 1, standard EM exponent

  GumbelMaxSampler sampler(&rng);
  size_t run_start = 0;
  while (run_start < counts.size()) {
    size_t run_end = run_start;
    while (run_end < counts.size() && counts[run_end] == counts[run_start]) {
      ++run_end;
    }
    double quality =
        n - std::abs(static_cast<double>(counts[run_start]) - theta_count);
    sampler.OfferGroup(run_start, factor * quality,
                       static_cast<double>(run_end - run_start));
    run_start = run_end;
  }
  size_t winner_run = sampler.WinnerKey();
  size_t run_end = winner_run;
  while (run_end < counts.size() && counts[run_end] == counts[winner_run]) {
    ++run_end;
  }
  size_t rank = winner_run + rng.UniformInt(run_end - winner_run);
  return static_cast<uint32_t>(rank + 1);  // 1-based rank = λ
}

Result<std::vector<size_t>> GetFreqElements(
    std::span<const uint64_t> candidate_supports, size_t count,
    double epsilon, bool monotonic, Rng& rng) {
  if (count > candidate_supports.size()) {
    return Status::InvalidArgument(
        "GetFreqElements: requested " + std::to_string(count) + " of " +
        std::to_string(candidate_supports.size()) + " candidates");
  }
  if (count == 0) return std::vector<size_t>{};
  // Per-round budget ε/count; quality = support (GS 1, monotone: adding a
  // transaction can only raise supports).
  const double per_round = epsilon / static_cast<double>(count);
  const double factor = per_round / (monotonic ? 1.0 : 2.0);
  GroupedEmPool pool(candidate_supports);
  return pool.SelectK(rng, count, factor);
}

std::vector<uint64_t> CountPairSupports(const TransactionDatabase& db,
                                        const std::vector<Item>& items,
                                        const CancelToken* cancel) {
  const size_t m = items.size();
  std::unordered_map<Item, uint32_t> local;
  local.reserve(m * 2);
  for (uint32_t i = 0; i < m; ++i) local.emplace(items[i], i);

  std::vector<uint64_t> counts(m * m, 0);
  std::vector<uint32_t> present;
  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    if (t % 1024 == 0 && IsCancelled(cancel)) return counts;
    present.clear();
    for (Item it : db.Transaction(t)) {
      auto found = local.find(it);
      if (found != local.end()) present.push_back(found->second);
    }
    for (size_t a = 0; a < present.size(); ++a) {
      for (size_t b = a + 1; b < present.size(); ++b) {
        uint32_t i = std::min(present[a], present[b]);
        uint32_t j = std::max(present[a], present[b]);
        ++counts[static_cast<size_t>(i) * m + j];
      }
    }
  }
  return counts;
}

Status ValidatePrivBasisOptions(size_t k, double epsilon,
                                const PrivBasisOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be > 0 and finite");
  }
  const double alpha_sum = options.alpha1 + options.alpha2 + options.alpha3;
  if (options.alpha1 <= 0 || options.alpha2 <= 0 || options.alpha3 <= 0 ||
      alpha_sum > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "alpha1, alpha2, alpha3 must be positive and sum to at most 1");
  }
  if (options.eta < 1.0) {
    return Status::InvalidArgument(
        "eta must be >= 1 (GetLambda targets the ceil(eta*k)-th itemset)");
  }
  if (options.max_basis_length == 0) {
    return Status::InvalidArgument("max_basis_length must be >= 1");
  }
  return Status::OK();
}

namespace detail {

Result<PrivBasisResult> RunPrivBasisImpl(const TransactionDatabase& db,
                                         size_t k, double epsilon, Rng& rng,
                                         const PrivBasisOptions& options,
                                         PrivacyAccountant& accountant) {
  PRIVBASIS_RETURN_NOT_OK(ValidatePrivBasisOptions(k, epsilon, options));
  if (db.NumTransactions() == 0 || db.UniverseSize() == 0) {
    return Status::InvalidArgument("empty database");
  }

  PrivBasisResult result;

  // Step 1: λ.
  uint64_t fk1_support = options.fk1_support_hint;
  if (fk1_support == 0) {
    size_t k1 = static_cast<size_t>(
        std::ceil(static_cast<double>(k) * options.eta));
    PRIVBASIS_ASSIGN_OR_RETURN(
        TopKResult top,
        MineTopK(db, k1, /*max_length=*/0, /*num_threads=*/0,
                 options.cancel));
    fk1_support = top.kth_support;
  }
  PRIVBASIS_RETURN_NOT_OK(
      accountant.Consume(options.alpha1 * epsilon, "GetLambda"));
  uint32_t lambda = GetLambda(db, fk1_support, options.alpha1 * epsilon, rng);
  size_t lambda_cap = options.lambda_cap != 0
                          ? options.lambda_cap
                          : std::min<size_t>(3 * k, db.UniverseSize());
  lambda = static_cast<uint32_t>(
      std::min<size_t>(std::max<size_t>(1, lambda),
                       std::min<size_t>(lambda_cap, db.UniverseSize())));
  result.lambda = lambda;

  const double alpha3_eps = (1.0 - options.alpha1 - options.alpha2) * epsilon;

  if (lambda <= options.single_basis_lambda_cap) {
    // Fast path: one basis holding the λ most frequent items.
    PRIVBASIS_RETURN_NOT_OK(
        accountant.Consume(options.alpha2 * epsilon, "GetFreqItems"));
    PRIVBASIS_ASSIGN_OR_RETURN(
        std::vector<size_t> picks,
        GetFreqElements(db.ItemSupports(), lambda, options.alpha2 * epsilon,
                        options.monotonic_em, rng));
    std::vector<Item> f;
    f.reserve(picks.size());
    for (size_t idx : picks) f.push_back(static_cast<Item>(idx));
    result.basis_set = BasisSet({Itemset(std::move(f))});
  } else {
    // λ2 heuristic (§4.4).
    double lambda2_naive =
        options.eta * static_cast<double>(k) - static_cast<double>(lambda);
    double lambda2 = 0.0;
    if (lambda2_naive > 0.0) {
      lambda2 = options.naive_lambda2
                    ? lambda2_naive
                    : lambda2_naive /
                          std::sqrt(std::max(
                              1.0, lambda2_naive /
                                       static_cast<double>(lambda)));
    }
    size_t lambda2_count = static_cast<size_t>(std::llround(lambda2));
    const double beta1 =
        options.alpha2 * static_cast<double>(lambda) /
        (static_cast<double>(lambda) + static_cast<double>(lambda2_count));
    const double beta2 = options.alpha2 - beta1;

    // Step 2: the λ most frequent items.
    PRIVBASIS_RETURN_NOT_OK(
        accountant.Consume(beta1 * epsilon, "GetFreqItems"));
    PRIVBASIS_ASSIGN_OR_RETURN(
        std::vector<size_t> item_picks,
        GetFreqElements(db.ItemSupports(), lambda, beta1 * epsilon,
                        options.monotonic_em, rng));
    std::vector<Item> f;
    f.reserve(item_picks.size());
    for (size_t idx : item_picks) f.push_back(static_cast<Item>(idx));

    // Step 3: the λ2 most frequent pairs within F.
    std::vector<Itemset> p;
    if (lambda2_count > 0 && f.size() >= 2) {
      std::vector<uint64_t> pair_counts;
      if (options.exec != nullptr) {
        PRIVBASIS_ASSIGN_OR_RETURN(
            pair_counts, options.exec->PairSupports(f, options.cancel));
        if (pair_counts.size() != f.size() * f.size()) {
          return Status::Internal(
              "executor returned " + std::to_string(pair_counts.size()) +
              " pair counts for " + std::to_string(f.size()) + " items");
        }
      } else {
        pair_counts = CountPairSupports(db, f, options.cancel);
        if (IsCancelled(options.cancel)) {
          return Status::Cancelled("pair counting cancelled mid-scan");
        }
      }
      std::vector<std::pair<uint32_t, uint32_t>> pair_index;
      std::vector<uint64_t> qualities;
      pair_index.reserve(f.size() * (f.size() - 1) / 2);
      for (uint32_t i = 0; i < f.size(); ++i) {
        for (uint32_t j = i + 1; j < f.size(); ++j) {
          pair_index.push_back({i, j});
          qualities.push_back(pair_counts[static_cast<size_t>(i) * f.size() + j]);
        }
      }
      lambda2_count = std::min(lambda2_count, pair_index.size());
      if (lambda2_count > 0 && beta2 > 0.0) {
        PRIVBASIS_RETURN_NOT_OK(
            accountant.Consume(beta2 * epsilon, "GetFreqPairs"));
        PRIVBASIS_ASSIGN_OR_RETURN(
            std::vector<size_t> pair_picks,
            GetFreqElements(qualities, lambda2_count, beta2 * epsilon,
                            options.monotonic_em, rng));
        for (size_t idx : pair_picks) {
          p.push_back(Itemset{f[pair_index[idx].first],
                              f[pair_index[idx].second]});
        }
      }
    }
    result.lambda2 = static_cast<uint32_t>(p.size());

    // Step 4: basis construction (no privacy cost).
    ConstructBasisOptions cb;
    cb.max_basis_length = options.max_basis_length;
    PRIVBASIS_ASSIGN_OR_RETURN(result.basis_set, ConstructBasisSet(f, p, cb));
  }

  // Step 5: noisy counts over C(B) and top-k selection.
  BasisFreqOptions bf_options = options.basis_freq;
  if (bf_options.exec == nullptr) bf_options.exec = options.exec;
  PRIVBASIS_ASSIGN_OR_RETURN(
      BasisFreqResult bf,
      BasisFreq(db, result.basis_set, k, alpha3_eps, rng, &accountant,
                bf_options));
  result.topk = std::move(bf.topk);
  result.epsilon_spent = accountant.spent_epsilon();
  return result;
}

}  // namespace detail

}  // namespace privbasis
