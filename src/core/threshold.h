// Threshold-version PrivBasis: release (approximately) all itemsets with
// frequency ≥ θ. The paper reduces this to the top-k version ("compute k
// such that fk ≥ θ > f_{k+1}"); privately, the exact k is unknown, so we
// run the top-k machinery at a caller-chosen cap and keep the released
// itemsets whose *noisy* frequency clears θ — a pure post-processing
// filter, so the privacy cost is exactly one PrivBasis run.
#ifndef PRIVBASIS_CORE_THRESHOLD_H_
#define PRIVBASIS_CORE_THRESHOLD_H_

#include "core/privbasis.h"

namespace privbasis {

namespace detail {

/// The θ post-processing filter behind `Engine::Run` with
/// `QuerySpec::WithThreshold` (the public threshold entry point): drops
/// released itemsets whose noisy count falls below θ·N. Pure
/// post-processing on an already-released answer — no privacy cost.
/// `k_cap` (the spec's k) bounds the candidate release the filter
/// operates on; choose it comfortably above the expected number of
/// θ-frequent itemsets — itemsets beyond the cap can never be released.
void FilterByNoisyThreshold(double theta, size_t num_transactions,
                            std::vector<NoisyItemset>* released);

}  // namespace detail

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_THRESHOLD_H_
