// Threshold-version PrivBasis: release (approximately) all itemsets with
// frequency ≥ θ. The paper reduces this to the top-k version ("compute k
// such that fk ≥ θ > f_{k+1}"); privately, the exact k is unknown, so we
// run the top-k machinery at a caller-chosen cap and keep the released
// itemsets whose *noisy* frequency clears θ — a pure post-processing
// filter, so the privacy cost is exactly one PrivBasis run.
#ifndef PRIVBASIS_CORE_THRESHOLD_H_
#define PRIVBASIS_CORE_THRESHOLD_H_

#include "core/privbasis.h"

namespace privbasis {

/// DEPRECATED: thin wrapper kept for one PR — new code should go through
/// `Engine::Run` with `QuerySpec::WithThreshold` (engine/engine.h).
///
/// Releases itemsets with noisy frequency ≥ theta under ε-DP.
///
/// `k_cap` bounds the candidate release the filter operates on (it plays
/// the role of the paper's k; choose it comfortably above the expected
/// number of θ-frequent itemsets — itemsets beyond the cap can never be
/// released). theta ∈ (0, 1].
Result<PrivBasisResult> RunPrivBasisThreshold(
    const TransactionDatabase& db, double theta, size_t k_cap,
    double epsilon, Rng& rng, const PrivBasisOptions& options = {});

namespace detail {

/// The θ post-processing filter shared by the wrapper and the Engine:
/// drops released itemsets whose noisy count falls below θ·N. Pure
/// post-processing on an already-released answer — no privacy cost.
void FilterByNoisyThreshold(double theta, size_t num_transactions,
                            std::vector<NoisyItemset>* released);

}  // namespace detail

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_THRESHOLD_H_
