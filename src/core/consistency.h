// Consistency post-processing for released noisy frequencies.
//
// Exact itemset frequencies are monotone under set inclusion:
// X ⊆ Y ⟹ f(X) ≥ f(Y). Independent noise breaks this, and inconsistent
// releases both look wrong and measurably hurt downstream use
// (association-rule confidences above 1, negative counts). Following the
// constrained-inference line the paper cites for histograms (Hay et al.,
// PVLDB'10 [23]), this module repairs a release to the nearest-ish
// monotone assignment. Pure post-processing: no privacy cost.
//
// The repair runs two sweeps over the released family ordered by size:
//   down-sweep: cap every itemset by the min of its released subsets'
//               values (enforces X ⊆ Y ⟹ v(Y) ≤ v(X));
//   up-sweep:   raise every itemset to the max of its released supersets'
//               values where the down-sweep overshot;
// then averages the two monotone envelopes — the midpoint of the upper
// and lower monotone repairs, which is itself monotone and empirically
// close to the L2 projection. Negative counts are clamped to 0 first.
#ifndef PRIVBASIS_CORE_CONSISTENCY_H_
#define PRIVBASIS_CORE_CONSISTENCY_H_

#include <vector>

#include "fim/miner.h"

namespace privbasis {

/// Repairs `released` in place to a subset-monotone, non-negative
/// assignment. Only relations among *released* itemsets are enforced
/// (the release is all a consumer sees). Returns the number of violated
/// pairs found before repair (diagnostic).
size_t EnforceMonotoneConsistency(std::vector<NoisyItemset>* released);

/// Counts subset/superset pairs within `released` that violate
/// monotonicity (v(superset) > v(subset) beyond `tolerance`).
size_t CountMonotoneViolations(const std::vector<NoisyItemset>& released,
                               double tolerance = 1e-9);

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_CONSISTENCY_H_
