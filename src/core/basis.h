// θ-basis sets (paper Definition 2): a family B = {B1..Bw} of item sets
// such that every θ-frequent itemset is a subset of some basis. The
// candidate set C(B) (Definition 3) is the union of all subsets of the
// bases — the space PrivBasis reconstructs noisy frequencies over.
#ifndef PRIVBASIS_CORE_BASIS_H_
#define PRIVBASIS_CORE_BASIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/itemset.h"

namespace privbasis {

/// A basis set. Order of bases is not semantically meaningful but is kept
/// stable for determinism.
class BasisSet {
 public:
  BasisSet() = default;
  explicit BasisSet(std::vector<Itemset> bases) : bases_(std::move(bases)) {}

  /// The paper's w.
  size_t Width() const { return bases_.size(); }

  /// The paper's ℓ = max_i |B_i|; 0 when empty.
  size_t Length() const;

  bool Empty() const { return bases_.empty(); }
  const std::vector<Itemset>& bases() const { return bases_; }
  const Itemset& basis(size_t i) const { return bases_[i]; }

  void Add(Itemset basis) { bases_.push_back(std::move(basis)); }

  /// Replaces bases i and j (i != j) with their union (Proposition 4:
  /// the result is still a θ-basis set, with width w−1).
  void Merge(size_t i, size_t j);

  /// True iff some basis contains `itemset`.
  bool Covers(const Itemset& itemset) const;

  /// Indices of all bases containing `itemset` (the multi-estimate fusion
  /// in BasisFreq needs all of them).
  std::vector<size_t> CoveringBases(const Itemset& itemset) const;

  /// |C(B)| counting duplicates once is expensive; this returns the upper
  /// bound Σ_i (2^{|B_i|} − 1), the number of (basis, subset) pairs.
  uint64_t CandidateUpperBound() const;

  /// Distinct union of all bases' items.
  Itemset AllItems() const;

  std::string ToString() const;

 private:
  std::vector<Itemset> bases_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_BASIS_H_
