// Algorithm 1 (BasisFreq): privately releasing frequent itemsets from a
// basis set.
//
// Each basis Bi partitions transactions into 2^|Bi| disjoint bins (one per
// subset of Bi: the transactions whose intersection with Bi is exactly
// that subset). Releasing all bin counts of all w bases has sensitivity w,
// so Lap(w/ε) noise per bin gives ε-DP. Itemset counts are recovered as
// superset bin-sums; itemsets covered by several bases fuse their
// estimates with inverse-variance weights.
#ifndef PRIVBASIS_CORE_BASIS_FREQ_H_
#define PRIVBASIS_CORE_BASIS_FREQ_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "core/basis.h"
#include "data/transaction_db.h"
#include "dp/budget.h"
#include "fim/miner.h"

namespace privbasis {

class CountExecutor;  // core/count_exec.h

/// Tuning and test hooks of BasisFreq.
struct BasisFreqOptions {
  /// Test hook: false runs the identical pipeline with zero noise, turning
  /// BasisFreq into an exact candidate-set counter.
  bool inject_noise = true;
  /// Superset-sum implementation: the O(ℓ·2^ℓ) zeta transform (default) or
  /// the naive O(3^ℓ) per-subset enumeration (the test oracle; also the
  /// complexity the paper's analysis quotes).
  bool use_fast_superset_sum = true;
  /// Hard cap on basis length — 2^len bins are materialized per basis.
  size_t max_basis_length = 20;
  /// Transaction-scan parallelism; 0 = the PRIVBASIS_THREADS env knob.
  /// The output is bit-identical at every thread count: shards reduce
  /// exact integer counts and the sequential floating-point accumulation
  /// is replayed before noise-side processing.
  size_t num_threads = 0;
  /// Cooperative cancellation: the scan polls once per transaction chunk
  /// and unwinds with kCancelled within one shard-chunk of the token
  /// firing. nullptr = not cancellable. Note the epsilon consumed from
  /// `accountant` stays consumed — it was reserved before the scan.
  const CancelToken* cancel = nullptr;
  /// Scatter-gather seam: when set, the exact bin counts come from
  /// `exec->BasisBinCounts` (merged across shards) instead of a local
  /// scan of `db`. Bit-identical either way — the scan consumes no
  /// randomness, so the post-merge noise draws are unchanged.
  const CountExecutor* exec = nullptr;
};

/// Output of one BasisFreq invocation.
struct BasisFreqResult {
  /// The k itemsets of C(B) with the highest noisy counts, best first
  /// (deterministic tie-break: count desc, length asc, items lex).
  std::vector<NoisyItemset> topk;
  /// Number of distinct candidate itemsets in C(B).
  size_t num_candidates = 0;
};

/// The exact-counting half of Algorithm 1, exposed so shard workers can
/// run it on their slice: out[i][mask] = number of transactions whose
/// intersection with basis i is exactly the subset `mask` encodes
/// (out[i] has 2^|Bi| entries). Consumes no randomness and merges
/// across horizontal partitions by plain integer addition. `num_threads`
/// 0 = the PRIVBASIS_THREADS env knob; a fired `cancel` token unwinds
/// with kCancelled within one transaction chunk.
Result<std::vector<std::vector<uint64_t>>> CountBasisBins(
    const TransactionDatabase& db, const BasisSet& basis_set,
    size_t num_threads = 0, const CancelToken* cancel = nullptr);

/// Runs Algorithm 1 with privacy budget `epsilon`. If `accountant` is
/// non-null, `epsilon` is charged to it (fails when the budget is
/// exhausted). `k` = 0 returns every candidate instead of the top k.
Result<BasisFreqResult> BasisFreq(const TransactionDatabase& db,
                                  const BasisSet& basis_set, size_t k,
                                  double epsilon, Rng& rng,
                                  PrivacyAccountant* accountant = nullptr,
                                  const BasisFreqOptions& options = {});

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_BASIS_FREQ_H_
