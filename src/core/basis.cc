#include "core/basis.h"

#include <algorithm>
#include <cassert>

namespace privbasis {

size_t BasisSet::Length() const {
  size_t len = 0;
  for (const auto& b : bases_) len = std::max(len, b.size());
  return len;
}

void BasisSet::Merge(size_t i, size_t j) {
  assert(i != j && i < bases_.size() && j < bases_.size());
  if (i > j) std::swap(i, j);
  bases_[i] = bases_[i].Union(bases_[j]);
  bases_.erase(bases_.begin() + static_cast<ptrdiff_t>(j));
}

bool BasisSet::Covers(const Itemset& itemset) const {
  for (const auto& b : bases_) {
    if (itemset.IsSubsetOf(b)) return true;
  }
  return false;
}

std::vector<size_t> BasisSet::CoveringBases(const Itemset& itemset) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < bases_.size(); ++i) {
    if (itemset.IsSubsetOf(bases_[i])) out.push_back(i);
  }
  return out;
}

uint64_t BasisSet::CandidateUpperBound() const {
  uint64_t total = 0;
  for (const auto& b : bases_) {
    assert(b.size() < 64);
    total += (uint64_t{1} << b.size()) - 1;
  }
  return total;
}

Itemset BasisSet::AllItems() const {
  std::vector<Item> all;
  for (const auto& b : bases_) {
    all.insert(all.end(), b.begin(), b.end());
  }
  return Itemset(std::move(all));
}

std::string BasisSet::ToString() const {
  std::string out = "BasisSet(w=" + std::to_string(Width()) +
                    ", l=" + std::to_string(Length()) + ") [";
  for (size_t i = 0; i < bases_.size(); ++i) {
    if (i > 0) out += ", ";
    out += bases_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace privbasis
