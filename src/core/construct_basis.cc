#include "core/construct_basis.h"

#include <algorithm>
#include <unordered_set>

#include "core/error_variance.h"
#include "graph/bron_kerbosch.h"
#include "graph/graph.h"

namespace privbasis {

namespace {

/// EV of the combined candidate basis set (B1 ∪ B2) over the queries.
double Ev(const std::vector<Itemset>& b1, const std::vector<Itemset>& b2,
          const std::vector<Itemset>& queries) {
  std::vector<Itemset> all;
  all.reserve(b1.size() + b2.size());
  all.insert(all.end(), b1.begin(), b1.end());
  all.insert(all.end(), b2.begin(), b2.end());
  return AverageCaseEv(BasisSet(std::move(all)), queries);
}

}  // namespace

Result<BasisSet> ConstructBasisSet(const std::vector<Item>& freq_items,
                                   const std::vector<Itemset>& freq_pairs,
                                   const ConstructBasisOptions& options) {
  for (const auto& pair : freq_pairs) {
    if (pair.size() != 2) {
      return Status::InvalidArgument("frequent pair must have 2 items, got " +
                                     pair.ToString());
    }
  }
  if (options.max_basis_length < 3) {
    return Status::InvalidArgument("max_basis_length must be >= 3");
  }

  // Line 2: maximal cliques (size >= 2) of the graph given by P.
  ItemGraph graph = ItemGraph::FromItemsAndPairs(freq_items, freq_pairs);
  std::vector<Itemset> b1 = FindMaximalCliques(graph, 2);

  // The length cap is a hard constraint (BasisFreq materializes 2^|Bi|
  // bins), but maximal cliques can exceed it. Split each oversized clique
  // into length-capped bases that still cover all of its *edges* (the
  // queries P contains); itemsets longer than the cap are inherently
  // uncoverable under a cap, which is why the paper keeps ℓ at 12.
  std::vector<Itemset> capped;
  for (auto& clique : b1) {
    if (clique.size() <= options.max_basis_length) {
      capped.push_back(std::move(clique));
      continue;
    }
    // Greedy edge cover: start a basis from an uncovered edge, grow it
    // with the member that covers the most uncovered edges.
    const auto& members = clique.items();
    std::unordered_set<uint64_t> covered;  // edge key = lo << 32 | hi
    auto edge_key = [](Item a, Item b) {
      return (static_cast<uint64_t>(std::min(a, b)) << 32) |
             static_cast<uint64_t>(std::max(a, b));
    };
    auto find_uncovered = [&]() -> std::pair<size_t, size_t> {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          if (!covered.contains(edge_key(members[i], members[j]))) {
            return {i, j};
          }
        }
      }
      return {members.size(), members.size()};
    };
    while (true) {
      auto [i, j] = find_uncovered();
      if (i >= members.size()) break;
      std::vector<Item> basis{members[i], members[j]};
      while (basis.size() < options.max_basis_length) {
        size_t best_gain = 0;
        Item best_item = 0;
        for (Item candidate : members) {
          if (std::find(basis.begin(), basis.end(), candidate) !=
              basis.end()) {
            continue;
          }
          size_t gain = 0;
          for (Item present : basis) {
            if (!covered.contains(edge_key(candidate, present))) ++gain;
          }
          if (gain > best_gain) {
            best_gain = gain;
            best_item = candidate;
          }
        }
        if (best_gain == 0) break;
        basis.push_back(best_item);
      }
      for (size_t a = 0; a < basis.size(); ++a) {
        for (size_t b = a + 1; b < basis.size(); ++b) {
          covered.insert(edge_key(basis[a], basis[b]));
        }
      }
      capped.push_back(Itemset(std::move(basis)));
    }
  }
  b1 = std::move(capped);

  // Line 3: items in F but not in P, packed into at most-3-item groups.
  std::unordered_set<Item> in_pairs;
  for (const auto& pair : freq_pairs) {
    in_pairs.insert(pair[0]);
    in_pairs.insert(pair[1]);
  }
  std::vector<Item> loose;
  std::unordered_set<Item> seen;
  for (Item it : freq_items) {
    if (!in_pairs.contains(it) && seen.insert(it).second) loose.push_back(it);
  }
  std::vector<Itemset> b2;
  for (size_t i = 0; i < loose.size(); i += 3) {
    std::vector<Item> group(loose.begin() + i,
                            loose.begin() + std::min(i + 3, loose.size()));
    b2.push_back(Itemset(std::move(group)));
  }

  // Queries Q: frequencies we intend to answer well — F's singletons and
  // P's pairs (the paper's "itemsets in F and P").
  std::vector<Itemset> queries;
  seen.clear();
  for (Item it : freq_items) {
    if (seen.insert(it).second) queries.push_back(Itemset{it});
  }
  for (const auto& pair : freq_pairs) {
    for (Item it : pair) {
      if (seen.insert(it).second) queries.push_back(Itemset{it});
    }
  }
  for (const auto& pair : freq_pairs) queries.push_back(pair);

  // Line 4: greedily merge pairs of B1 while EV decreases.
  //
  // EV(B) = w²·Σ_q 1/inv_q with inv_q = Σ_{B ⊇ q} 1/2^{|B|−|q|}, so a
  // candidate merge (i, j) only perturbs inv_q for queries inside
  // Bi ∪ Bj (coverage by any other basis is untouched). Caching inv_q
  // makes one candidate O(|Q|) instead of O(|Q|·w), which is what keeps
  // wide basis sets (w ~ 100) tractable.
  {
    auto all_bases = [&]() {
      std::vector<Itemset> all = b1;
      all.insert(all.end(), b2.begin(), b2.end());
      return all;
    };
    std::vector<double> inv(queries.size(), 0.0);
    auto recompute_inv = [&]() {
      std::vector<Itemset> all = all_bases();
      for (size_t q = 0; q < queries.size(); ++q) {
        inv[q] = 0.0;
        for (const auto& basis : all) {
          if (queries[q].IsSubsetOf(basis)) {
            inv[q] += 1.0 / VarianceUnits(basis.size(), queries[q].size());
          }
        }
      }
    };
    auto sum_s = [&]() {
      double s = 0.0;
      for (double v : inv) s += v > 0.0 ? 1.0 / v : 0.0;
      return s;
    };
    recompute_inv();
    while (b1.size() >= 2) {
      const double w = static_cast<double>(b1.size() + b2.size());
      const double s = sum_s();
      const double current_ev = w * w * s;
      double best_ev = current_ev;
      size_t best_i = 0, best_j = 0;
      bool found = false;
      for (size_t i = 0; i < b1.size(); ++i) {
        for (size_t j = i + 1; j < b1.size(); ++j) {
          Itemset merged = b1[i].Union(b1[j]);
          if (merged.size() > options.max_basis_length) continue;
          double delta = 0.0;
          for (size_t q = 0; q < queries.size(); ++q) {
            if (!queries[q].IsSubsetOf(merged)) continue;
            double inv_new = inv[q];
            if (queries[q].IsSubsetOf(b1[i])) {
              inv_new -= 1.0 / VarianceUnits(b1[i].size(), queries[q].size());
            }
            if (queries[q].IsSubsetOf(b1[j])) {
              inv_new -= 1.0 / VarianceUnits(b1[j].size(), queries[q].size());
            }
            inv_new += 1.0 / VarianceUnits(merged.size(), queries[q].size());
            delta += 1.0 / inv_new - (inv[q] > 0.0 ? 1.0 / inv[q] : 0.0);
          }
          double ev = (w - 1) * (w - 1) * (s + delta);
          if (ev < best_ev) {
            best_ev = ev;
            best_i = i;
            best_j = j;
            found = true;
          }
        }
      }
      if (!found) break;
      b1[best_i] = b1[best_i].Union(b1[best_j]);
      b1.erase(b1.begin() + static_cast<ptrdiff_t>(best_j));
      recompute_inv();
    }
  }
  double current_ev = Ev(b1, b2, queries);

  // Line 5: try dissolving a B2 basis, moving its items into the smallest
  // bases, while EV decreases.
  while (!b2.empty()) {
    double best_ev = current_ev;
    size_t best_idx = 0;
    std::vector<Itemset> best_b1, best_b2;
    bool found = false;
    for (size_t r = 0; r < b2.size(); ++r) {
      std::vector<Itemset> trial_b1 = b1;
      std::vector<Itemset> trial_b2 = b2;
      Itemset removed = trial_b2[r];
      trial_b2.erase(trial_b2.begin() + static_cast<ptrdiff_t>(r));
      if (trial_b1.empty() && trial_b2.empty()) continue;
      // Place each item into the currently-smallest basis with room.
      bool placed_all = true;
      for (Item it : removed) {
        Itemset* target = nullptr;
        for (auto* side : {&trial_b1, &trial_b2}) {
          for (auto& basis : *side) {
            if (basis.size() >= options.max_basis_length) continue;
            if (target == nullptr || basis.size() < target->size()) {
              target = &basis;
            }
          }
        }
        if (target == nullptr) {
          placed_all = false;
          break;
        }
        *target = target->With(it);
      }
      if (!placed_all) continue;
      double ev = Ev(trial_b1, trial_b2, queries);
      if (ev < best_ev) {
        best_ev = ev;
        best_idx = r;
        best_b1 = std::move(trial_b1);
        best_b2 = std::move(trial_b2);
        found = true;
      }
    }
    if (!found) break;
    (void)best_idx;
    b1 = std::move(best_b1);
    b2 = std::move(best_b2);
    current_ev = best_ev;
  }

  std::vector<Itemset> all;
  all.reserve(b1.size() + b2.size());
  all.insert(all.end(), b1.begin(), b1.end());
  all.insert(all.end(), b2.begin(), b2.end());
  return BasisSet(std::move(all));
}

}  // namespace privbasis
