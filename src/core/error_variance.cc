#include "core/error_variance.h"

#include <cassert>
#include <limits>

namespace privbasis {

double VarianceUnits(size_t basis_len, size_t subset_len) {
  assert(subset_len <= basis_len && basis_len < 64);
  return static_cast<double>(uint64_t{1} << (basis_len - subset_len));
}

double CombineVarianceUnits(std::span<const double> units) {
  if (units.empty()) return std::numeric_limits<double>::infinity();
  // Fold v <- v*u/(v+u); associative and order-independent (it is the
  // harmonic composition 1/v = Σ 1/u_i).
  double inv_sum = 0.0;
  for (double u : units) {
    assert(u > 0.0);
    inv_sum += 1.0 / u;
  }
  return 1.0 / inv_sum;
}

double AverageCaseEv(const BasisSet& basis_set,
                     std::span<const Itemset> queries) {
  if (queries.empty()) return 0.0;
  const double w2 = static_cast<double>(basis_set.Width()) *
                    static_cast<double>(basis_set.Width());
  double total = 0.0;
  std::vector<double> units;
  for (const auto& query : queries) {
    units.clear();
    for (const auto& b : basis_set.bases()) {
      if (query.IsSubsetOf(b)) {
        units.push_back(VarianceUnits(b.size(), query.size()));
      }
    }
    total += w2 * CombineVarianceUnits(units);
  }
  return total / static_cast<double>(queries.size());
}

double WorstCaseEv(const BasisSet& basis_set) {
  const double w2 = static_cast<double>(basis_set.Width()) *
                    static_cast<double>(basis_set.Width());
  return w2 * static_cast<double>(uint64_t{1} << basis_set.Length());
}

double EvUnitsToFrequencyVariance(double units, double epsilon, uint64_t n) {
  double en = epsilon * static_cast<double>(n);
  return units * 2.0 / (en * en);
}

}  // namespace privbasis
