#include "core/basis_freq.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "common/distributions.h"
#include "common/failpoint.h"
#include "common/math_util.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/count_exec.h"
#include "core/error_variance.h"

namespace privbasis {

namespace {

/// In-place sum-over-supersets (zeta) transform: after the call,
/// bins[mask] = Σ_{super ⊇ mask} original bins[super]. O(len · 2^len).
void SupersetSumFast(std::vector<double>* bins, size_t len) {
  auto& b = *bins;
  for (size_t bit = 0; bit < len; ++bit) {
    const uint64_t step = uint64_t{1} << bit;
    for (uint64_t mask = 0; mask < b.size(); ++mask) {
      if (!(mask & step)) b[mask] += b[mask | step];
    }
  }
}

/// Naive superset sums, O(3^len): for each mask, enumerate supersets by
/// iterating over submasks of the complement.
std::vector<double> SupersetSumNaive(const std::vector<double>& bins,
                                     size_t len) {
  const uint64_t full = (uint64_t{1} << len) - 1;
  std::vector<double> out(bins.size(), 0.0);
  for (uint64_t mask = 0; mask <= full; ++mask) {
    const uint64_t free = full & ~mask;
    double sum = bins[mask];
    // Enumerate non-empty submasks of `free`.
    for (uint64_t sub = free; sub != 0; sub = (sub - 1) & free) {
      sum += bins[mask | sub];
    }
    out[mask] = sum;
  }
  return out;
}

/// Running inverse-variance fusion state for one candidate itemset
/// (Algorithm 1 lines 17–24).
struct FusedEstimate {
  double noisy_count = 0.0;
  double variance_units = 0.0;
};

}  // namespace

Result<std::vector<std::vector<uint64_t>>> CountBasisBins(
    const TransactionDatabase& db, const BasisSet& basis_set,
    size_t num_threads, const CancelToken* cancel) {
  const size_t w = basis_set.Width();

  // Per-basis bit layout, and the packed-mask decision: when the
  // concatenated per-basis bit fields fit in one 64-bit word, every
  // item's memberships collapse into a single precomputed OR-word, and
  // the per-transaction mask computation becomes one fused gather+OR
  // kernel call, with per-basis masks recovered by shifts. Wider basis
  // sets build a flat CSR table of per-item (basis, bit) memberships
  // instead — one contiguous array probe per token. Both paths produce
  // identical integer bins; only the table the chosen path needs is
  // built.
  const uint32_t universe = db.UniverseSize();
  std::vector<size_t> basis_len(w);
  std::vector<uint32_t> bit_offset(w, 0);
  std::vector<uint64_t> len_mask(w, 0);
  uint64_t total_bits = 0;
  for (size_t i = 0; i < w; ++i) {
    basis_len[i] = basis_set.basis(i).size();
    // Clamp to 63: only a zero-length basis after exactly 64 packed bits
    // can land here, and (word >> 63) & 0 is the correct empty mask while
    // a shift by 64 would be UB.
    bit_offset[i] = static_cast<uint32_t>(std::min<uint64_t>(total_bits, 63));
    len_mask[i] = (basis_len[i] >= 64) ? ~uint64_t{0}
                                       : (uint64_t{1} << basis_len[i]) - 1;
    total_bits += basis_len[i];
  }

  std::vector<std::vector<uint64_t>> bins(w);
  for (size_t i = 0; i < w; ++i) {
    bins[i].assign(uint64_t{1} << basis_len[i], 0);
  }
  const size_t n = db.NumTransactions();
  if (w == 0 || n == 0) return bins;

  const bool packed = total_bits <= 64 && universe < (uint32_t{1} << 31);
  std::vector<uint64_t> item_word;
  std::vector<uint32_t> memb_offsets;
  std::vector<std::pair<uint32_t, uint32_t>> memb_entries;
  if (packed) {
    item_word.assign(universe, 0);
    for (size_t i = 0; i < w; ++i) {
      const Itemset& b = basis_set.basis(i);
      for (uint32_t bit = 0; bit < b.size(); ++bit) {
        if (b[bit] < universe) {
          item_word[b[bit]] |= uint64_t{1} << (bit_offset[i] + bit);
        }
      }
    }
  } else {
    memb_offsets.assign(universe + 1, 0);
    for (size_t i = 0; i < w; ++i) {
      for (Item item : basis_set.basis(i)) {
        if (item < universe) ++memb_offsets[item + 1];
      }
    }
    for (uint32_t i = 0; i < universe; ++i) {
      memb_offsets[i + 1] += memb_offsets[i];
    }
    memb_entries.resize(memb_offsets[universe]);
    std::vector<uint32_t> cursor(memb_offsets.begin(),
                                 memb_offsets.end() - 1);
    for (size_t i = 0; i < w; ++i) {
      const Itemset& b = basis_set.basis(i);
      for (uint32_t bit = 0; bit < b.size(); ++bit) {
        const Item item = b[bit];
        if (item < universe) {
          memb_entries[cursor[item]++] = {static_cast<uint32_t>(i), bit};
        }
      }
    }
  }

  // One scan of D; each transaction lands in exactly one bin per basis
  // (the bin of its intersection mask). The scan is sharded across the
  // pool into per-shard exact integer bins and the reduction runs in
  // shard order, so the counts are bit-identical at every shard and
  // thread count.
  uint64_t total_bins = 0;
  for (size_t i = 0; i < w; ++i) total_bins += uint64_t{1} << basis_len[i];
  const size_t threads = EffectiveThreads(num_threads);
  size_t num_shards = 1;
  if (threads > 1 && n >= 4096) {
    // Keep the per-shard bin arena under ~128 MiB.
    const size_t budget =
        std::max<uint64_t>(1, (uint64_t{128} << 20) / 8 / total_bins);
    num_shards = std::clamp<size_t>(std::min({threads, n / 2048, budget}),
                                    1, kMaxThreads);
  }
  // Cancellation granularity: one poll per kCancelChunk transactions (and
  // one per shard entry), so a fired token stops the scan within one
  // chunk rather than after the full shard. The failpoint site lets tests
  // inject a deterministic slowdown into the scan itself.
  constexpr size_t kCancelChunk = 1024;
  std::atomic<bool> cancelled{false};
  auto poll_cancel = [&] {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    if (!IsCancelled(cancel)) return false;
    cancelled.store(true, std::memory_order_relaxed);
    return true;
  };
  std::vector<std::vector<std::vector<uint64_t>>> shard_bins(num_shards);
  ThreadPool::Global().ParallelFor(
      0, n, (n + num_shards - 1) / num_shards, threads,
      [&](size_t shard_begin, size_t shard_end, size_t s) {
        failpoint::Hit("basis_freq_chunk");
        if (poll_cancel()) return;
        auto& local = shard_bins[s];
        local.resize(w);
        for (size_t i = 0; i < w; ++i) {
          local[i].assign(uint64_t{1} << basis_len[i], 0);
        }
        if (packed) {
          for (size_t t = shard_begin; t < shard_end; ++t) {
            if ((t - shard_begin) % kCancelChunk == 0 && t != shard_begin) {
              failpoint::Hit("basis_freq_chunk");
              if (poll_cancel()) return;
            }
            const auto txn = db.Transaction(t);
            const uint64_t word =
                simd::OrGatherWords(item_word.data(), txn.data(), txn.size());
            for (size_t i = 0; i < w; ++i) {
              ++local[i][(word >> bit_offset[i]) & len_mask[i]];
            }
          }
          return;
        }
        std::vector<uint64_t> masks(w, 0);
        for (size_t t = shard_begin; t < shard_end; ++t) {
          if ((t - shard_begin) % kCancelChunk == 0 && t != shard_begin) {
            failpoint::Hit("basis_freq_chunk");
            if (poll_cancel()) return;
          }
          for (Item it : db.Transaction(t)) {
            const uint32_t mb = memb_offsets[it];
            const uint32_t me = memb_offsets[it + 1];
            for (uint32_t idx = mb; idx < me; ++idx) {
              const auto [basis, bit] = memb_entries[idx];
              masks[basis] |= uint64_t{1} << bit;
            }
          }
          for (size_t i = 0; i < w; ++i) {
            ++local[i][masks[i]];
            masks[i] = 0;
          }
        }
      });
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("BasisFreq scan cancelled mid-shard");
  }
  for (size_t i = 0; i < w; ++i) {
    for (uint64_t mask = 0; mask < bins[i].size(); ++mask) {
      uint64_t count = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        if (!shard_bins[s].empty()) count += shard_bins[s][i][mask];
      }
      bins[i][mask] = count;
    }
  }
  return bins;
}

Result<BasisFreqResult> BasisFreq(const TransactionDatabase& db,
                                  const BasisSet& basis_set, size_t k,
                                  double epsilon, Rng& rng,
                                  PrivacyAccountant* accountant,
                                  const BasisFreqOptions& options) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (basis_set.Length() > options.max_basis_length) {
    return Status::InvalidArgument(
        "basis length " + std::to_string(basis_set.Length()) +
        " exceeds cap " + std::to_string(options.max_basis_length));
  }
  if (accountant != nullptr) {
    PRIVBASIS_RETURN_NOT_OK(accountant->Consume(epsilon, "BasisFreq"));
  }

  const size_t w = basis_set.Width();
  BasisFreqResult result;
  if (w == 0) return result;

  // Lines 7–11 run FIRST: the exact bin counts — locally, or scattered
  // across shards through the executor and merged by integer addition.
  // Counting consumes no randomness, so hoisting it above the noise
  // draws leaves the RNG stream untouched and the release bit-identical
  // at any shard count.
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> counts,
      options.exec != nullptr
          ? options.exec->BasisBinCounts(basis_set, options.cancel)
          : CountBasisBins(db, basis_set, options.num_threads,
                           options.cancel));
  if (counts.size() != w) {
    return Status::Internal("executor returned " +
                            std::to_string(counts.size()) +
                            " bin vectors for width " + std::to_string(w));
  }
  for (size_t i = 0; i < w; ++i) {
    const uint64_t want = uint64_t{1} << basis_set.basis(i).size();
    if (counts[i].size() != want) {
      return Status::Internal("executor bin vector " + std::to_string(i) +
                              " has " + std::to_string(counts[i].size()) +
                              " bins, want " + std::to_string(want));
    }
  }

  // Lines 2–6: initialize bins with Lap(w/ε) noise (count domain), then
  // fold in the exact counts by replaying the sequential `+= 1.0`
  // accumulation (AddOnesSequentially) — bit-identical to the original
  // count-then-noise single-threaded loop.
  std::vector<std::vector<double>> bins(w);
  const double noise_scale = static_cast<double>(w) / epsilon;
  for (size_t i = 0; i < w; ++i) {
    bins[i].assign(counts[i].size(), 0.0);
    if (options.inject_noise) {
      for (auto& cell : bins[i]) cell = SampleLaplace(rng, noise_scale);
    }
  }
  for (size_t i = 0; i < w; ++i) {
    for (uint64_t mask = 0; mask < bins[i].size(); ++mask) {
      if (counts[i][mask] != 0) {
        bins[i][mask] = AddOnesSequentially(bins[i][mask], counts[i][mask]);
      }
    }
  }
  counts.clear();

  // Lines 12–26: per basis, superset sums recover subset counts; fuse
  // multi-basis estimates by inverse-variance weighting.
  std::unordered_map<Itemset, FusedEstimate, ItemsetHash> candidates;
  for (size_t i = 0; i < w; ++i) {
    const Itemset& b = basis_set.basis(i);
    const size_t len = b.size();
    std::vector<double> sums;
    if (options.use_fast_superset_sum) {
      sums = std::move(bins[i]);
      SupersetSumFast(&sums, len);
    } else {
      sums = SupersetSumNaive(bins[i], len);
    }
    std::vector<Item> scratch;
    const uint64_t full = (uint64_t{1} << len) - 1;
    for (uint64_t mask = 1; mask <= full; ++mask) {
      scratch.clear();
      for (size_t bit = 0; bit < len; ++bit) {
        if (mask & (uint64_t{1} << bit)) scratch.push_back(b[bit]);
      }
      const double nc = sums[mask];
      const double nv = VarianceUnits(len, scratch.size());
      auto [entry, inserted] =
          candidates.try_emplace(Itemset::FromSorted(scratch));
      if (inserted) {
        entry->second = FusedEstimate{nc, nv};
      } else {
        double v = entry->second.variance_units;
        entry->second.noisy_count =
            nv / (v + nv) * entry->second.noisy_count + v / (v + nv) * nc;
        entry->second.variance_units = v * nv / (v + nv);
      }
    }
  }
  result.num_candidates = candidates.size();

  // Line 27: select the k candidates with the highest noisy counts.
  std::vector<NoisyItemset> all;
  all.reserve(candidates.size());
  for (auto& [items, est] : candidates) {
    all.push_back(NoisyItemset{items, est.noisy_count});
  }
  std::sort(all.begin(), all.end(),
            [](const NoisyItemset& a, const NoisyItemset& b) {
              if (a.noisy_count != b.noisy_count) {
                return a.noisy_count > b.noisy_count;
              }
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  if (k != 0 && all.size() > k) all.resize(k);
  result.topk = std::move(all);
  return result;
}

}  // namespace privbasis
