// The error-variance model of §4.2: with bin noise Lap(w/(εN)) per basis,
// the noisy frequency of X recovered from basis Bi sums 2^{|Bi|−|X|} bins,
// giving EV[nf_i(X)] = 2^{|Bi|−|X|+1} · w²/(ε²N²)          (Equation 4).
//
// Estimates of X from several covering bases are fused by inverse-variance
// weighting, yielding v1·v2/(v1+v2). Algorithm 2's greedy merge minimizes
// the *average-case* EV over the query set Q = F ∪ P.
//
// All functions work in "variance units": EV / (2/(ε²N²)), i.e. the unit
// nv = 2^{|Bi|−|X|} of Algorithm 1 scaled by w². ε and N are constants
// within one construction, so unit-free comparison is exact.
#ifndef PRIVBASIS_CORE_ERROR_VARIANCE_H_
#define PRIVBASIS_CORE_ERROR_VARIANCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/basis.h"
#include "data/itemset.h"

namespace privbasis {

/// nv of Algorithm 1: 2^{basis_len − subset_len}, the number of bins
/// summed when recovering a subset of that length. Requires
/// subset_len ≤ basis_len < 64.
double VarianceUnits(size_t basis_len, size_t subset_len);

/// Inverse-variance fusion: fold of v1·v2/(v1+v2) over all estimates.
/// Empty input returns +inf (no estimate at all).
double CombineVarianceUnits(std::span<const double> units);

/// Average-case EV (in w²-scaled variance units) of answering every query
/// in `queries` from `basis_set`: mean over queries of
/// w² · combine({2^{|Bi|−|X|} : X ⊆ Bi}). Queries covered by no basis
/// contribute +inf — callers keep coverage as an invariant.
double AverageCaseEv(const BasisSet& basis_set,
                     std::span<const Itemset> queries);

/// Worst-case EV in the same units: w² · 2^ℓ (the §4.2 bound, up to the
/// shared constant).
double WorstCaseEv(const BasisSet& basis_set);

/// Converts w²-scaled variance units into the absolute frequency-domain
/// error variance of Equation 4: units · 2/(ε²N²).
double EvUnitsToFrequencyVariance(double units, double epsilon, uint64_t n);

}  // namespace privbasis

#endif  // PRIVBASIS_CORE_ERROR_VARIANCE_H_
