#include "eval/release_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace privbasis {

std::string WriteReleaseTsv(const std::vector<NoisyItemset>& released) {
  std::string out = "# items\tnoisy_count\n";
  char buf[64];
  for (const auto& r : released) {
    for (size_t i = 0; i < r.items.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(r.items[i]);
    }
    std::snprintf(buf, sizeof(buf), "\t%.6f\n", r.noisy_count);
    out += buf;
  }
  return out;
}

Result<std::vector<NoisyItemset>> ReadReleaseTsv(const std::string& text) {
  std::vector<NoisyItemset> out;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": missing tab separator");
    }
    std::vector<Item> items;
    const char* p = line.c_str();
    const char* end = p + tab;
    while (p < end) {
      while (p < end && *p == ' ') ++p;
      if (p >= end) break;
      char* tok_end = nullptr;
      unsigned long raw = std::strtoul(p, &tok_end, 10);
      if (tok_end == p || tok_end > end) {
        return Status::IoError("line " + std::to_string(line_no) +
                               ": malformed item");
      }
      items.push_back(static_cast<Item>(raw));
      p = tok_end;
    }
    if (items.empty()) {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": empty itemset");
    }
    char* count_end = nullptr;
    double count = std::strtod(line.c_str() + tab + 1, &count_end);
    if (count_end == line.c_str() + tab + 1) {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": malformed count");
    }
    out.push_back(NoisyItemset{Itemset(std::move(items)), count});
  }
  return out;
}

json::Value ItemsetToJson(const Itemset& itemset) {
  json::Value::Array items;
  items.reserve(itemset.size());
  for (Item item : itemset) items.emplace_back(item);
  return json::Value(std::move(items));
}

Result<Itemset> ItemsetFromJson(const json::Value& value) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* array,
                             value.GetArray());
  std::vector<Item> items;
  items.reserve(array->size());
  for (const json::Value& item : *array) {
    PRIVBASIS_ASSIGN_OR_RETURN(uint64_t raw, item.GetUint());
    if (raw > std::numeric_limits<Item>::max()) {
      return Status::InvalidArgument("item id out of range");
    }
    items.push_back(static_cast<Item>(raw));
  }
  return Itemset(std::move(items));
}

json::Value ReleaseItemsetsToJson(const std::vector<NoisyItemset>& released) {
  json::Value::Array array;
  array.reserve(released.size());
  for (const auto& r : released) {
    json::Value::Object obj;
    obj.emplace_back("items", ItemsetToJson(r.items));
    obj.emplace_back("noisy_count", r.noisy_count);
    array.emplace_back(std::move(obj));
  }
  return json::Value(std::move(array));
}

Result<std::vector<NoisyItemset>> ReleaseItemsetsFromJson(
    const json::Value& value) {
  PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Array* array,
                             value.GetArray());
  std::vector<NoisyItemset> out;
  out.reserve(array->size());
  for (size_t i = 0; i < array->size(); ++i) {
    const json::Value& element = (*array)[i];
    const std::string where = "itemset " + std::to_string(i);
    PRIVBASIS_ASSIGN_OR_RETURN(const json::Value::Object* obj,
                               element.GetObject());
    if (obj->size() != 2 || element.Find("items") == nullptr ||
        element.Find("noisy_count") == nullptr) {
      return Status::InvalidArgument(
          where + ": expected exactly {\"items\", \"noisy_count\"}");
    }
    auto items = ItemsetFromJson(*element.Find("items"));
    if (!items.ok()) {
      return Status::InvalidArgument(where + ": " +
                                     items.status().message());
    }
    if (items->empty()) {
      return Status::InvalidArgument(where + ": empty itemset");
    }
    PRIVBASIS_ASSIGN_OR_RETURN(double count,
                               element.Find("noisy_count")->GetDouble());
    out.push_back(NoisyItemset{std::move(*items), count});
  }
  return out;
}

Status WriteReleaseTsvFile(const std::vector<NoisyItemset>& released,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  out << WriteReleaseTsv(released);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<NoisyItemset>> ReadReleaseTsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadReleaseTsv(buffer.str());
}

}  // namespace privbasis
