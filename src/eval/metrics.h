// The paper's two utility measures (§5):
//   FNR = |actual top-k \ published| / k       (= FPR, as the paper notes)
//   RE  = median over published X of |nf(X) − f(X)| / f(X)
#ifndef PRIVBASIS_EVAL_METRICS_H_
#define PRIVBASIS_EVAL_METRICS_H_

#include <vector>

#include "data/vertical_index.h"
#include "fim/miner.h"

namespace privbasis {

/// False-negative rate of `published` against the exact top-k
/// `actual_topk` (both as itemset collections; supports ignored).
double FalseNegativeRate(const std::vector<FrequentItemset>& actual_topk,
                         const std::vector<NoisyItemset>& published);

/// Median relative error of published noisy counts against exact supports
/// (looked up through `index`), over *all* published itemsets. A published
/// itemset with zero true support contributes |nf|/1 in count units —
/// i.e. the denominator is floored at one transaction; the paper leaves
/// this case unspecified.
double MedianRelativeError(const std::vector<NoisyItemset>& published,
                           const VerticalIndex& index);

/// Median relative error over the published itemsets that are actually
/// frequent (published ∩ actual top-k) — the reading of the paper's
/// "calculated over all published frequent itemsets" that keeps the
/// figures' RE bounded when a method publishes near-zero-support junk.
/// Falls back to the all-published variant when the intersection is
/// empty.
double MedianRelativeErrorOverTruePositives(
    const std::vector<FrequentItemset>& actual_topk,
    const std::vector<NoisyItemset>& published, const VerticalIndex& index);

/// Both metrics of one release.
struct UtilityMetrics {
  double fnr = 0.0;
  double relative_error = 0.0;
};

UtilityMetrics ComputeUtility(const std::vector<FrequentItemset>& actual_topk,
                              const std::vector<NoisyItemset>& published,
                              const VerticalIndex& index);

}  // namespace privbasis

#endif  // PRIVBASIS_EVAL_METRICS_H_
