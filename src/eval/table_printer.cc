#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace privbasis {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void PrintFigure(std::ostream& os, const std::string& title,
                 const std::vector<SweepSeries>& series) {
  if (series.empty()) return;
  os << "== " << title << " ==\n";
  for (const char* metric : {"FNR", "RelativeError"}) {
    os << "-- " << metric << " vs epsilon --\n";
    std::vector<std::string> header{"epsilon"};
    for (const auto& s : series) {
      header.push_back(s.label);
      header.push_back("+/-");
    }
    TextTable table(std::move(header));
    size_t rows = series.front().points.size();
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      row.push_back(TextTable::Num(series.front().points[r].epsilon, 2));
      for (const auto& s : series) {
        const auto& p = s.points[r];
        bool fnr = std::string(metric) == "FNR";
        row.push_back(TextTable::Num(fnr ? p.fnr_mean : p.re_mean, 4));
        row.push_back(TextTable::Num(fnr ? p.fnr_stderr : p.re_stderr, 4));
      }
      table.AddRow(std::move(row));
    }
    table.Print(os);
  }
  os << '\n';
}

}  // namespace privbasis
