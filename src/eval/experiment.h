// The experiment harness behind every figure bench: run a private method
// over an ε grid with repetitions, score each release against ground
// truth, and aggregate mean ± standard error (the paper repeats each
// experiment 3 times and reports mean and stderr).
#ifndef PRIVBASIS_EVAL_EXPERIMENT_H_
#define PRIVBASIS_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "engine/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "fim/miner.h"

namespace privbasis {

/// A private release mechanism under test: runs at a given ε with a given
/// RNG and returns the released itemsets.
using ReleaseMethod =
    std::function<Result<std::vector<NoisyItemset>>(double epsilon, Rng& rng)>;

/// The Engine as a ReleaseMethod: each invocation runs `spec` against
/// `dataset` with spec.epsilon overridden to the sweep point's ε and the
/// sweep's own RNG stream threaded through (spec.seed is ignored — the
/// harness derives per-(ε, rep) streams itself). The canonical way to
/// put a method under the sweep harness — shares the dataset's caches
/// across every (ε, repetition) pair and meters each run against its
/// Accountant.
ReleaseMethod EngineMethod(std::shared_ptr<Dataset> dataset, QuerySpec spec);

/// Aggregated metrics at one ε.
struct SweepPoint {
  double epsilon = 0.0;
  double fnr_mean = 0.0;
  double fnr_stderr = 0.0;
  double re_mean = 0.0;
  double re_stderr = 0.0;
  int repeats = 0;
};

/// One method's full ε series (one curve of a figure).
struct SweepSeries {
  std::string label;
  std::vector<SweepPoint> points;
};

/// Configuration of one sweep.
struct SweepConfig {
  std::vector<double> epsilons;
  int repeats = 3;
  uint64_t base_seed = 20120827;  // VLDB'12 started Aug 27, 2012
};

/// Runs `method` repeats × |epsilons| times, scoring against `truth`.
/// Seeds are derived deterministically from (base_seed, ε index, rep).
Result<SweepSeries> RunEpsilonSweep(const std::string& label,
                                    const ReleaseMethod& method,
                                    const GroundTruth& truth,
                                    const SweepConfig& config);

/// The ε grids the paper's figures use.
std::vector<double> PaperEpsilonGridDense();   ///< 0.1 .. 1.0 (Figs 1–2)
std::vector<double> PaperEpsilonGridSparse();  ///< 0.2 .. 1.0 (Figs 3–4)
std::vector<double> PaperEpsilonGridAol();     ///< 0.5 .. 1.0 (Fig 5)

}  // namespace privbasis

#endif  // PRIVBASIS_EVAL_EXPERIMENT_H_
