#include "eval/ground_truth.h"

#include <cmath>

#include "common/thread_pool.h"

namespace privbasis {

Result<GroundTruth> ComputeGroundTruth(
    const TransactionDatabase& db, size_t k,
    std::shared_ptr<const VerticalIndex> shared_index, size_t num_threads) {
  GroundTruth gt;
  // One mining pass at the largest k we need (η = 1.2 margin) provides
  // the top-k prefix and both margin supports. Mining and index
  // construction each fan out over the pool (PRIVBASIS_THREADS), so
  // figure benches no longer serialize on ground truth.
  const size_t threads = EffectiveThreads(num_threads);
  size_t k12 = static_cast<size_t>(std::ceil(1.2 * static_cast<double>(k)));
  PRIVBASIS_ASSIGN_OR_RETURN(TopKResult top12,
                             MineTopK(db, k12, /*max_length=*/0, threads));
  size_t k11 = static_cast<size_t>(std::ceil(1.1 * static_cast<double>(k)));

  gt.topk.itemsets.assign(
      top12.itemsets.begin(),
      top12.itemsets.begin() +
          std::min(k, top12.itemsets.size()));
  gt.topk.kth_support =
      gt.topk.itemsets.empty() ? 0 : gt.topk.itemsets.back().support;
  gt.stats = ComputeTopKStats(gt.topk.itemsets);
  if (!top12.itemsets.empty()) {
    size_t i11 = std::min(k11, top12.itemsets.size()) - 1;
    gt.fk1_support_eta11 = top12.itemsets[i11].support;
    gt.fk1_support_eta12 = top12.itemsets.back().support;
  }
  gt.index = shared_index != nullptr
                 ? std::move(shared_index)
                 : std::make_shared<VerticalIndex>(
                       db, VerticalIndex::Options{.num_threads = threads});
  return gt;
}

}  // namespace privbasis
