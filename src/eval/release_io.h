// Serialization of private releases in two formats:
//   * TSV, one itemset per line ("item item ...\tnoisy_count") — the
//     human-facing CLI/archive format (counts rounded to 6 decimals).
//   * JSON values ([{"items": [...], "noisy_count": c}, ...]) — the
//     machine format shared with the query server's wire layer
//     (server/wire.h). Counts round-trip bit for bit, so a release
//     served over HTTP re-parses identical to the in-process one.
#ifndef PRIVBASIS_EVAL_RELEASE_IO_H_
#define PRIVBASIS_EVAL_RELEASE_IO_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "fim/miner.h"

namespace privbasis {

/// Serializes a release to TSV ("items separated by spaces \t count\n").
std::string WriteReleaseTsv(const std::vector<NoisyItemset>& released);

/// Parses TSV produced by WriteReleaseTsv. Lines starting with '#' and
/// blank lines are skipped. Fails on malformed rows.
Result<std::vector<NoisyItemset>> ReadReleaseTsv(const std::string& text);

/// One itemset as a JSON array of item ids in canonical sorted order —
/// the shared building block of the release form below and the wire
/// layer's rule/basis fields (one copy of the validation, not two).
json::Value ItemsetToJson(const Itemset& itemset);

/// Parses the array form: non-negative in-range integers only.
Result<Itemset> ItemsetFromJson(const json::Value& value);

/// JSON array of {"items": [..], "noisy_count": c} objects, items in the
/// itemset's canonical sorted order, counts in shortest round-trip form.
json::Value ReleaseItemsetsToJson(const std::vector<NoisyItemset>& released);

/// Parses the array form above. Strict: every element must be an object
/// with exactly the two keys, items must be a non-empty array of
/// non-negative integers.
Result<std::vector<NoisyItemset>> ReleaseItemsetsFromJson(
    const json::Value& value);

/// File variants.
Status WriteReleaseTsvFile(const std::vector<NoisyItemset>& released,
                           const std::string& path);
Result<std::vector<NoisyItemset>> ReadReleaseTsvFile(const std::string& path);

}  // namespace privbasis

#endif  // PRIVBASIS_EVAL_RELEASE_IO_H_
