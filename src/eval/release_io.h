// Serialization of private releases: TSV with one itemset per line
// ("item item ...\tnoisy_count"). Lets the CLI's output round-trip back
// into analysis tooling and lets experiments be archived.
#ifndef PRIVBASIS_EVAL_RELEASE_IO_H_
#define PRIVBASIS_EVAL_RELEASE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fim/miner.h"

namespace privbasis {

/// Serializes a release to TSV ("items separated by spaces \t count\n").
std::string WriteReleaseTsv(const std::vector<NoisyItemset>& released);

/// Parses TSV produced by WriteReleaseTsv. Lines starting with '#' and
/// blank lines are skipped. Fails on malformed rows.
Result<std::vector<NoisyItemset>> ReadReleaseTsv(const std::string& text);

/// File variants.
Status WriteReleaseTsvFile(const std::vector<NoisyItemset>& released,
                           const std::string& path);
Result<std::vector<NoisyItemset>> ReadReleaseTsvFile(const std::string& path);

}  // namespace privbasis

#endif  // PRIVBASIS_EVAL_RELEASE_IO_H_
