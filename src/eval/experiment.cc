#include "eval/experiment.h"

#include "common/math_util.h"
#include "engine/engine.h"

namespace privbasis {

ReleaseMethod EngineMethod(std::shared_ptr<Dataset> dataset, QuerySpec spec) {
  return [dataset = std::move(dataset), spec](
             double epsilon, Rng& rng) -> Result<std::vector<NoisyItemset>> {
    QuerySpec point = spec;
    point.epsilon = epsilon;
    PRIVBASIS_ASSIGN_OR_RETURN(Release release,
                               Engine::Run(*dataset, point, rng));
    return std::move(release.itemsets);
  };
}

Result<SweepSeries> RunEpsilonSweep(const std::string& label,
                                    const ReleaseMethod& method,
                                    const GroundTruth& truth,
                                    const SweepConfig& config) {
  if (config.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  SweepSeries series;
  series.label = label;
  for (size_t ei = 0; ei < config.epsilons.size(); ++ei) {
    double epsilon = config.epsilons[ei];
    std::vector<double> fnrs, res;
    for (int rep = 0; rep < config.repeats; ++rep) {
      // Deterministic per-(ε, rep) stream, decorrelated via SplitMix.
      uint64_t seed = config.base_seed;
      seed = SplitMix64Next(&seed) ^ (static_cast<uint64_t>(ei) << 32 |
                                      static_cast<uint64_t>(rep));
      Rng rng(seed);
      auto released = method(epsilon, rng);
      if (!released.ok()) return released.status();
      UtilityMetrics m =
          ComputeUtility(truth.topk.itemsets, *released, *truth.index);
      fnrs.push_back(m.fnr);
      res.push_back(m.relative_error);
    }
    SweepPoint point;
    point.epsilon = epsilon;
    point.fnr_mean = Mean(fnrs);
    point.fnr_stderr = StandardError(fnrs);
    point.re_mean = Mean(res);
    point.re_stderr = StandardError(res);
    point.repeats = config.repeats;
    series.points.push_back(point);
  }
  return series;
}

std::vector<double> PaperEpsilonGridDense() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

std::vector<double> PaperEpsilonGridSparse() {
  return {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

std::vector<double> PaperEpsilonGridAol() {
  return {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

}  // namespace privbasis
