// Console rendering of experiment output: the figure-style series tables
// (one row per ε, one column pair per curve) and generic aligned tables
// for Table 2(a)/2(b).
#ifndef PRIVBASIS_EVAL_TABLE_PRINTER_H_
#define PRIVBASIS_EVAL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace privbasis {

/// Prints FNR and RE tables for a set of series sharing an ε grid —
/// the textual equivalent of one figure's panel (a) and (b).
void PrintFigure(std::ostream& os, const std::string& title,
                 const std::vector<SweepSeries>& series);

/// Generic fixed-width table: header row + string cells, auto-sized
/// columns, two-space gutters.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

  /// Formats a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_EVAL_TABLE_PRINTER_H_
