// Exact (non-private) reference answers for the evaluation: the true
// top-k, its Table 2(a) statistics, and a support index for relative-
// error lookups. Computed once per (dataset, k) and shared across the ε
// sweep.
#ifndef PRIVBASIS_EVAL_GROUND_TRUTH_H_
#define PRIVBASIS_EVAL_GROUND_TRUTH_H_

#include <memory>

#include "common/status.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "fim/topk.h"

namespace privbasis {

/// Everything the harness needs to score a private release.
struct GroundTruth {
  TopKResult topk;
  TopKStats stats;
  /// Support of the ⌈η·k⌉-th itemset for each η the harness uses; the
  /// PrivBasis fk1 hint. Computed lazily by the harness.
  uint64_t fk1_support_eta11 = 0;  ///< η = 1.1
  uint64_t fk1_support_eta12 = 0;  ///< η = 1.2
  std::shared_ptr<const VerticalIndex> index;
};

/// Mines the exact top-k (unbounded length) plus the η-margin supports
/// and builds the support index. Pass `shared_index` to attach an
/// already-built index instead of constructing another (the Dataset
/// handle's cache does this); `num_threads` 0 = the PRIVBASIS_THREADS
/// env knob.
Result<GroundTruth> ComputeGroundTruth(
    const TransactionDatabase& db, size_t k,
    std::shared_ptr<const VerticalIndex> shared_index = nullptr,
    size_t num_threads = 0);

}  // namespace privbasis

#endif  // PRIVBASIS_EVAL_GROUND_TRUTH_H_
