#include "eval/metrics.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/math_util.h"

namespace privbasis {

double FalseNegativeRate(const std::vector<FrequentItemset>& actual_topk,
                         const std::vector<NoisyItemset>& published) {
  if (actual_topk.empty()) return 0.0;
  std::unordered_set<Itemset, ItemsetHash> published_set;
  published_set.reserve(published.size() * 2);
  for (const auto& p : published) published_set.insert(p.items);
  size_t missed = 0;
  for (const auto& fi : actual_topk) {
    if (!published_set.contains(fi.items)) ++missed;
  }
  return static_cast<double>(missed) / static_cast<double>(actual_topk.size());
}

double MedianRelativeError(const std::vector<NoisyItemset>& published,
                           const VerticalIndex& index) {
  if (published.empty()) return 0.0;
  std::vector<double> errors;
  errors.reserve(published.size());
  for (const auto& p : published) {
    double exact = static_cast<double>(index.SupportOf(p.items));
    double denom = std::max(exact, 1.0);
    errors.push_back(std::abs(p.noisy_count - exact) / denom);
  }
  return Median(std::move(errors));
}

double MedianRelativeErrorOverTruePositives(
    const std::vector<FrequentItemset>& actual_topk,
    const std::vector<NoisyItemset>& published, const VerticalIndex& index) {
  std::unordered_set<Itemset, ItemsetHash> actual;
  actual.reserve(actual_topk.size() * 2);
  for (const auto& fi : actual_topk) actual.insert(fi.items);
  std::vector<NoisyItemset> true_positives;
  for (const auto& p : published) {
    if (actual.contains(p.items)) true_positives.push_back(p);
  }
  if (true_positives.empty()) {
    return MedianRelativeError(published, index);
  }
  return MedianRelativeError(true_positives, index);
}

UtilityMetrics ComputeUtility(const std::vector<FrequentItemset>& actual_topk,
                              const std::vector<NoisyItemset>& published,
                              const VerticalIndex& index) {
  return UtilityMetrics{
      FalseNegativeRate(actual_topk, published),
      MedianRelativeErrorOverTruePositives(actual_topk, published, index)};
}

}  // namespace privbasis
