#include "dp/budget.h"

#include <cassert>
#include <cmath>

namespace privbasis {

PrivacyAccountant::PrivacyAccountant(double total_epsilon)
    : total_(total_epsilon) {
  assert(total_epsilon > 0.0);
}

Status PrivacyAccountant::Consume(double epsilon, const std::string& label) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite: " +
                                   label);
  }
  if (spent_ + epsilon > total_ * (1.0 + kBudgetTolerance)) {
    return Status::BudgetExhausted(
        "privacy budget exceeded by '" + label + "': spent " +
        std::to_string(spent_) + " + " + std::to_string(epsilon) + " > " +
        std::to_string(total_));
  }
  spent_ += epsilon;
  entries_.push_back(Entry{label, epsilon});
  return Status::OK();
}

}  // namespace privbasis
