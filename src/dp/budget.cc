#include "dp/budget.h"

#include <cassert>
#include <cmath>

namespace privbasis {

namespace {
// Relative slack for accumulated floating-point error in budget splits
// (e.g. α1 + α2 + α3 intended to sum to exactly 1).
constexpr double kTolerance = 1e-9;
}  // namespace

PrivacyAccountant::PrivacyAccountant(double total_epsilon)
    : total_(total_epsilon) {
  assert(total_epsilon > 0.0);
}

Status PrivacyAccountant::Consume(double epsilon, const std::string& label) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite: " +
                                   label);
  }
  if (spent_ + epsilon > total_ * (1.0 + kTolerance)) {
    return Status::FailedPrecondition(
        "privacy budget exceeded by '" + label + "': spent " +
        std::to_string(spent_) + " + " + std::to_string(epsilon) + " > " +
        std::to_string(total_));
  }
  spent_ += epsilon;
  entries_.push_back(Entry{label, epsilon});
  return Status::OK();
}

}  // namespace privbasis
