#include "dp/geometric_mechanism.h"

#include <cassert>
#include <cmath>

namespace privbasis {

int64_t SampleTwoSidedGeometric(Rng& rng, double alpha) {
  assert(alpha > 0.0 && alpha < 1.0);
  // Magnitude |Z| = 0 with prob (1−α)/(1+α); otherwise one-sided
  // geometric ≥ 1 with a uniform sign. Sample via inverse CDF on the
  // one-sided geometric: G = floor(log(U)/log(α)).
  double p_zero = (1.0 - alpha) / (1.0 + alpha);
  if (rng.NextDouble() < p_zero) return 0;
  // Magnitude ≥ 1: geometric with success probability 1−α, shifted.
  double u = rng.NextDoubleOpen();
  int64_t magnitude =
      1 + static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
  if (magnitude < 1) magnitude = 1;  // numerical guard
  return rng.Bernoulli(0.5) ? magnitude : -magnitude;
}

int64_t GeometricPerturb(Rng& rng, int64_t value, double sensitivity,
                         double epsilon) {
  assert(sensitivity > 0.0 && epsilon > 0.0);
  double alpha = std::exp(-epsilon / sensitivity);
  return value + SampleTwoSidedGeometric(rng, alpha);
}

double GeometricNoiseVariance(double alpha) {
  double one_minus = 1.0 - alpha;
  return 2.0 * alpha / (one_minus * one_minus);
}

}  // namespace privbasis
