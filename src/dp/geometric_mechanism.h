// The geometric mechanism (Ghosh, Roughgarden, Sundararajan): the
// discrete analogue of Laplace noise for integer-valued queries.
// Noise Z has P(Z = z) ∝ α^{|z|} with α = exp(−ε/Δ); adding Z to an
// integer count gives ε-DP and keeps the released value integral — a
// useful alternative for the bin counts of BasisFreq when consumers
// require integer counts.
#ifndef PRIVBASIS_DP_GEOMETRIC_MECHANISM_H_
#define PRIVBASIS_DP_GEOMETRIC_MECHANISM_H_

#include <cstdint>

#include "common/rng.h"

namespace privbasis {

/// Sample two-sided geometric noise with parameter alpha ∈ (0, 1):
/// P(z) = (1−α)/(1+α) · α^{|z|}.
int64_t SampleTwoSidedGeometric(Rng& rng, double alpha);

/// Adds two-sided geometric noise calibrated to (sensitivity, epsilon):
/// α = exp(−ε/Δ). Both must be > 0.
int64_t GeometricPerturb(Rng& rng, int64_t value, double sensitivity,
                         double epsilon);

/// Variance of the two-sided geometric with parameter alpha: 2α/(1−α)².
double GeometricNoiseVariance(double alpha);

}  // namespace privbasis

#endif  // PRIVBASIS_DP_GEOMETRIC_MECHANISM_H_
