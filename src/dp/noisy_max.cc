#include "dp/noisy_max.h"

#include "common/distributions.h"

namespace privbasis {

namespace {

Result<size_t> NoisyMaxImpl(Rng& rng, std::span<const double> qualities,
                            double scale) {
  if (qualities.empty()) {
    return Status::InvalidArgument("no candidates");
  }
  size_t best = 0;
  double best_score = qualities[0] + SampleLaplace(rng, scale);
  for (size_t i = 1; i < qualities.size(); ++i) {
    double score = qualities[i] + SampleLaplace(rng, scale);
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

Result<size_t> ReportNoisyMax(Rng& rng, std::span<const double> qualities,
                              double sensitivity, double epsilon) {
  if (!(sensitivity > 0.0) || !(epsilon > 0.0)) {
    return Status::InvalidArgument("sensitivity and epsilon must be > 0");
  }
  return NoisyMaxImpl(rng, qualities, 2.0 * sensitivity / epsilon);
}

Result<size_t> ReportNoisyMaxMonotone(Rng& rng,
                                      std::span<const double> qualities,
                                      double sensitivity, double epsilon) {
  if (!(sensitivity > 0.0) || !(epsilon > 0.0)) {
    return Status::InvalidArgument("sensitivity and epsilon must be > 0");
  }
  return NoisyMaxImpl(rng, qualities, sensitivity / epsilon);
}

}  // namespace privbasis
