// Report-noisy-max: add independent noise to every candidate's quality
// and release the argmax. With Lap(2Δ/ε) noise (or equivalently Gumbel
// noise, which recovers the exponential mechanism exactly) the released
// index is ε-DP. Used as an alternative single-selection primitive and to
// cross-validate the exponential mechanism in tests.
#ifndef PRIVBASIS_DP_NOISY_MAX_H_
#define PRIVBASIS_DP_NOISY_MAX_H_

#include <span>

#include "common/rng.h"
#include "common/status.h"

namespace privbasis {

/// Laplace report-noisy-max: argmax_i (q_i + Lap(2·sensitivity/ε)).
/// `qualities` must be non-empty; sensitivity and epsilon > 0.
Result<size_t> ReportNoisyMax(Rng& rng, std::span<const double> qualities,
                              double sensitivity, double epsilon);

/// One-sided variant for monotone quality functions: Lap(sensitivity/ε).
Result<size_t> ReportNoisyMaxMonotone(Rng& rng,
                                      std::span<const double> qualities,
                                      double sensitivity, double epsilon);

}  // namespace privbasis

#endif  // PRIVBASIS_DP_NOISY_MAX_H_
