// The exponential mechanism (McSherry & Talwar): select r with probability
// ∝ exp(ε·q(D,r) / (2·GS_q)); the factor 2 drops for monotone quality
// functions (paper §2.1, Eq. 1 and the discussion after it).
//
// All selection happens in log space via the Gumbel-max trick — quality
// scores can be raw counts (up to ~1e15) without overflow.
#ifndef PRIVBASIS_DP_EXPONENTIAL_MECHANISM_H_
#define PRIVBASIS_DP_EXPONENTIAL_MECHANISM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logspace.h"
#include "common/rng.h"
#include "common/status.h"

namespace privbasis {

/// Parameters of one exponential-mechanism invocation.
struct EmOptions {
  /// Privacy parameter of this invocation.
  double epsilon = 1.0;
  /// Global sensitivity GS_q of the quality function.
  double sensitivity = 1.0;
  /// When the quality function is monotone (a single tuple change moves
  /// all qualities in one direction), the factor 1/2 in the exponent can
  /// be dropped, doubling effective accuracy.
  bool monotonic = false;
};

/// Exponent multiplier applied to qualities: ε / ((monotonic ? 1 : 2)·GS).
double EmExponentFactor(const EmOptions& options);

/// Selects an index with P(i) ∝ exp(factor · qualities[i]).
/// `qualities` must be non-empty.
Result<size_t> ExponentialMechanismSelect(Rng& rng,
                                          std::span<const double> qualities,
                                          const EmOptions& options);

/// Repeated exponential mechanism *without replacement*: `count` rounds,
/// each spending options.epsilon / count, re-normalized over the remaining
/// candidates (the paper's GetFreqElements). Returns distinct indices in
/// selection order. Requires count ≤ qualities.size().
Result<std::vector<size_t>> ExponentialMechanismSelectK(
    Rng& rng, std::span<const double> qualities, size_t count,
    const EmOptions& options);

/// Candidates with integer qualities, grouped by quality value.
///
/// Candidates sharing a quality are exchangeable under the exponential
/// mechanism, so a round needs one Gumbel draw per *distinct* value
/// instead of one per candidate — this is what makes selecting 200 items
/// out of the 2.3M-item AOL universe cheap. Supports without-replacement
/// rounds via TakeFrom.
class GroupedEmPool {
 public:
  explicit GroupedEmPool(std::span<const uint64_t> qualities);

  size_t NumGroups() const { return groups_.size(); }
  size_t NumRemaining() const { return remaining_; }
  uint64_t GroupQuality(size_t group) const { return groups_[group].quality; }

  /// Offers every non-empty group to `sampler` with key = group index and
  /// log-weight factor·quality aggregated over the group size.
  void OfferAll(GumbelMaxSampler* sampler, double factor) const;

  /// Removes and returns a uniformly random remaining member (an index
  /// into the original qualities span) of `group`.
  size_t TakeFrom(size_t group, Rng& rng);

  /// Runs `count` without-replacement rounds with the given per-round
  /// exponent factor; returns the selected original indices in order.
  Result<std::vector<size_t>> SelectK(Rng& rng, size_t count, double factor);

 private:
  struct Group {
    uint64_t quality;
    std::vector<size_t> members;
  };
  std::vector<Group> groups_;
  size_t remaining_ = 0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_DP_EXPONENTIAL_MECHANISM_H_
