// Privacy-budget accounting under sequential composition: mechanisms that
// satisfy ε1-, ..., εm-DP compose to (Σεi)-DP. Every mechanism invocation
// in the library routes its ε through a PrivacyAccountant so end-to-end
// runs can assert they never exceed their budget.
#ifndef PRIVBASIS_DP_BUDGET_H_
#define PRIVBASIS_DP_BUDGET_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace privbasis {

/// Relative slack every budget ledger allows for accumulated
/// floating-point error in ε splits (e.g. α1 + α2 + α3 intended to sum
/// to exactly 1). Shared by PrivacyAccountant and the Engine's
/// Accountant so a spend one ledger accepts is never rejected by the
/// other.
inline constexpr double kBudgetTolerance = 1e-9;

/// Tracks consumption of a fixed ε budget. Not thread-safe (experiments
/// are single-threaded per run).
class PrivacyAccountant {
 public:
  /// One recorded expenditure.
  struct Entry {
    std::string label;
    double epsilon;
  };

  /// `total_epsilon` must be > 0.
  explicit PrivacyAccountant(double total_epsilon);

  /// Registers an expenditure of `epsilon` attributed to `label`.
  /// Fails (and records nothing) if it would exceed the total budget
  /// beyond a small floating-point tolerance.
  Status Consume(double epsilon, const std::string& label);

  double total_epsilon() const { return total_; }
  double spent_epsilon() const { return spent_; }
  double remaining_epsilon() const { return total_ - spent_; }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  double total_;
  double spent_ = 0.0;
  std::vector<Entry> entries_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_DP_BUDGET_H_
