// Descending order statistics of n iid Laplace variables, generated
// lazily without materializing the n draws.
//
// Used by the TF baseline's Laplace-selection variant: the 10^6..10^9
// implicit candidates all carry the same truncated frequency, so their
// noisy scores are (fk−γ) + one draw from each of n iid Laplace noises —
// and only the few largest can ever enter the top-k. We sample exactly
// those, largest first, via the uniform order-statistics recursion
// U(n) = V₁^{1/n}, U(n−1) = U(n)·V₂^{1/(n−1)}, ... pushed through the
// Laplace inverse CDF. Log-space throughout, so n up to 10^18 is fine.
#ifndef PRIVBASIS_DP_ORDER_STATISTICS_H_
#define PRIVBASIS_DP_ORDER_STATISTICS_H_

#include <cstdint>

#include "common/rng.h"

namespace privbasis {

/// Streams the order statistics of n iid Laplace(0, scale) samples in
/// descending order: the first Next() is the maximum, the second the
/// second-largest, and so on.
class LaplaceTopOrderStatistics {
 public:
  /// `n` ≥ 1, `scale` > 0.
  LaplaceTopOrderStatistics(uint64_t n, double scale);

  /// True while fewer than n statistics have been emitted.
  bool HasNext() const { return remaining_ > 0; }

  /// Emits the next (smaller) order statistic.
  double Next(Rng& rng);

 private:
  uint64_t remaining_;
  double scale_;
  double log_u_;  // log of the current uniform order statistic
};

}  // namespace privbasis

#endif  // PRIVBASIS_DP_ORDER_STATISTICS_H_
