#include "dp/order_statistics.h"

#include <cassert>
#include <cmath>

#include "common/distributions.h"

namespace privbasis {

LaplaceTopOrderStatistics::LaplaceTopOrderStatistics(uint64_t n, double scale)
    : remaining_(n), scale_(scale), log_u_(0.0) {
  assert(n >= 1);
  assert(scale > 0.0);
}

double LaplaceTopOrderStatistics::Next(Rng& rng) {
  assert(remaining_ > 0);
  // Descending uniform order statistics: multiply by V^{1/m} where m is
  // the number of statistics not yet emitted.
  double v = rng.NextDoubleOpen();
  log_u_ += std::log(v) / static_cast<double>(remaining_);
  --remaining_;
  double u = std::exp(log_u_);
  // Clamp away from {0, 1}: u = 1 only when v == 1 exactly at the first
  // draw; u → 0 after astronomically many draws.
  u = std::min(std::max(u, 1e-300), 1.0 - 1e-16);
  return LaplaceInverseCdf(u, scale_);
}

}  // namespace privbasis
