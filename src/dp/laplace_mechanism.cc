#include "dp/laplace_mechanism.h"

#include <cassert>

#include "common/distributions.h"

namespace privbasis {

double LaplacePerturb(Rng& rng, double value, double sensitivity,
                      double epsilon) {
  assert(sensitivity > 0.0 && epsilon > 0.0);
  return value + SampleLaplace(rng, sensitivity / epsilon);
}

std::vector<double> LaplacePerturb(Rng& rng, std::span<const double> values,
                                   double sensitivity, double epsilon) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(LaplacePerturb(rng, v, sensitivity, epsilon));
  }
  return out;
}

double LaplaceNoiseVariance(double sensitivity, double epsilon) {
  double scale = sensitivity / epsilon;
  return 2.0 * scale * scale;
}

}  // namespace privbasis
