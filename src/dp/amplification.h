// Privacy amplification by subsampling (Kasiviswanathan et al. 2008 /
// Li, Qardaji, Su 2012 — the same group's follow-up line): running an
// ε'-DP mechanism on a Poisson q-subsample of D satisfies
//
//   ε(q, ε') = ln(1 + q·(e^{ε'} − 1))  ≤ q·ε'    (add/remove neighbours)
//
// so a mechanism can spend a *larger* per-run budget on the subsample
// while meeting a smaller end-to-end ε. The trade is noise-vs-sampling
// error: the subsample's counts carry binomial sampling noise of their
// own. core/amplified.h wires this into PrivBasis.
#ifndef PRIVBASIS_DP_AMPLIFICATION_H_
#define PRIVBASIS_DP_AMPLIFICATION_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/transaction_db.h"

namespace privbasis {

/// The amplified guarantee: ε after running an ε'-DP mechanism on a
/// Poisson q-subsample. q ∈ (0, 1], mechanism_epsilon > 0.
double AmplifiedEpsilon(double sampling_rate, double mechanism_epsilon);

/// Inverse: the per-run budget ε' a mechanism may spend on a Poisson
/// q-subsample so that the end-to-end guarantee is `target_epsilon`:
/// ε' = ln(1 + (e^ε − 1)/q). Grows as q shrinks.
double MechanismEpsilonForTarget(double sampling_rate, double target_epsilon);

/// Poisson subsample: keeps each transaction independently with
/// probability `sampling_rate`. The subsample size is itself random —
/// required for the amplification theorem (fixed-size sampling needs a
/// different analysis).
Result<TransactionDatabase> PoissonSubsample(const TransactionDatabase& db,
                                             double sampling_rate, Rng& rng);

}  // namespace privbasis

#endif  // PRIVBASIS_DP_AMPLIFICATION_H_
