// The Laplace mechanism: A(D) = g(D) + Lap(GS_g / ε) per coordinate, where
// GS_g is the L1 global sensitivity of g (paper §2.1).
#ifndef PRIVBASIS_DP_LAPLACE_MECHANISM_H_
#define PRIVBASIS_DP_LAPLACE_MECHANISM_H_

#include <span>
#include <vector>

#include "common/rng.h"

namespace privbasis {

/// Returns `value` + Lap(sensitivity/epsilon). `sensitivity` and `epsilon`
/// must be > 0.
double LaplacePerturb(Rng& rng, double value, double sensitivity,
                      double epsilon);

/// Vector form: one independent Laplace draw per coordinate, calibrated to
/// the *joint* L1 sensitivity of the whole vector.
std::vector<double> LaplacePerturb(Rng& rng, std::span<const double> values,
                                   double sensitivity, double epsilon);

/// Variance of the injected noise, 2·(sensitivity/epsilon)²: the error-
/// variance bookkeeping of BasisFreq builds on this.
double LaplaceNoiseVariance(double sensitivity, double epsilon);

}  // namespace privbasis

#endif  // PRIVBASIS_DP_LAPLACE_MECHANISM_H_
