#include "dp/amplification.h"

#include <cmath>

namespace privbasis {

double AmplifiedEpsilon(double sampling_rate, double mechanism_epsilon) {
  // ln(1 + q(e^{ε'} − 1)); expm1/log1p keep precision for small ε'.
  return std::log1p(sampling_rate * std::expm1(mechanism_epsilon));
}

double MechanismEpsilonForTarget(double sampling_rate,
                                 double target_epsilon) {
  return std::log1p(std::expm1(target_epsilon) / sampling_rate);
}

Result<TransactionDatabase> PoissonSubsample(const TransactionDatabase& db,
                                             double sampling_rate, Rng& rng) {
  if (!(sampling_rate > 0.0) || sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling_rate must be in (0, 1]");
  }
  TransactionDatabase::Builder builder(db.UniverseSize());
  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    if (rng.Bernoulli(sampling_rate)) {
      auto txn = db.Transaction(t);
      builder.AddTransaction(std::vector<Item>(txn.begin(), txn.end()));
    }
  }
  return std::move(builder).Build();
}

}  // namespace privbasis
