#include "dp/exponential_mechanism.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logspace.h"

namespace privbasis {

double EmExponentFactor(const EmOptions& options) {
  double denom = (options.monotonic ? 1.0 : 2.0) * options.sensitivity;
  return options.epsilon / denom;
}

Result<size_t> ExponentialMechanismSelect(Rng& rng,
                                          std::span<const double> qualities,
                                          const EmOptions& options) {
  if (qualities.empty()) {
    return Status::InvalidArgument("no candidates to select from");
  }
  if (!(options.epsilon > 0.0) || !(options.sensitivity > 0.0)) {
    return Status::InvalidArgument("epsilon and sensitivity must be > 0");
  }
  const double factor = EmExponentFactor(options);
  GumbelMaxSampler sampler(&rng);
  for (size_t i = 0; i < qualities.size(); ++i) {
    sampler.Offer(i, factor * qualities[i]);
  }
  return sampler.WinnerKey();
}

Result<std::vector<size_t>> ExponentialMechanismSelectK(
    Rng& rng, std::span<const double> qualities, size_t count,
    const EmOptions& options) {
  if (count > qualities.size()) {
    return Status::InvalidArgument("cannot select " + std::to_string(count) +
                                   " of " + std::to_string(qualities.size()) +
                                   " candidates without replacement");
  }
  if (!(options.epsilon > 0.0) || !(options.sensitivity > 0.0)) {
    return Status::InvalidArgument("epsilon and sensitivity must be > 0");
  }
  EmOptions per_round = options;
  per_round.epsilon = options.epsilon / static_cast<double>(count);
  const double factor = EmExponentFactor(per_round);

  std::vector<bool> taken(qualities.size(), false);
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t round = 0; round < count; ++round) {
    GumbelMaxSampler sampler(&rng);
    for (size_t i = 0; i < qualities.size(); ++i) {
      if (!taken[i]) sampler.Offer(i, factor * qualities[i]);
    }
    size_t winner = sampler.WinnerKey();
    taken[winner] = true;
    out.push_back(winner);
  }
  return out;
}

GroupedEmPool::GroupedEmPool(std::span<const uint64_t> qualities) {
  remaining_ = qualities.size();
  std::vector<size_t> order(qualities.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (qualities[a] != qualities[b]) return qualities[a] > qualities[b];
    return a < b;
  });
  for (size_t idx : order) {
    if (groups_.empty() || groups_.back().quality != qualities[idx]) {
      groups_.push_back(Group{qualities[idx], {}});
    }
    groups_.back().members.push_back(idx);
  }
}

void GroupedEmPool::OfferAll(GumbelMaxSampler* sampler, double factor) const {
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].members.empty()) continue;
    sampler->OfferGroup(g, factor * static_cast<double>(groups_[g].quality),
                        static_cast<double>(groups_[g].members.size()));
  }
}

size_t GroupedEmPool::TakeFrom(size_t group, Rng& rng) {
  auto& members = groups_[group].members;
  size_t pick = rng.UniformInt(members.size());
  size_t idx = members[pick];
  members[pick] = members.back();
  members.pop_back();
  --remaining_;
  return idx;
}

Result<std::vector<size_t>> GroupedEmPool::SelectK(Rng& rng, size_t count,
                                                   double factor) {
  if (count > remaining_) {
    return Status::InvalidArgument(
        "cannot select " + std::to_string(count) + " of " +
        std::to_string(remaining_) + " remaining candidates");
  }
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t round = 0; round < count; ++round) {
    GumbelMaxSampler sampler(&rng);
    OfferAll(&sampler, factor);
    out.push_back(TakeFrom(sampler.WinnerKey(), rng));
  }
  return out;
}

}  // namespace privbasis
