// Undirected graph over item ids — the paper's θ-frequent-pairs graph
// (Definition 4): one node per frequent item, one edge per frequent pair.
#ifndef PRIVBASIS_GRAPH_GRAPH_H_
#define PRIVBASIS_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/itemset.h"

namespace privbasis {

/// Small undirected graph with item-id nodes. Node count is bounded by λ
/// (a few hundred), so adjacency is a dense matrix internally.
class ItemGraph {
 public:
  ItemGraph() = default;

  /// Adds an isolated node (no-op if present).
  void AddNode(Item node);

  /// Adds an edge, inserting both endpoints as needed. Self-loops are
  /// ignored. Idempotent.
  void AddEdge(Item a, Item b);

  /// Builds the frequent-pairs graph from frequent items F and frequent
  /// pairs P (each pair itemset must have exactly 2 items; both endpoints
  /// are added as nodes even if absent from `items`).
  static ItemGraph FromItemsAndPairs(const std::vector<Item>& items,
                                     const std::vector<Itemset>& pairs);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// All nodes in insertion order.
  const std::vector<Item>& Nodes() const { return nodes_; }

  bool HasNode(Item node) const { return index_.contains(node); }
  bool HasEdge(Item a, Item b) const;

  /// Degree of `node`; 0 when absent.
  size_t Degree(Item node) const;

  /// Neighbors of `node` (unsorted item ids).
  std::vector<Item> Neighbors(Item node) const;

  /// Connected components, each as a sorted Itemset of its nodes.
  std::vector<Itemset> ConnectedComponents() const;

  // -- dense-index access for clique algorithms ------------------------
  size_t IndexOf(Item node) const { return index_.at(node); }
  Item NodeAt(size_t idx) const { return nodes_[idx]; }
  bool HasEdgeByIndex(size_t a, size_t b) const {
    return adjacency_[a][b] != 0;
  }

 private:
  size_t EnsureNode(Item node);

  std::vector<Item> nodes_;
  std::unordered_map<Item, size_t> index_;
  std::vector<std::vector<uint8_t>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_GRAPH_GRAPH_H_
