// Bron–Kerbosch maximal-clique enumeration with Tomita-style pivoting —
// the classic algorithm the paper cites ([12], Algorithm 457) for finding
// all maximal cliques of the θ-frequent-pairs graph (Proposition 5).
#ifndef PRIVBASIS_GRAPH_BRON_KERBOSCH_H_
#define PRIVBASIS_GRAPH_BRON_KERBOSCH_H_

#include <vector>

#include "data/itemset.h"
#include "graph/graph.h"

namespace privbasis {

/// Enumerates all maximal cliques of `graph`, including isolated nodes
/// (cliques of size 1). Output is deterministic: cliques sorted by
/// descending size, then lexicographically.
std::vector<Itemset> FindMaximalCliques(const ItemGraph& graph);

/// As above, but only cliques with at least `min_size` nodes (the paper's
/// Algorithm 2 uses min_size = 2 for B1).
std::vector<Itemset> FindMaximalCliques(const ItemGraph& graph,
                                        size_t min_size);

}  // namespace privbasis

#endif  // PRIVBASIS_GRAPH_BRON_KERBOSCH_H_
