#include "graph/bron_kerbosch.h"

#include <algorithm>

namespace privbasis {

namespace {

/// Recursive Bron–Kerbosch over dense node indices.
/// R: current clique; P: candidates; X: already-processed (exclusion) set.
/// The pivot u is chosen from P ∪ X maximizing |P ∩ N(u)|, and only
/// P \ N(u) is branched on (Tomita et al. 2006).
void Expand(const ItemGraph& g, std::vector<size_t>* r,
            std::vector<size_t> p, std::vector<size_t> x,
            std::vector<std::vector<size_t>>* cliques) {
  if (p.empty() && x.empty()) {
    cliques->push_back(*r);
    return;
  }
  // Pivot selection.
  size_t pivot = 0;
  size_t best_cover = 0;
  bool have_pivot = false;
  for (const auto* side : {&p, &x}) {
    for (size_t u : *side) {
      size_t cover = 0;
      for (size_t v : p) {
        if (g.HasEdgeByIndex(u, v)) ++cover;
      }
      if (!have_pivot || cover > best_cover) {
        have_pivot = true;
        pivot = u;
        best_cover = cover;
      }
    }
  }
  std::vector<size_t> branch;
  for (size_t v : p) {
    if (!g.HasEdgeByIndex(pivot, v)) branch.push_back(v);
  }
  for (size_t v : branch) {
    std::vector<size_t> p_next, x_next;
    for (size_t w : p) {
      if (g.HasEdgeByIndex(v, w)) p_next.push_back(w);
    }
    for (size_t w : x) {
      if (g.HasEdgeByIndex(v, w)) x_next.push_back(w);
    }
    r->push_back(v);
    Expand(g, r, std::move(p_next), std::move(x_next), cliques);
    r->pop_back();
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

}  // namespace

std::vector<Itemset> FindMaximalCliques(const ItemGraph& graph) {
  return FindMaximalCliques(graph, 1);
}

std::vector<Itemset> FindMaximalCliques(const ItemGraph& graph,
                                        size_t min_size) {
  std::vector<std::vector<size_t>> raw;
  std::vector<size_t> r, p, x;
  p.resize(graph.NumNodes());
  for (size_t i = 0; i < p.size(); ++i) p[i] = i;
  Expand(graph, &r, std::move(p), std::move(x), &raw);

  std::vector<Itemset> cliques;
  cliques.reserve(raw.size());
  for (auto& idxs : raw) {
    if (idxs.size() < min_size) continue;
    std::vector<Item> members;
    members.reserve(idxs.size());
    for (size_t i : idxs) members.push_back(graph.NodeAt(i));
    cliques.push_back(Itemset(std::move(members)));
  }
  std::sort(cliques.begin(), cliques.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  return cliques;
}

}  // namespace privbasis
