#include "graph/graph.h"

#include <cassert>

namespace privbasis {

size_t ItemGraph::EnsureNode(Item node) {
  auto [it, inserted] = index_.try_emplace(node, nodes_.size());
  if (inserted) {
    nodes_.push_back(node);
    for (auto& row : adjacency_) row.push_back(0);
    adjacency_.emplace_back(nodes_.size(), 0);
  }
  return it->second;
}

void ItemGraph::AddNode(Item node) { EnsureNode(node); }

void ItemGraph::AddEdge(Item a, Item b) {
  if (a == b) return;
  size_t ia = EnsureNode(a);
  size_t ib = EnsureNode(b);
  if (adjacency_[ia][ib]) return;
  adjacency_[ia][ib] = 1;
  adjacency_[ib][ia] = 1;
  ++num_edges_;
}

ItemGraph ItemGraph::FromItemsAndPairs(const std::vector<Item>& items,
                                       const std::vector<Itemset>& pairs) {
  ItemGraph g;
  for (Item it : items) g.AddNode(it);
  for (const auto& pair : pairs) {
    assert(pair.size() == 2);
    g.AddEdge(pair[0], pair[1]);
  }
  return g;
}

bool ItemGraph::HasEdge(Item a, Item b) const {
  auto ia = index_.find(a);
  auto ib = index_.find(b);
  if (ia == index_.end() || ib == index_.end()) return false;
  return adjacency_[ia->second][ib->second] != 0;
}

size_t ItemGraph::Degree(Item node) const {
  auto it = index_.find(node);
  if (it == index_.end()) return 0;
  size_t d = 0;
  for (uint8_t a : adjacency_[it->second]) d += a;
  return d;
}

std::vector<Item> ItemGraph::Neighbors(Item node) const {
  std::vector<Item> out;
  auto it = index_.find(node);
  if (it == index_.end()) return out;
  const auto& row = adjacency_[it->second];
  for (size_t j = 0; j < row.size(); ++j) {
    if (row[j]) out.push_back(nodes_[j]);
  }
  return out;
}

std::vector<Itemset> ItemGraph::ConnectedComponents() const {
  std::vector<uint8_t> visited(nodes_.size(), 0);
  std::vector<Itemset> components;
  std::vector<size_t> stack;
  for (size_t start = 0; start < nodes_.size(); ++start) {
    if (visited[start]) continue;
    std::vector<Item> members;
    stack.push_back(start);
    visited[start] = 1;
    while (!stack.empty()) {
      size_t v = stack.back();
      stack.pop_back();
      members.push_back(nodes_[v]);
      for (size_t j = 0; j < nodes_.size(); ++j) {
        if (adjacency_[v][j] && !visited[j]) {
          visited[j] = 1;
          stack.push_back(j);
        }
      }
    }
    components.push_back(Itemset(std::move(members)));
  }
  return components;
}

}  // namespace privbasis
