#include "data/transaction_db.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace privbasis {

void TransactionDatabase::Builder::AddTransaction(std::vector<Item> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  items_.insert(items_.end(), items.begin(), items.end());
  offsets_.push_back(items_.size());
}

void TransactionDatabase::Builder::AddTransaction(const Itemset& items) {
  items_.insert(items_.end(), items.begin(), items.end());
  offsets_.push_back(items_.size());
}

Result<TransactionDatabase> TransactionDatabase::Builder::Build() && {
  uint32_t universe = universe_size_;
  uint32_t max_item = 0;
  for (Item it : items_) max_item = std::max(max_item, it);
  if (universe == 0) {
    universe = items_.empty() ? 0 : max_item + 1;
  } else if (!items_.empty() && max_item >= universe) {
    return Status::InvalidArgument(
        "item id " + std::to_string(max_item) +
        " exceeds declared universe size " + std::to_string(universe));
  }
  return TransactionDatabase(universe, std::move(items_),
                             std::move(offsets_));
}

TransactionDatabase::TransactionDatabase(uint32_t universe_size,
                                         std::vector<Item> items,
                                         std::vector<uint64_t> offsets)
    : universe_size_(universe_size),
      items_(std::move(items)),
      offsets_(std::move(offsets)) {
  item_supports_.assign(universe_size_, 0);
  for (Item it : items_) ++item_supports_[it];
}

uint64_t TransactionDatabase::SupportOf(const Itemset& itemset) const {
  if (itemset.empty()) return NumTransactions();
  uint64_t support = 0;
  for (size_t i = 0; i < NumTransactions(); ++i) {
    if (itemset.IsSubsetOf(Transaction(i))) ++support;
  }
  return support;
}

std::vector<Item> TransactionDatabase::ItemsByFrequency() const {
  std::vector<Item> order(universe_size_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Item a, Item b) {
    if (item_supports_[a] != item_supports_[b]) {
      return item_supports_[a] > item_supports_[b];
    }
    return a < b;
  });
  return order;
}

TransactionDatabase TransactionDatabase::ProjectOnto(
    const Itemset& keep) const {
  std::vector<char> keep_mask(universe_size_, 0);
  for (Item it : keep) {
    assert(it < universe_size_);
    keep_mask[it] = 1;
  }
  std::vector<Item> items;
  std::vector<uint64_t> offsets;
  offsets.reserve(offsets_.size());
  offsets.push_back(0);
  for (size_t i = 0; i < NumTransactions(); ++i) {
    for (Item it : Transaction(i)) {
      if (keep_mask[it]) items.push_back(it);
    }
    offsets.push_back(items.size());
  }
  return TransactionDatabase(universe_size_, std::move(items),
                             std::move(offsets));
}

}  // namespace privbasis
