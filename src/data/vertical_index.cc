#include "data/vertical_index.h"

#include <algorithm>
#include <cassert>

namespace privbasis {

VerticalIndex::VerticalIndex(const TransactionDatabase& db)
    : num_transactions_(db.NumTransactions()),
      universe_size_(db.UniverseSize()) {
  // Counting sort into CSR: supports give exact bucket sizes.
  const auto& supports = db.ItemSupports();
  tid_offsets_.assign(universe_size_ + 1, 0);
  for (uint32_t i = 0; i < universe_size_; ++i) {
    tid_offsets_[i + 1] = tid_offsets_[i] + supports[i];
  }
  tids_.resize(db.TotalItemOccurrences());
  std::vector<uint64_t> cursor(tid_offsets_.begin(), tid_offsets_.end() - 1);
  for (size_t t = 0; t < num_transactions_; ++t) {
    for (Item it : db.Transaction(t)) {
      tids_[cursor[it]++] = static_cast<uint32_t>(t);
    }
  }
  // Tid order within each list is ascending because transactions were
  // visited in order.
}

std::span<const uint32_t> VerticalIndex::TidList(Item item) const {
  if (item >= universe_size_) {
    // Out-of-universe items never occur: empty list (metrics may probe
    // arbitrary published itemsets).
    return {};
  }
  return std::span<const uint32_t>(tids_.data() + tid_offsets_[item],
                                   tids_.data() + tid_offsets_[item + 1]);
}

namespace {

/// Galloping (exponential) search: first index in [lo, n) with v[idx] >= x.
size_t Gallop(std::span<const uint32_t> v, size_t lo, uint32_t x) {
  size_t hi = lo + 1;
  size_t n = v.size();
  while (hi < n && v[hi] < x) {
    size_t step = (hi - lo) * 2;
    lo = hi;
    hi = std::min(n, lo + step);
  }
  return std::lower_bound(v.begin() + lo, v.begin() + std::min(hi + 1, n), x) -
         v.begin();
}

}  // namespace

uint64_t VerticalIndex::SupportOf(const Itemset& itemset) const {
  if (itemset.empty()) return num_transactions_;
  // Order lists by ascending length; drive the intersection from the
  // shortest list, galloping through the others.
  std::vector<std::span<const uint32_t>> lists;
  lists.reserve(itemset.size());
  for (Item it : itemset) lists.push_back(TidList(it));
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  if (lists.front().empty()) return 0;

  uint64_t support = 0;
  std::vector<size_t> pos(lists.size(), 0);
  for (uint32_t tid : lists[0]) {
    bool in_all = true;
    for (size_t j = 1; j < lists.size(); ++j) {
      size_t p = Gallop(lists[j], pos[j], tid);
      pos[j] = p;
      if (p >= lists[j].size() || lists[j][p] != tid) {
        in_all = false;
        break;
      }
    }
    if (in_all) ++support;
  }
  return support;
}

uint64_t VerticalIndex::SupportOfPair(Item a, Item b) const {
  auto la = TidList(a);
  auto lb = TidList(b);
  if (la.size() > lb.size()) std::swap(la, lb);
  if (la.empty()) return 0;
  uint64_t support = 0;
  size_t p = 0;
  for (uint32_t tid : la) {
    p = Gallop(lb, p, tid);
    if (p >= lb.size()) break;
    if (lb[p] == tid) ++support;
  }
  return support;
}

}  // namespace privbasis
