#include "data/vertical_index.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/env.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace privbasis {

VerticalIndex::VerticalIndex(const TransactionDatabase& db,
                             const Options& options)
    : num_transactions_(db.NumTransactions()),
      universe_size_(db.UniverseSize()) {
  // Counting sort into CSR: supports give exact bucket sizes.
  const auto& supports = db.ItemSupports();
  tid_offsets_.assign(universe_size_ + 1, 0);
  for (uint32_t i = 0; i < universe_size_; ++i) {
    tid_offsets_[i + 1] = tid_offsets_[i] + supports[i];
  }
  tids_.resize(db.TotalItemOccurrences());

  const size_t n = num_transactions_;
  const size_t threads = EffectiveThreads(options.num_threads);
  // Per-shard cursor arrays cost shards · |I| · 8 bytes; keep the arena
  // under ~64 MiB and skip sharding entirely for small inputs.
  size_t num_shards = 1;
  if (threads > 1 && n >= 2048 && universe_size_ > 0) {
    const size_t memory_cap =
        std::max<size_t>(1, (size_t{64} << 20) / (universe_size_ * 8));
    num_shards = std::min({threads, size_t{16}, n / 1024, memory_cap});
  }
  if (num_shards <= 1) {
    std::vector<uint64_t> cursor(tid_offsets_.begin(), tid_offsets_.end() - 1);
    for (size_t t = 0; t < n; ++t) {
      for (Item it : db.Transaction(t)) {
        tids_[cursor[it]++] = static_cast<uint32_t>(t);
      }
    }
  } else {
    // Two parallel passes over contiguous transaction shards. Pass A
    // counts per-shard occurrences; a per-item exclusive prefix across
    // shards turns the counts into disjoint write cursors, so pass B's
    // fills are race-free and tid order matches the sequential scan.
    auto shard_begin = [&](size_t s) { return n * s / num_shards; };
    std::vector<std::vector<uint64_t>> cursors(
        num_shards, std::vector<uint64_t>(universe_size_, 0));
    ThreadPool::Global().ParallelFor(
        0, num_shards, 1, threads, [&](size_t, size_t, size_t s) {
          auto& counts = cursors[s];
          for (size_t t = shard_begin(s); t < shard_begin(s + 1); ++t) {
            for (Item it : db.Transaction(t)) ++counts[it];
          }
        });
    ThreadPool::Global().ParallelFor(
        0, universe_size_, 4096, threads, [&](size_t b, size_t e, size_t) {
          for (size_t item = b; item < e; ++item) {
            uint64_t running = tid_offsets_[item];
            for (size_t s = 0; s < num_shards; ++s) {
              const uint64_t count = cursors[s][item];
              cursors[s][item] = running;
              running += count;
            }
          }
        });
    ThreadPool::Global().ParallelFor(
        0, num_shards, 1, threads, [&](size_t, size_t, size_t s) {
          auto& cursor = cursors[s];
          for (size_t t = shard_begin(s); t < shard_begin(s + 1); ++t) {
            for (Item it : db.Transaction(t)) {
              tids_[cursor[it]++] = static_cast<uint32_t>(t);
            }
          }
        });
  }

  // Dense backend: bitmap every item whose support clears the density
  // threshold (support 0 items always stay sparse).
  double density = options.density_threshold;
  if (density < 0.0) density = BitmapDensityThreshold();
  dense_rank_.assign(universe_size_, kNoDense);
  if (density < 1.0 && n > 0) {
    const uint64_t min_dense_support = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(density * static_cast<double>(n))));
    for (uint32_t i = 0; i < universe_size_; ++i) {
      if (supports[i] >= min_dense_support) {
        dense_rank_[i] = static_cast<uint32_t>(num_dense_++);
      }
    }
    bitmap_words_ = (n + 63) / 64;
    bitmaps_.assign(num_dense_ * bitmap_words_, 0);
    ThreadPool::Global().ParallelFor(
        0, universe_size_, 256, threads, [&](size_t b, size_t e, size_t) {
          for (size_t item = b; item < e; ++item) {
            const uint32_t rank = dense_rank_[item];
            if (rank == kNoDense) continue;
            uint64_t* bitmap =
                bitmaps_.data() + static_cast<size_t>(rank) * bitmap_words_;
            for (uint32_t tid : TidList(static_cast<Item>(item))) {
              bitmap[tid >> 6] |= uint64_t{1} << (tid & 63);
            }
          }
        });
  }
}

std::span<const uint32_t> VerticalIndex::TidList(Item item) const {
  if (item >= universe_size_) {
    // Out-of-universe items never occur: empty list (metrics may probe
    // arbitrary published itemsets).
    return {};
  }
  return std::span<const uint32_t>(tids_.data() + tid_offsets_[item],
                                   tids_.data() + tid_offsets_[item + 1]);
}

namespace {

/// Galloping (exponential) search: first index in [lo, n) with v[idx] >= x.
size_t Gallop(std::span<const uint32_t> v, size_t lo, uint32_t x) {
  size_t hi = lo + 1;
  size_t n = v.size();
  while (hi < n && v[hi] < x) {
    size_t step = (hi - lo) * 2;
    lo = hi;
    hi = std::min(n, lo + step);
  }
  return std::lower_bound(v.begin() + lo, v.begin() + std::min(hi + 1, n), x) -
         v.begin();
}

/// Per-thread query scratch: hoisted out of SupportOf so repeated ad-hoc
/// queries (the TF rejection sampler's hot loop) allocate nothing.
struct QueryScratch {
  std::vector<std::span<const uint32_t>> sparse;
  std::vector<const uint64_t*> dense;
  std::vector<size_t> pos;
  std::vector<uint64_t> combined;
};

QueryScratch& TlsScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

uint64_t VerticalIndex::SupportOf(const Itemset& itemset) const {
  const size_t size = itemset.size();
  if (size == 0) return num_transactions_;
  if (size == 1) {
    const Item it = itemset[0];
    if (it >= universe_size_) return 0;
    return tid_offsets_[it + 1] - tid_offsets_[it];
  }
  if (size == 2) return SupportOfPair(itemset[0], itemset[1]);

  QueryScratch& scratch = TlsScratch();
  scratch.sparse.clear();
  scratch.dense.clear();
  for (Item it : itemset) {
    if (it >= universe_size_) return 0;
    const uint32_t rank = dense_rank_[it];
    if (rank != kNoDense) {
      scratch.dense.push_back(Bitmap(rank));
    } else {
      scratch.sparse.push_back(TidList(it));
    }
  }

  if (scratch.sparse.empty()) {
    // All-dense: k-way fused AND + popcount across the bitmaps.
    return simd::AndPopcountMany(scratch.dense.data(), scratch.dense.size(),
                                 bitmap_words_);
  }

  // Mixed / all-sparse: drive from the shortest sorted list; dense members
  // cost one bit probe per candidate tid, remaining sparse lists gallop.
  std::sort(scratch.sparse.begin(), scratch.sparse.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  if (scratch.sparse.front().empty()) return 0;

  if (scratch.dense.size() >= 2 &&
      scratch.sparse.front().size() >= 2 * bitmap_words_) {
    // Probe-heavy query: pre-AND the dense bitmaps into one (sequential
    // vector kernel) so each candidate tid costs a single bit probe.
    scratch.combined.assign(scratch.dense[0], scratch.dense[0] + bitmap_words_);
    for (size_t j = 1; j < scratch.dense.size(); ++j) {
      simd::AndInto(scratch.combined.data(), scratch.dense[j], bitmap_words_);
    }
    scratch.dense.assign(1, scratch.combined.data());
  }

  uint64_t support = 0;
  scratch.pos.assign(scratch.sparse.size(), 0);
  for (uint32_t tid : scratch.sparse[0]) {
    bool in_all = true;
    for (const uint64_t* bitmap : scratch.dense) {
      if (!((bitmap[tid >> 6] >> (tid & 63)) & 1u)) {
        in_all = false;
        break;
      }
    }
    if (!in_all) continue;
    for (size_t j = 1; j < scratch.sparse.size(); ++j) {
      const size_t p = Gallop(scratch.sparse[j], scratch.pos[j], tid);
      scratch.pos[j] = p;
      if (p >= scratch.sparse[j].size() || scratch.sparse[j][p] != tid) {
        in_all = false;
        break;
      }
    }
    if (in_all) ++support;
  }
  return support;
}

uint64_t VerticalIndex::SupportOfPair(Item a, Item b) const {
  if (a >= universe_size_ || b >= universe_size_) return 0;
  if (a == b) return tid_offsets_[a + 1] - tid_offsets_[a];
  const uint32_t ra = dense_rank_[a];
  const uint32_t rb = dense_rank_[b];
  if (ra != kNoDense && rb != kNoDense) {
    return simd::AndPopcount(Bitmap(ra), Bitmap(rb), bitmap_words_);
  }
  if (ra != kNoDense || rb != kNoDense) {
    const uint32_t rank = (ra != kNoDense) ? ra : rb;
    auto list = TidList((ra != kNoDense) ? b : a);
    uint64_t support = 0;
    for (uint32_t tid : list) {
      support += BitmapTest(rank, tid);
    }
    return support;
  }
  auto la = TidList(a);
  auto lb = TidList(b);
  if (la.size() > lb.size()) std::swap(la, lb);
  if (la.empty()) return 0;
  uint64_t support = 0;
  size_t p = 0;
  for (uint32_t tid : la) {
    p = Gallop(lb, p, tid);
    if (p >= lb.size()) break;
    if (lb[p] == tid) ++support;
  }
  return support;
}

void VerticalIndex::SupportOfMany(std::span<const Itemset> queries,
                                  std::span<uint64_t> out,
                                  size_t num_threads,
                                  const CancelToken* cancel) const {
  assert(out.size() >= queries.size());
  const size_t threads = EffectiveThreads(num_threads);
  const size_t grain = std::max<size_t>(1, queries.size() / (threads * 8));
  // Cancellation granularity: one poll per kCancelChunk queries (each
  // query is a full tid-list intersection, so the chunk bounds the stop
  // latency). The shared sticky flag keeps all ranges stopping together
  // with a single clock read after the token fires.
  constexpr size_t kCancelChunk = 256;
  std::atomic<bool> cancelled{false};
  auto poll_cancel = [&] {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    if (!IsCancelled(cancel)) return false;
    cancelled.store(true, std::memory_order_relaxed);
    return true;
  };
  ThreadPool::Global().ParallelFor(
      0, queries.size(), grain, threads, [&](size_t b, size_t e, size_t) {
        for (size_t i = b; i < e; ++i) {
          if ((i - b) % kCancelChunk == 0 && poll_cancel()) return;
          out[i] = SupportOf(queries[i]);
        }
      });
}

std::vector<uint64_t> VerticalIndex::SupportOfMany(
    std::span<const Itemset> queries, size_t num_threads,
    const CancelToken* cancel) const {
  std::vector<uint64_t> out(queries.size());
  SupportOfMany(queries, std::span<uint64_t>(out), num_threads, cancel);
  return out;
}

}  // namespace privbasis
