#include "data/dataset_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace privbasis {

namespace {

Result<LoadedDataset> ParseFimi(std::istream& in, const std::string& origin) {
  TransactionDatabase::Builder builder;
  std::unordered_map<uint64_t, Item> raw_to_dense;
  std::vector<uint64_t> dense_to_raw;

  std::string line;
  size_t line_no = 0;
  std::vector<Item> txn;
  while (std::getline(in, line)) {
    ++line_no;
    txn.clear();
    const char* p = line.c_str();
    const char* end = p + line.size();
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p >= end) break;
      char* tok_end = nullptr;
      errno = 0;
      unsigned long long raw = std::strtoull(p, &tok_end, 10);
      if (tok_end == p || errno == ERANGE) {
        return Status::IoError(origin + ":" + std::to_string(line_no) +
                               ": malformed item token");
      }
      p = tok_end;
      auto [it, inserted] = raw_to_dense.try_emplace(
          raw, static_cast<Item>(dense_to_raw.size()));
      if (inserted) dense_to_raw.push_back(raw);
      txn.push_back(it->second);
    }
    if (txn.empty() && line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // skip fully blank lines
    }
    builder.AddTransaction(txn);
  }

  auto db = std::move(builder).Build();
  if (!db.ok()) return db.status();
  return LoadedDataset{std::move(db).value(), std::move(dense_to_raw)};
}

}  // namespace

Result<LoadedDataset> ReadFimiFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  return ParseFimi(in, path);
}

Result<LoadedDataset> ReadFimiString(const std::string& text) {
  std::istringstream in(text);
  return ParseFimi(in, "<string>");
}

Status WriteFimiFile(const TransactionDatabase& db, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing: " +
                           std::strerror(errno));
  }
  out << WriteFimiString(db);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

std::string WriteFimiString(const TransactionDatabase& db) {
  std::string out;
  for (size_t i = 0; i < db.NumTransactions(); ++i) {
    auto txn = db.Transaction(i);
    for (size_t j = 0; j < txn.size(); ++j) {
      if (j > 0) out += ' ';
      out += std::to_string(txn[j]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace privbasis
