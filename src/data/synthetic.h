// Synthetic dataset generators calibrated to the five datasets of the
// paper's evaluation (Table 2(a)): retail, mushroom, pumsb-star, kosarak,
// AOL. The real files are FIMI/AOL downloads we do not ship; these
// generators reproduce the properties PB/TF accuracy actually depends on —
// N, |I|, average transaction length, and the shape of the top-k frequency
// landscape (λ, λ2, λ3, tie density near fk). See DESIGN.md §2.2.
//
// Two generator families:
//  * Market-basket (retail, kosarak, AOL): Zipf-distributed background
//    items plus planted correlated patterns.
//  * Categorical (mushroom, pumsb-star): one value per attribute with
//    skewed marginals and a latent class mixing correlated attributes —
//    dense fixed-length transactions whose top-k is dominated by
//    high-order combinations of a few dominant attribute values.
#ifndef PRIVBASIS_DATA_SYNTHETIC_H_
#define PRIVBASIS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/transaction_db.h"

namespace privbasis {

/// A correlated itemset planted into market-basket transactions.
struct PlantedPattern {
  /// Items of the pattern (dense ids, i.e. Zipf ranks).
  std::vector<Item> items;
  /// Probability a transaction includes the whole pattern.
  double full_prob = 0.0;
  /// Probability a transaction includes a uniform random subset of size
  /// ≥ 2 instead (adds sub-pattern structure).
  double partial_prob = 0.0;
};

/// One attribute of the categorical model. Items ids are assigned
/// contiguously per attribute: value v of attribute a has id
/// offset(a) + v.
struct CategoricalAttribute {
  uint32_t num_values = 2;
  /// Probability of the dominant value (value 0 for class 0).
  double dominant_prob = 0.5;
  /// If true, class-1 transactions use value 1 as the dominant value —
  /// this couples all sensitive attributes and creates correlation.
  bool class_sensitive = false;
  /// Geometric decay ratio across the non-dominant values.
  double tail_decay = 0.55;
};

/// Declarative description of a synthetic dataset.
struct SyntheticProfile {
  enum class Kind { kMarketBasket, kCategorical };

  std::string name;
  Kind kind = Kind::kMarketBasket;
  uint64_t num_transactions = 0;

  // --- market-basket parameters -------------------------------------
  uint32_t universe_size = 0;       ///< |I| for the Zipf background
  double zipf_exponent = 1.05;      ///< background skew
  double mean_transaction_length = 10.0;  ///< Poisson mean of raw draws
  /// Mixture head: with probability head_weight a background draw comes
  /// from a flatter Zipf over the first head_size ranks (models the flat
  /// keyword head of search logs). head_weight = 0 disables the mixture.
  double head_weight = 0.0;
  uint32_t head_size = 0;
  double head_exponent = 0.5;
  std::vector<PlantedPattern> patterns;

  // --- categorical parameters ---------------------------------------
  std::vector<CategoricalAttribute> attributes;
  double class1_prob = 0.0;  ///< latent class mixture weight

  /// Total item universe (market-basket: universe_size; categorical: sum
  /// of attribute cardinalities).
  uint32_t TotalUniverseSize() const;

  // Factory presets calibrated to Table 2(a). `scale` multiplies the
  // transaction count (benchmarks use PRIVBASIS_SCALE); the item universe
  // and frequency landscape are scale-invariant.
  static SyntheticProfile Retail(double scale = 1.0);
  static SyntheticProfile Mushroom(double scale = 1.0);
  static SyntheticProfile PumsbStar(double scale = 1.0);
  static SyntheticProfile Kosarak(double scale = 1.0);
  static SyntheticProfile Aol(double scale = 1.0);

  /// All five presets in the paper's Table 2 order.
  static std::vector<SyntheticProfile> AllPaperProfiles(double scale = 1.0);
};

/// Materializes a profile into a TransactionDatabase. Deterministic in
/// (profile, seed). Fails on invalid profiles (zero transactions,
/// pattern items outside the universe, ...).
Result<TransactionDatabase> GenerateDataset(const SyntheticProfile& profile,
                                            uint64_t seed);

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_SYNTHETIC_H_
