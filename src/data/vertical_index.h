// VerticalIndex: per-item sorted transaction-id lists ("tid-lists").
//
// Supports O(Σ shortest-list) ad-hoc support counting of arbitrary
// itemsets via galloping multi-way intersection — the workhorse behind the
// TF baseline's rejection sampler and the ground-truth verifier, where
// support queries arrive for itemsets no miner enumerated.
#ifndef PRIVBASIS_DATA_VERTICAL_INDEX_H_
#define PRIVBASIS_DATA_VERTICAL_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/itemset.h"
#include "data/transaction_db.h"

namespace privbasis {

/// Immutable tid-list index over a TransactionDatabase.
class VerticalIndex {
 public:
  /// Builds the index with one scan of `db`. The index keeps no reference
  /// to `db` afterwards.
  explicit VerticalIndex(const TransactionDatabase& db);

  /// Sorted transaction ids containing `item`.
  std::span<const uint32_t> TidList(Item item) const;

  /// Absolute support of `itemset`: |∩ tid-lists|. Empty itemset returns N.
  uint64_t SupportOf(const Itemset& itemset) const;

  /// Frequency f(X) = support / N.
  double FrequencyOf(const Itemset& itemset) const {
    return static_cast<double>(SupportOf(itemset)) /
           static_cast<double>(num_transactions_);
  }

  /// Support of the pair {a, b} (common fast path).
  uint64_t SupportOfPair(Item a, Item b) const;

  size_t NumTransactions() const { return num_transactions_; }
  uint32_t UniverseSize() const { return universe_size_; }

 private:
  size_t num_transactions_;
  uint32_t universe_size_;
  // CSR over items: tids_[tid_offsets_[i]..tid_offsets_[i+1]) sorted.
  std::vector<uint32_t> tids_;
  std::vector<uint64_t> tid_offsets_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_VERTICAL_INDEX_H_
