// VerticalIndex: hybrid per-item tid-list index over a transaction
// database.
//
// Every item keeps a sorted transaction-id list (CSR layout). Items whose
// frequency reaches a density threshold additionally get a dense 64-bit
// bitmap over [0, N): intersections touching only dense items run as
// word-wise AND + popcount, mixed queries drive the shortest sorted list
// and test dense members with O(1) bit probes, and fully sparse queries
// fall back to the original galloping multi-way intersection. This is the
// workhorse behind the TF baseline's rejection sampler and the
// ground-truth verifier, where support queries arrive for itemsets no
// miner enumerated.
//
// Construction is parallelized across transaction shards with
// deterministic output (tid order never depends on the thread count).
#ifndef PRIVBASIS_DATA_VERTICAL_INDEX_H_
#define PRIVBASIS_DATA_VERTICAL_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cancel.h"
#include "data/itemset.h"
#include "data/transaction_db.h"

namespace privbasis {

/// Immutable tid-list index over a TransactionDatabase.
class VerticalIndex {
 public:
  struct Options {
    /// Items with frequency ≥ this also get a dense bitmap. Negative =
    /// read the PRIVBASIS_BITMAP_DENSITY env knob (default 1/64). Values
    /// ≥ 1 disable bitmaps; 0 densifies every occurring item.
    double density_threshold = -1.0;
    /// Construction parallelism; 0 = the PRIVBASIS_THREADS env knob.
    size_t num_threads = 0;
  };

  /// Builds the index with one scan of `db`. The index keeps no reference
  /// to `db` afterwards.
  explicit VerticalIndex(const TransactionDatabase& db)
      : VerticalIndex(db, Options{}) {}
  VerticalIndex(const TransactionDatabase& db, const Options& options);

  /// Sorted transaction ids containing `item`.
  std::span<const uint32_t> TidList(Item item) const;

  /// Absolute support of `itemset`: |∩ tid-lists|. Empty itemset returns N.
  uint64_t SupportOf(const Itemset& itemset) const;

  /// Frequency f(X) = support / N.
  double FrequencyOf(const Itemset& itemset) const {
    return static_cast<double>(SupportOf(itemset)) /
           static_cast<double>(num_transactions_);
  }

  /// Support of the pair {a, b} (common fast path).
  uint64_t SupportOfPair(Item a, Item b) const;

  /// Batch support counting: out[i] = SupportOf(queries[i]), computed in
  /// parallel (0 = PRIVBASIS_THREADS). Deterministic: output order is the
  /// query order regardless of thread count. A fired `cancel` token stops
  /// the batch within one query chunk and leaves `out` partially filled —
  /// the caller must check the token afterwards and discard the results.
  void SupportOfMany(std::span<const Itemset> queries,
                     std::span<uint64_t> out, size_t num_threads = 0,
                     const CancelToken* cancel = nullptr) const;
  std::vector<uint64_t> SupportOfMany(std::span<const Itemset> queries,
                                      size_t num_threads = 0,
                                      const CancelToken* cancel = nullptr) const;

  /// True iff `item` is backed by a dense bitmap (diagnostics / tests).
  bool IsDense(Item item) const {
    return item < universe_size_ && dense_rank_[item] != kNoDense;
  }
  size_t NumDenseItems() const { return num_dense_; }

  size_t NumTransactions() const { return num_transactions_; }
  uint32_t UniverseSize() const { return universe_size_; }

 private:
  static constexpr uint32_t kNoDense = 0xffffffffu;

  /// Bitmap words of the dense item with rank `rank`.
  const uint64_t* Bitmap(uint32_t rank) const {
    return bitmaps_.data() + static_cast<size_t>(rank) * bitmap_words_;
  }
  bool BitmapTest(uint32_t rank, uint32_t tid) const {
    return (Bitmap(rank)[tid >> 6] >> (tid & 63)) & 1u;
  }

  size_t num_transactions_;
  uint32_t universe_size_;
  // CSR over items: tids_[tid_offsets_[i]..tid_offsets_[i+1]) sorted.
  std::vector<uint32_t> tids_;
  std::vector<uint64_t> tid_offsets_;
  // Dense backend: per-item bitmap rank (kNoDense = list only) and the
  // bitmap arena, bitmap_words_ words per dense item.
  std::vector<uint32_t> dense_rank_;
  std::vector<uint64_t> bitmaps_;
  size_t bitmap_words_ = 0;
  size_t num_dense_ = 0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_VERTICAL_INDEX_H_
