// Itemset: an immutable-by-convention sorted set of item ids, the value
// type flowing through the whole library (transactions, mined patterns,
// bases, candidates).
#ifndef PRIVBASIS_DATA_ITEMSET_H_
#define PRIVBASIS_DATA_ITEMSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace privbasis {

/// Dense item identifier. Datasets remap raw ids to [0, |I|).
using Item = uint32_t;

/// A set of items stored as a sorted, duplicate-free vector. Small (top-k
/// itemsets rarely exceed a dozen items), so contiguous storage beats any
/// tree/hash representation.
class Itemset {
 public:
  Itemset() = default;

  /// Builds from arbitrary items; sorts and deduplicates.
  explicit Itemset(std::vector<Item> items);
  Itemset(std::initializer_list<Item> items);

  /// Wraps a vector the caller guarantees is sorted and duplicate-free
  /// (checked in debug builds). O(1).
  static Itemset FromSorted(std::vector<Item> sorted_items);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  Item operator[](size_t i) const { return items_[i]; }

  std::vector<Item>::const_iterator begin() const { return items_.begin(); }
  std::vector<Item>::const_iterator end() const { return items_.end(); }
  const std::vector<Item>& items() const { return items_; }

  /// Membership test. O(log n).
  bool Contains(Item item) const;

  /// True iff every item of *this is in `other`. O(n + m).
  bool IsSubsetOf(const Itemset& other) const;
  bool IsSubsetOf(std::span<const Item> sorted_other) const;

  /// Set union / intersection / difference (linear merges).
  Itemset Union(const Itemset& other) const;
  Itemset Intersect(const Itemset& other) const;
  Itemset Difference(const Itemset& other) const;

  /// Copy with `item` added (no-op copy if already present).
  Itemset With(Item item) const;

  /// Lexicographic comparison on the sorted item sequence.
  auto operator<=>(const Itemset& other) const = default;
  bool operator==(const Itemset& other) const = default;

  /// "{3, 17, 42}".
  std::string ToString() const;

 private:
  std::vector<Item> items_;
};

/// FNV-1a over the item sequence; usable as the Hash template argument of
/// unordered containers keyed by Itemset.
struct ItemsetHash {
  size_t operator()(const Itemset& s) const;
};

/// Hash for plain sorted item vectors (used by interning maps).
struct ItemVectorHash {
  size_t operator()(const std::vector<Item>& v) const;
};

/// Enumerates all non-empty subsets of `base` of size at most `max_size`
/// (0 = no cap), invoking `fn(const Itemset&)` for each. `base.size()` must
/// be ≤ 63.
void ForEachSubset(const Itemset& base, size_t max_size,
                   const std::function<void(const Itemset&)>& fn);

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_ITEMSET_H_
