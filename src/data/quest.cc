#include "data/quest.h"

#include <algorithm>
#include <cmath>

#include "common/distributions.h"
#include "common/rng.h"

namespace privbasis {

namespace {

/// Poisson via Knuth (means here are ≤ ~50).
uint64_t SamplePoisson(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

struct Pattern {
  std::vector<Item> items;
  double corruption;  // probability an item is dropped per instantiation
};

}  // namespace

QuestConfig QuestConfig::T10I4D100K() {
  QuestConfig config;
  config.num_transactions = 100000;
  config.avg_transaction_size = 10;
  config.num_patterns = 2000;
  config.avg_pattern_size = 4;
  config.num_items = 1000;
  return config;
}

QuestConfig QuestConfig::T25I10D10K() {
  QuestConfig config;
  config.num_transactions = 10000;
  config.avg_transaction_size = 25;
  config.num_patterns = 2000;
  config.avg_pattern_size = 10;
  config.num_items = 1000;
  return config;
}

Result<TransactionDatabase> GenerateQuestDataset(const QuestConfig& config,
                                                 uint64_t seed) {
  if (config.num_transactions == 0 || config.num_items == 0 ||
      config.num_patterns == 0) {
    return Status::InvalidArgument(
        "QUEST config needs positive D, N and L");
  }
  if (config.avg_transaction_size <= 0 || config.avg_pattern_size <= 0) {
    return Status::InvalidArgument("QUEST config needs positive T and I");
  }
  Rng rng(seed ^ 0x5851f42d4c957f2dULL);

  // Build the potentially-large itemsets. Item popularity is mildly
  // skewed (Zipf 0.5) so patterns overlap on common items, as in QUEST.
  ZipfDistribution item_dist(config.num_items, 0.5);
  std::vector<Pattern> patterns(config.num_patterns);
  std::vector<double> weights(config.num_patterns);
  for (size_t p = 0; p < config.num_patterns; ++p) {
    size_t size = std::max<uint64_t>(
        1, SamplePoisson(rng, config.avg_pattern_size));
    std::vector<Item> items;
    // Correlation: reuse a fraction of the previous pattern's items.
    if (p > 0 && config.correlation > 0.0) {
      const auto& prev = patterns[p - 1].items;
      for (Item it : prev) {
        if (items.size() >= size) break;
        if (rng.Bernoulli(config.correlation * 0.5)) items.push_back(it);
      }
    }
    while (items.size() < size) {
      items.push_back(static_cast<Item>(item_dist.Sample(rng)));
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    // Corruption level: clipped normal around mean_corruption (QUEST uses
    // sd 0.1); approximate the normal by a sum of uniforms.
    double normal = 0.0;
    for (int i = 0; i < 12; ++i) normal += rng.NextDouble();
    normal = (normal - 6.0) * 0.1 + config.mean_corruption;
    patterns[p] = Pattern{std::move(items),
                          std::clamp(normal, 0.0, 0.95)};
    // Exponential pattern weights, normalized implicitly by the sampler.
    weights[p] = SampleExponential(rng, 1.0);
  }

  TransactionDatabase::Builder builder(config.num_items);
  std::vector<Item> txn;
  for (uint64_t t = 0; t < config.num_transactions; ++t) {
    uint64_t target =
        std::max<uint64_t>(1, SamplePoisson(rng, config.avg_transaction_size));
    txn.clear();
    // Fill with weighted pattern picks; per QUEST, the last pattern may
    // overshoot — keep it with probability ~ the fraction needed, else
    // truncate.
    size_t guard = 0;
    while (txn.size() < target && guard++ < 64) {
      const Pattern& pattern = patterns[SampleDiscrete(rng, weights)];
      for (Item it : pattern.items) {
        if (!rng.Bernoulli(pattern.corruption)) txn.push_back(it);
      }
    }
    if (txn.size() > target) txn.resize(target);
    if (txn.empty()) txn.push_back(static_cast<Item>(item_dist.Sample(rng)));
    builder.AddTransaction(txn);
  }
  return std::move(builder).Build();
}

}  // namespace privbasis
