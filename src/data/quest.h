// IBM QUEST-style synthetic market-basket generator (Agrawal & Srikant,
// VLDB'94 §: "synthetic data generation") — the T10.I4.D100K family every
// FIM paper of the era benchmarks on. Complements the Table 2(a)
// calibrated profiles in synthetic.h with the community-standard
// parameterization:
//
//   D  number of transactions            (e.g. 100K)
//   T  average transaction size          (e.g. 10)
//   L  number of potentially-large itemsets (patterns)
//   I  average size of those patterns    (e.g. 4)
//   N  number of items
//
// Each pattern is a Poisson(I)-sized itemset over Zipf-ish item picks
// with an exponentially distributed weight; transactions are filled by
// sampling patterns by weight, keeping each pattern's items with a
// per-pattern corruption level, until the Poisson(T) size is reached.
#ifndef PRIVBASIS_DATA_QUEST_H_
#define PRIVBASIS_DATA_QUEST_H_

#include <cstdint>

#include "common/status.h"
#include "data/transaction_db.h"

namespace privbasis {

struct QuestConfig {
  uint64_t num_transactions = 100000;  ///< D
  double avg_transaction_size = 10;    ///< T
  uint64_t num_patterns = 2000;        ///< L
  double avg_pattern_size = 4;         ///< I
  uint32_t num_items = 1000;           ///< N
  /// Fraction of a pattern's items shared with the previous pattern
  /// (QUEST's "correlation"); default per the paper.
  double correlation = 0.5;
  /// Mean of the per-pattern corruption level (items dropped when the
  /// pattern is instantiated); QUEST uses a clipped normal around 0.5.
  double mean_corruption = 0.5;

  /// The classic T10.I4.D100K dataset.
  static QuestConfig T10I4D100K();
  /// The denser T25.I10.D10K variant.
  static QuestConfig T25I10D10K();
};

/// Generates a QUEST dataset. Deterministic in (config, seed).
Result<TransactionDatabase> GenerateQuestDataset(const QuestConfig& config,
                                                 uint64_t seed);

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_QUEST_H_
