// Summary statistics of a transaction database — the quantities of the
// paper's Table 2(a) that depend on the data alone (N, |I|, avg |t|).
#ifndef PRIVBASIS_DATA_DATASET_STATS_H_
#define PRIVBASIS_DATA_DATASET_STATS_H_

#include <cstdint>
#include <string>

#include "data/transaction_db.h"

namespace privbasis {

/// Data-only dataset statistics (mining-dependent stats such as λ live in
/// eval/ground_truth.h).
struct DatasetStats {
  uint64_t num_transactions = 0;   ///< N
  uint32_t universe_size = 0;      ///< declared |I|
  uint32_t num_active_items = 0;   ///< items with support > 0
  double avg_transaction_len = 0;  ///< avg |t|
  uint32_t max_transaction_len = 0;
  uint64_t total_occurrences = 0;  ///< Σ|t| (the paper's |D|)

  std::string ToString() const;
};

/// Computes statistics in one pass over per-item supports and offsets.
DatasetStats ComputeDatasetStats(const TransactionDatabase& db);

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_DATASET_STATS_H_
