#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/distributions.h"
#include "common/rng.h"

namespace privbasis {

namespace {

/// Knuth's Poisson sampler. Exact; O(mean) per draw, fine for mean ≤ ~500.
uint64_t SamplePoisson(Rng& rng, double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

/// Per-attribute, per-class cumulative value distribution.
struct AttributeCdf {
  std::vector<double> class0;
  std::vector<double> class1;
};

/// Builds the value CDF of one attribute for one class. The dominant value
/// (0 for class 0; 1 for class-1-sensitive attributes) takes
/// `dominant_prob`; the remaining mass decays geometrically across the
/// other values in ascending id order.
std::vector<double> BuildValueCdf(const CategoricalAttribute& attr,
                                  bool class1) {
  const uint32_t v = attr.num_values;
  std::vector<double> pmf(v, 0.0);
  uint32_t dominant = (class1 && attr.class_sensitive && v >= 2) ? 1u : 0u;
  if (v == 1) {
    pmf[0] = 1.0;
  } else {
    pmf[dominant] = attr.dominant_prob;
    double rest = 1.0 - attr.dominant_prob;
    // Geometric weights over the non-dominant values.
    double weight_sum = 0.0;
    double w = 1.0;
    for (uint32_t i = 0; i + 1 < v; ++i) {
      weight_sum += w;
      w *= attr.tail_decay;
    }
    w = 1.0;
    for (uint32_t val = 0; val < v; ++val) {
      if (val == dominant) continue;
      pmf[val] = rest * (w / weight_sum);
      w *= attr.tail_decay;
    }
  }
  std::vector<double> cdf(v);
  double acc = 0.0;
  for (uint32_t val = 0; val < v; ++val) {
    acc += pmf[val];
    cdf[val] = acc;
  }
  cdf.back() = 1.0;  // exact top regardless of rounding
  return cdf;
}

uint32_t SampleFromCdf(Rng& rng, const std::vector<double>& cdf) {
  double u = rng.NextDouble();
  // Attribute cardinalities are small; the linear scan beats binary search.
  for (uint32_t v = 0; v < cdf.size(); ++v) {
    if (u < cdf[v]) return v;
  }
  return static_cast<uint32_t>(cdf.size() - 1);
}

Result<TransactionDatabase> GenerateMarketBasket(
    const SyntheticProfile& profile, Rng& rng) {
  if (profile.universe_size == 0) {
    return Status::InvalidArgument("market-basket profile needs universe_size");
  }
  for (const auto& pattern : profile.patterns) {
    for (Item it : pattern.items) {
      if (it >= profile.universe_size) {
        return Status::InvalidArgument("pattern item " + std::to_string(it) +
                                       " outside universe");
      }
    }
    if (pattern.items.size() < 2) {
      return Status::InvalidArgument("planted patterns need >= 2 items");
    }
  }

  ZipfDistribution tail(profile.universe_size, profile.zipf_exponent);
  const bool has_head = profile.head_weight > 0.0 && profile.head_size > 0;
  ZipfDistribution head(has_head ? profile.head_size : 1,
                        has_head ? profile.head_exponent : 1.0);

  TransactionDatabase::Builder builder(profile.universe_size);
  std::vector<Item> txn;
  for (uint64_t t = 0; t < profile.num_transactions; ++t) {
    txn.clear();
    uint64_t draws =
        std::max<uint64_t>(1, SamplePoisson(rng, profile.mean_transaction_length));
    for (uint64_t d = 0; d < draws; ++d) {
      Item item;
      if (has_head && rng.NextDouble() < profile.head_weight) {
        item = static_cast<Item>(head.Sample(rng));
      } else if (has_head) {
        // The tail is the global Zipf *conditioned* on ranks past the
        // head — otherwise its own low ranks would stack on top of the
        // head items and break the calibrated head frequencies.
        uint64_t r;
        do {
          r = tail.Sample(rng);
        } while (r < profile.head_size);
        item = static_cast<Item>(r);
      } else {
        item = static_cast<Item>(tail.Sample(rng));
      }
      txn.push_back(item);
    }
    for (const auto& pattern : profile.patterns) {
      double u = rng.NextDouble();
      if (u < pattern.full_prob) {
        txn.insert(txn.end(), pattern.items.begin(), pattern.items.end());
      } else if (u < pattern.full_prob + pattern.partial_prob) {
        // A uniform-size (>= 2) random sub-pattern.
        size_t sz = 2 + rng.UniformInt(pattern.items.size() - 1);
        auto picks = SampleDistinct(rng, pattern.items.size(), sz);
        for (uint64_t idx : picks) txn.push_back(pattern.items[idx]);
      }
    }
    builder.AddTransaction(txn);  // sorts + dedups
  }
  return std::move(builder).Build();
}

Result<TransactionDatabase> GenerateCategorical(
    const SyntheticProfile& profile, Rng& rng) {
  if (profile.attributes.empty()) {
    return Status::InvalidArgument("categorical profile needs attributes");
  }
  std::vector<AttributeCdf> cdfs;
  std::vector<Item> offsets;
  cdfs.reserve(profile.attributes.size());
  offsets.reserve(profile.attributes.size());
  Item offset = 0;
  for (const auto& attr : profile.attributes) {
    if (attr.num_values == 0 || attr.dominant_prob < 0.0 ||
        attr.dominant_prob > 1.0) {
      return Status::InvalidArgument("invalid categorical attribute");
    }
    cdfs.push_back(
        AttributeCdf{BuildValueCdf(attr, false), BuildValueCdf(attr, true)});
    offsets.push_back(offset);
    offset += attr.num_values;
  }

  TransactionDatabase::Builder builder(offset);
  std::vector<Item> txn(profile.attributes.size());
  for (uint64_t t = 0; t < profile.num_transactions; ++t) {
    bool class1 = rng.Bernoulli(profile.class1_prob);
    for (size_t a = 0; a < profile.attributes.size(); ++a) {
      const auto& cdf = class1 ? cdfs[a].class1 : cdfs[a].class0;
      txn[a] = offsets[a] + SampleFromCdf(rng, cdf);
    }
    builder.AddTransaction(txn);
  }
  return std::move(builder).Build();
}

uint64_t ScaledCount(uint64_t n, double scale) {
  return std::max<uint64_t>(100, static_cast<uint64_t>(
                                     std::llround(static_cast<double>(n) * scale)));
}

}  // namespace

uint32_t SyntheticProfile::TotalUniverseSize() const {
  if (kind == Kind::kMarketBasket) return universe_size;
  uint32_t total = 0;
  for (const auto& attr : attributes) total += attr.num_values;
  return total;
}

Result<TransactionDatabase> GenerateDataset(const SyntheticProfile& profile,
                                            uint64_t seed) {
  if (profile.num_transactions == 0) {
    return Status::InvalidArgument("profile has zero transactions");
  }
  Rng rng(seed ^ 0xa0761d6478bd642fULL);
  if (profile.kind == SyntheticProfile::Kind::kMarketBasket) {
    return GenerateMarketBasket(profile, rng);
  }
  return GenerateCategorical(profile, rng);
}

// ---------------------------------------------------------------------------
// Presets. Calibration targets are the paper's Table 2(a); commented next
// to each preset. Constants were tuned against the mined statistics (see
// tests/synthetic_calibration_test.cc and bench_table2a).
// ---------------------------------------------------------------------------

SyntheticProfile SyntheticProfile::Retail(double scale) {
  // Target: N=88162, |I|=16470, avg|t|=11.3; top-100: λ≈38, λ2≈37, λ3≈21;
  // f_100·N ≈ 1192 (f_100 ≈ 0.0135); many near-ties just below f_k.
  SyntheticProfile p;
  p.name = "retail";
  p.kind = Kind::kMarketBasket;
  p.num_transactions = ScaledCount(88162, scale);
  p.universe_size = 16470;
  p.zipf_exponent = 0.95;
  p.mean_transaction_length = 10.6;
  // Five 4-item co-purchase groups (≈ 20 triples), two triples, and a
  // handful of pairs, planted over low Zipf ranks. Probabilities sit just
  // above the ~0.013 top-100 frequency cutoff so the pattern subsets land
  // inside the top-k without pushing fk far above the paper's value.
  p.patterns = {
      // Triples/quads over top ranks, probable enough to clear the
      // top-100 cutoff (their subsets land above fk ≈ 0.03).
      {{0, 1, 6}, 0.042, 0.0},      {{0, 2, 9}, 0.038, 0.0},
      {{1, 3, 12}, 0.035, 0.0},     {{0, 4, 15}, 0.033, 0.0},
      {{2, 5, 18}, 0.031, 0.0},     {{1, 7, 21}, 0.030, 0.0},
      {{0, 3, 7, 16}, 0.030, 0.0},  {{1, 5, 10, 20}, 0.028, 0.0},
      {{2, 4, 13, 24}, 0.027, 0.0},
      // Mid-rank co-purchase pairs: a dense band of near-ties just below
      // and around fk (the paper's retail FNR observation).
      {{24, 60}, 0.031, 0.0},       {{26, 64}, 0.030, 0.0},
      {{28, 68}, 0.029, 0.0},       {{31, 72}, 0.029, 0.0},
      {{33, 76}, 0.028, 0.0},       {{35, 80}, 0.028, 0.0},
  };
  return p;
}

SyntheticProfile SyntheticProfile::Mushroom(double scale) {
  // Target: N=8124, |I|=119, avg|t|=24; top-100: λ≈11 (k=100), λ≈8 (k=50);
  // f_100 ≈ 0.55. Dense categorical data: ~11 dominant attribute values.
  SyntheticProfile p;
  p.name = "mushroom";
  p.kind = Kind::kCategorical;
  p.num_transactions = ScaledCount(8124, scale);
  p.class1_prob = 0.35;
  auto attr = [](uint32_t v, double d, bool sens) {
    return CategoricalAttribute{v, d, sens, 0.55};
  };
  p.attributes = {
      attr(2, 0.995, false),  // near-constant, like veil-type
      attr(3, 0.95, false),  attr(4, 0.92, false), attr(4, 0.88, true),
      attr(5, 0.84, false),  attr(5, 0.80, true),  attr(5, 0.76, false),
      attr(6, 0.72, true),   attr(6, 0.68, false), attr(6, 0.64, true),
      attr(6, 0.58, false),
  };
  // 13 low-skew attributes: their values stay out of the top-k.
  for (int i = 0; i < 13; ++i) {
    p.attributes.push_back(attr(5, 0.38, i % 3 == 0));
  }
  return p;  // universe = 2+3+4+4+5+5+5+6+6+6+6 + 13*5 = 117
}

SyntheticProfile SyntheticProfile::PumsbStar(double scale) {
  // Target: N=49046, |I|=2088, avg|t|=50; top-200: λ≈17, λ2≈31, λ3≈50;
  // f_200 ≈ 0.583. Census-like: 17 high-dominance attributes out of 50.
  SyntheticProfile p;
  p.name = "pumsb-star";
  p.kind = Kind::kCategorical;
  p.num_transactions = ScaledCount(49046, scale);
  p.class1_prob = 0.30;
  for (int i = 0; i < 17; ++i) {
    CategoricalAttribute a;
    a.num_values = 6;
    a.dominant_prob = 0.98 - 0.016 * i;  // 0.98 down to ~0.72
    a.class_sensitive = (i % 3 == 2);
    a.tail_decay = 0.5;
    p.attributes.push_back(a);
  }
  for (int i = 0; i < 33; ++i) {
    CategoricalAttribute a;
    a.num_values = 60;
    a.dominant_prob = 0.40;
    a.class_sensitive = (i % 4 == 0);
    a.tail_decay = 0.85;
    p.attributes.push_back(a);
  }
  return p;  // universe = 17*6 + 33*60 = 2082
}

SyntheticProfile SyntheticProfile::Kosarak(double scale) {
  // Target: N=990002, |I|=41270, avg|t|=8.1; top-200: λ≈44, λ2≈84, λ3≈58;
  // f_200 ≈ 0.0143. Pure Zipf(1.05) already yields the pair/triple mix;
  // a few session patterns add realism.
  SyntheticProfile p;
  p.name = "kosarak";
  p.kind = Kind::kMarketBasket;
  p.num_transactions = ScaledCount(990002, scale);
  p.universe_size = 41270;
  p.zipf_exponent = 1.08;
  p.mean_transaction_length = 7.7;
  p.patterns = {
      {{1, 5, 11}, 0.026, 0.010},      {{3, 8, 17}, 0.022, 0.008},
      {{6, 13, 24}, 0.019, 0.007},     {{2, 7, 15, 22}, 0.020, 0.006},
      {{4, 10, 19, 30}, 0.017, 0.005}, {{9, 20}, 0.024, 0.0},
      {{14, 27}, 0.019, 0.0},
  };
  return p;
}

SyntheticProfile SyntheticProfile::Aol(double scale) {
  // Target: N=647377, |I|=2290685, avg|t|=34; top-200: 171 singletons +
  // 29 pairs, λ3 = 0; f_200 ≈ 0.0192. A flat keyword head over a huge
  // Zipf tail; no high-order structure.
  SyntheticProfile p;
  p.name = "aol";
  p.kind = Kind::kMarketBasket;
  p.num_transactions = ScaledCount(647377, scale);
  p.universe_size = 2290685;
  p.zipf_exponent = 1.05;
  p.mean_transaction_length = 34.0;
  // A wide, flat keyword head: singleton frequencies decay slowly enough
  // that ~170 singletons clear the top-200 cutoff, while pairwise
  // products stay below it except for the very top handful of keywords.
  p.head_weight = 0.35;
  p.head_size = 500;
  p.head_exponent = 0.52;
  return p;
}

std::vector<SyntheticProfile> SyntheticProfile::AllPaperProfiles(
    double scale) {
  return {Retail(scale), Mushroom(scale), PumsbStar(scale), Kosarak(scale),
          Aol(scale)};
}

}  // namespace privbasis
