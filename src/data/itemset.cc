#include "data/itemset.h"

#include <algorithm>
#include <cassert>

namespace privbasis {

Itemset::Itemset(std::vector<Item> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<Item> items)
    : Itemset(std::vector<Item>(items)) {}

Itemset Itemset::FromSorted(std::vector<Item> sorted_items) {
  assert(std::is_sorted(sorted_items.begin(), sorted_items.end()));
  assert(std::adjacent_find(sorted_items.begin(), sorted_items.end()) ==
         sorted_items.end());
  Itemset s;
  s.items_ = std::move(sorted_items);
  return s;
}

bool Itemset::Contains(Item item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return IsSubsetOf(std::span<const Item>(other.items_));
}

bool Itemset::IsSubsetOf(std::span<const Item> sorted_other) const {
  return std::includes(sorted_other.begin(), sorted_other.end(),
                       items_.begin(), items_.end());
}

Itemset Itemset::Union(const Itemset& other) const {
  std::vector<Item> out;
  out.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

Itemset Itemset::Intersect(const Itemset& other) const {
  std::vector<Item> out;
  std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

Itemset Itemset::Difference(const Itemset& other) const {
  std::vector<Item> out;
  std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                      other.items_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

Itemset Itemset::With(Item item) const {
  if (Contains(item)) return *this;
  std::vector<Item> out = items_;
  out.insert(std::lower_bound(out.begin(), out.end(), item), item);
  return FromSorted(std::move(out));
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += "}";
  return out;
}

namespace {
inline size_t Fnv1a(const Item* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}
}  // namespace

size_t ItemsetHash::operator()(const Itemset& s) const {
  return Fnv1a(s.items().data(), s.size());
}

size_t ItemVectorHash::operator()(const std::vector<Item>& v) const {
  return Fnv1a(v.data(), v.size());
}

void ForEachSubset(const Itemset& base, size_t max_size,
                   const std::function<void(const Itemset&)>& fn) {
  assert(base.size() <= 63);
  const size_t n = base.size();
  const uint64_t limit = uint64_t{1} << n;
  std::vector<Item> scratch;
  scratch.reserve(n);
  for (uint64_t mask = 1; mask < limit; ++mask) {
    if (max_size != 0 &&
        static_cast<size_t>(__builtin_popcountll(mask)) > max_size) {
      continue;
    }
    scratch.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) scratch.push_back(base[i]);
    }
    fn(Itemset::FromSorted(scratch));
  }
}

}  // namespace privbasis
