// Reading/writing transaction data in the FIMI repository format used by
// the paper's datasets (http://fimi.ua.ac.be/data/): one transaction per
// line, space-separated integer item ids.
#ifndef PRIVBASIS_DATA_DATASET_IO_H_
#define PRIVBASIS_DATA_DATASET_IO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/transaction_db.h"

namespace privbasis {

/// A loaded dataset together with the raw-id <-> dense-id mapping.
struct LoadedDataset {
  TransactionDatabase db;
  /// dense id -> original id from the file.
  std::vector<uint64_t> dense_to_raw;
};

/// Parses a FIMI-format file. Raw ids are remapped to dense ids in first-
/// appearance order. Blank lines are skipped; malformed tokens fail.
Result<LoadedDataset> ReadFimiFile(const std::string& path);

/// Parses FIMI-format text from a string (used by tests).
Result<LoadedDataset> ReadFimiString(const std::string& text);

/// Writes `db` in FIMI format (dense ids). Overwrites `path`.
Status WriteFimiFile(const TransactionDatabase& db, const std::string& path);

/// Serializes `db` to FIMI-format text.
std::string WriteFimiString(const TransactionDatabase& db);

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_DATASET_IO_H_
