#include "data/dataset_stats.h"

#include <algorithm>
#include <cstdio>

namespace privbasis {

std::string DatasetStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "N=%llu |I|=%u active=%u avg|t|=%.2f max|t|=%u |D|=%llu",
                static_cast<unsigned long long>(num_transactions),
                universe_size, num_active_items, avg_transaction_len,
                max_transaction_len,
                static_cast<unsigned long long>(total_occurrences));
  return std::string(buf);
}

DatasetStats ComputeDatasetStats(const TransactionDatabase& db) {
  DatasetStats s;
  s.num_transactions = db.NumTransactions();
  s.universe_size = db.UniverseSize();
  for (uint64_t sup : db.ItemSupports()) {
    if (sup > 0) ++s.num_active_items;
  }
  s.total_occurrences = db.TotalItemOccurrences();
  for (size_t i = 0; i < db.NumTransactions(); ++i) {
    s.max_transaction_len = std::max(
        s.max_transaction_len, static_cast<uint32_t>(db.Transaction(i).size()));
  }
  s.avg_transaction_len =
      s.num_transactions == 0
          ? 0.0
          : static_cast<double>(s.total_occurrences) /
                static_cast<double>(s.num_transactions);
  return s;
}

}  // namespace privbasis
