// TransactionDatabase: immutable CSR-layout transaction store.
//
// Transactions are kept as one contiguous `items_` array plus an
// `offsets_` array (offsets_[i]..offsets_[i+1] delimit transaction i), the
// classic columnar/CSR layout: a full scan — the hot loop of both miners
// and BasisFreq — touches memory strictly sequentially.
#ifndef PRIVBASIS_DATA_TRANSACTION_DB_H_
#define PRIVBASIS_DATA_TRANSACTION_DB_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"

namespace privbasis {

/// Immutable transaction database over a dense item universe [0, |I|).
/// Construct with Builder. Items within each transaction are sorted
/// ascending and duplicate-free.
class TransactionDatabase {
 public:
  /// Accumulates transactions, then freezes them into a database.
  class Builder {
   public:
    /// Declares the universe size |I|. Items ≥ universe_size are rejected
    /// at Build(). 0 (default) = infer as max item + 1.
    explicit Builder(uint32_t universe_size = 0)
        : universe_size_(universe_size) {
      offsets_.push_back(0);
    }

    /// Appends one transaction; input need not be sorted, duplicates are
    /// removed. Empty transactions are kept (they count toward N).
    void AddTransaction(std::vector<Item> items);
    void AddTransaction(const Itemset& items);

    size_t NumTransactions() const { return offsets_.size() - 1; }

    /// Freezes into an immutable database. Fails if any item id exceeds
    /// the declared universe.
    Result<TransactionDatabase> Build() &&;

   private:
    uint32_t universe_size_;
    std::vector<Item> items_;
    std::vector<uint64_t> offsets_;
  };

  /// Number of transactions N.
  size_t NumTransactions() const { return offsets_.size() - 1; }

  /// Universe size |I| (dense ids in [0, |I|)).
  uint32_t UniverseSize() const { return universe_size_; }

  /// Total number of item occurrences Σ|t| (the paper's |D|).
  uint64_t TotalItemOccurrences() const { return items_.size(); }

  /// Items of transaction `i`, sorted ascending.
  std::span<const Item> Transaction(size_t i) const {
    return std::span<const Item>(items_.data() + offsets_[i],
                                 items_.data() + offsets_[i + 1]);
  }

  /// Per-item absolute supports (counts), indexed by item id.
  const std::vector<uint64_t>& ItemSupports() const { return item_supports_; }

  /// Frequency of a single item: support / N.
  double ItemFrequency(Item item) const {
    return static_cast<double>(item_supports_[item]) /
           static_cast<double>(NumTransactions());
  }

  /// Exact absolute support of an itemset by full scan. O(Σ|t|); use
  /// VerticalIndex for repeated queries.
  uint64_t SupportOf(const Itemset& itemset) const;

  /// Frequency f(X) = support / N.
  double FrequencyOf(const Itemset& itemset) const {
    return static_cast<double>(SupportOf(itemset)) /
           static_cast<double>(NumTransactions());
  }

  /// Item ids sorted by descending support (ties by ascending id).
  std::vector<Item> ItemsByFrequency() const;

  /// New database containing only items in `keep` (a projection in the
  /// paper's §4.1 sense). Transaction count is preserved; transactions may
  /// become empty. Item ids are NOT remapped.
  TransactionDatabase ProjectOnto(const Itemset& keep) const;

 private:
  TransactionDatabase(uint32_t universe_size, std::vector<Item> items,
                      std::vector<uint64_t> offsets);

  uint32_t universe_size_ = 0;
  std::vector<Item> items_;
  std::vector<uint64_t> offsets_;
  std::vector<uint64_t> item_supports_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_DATA_TRANSACTION_DB_H_
