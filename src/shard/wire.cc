#include "shard/wire.h"

#include <cstring>
#include <utility>

#include "common/crc32.h"

namespace privbasis::shardwire {

namespace {

constexpr size_t kHeaderBytes = 16;

void PutLe32(std::string* buf, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf->append(b, 4);
}

uint32_t GetLe32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Reads exactly `len` bytes, looping over short reads. EOF mid-read is
/// kIoError unless `clean_eof_ok` and no byte has arrived yet — then
/// kNotFound, the clean-disconnect signal.
Status ReadFull(const net::Fd& fd, char* buf, size_t len,
                net::Deadline deadline, bool clean_eof_ok) {
  size_t got = 0;
  while (got < len) {
    PRIVBASIS_ASSIGN_OR_RETURN(
        size_t n, net::ReadSome(fd, buf + got, len - got, deadline));
    if (n == 0) {
      if (clean_eof_ok && got == 0) return Status::NotFound("peer closed");
      return Status::IoError("connection closed mid-frame");
    }
    got += n;
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(const net::Fd& fd, FrameType type,
                  std::string_view payload, net::Deadline deadline) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds cap");
  }
  std::string header;
  header.reserve(kHeaderBytes + payload.size());
  PutLe32(&header, kMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(type));
  header.push_back(0);
  header.push_back(0);
  PutLe32(&header, static_cast<uint32_t>(payload.size()));
  PutLe32(&header, Crc32(payload));
  header.append(payload);
  return net::WriteAll(fd, header, deadline);
}

Result<Frame> ReadFrame(const net::Fd& fd, net::Deadline deadline) {
  char header[kHeaderBytes];
  PRIVBASIS_RETURN_NOT_OK(
      ReadFull(fd, header, kHeaderBytes, deadline, /*clean_eof_ok=*/true));
  if (GetLe32(header) != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (static_cast<uint8_t>(header[4]) != kWireVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " +
        std::to_string(static_cast<uint8_t>(header[4])));
  }
  const uint8_t type = static_cast<uint8_t>(header[5]);
  const uint32_t len = GetLe32(header + 8);
  const uint32_t crc = GetLe32(header + 12);
  if (len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(len) + " exceeds cap");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    PRIVBASIS_RETURN_NOT_OK(ReadFull(fd, frame.payload.data(), len, deadline,
                                     /*clean_eof_ok=*/false));
  }
  if (Crc32(frame.payload) != crc) {
    return Status::InvalidArgument("frame payload crc mismatch");
  }
  return frame;
}

void Writer::PutU32(uint32_t v) { PutLe32(&buf_, v); }

void Writer::PutU64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void Writer::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void Writer::PutU32Vec(const std::vector<uint32_t>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (uint32_t e : v) PutU32(e);
}

void Writer::PutU64Vec(const std::vector<uint64_t>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (uint64_t e : v) PutU64(e);
}

Status Reader::Need(size_t bytes) const {
  if (pos_ + bytes > data_.size()) {
    return Status::InvalidArgument("truncated shard frame payload");
  }
  return Status::OK();
}

Result<uint8_t> Reader::GetU8() {
  PRIVBASIS_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Reader::GetU32() {
  PRIVBASIS_RETURN_NOT_OK(Need(4));
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::GetU64() {
  PRIVBASIS_RETURN_NOT_OK(Need(8));
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<std::string> Reader::GetString() {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  PRIVBASIS_RETURN_NOT_OK(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<std::vector<uint32_t>> Reader::GetU32Vec() {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  PRIVBASIS_RETURN_NOT_OK(Need(size_t{count} * 4));
  std::vector<uint32_t> v(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(&v[i], data_.data() + pos_, 4);
    pos_ += 4;
  }
  return v;
}

Result<std::vector<uint64_t>> Reader::GetU64Vec() {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  PRIVBASIS_RETURN_NOT_OK(Need(size_t{count} * 8));
  std::vector<uint64_t> v(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(&v[i], data_.data() + pos_, 8);
    pos_ += 8;
  }
  return v;
}

Status Reader::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::InvalidArgument("trailing bytes in shard frame payload");
  }
  return Status::OK();
}

std::string EncodeDatabase(const TransactionDatabase& db) {
  Writer w;
  w.PutU32(db.UniverseSize());
  const size_t n = db.NumTransactions();
  w.PutU64(n);
  w.PutU64(db.TotalItemOccurrences());
  for (size_t t = 0; t < n; ++t) {
    const auto txn = db.Transaction(t);
    w.PutU32(static_cast<uint32_t>(txn.size()));
    for (Item item : txn) w.PutU32(item);
  }
  return std::move(w).Take();
}

Result<TransactionDatabase> DecodeDatabase(std::string_view payload) {
  Reader r(payload);
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t universe, r.GetU32());
  PRIVBASIS_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  PRIVBASIS_ASSIGN_OR_RETURN(uint64_t total, r.GetU64());
  // Cheap structural bound before any allocation: every transaction
  // costs ≥ 4 bytes, every item 4 more.
  if (n > payload.size() / 4 || total > payload.size() / 4) {
    return Status::InvalidArgument("shard database payload too short");
  }
  TransactionDatabase::Builder builder(universe);
  std::vector<Item> txn;
  for (uint64_t t = 0; t < n; ++t) {
    PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint32_t> items, r.GetU32Vec());
    txn.assign(items.begin(), items.end());
    builder.AddTransaction(std::move(txn));
    txn.clear();
  }
  PRIVBASIS_RETURN_NOT_OK(r.ExpectEnd());
  return std::move(builder).Build();
}

std::string EncodeBasisSet(const BasisSet& basis_set) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(basis_set.Width()));
  for (size_t i = 0; i < basis_set.Width(); ++i) {
    w.PutU32Vec(basis_set.basis(i).items());
  }
  return std::move(w).Take();
}

Result<BasisSet> DecodeBasisSet(Reader& reader) {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t width, reader.GetU32());
  std::vector<Itemset> bases;
  bases.reserve(width);
  for (uint32_t i = 0; i < width; ++i) {
    PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint32_t> items,
                               reader.GetU32Vec());
    bases.push_back(Itemset(std::vector<Item>(items.begin(), items.end())));
  }
  return BasisSet(std::move(bases));
}

std::string EncodeItemsets(std::span<const Itemset> sets) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(sets.size()));
  for (const Itemset& s : sets) w.PutU32Vec(s.items());
  return std::move(w).Take();
}

Result<std::vector<Itemset>> DecodeItemsets(Reader& reader) {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  std::vector<Itemset> sets;
  sets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint32_t> items,
                               reader.GetU32Vec());
    sets.push_back(Itemset(std::vector<Item>(items.begin(), items.end())));
  }
  return sets;
}

std::string EncodeU64Vecs(const std::vector<std::vector<uint64_t>>& vecs) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(vecs.size()));
  for (const auto& v : vecs) w.PutU64Vec(v);
  return std::move(w).Take();
}

Result<std::vector<std::vector<uint64_t>>> DecodeU64Vecs(
    std::string_view payload) {
  Reader r(payload);
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  std::vector<std::vector<uint64_t>> vecs;
  vecs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint64_t> v, r.GetU64Vec());
    vecs.push_back(std::move(v));
  }
  PRIVBASIS_RETURN_NOT_OK(r.ExpectEnd());
  return vecs;
}

std::string EncodeError(const Status& status) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return std::move(w).Take();
}

Status DecodeError(std::string_view payload) {
  Reader r(payload);
  auto code = r.GetU32();
  auto message = r.GetString();
  if (!code.ok() || !message.ok()) {
    return Status::Internal("malformed shard error frame");
  }
  return Status(static_cast<StatusCode>(*code), *message);
}

}  // namespace privbasis::shardwire
