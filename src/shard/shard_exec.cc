#include "shard/shard_exec.h"

#include <functional>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "core/basis_freq.h"
#include "core/privbasis.h"

namespace privbasis {

namespace {

/// Scatters `fn(shard_index)` across all shards on the global pool and
/// returns the per-shard results in shard order, or the first error in
/// shard order (deterministic regardless of completion order).
template <typename T>
Result<std::vector<T>> ScatterGather(
    size_t num_shards, size_t parallelism,
    const std::function<Result<T>(size_t)>& fn) {
  std::vector<std::optional<Result<T>>> slots(num_shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    tasks.push_back([&, s] { slots[s].emplace(fn(s)); });
  }
  ThreadPool::Global().RunAll(tasks, parallelism);
  std::vector<T> out;
  out.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!slots[s]->ok()) return slots[s]->status();
    out.push_back(std::move(*slots[s]).value());
  }
  return out;
}

/// partial[i] += delta[i], failing on shape mismatch (a merge across
/// shards of the same database can only mismatch through a bug).
Status AccumulateInto(std::vector<uint64_t>* acc,
                      const std::vector<uint64_t>& delta) {
  if (acc->size() != delta.size()) {
    return Status::Internal("shard partial size mismatch: " +
                            std::to_string(acc->size()) + " vs " +
                            std::to_string(delta.size()));
  }
  for (size_t i = 0; i < delta.size(); ++i) (*acc)[i] += delta[i];
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<uint64_t>>> LocalShardExecutor::BasisBinCounts(
    const BasisSet& basis_set, const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<std::vector<uint64_t>>> partials,
      (ScatterGather<std::vector<std::vector<uint64_t>>>(
          shards_->NumShards(), num_threads_, [&](size_t s) {
            return CountBasisBins(shards_->shard(s), basis_set, num_threads_,
                                  cancel);
          })));
  std::vector<std::vector<uint64_t>> merged = std::move(partials[0]);
  for (size_t s = 1; s < partials.size(); ++s) {
    if (partials[s].size() != merged.size()) {
      return Status::Internal("shard bin width mismatch");
    }
    for (size_t i = 0; i < merged.size(); ++i) {
      PRIVBASIS_RETURN_NOT_OK(AccumulateInto(&merged[i], partials[s][i]));
    }
  }
  return merged;
}

Result<std::vector<uint64_t>> LocalShardExecutor::PairSupports(
    const std::vector<Item>& items, const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> partials,
      (ScatterGather<std::vector<uint64_t>>(
          shards_->NumShards(), num_threads_,
          [&](size_t s) -> Result<std::vector<uint64_t>> {
            std::vector<uint64_t> counts =
                CountPairSupports(shards_->shard(s), items, cancel);
            if (IsCancelled(cancel)) {
              return Status::Cancelled("pair counting cancelled mid-scan");
            }
            return counts;
          })));
  std::vector<uint64_t> merged = std::move(partials[0]);
  for (size_t s = 1; s < partials.size(); ++s) {
    PRIVBASIS_RETURN_NOT_OK(AccumulateInto(&merged, partials[s]));
  }
  return merged;
}

Result<std::vector<uint64_t>> LocalShardExecutor::SupportOfMany(
    std::span<const Itemset> queries, const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> partials,
      (ScatterGather<std::vector<uint64_t>>(
          shards_->NumShards(), num_threads_,
          [&](size_t s) -> Result<std::vector<uint64_t>> {
            std::vector<uint64_t> counts =
                shards_->Index(s).SupportOfMany(queries, num_threads_, cancel);
            if (IsCancelled(cancel)) {
              return Status::Cancelled("batch support cancelled mid-scan");
            }
            return counts;
          })));
  std::vector<uint64_t> merged = std::move(partials[0]);
  for (size_t s = 1; s < partials.size(); ++s) {
    PRIVBASIS_RETURN_NOT_OK(AccumulateInto(&merged, partials[s]));
  }
  return merged;
}

Result<std::vector<uint64_t>> LocalShardExecutor::ItemSupports(
    const CancelToken* cancel) const {
  // Per-slice item supports are memoized at Build time; merging them is
  // pure arithmetic, so no fan-out is needed.
  if (IsCancelled(cancel)) {
    return Status::Cancelled("item supports cancelled");
  }
  std::vector<uint64_t> merged(shards_->UniverseSize(), 0);
  for (size_t s = 0; s < shards_->NumShards(); ++s) {
    PRIVBASIS_RETURN_NOT_OK(
        AccumulateInto(&merged, shards_->shard(s).ItemSupports()));
  }
  return merged;
}

}  // namespace privbasis
