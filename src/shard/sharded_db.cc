#include "shard/sharded_db.h"

#include <utility>

namespace privbasis {

Result<ShardedDatabase> ShardedDatabase::Create(const TransactionDatabase& db,
                                                size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const size_t n = db.NumTransactions();
  std::vector<TransactionDatabase> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = n * s / num_shards;
    const size_t end = n * (s + 1) / num_shards;
    TransactionDatabase::Builder builder(db.UniverseSize());
    for (size_t t = begin; t < end; ++t) {
      const auto txn = db.Transaction(t);
      builder.AddTransaction(std::vector<Item>(txn.begin(), txn.end()));
    }
    PRIVBASIS_ASSIGN_OR_RETURN(TransactionDatabase slice,
                               std::move(builder).Build());
    shards.push_back(std::move(slice));
  }
  return ShardedDatabase(std::move(shards), n, db.UniverseSize());
}

ShardedDatabase::ShardedDatabase(std::vector<TransactionDatabase> shards,
                                 size_t num_transactions,
                                 uint32_t universe_size)
    : shards_(std::move(shards)),
      num_transactions_(num_transactions),
      universe_size_(universe_size) {
  index_cells_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    index_cells_.push_back(std::make_unique<IndexCell>());
  }
}

const VerticalIndex& ShardedDatabase::Index(size_t s) const {
  IndexCell& cell = *index_cells_[s];
  std::call_once(cell.once, [&] {
    cell.index = std::make_unique<VerticalIndex>(shards_[s]);
  });
  return *cell.index;
}

}  // namespace privbasis
