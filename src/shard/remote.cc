#include "shard/remote.h"

#include <charconv>
#include <chrono>
#include <functional>
#include <limits>
#include <optional>
#include <utility>

#include "common/thread_pool.h"

namespace privbasis {

namespace {

/// Default wall bound for counting ops with no caller deadline, and for
/// control ops (load/drop): generous, but a dead worker must not hold a
/// query thread forever.
constexpr int64_t kDefaultCallMs = 120'000;
/// Transport slack on top of the propagated op deadline: the worker
/// should time the op out first (kCancelled), the transport second.
constexpr int64_t kTransportSlackMs = 2'000;

Status Unavailable(const WorkerAddr& addr, const Status& cause) {
  return Status::Unavailable("shard worker " + addr.host + ":" +
                             std::to_string(addr.port) + ": " +
                             cause.ToString());
}

}  // namespace

Result<WorkerAddr> ParseWorkerAddr(const std::string& spec) {
  WorkerAddr addr;
  const size_t colon = spec.rfind(':');
  std::string port_part;
  if (colon == std::string::npos) {
    addr.host = "127.0.0.1";
    port_part = spec;
  } else {
    addr.host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (addr.host.empty()) addr.host = "127.0.0.1";
  uint32_t port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_part.data(), port_part.data() + port_part.size(), port);
  if (ec != std::errc{} || ptr != port_part.data() + port_part.size() ||
      port == 0 || port > 65535) {
    return Status::InvalidArgument("bad shard worker address '" + spec +
                                   "' (want host:port)");
  }
  addr.port = static_cast<uint16_t>(port);
  return addr;
}

Result<shardwire::Frame> ShardWorkerClient::Call(shardwire::FrameType type,
                                                 std::string payload,
                                                 net::Deadline deadline) {
  MutexLock lock(mu_);
  if (!conn_.valid()) {
    Result<net::Fd> conn = net::ConnectTcp(addr_.host, addr_.port, deadline);
    if (!conn.ok()) return Unavailable(addr_, conn.status());
    conn_ = std::move(conn).value();
  }
  Status written = shardwire::WriteFrame(conn_, type, payload, deadline);
  if (!written.ok()) {
    conn_.Close();
    return Unavailable(addr_, written);
  }
  Result<shardwire::Frame> response = shardwire::ReadFrame(conn_, deadline);
  if (!response.ok()) {
    conn_.Close();
    return Unavailable(addr_, response.status());
  }
  if (response->type == shardwire::FrameType::kError) {
    // The worker's own verdict (kCancelled, kNotFound, ...) — the
    // connection stays healthy.
    return shardwire::DecodeError(response->payload);
  }
  if (response->type != shardwire::FrameType::kOk) {
    conn_.Close();
    return Unavailable(addr_,
                       Status::Internal("unexpected response frame type"));
  }
  return response;
}

Result<uint32_t> ShardWorkerClient::DeadlineMsFor(
    const CancelToken* cancel) const {
  if (cancel == nullptr || !cancel->has_deadline()) return uint32_t{0};
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      cancel->deadline() - std::chrono::steady_clock::now());
  if (remaining.count() <= 0) {
    return Status::Cancelled("query deadline expired before shard fan-out");
  }
  return static_cast<uint32_t>(std::min<int64_t>(
      remaining.count(), std::numeric_limits<uint32_t>::max()));
}

Status ShardWorkerClient::Ping(int64_t timeout_ms) {
  PRIVBASIS_ASSIGN_OR_RETURN(
      shardwire::Frame response,
      Call(shardwire::FrameType::kPing, std::string(),
           net::DeadlineAfterMs(timeout_ms)));
  (void)response;
  return Status::OK();
}

Status ShardWorkerClient::LoadShard(const std::string& dataset_id,
                                    const TransactionDatabase& shard) {
  shardwire::Writer w;
  w.PutString(dataset_id);
  w.PutString(shardwire::EncodeDatabase(shard));
  return Call(shardwire::FrameType::kLoadShard, std::move(w).Take(),
              net::DeadlineAfterMs(kDefaultCallMs))
      .status();
}

Status ShardWorkerClient::DropShard(const std::string& dataset_id) {
  shardwire::Writer w;
  w.PutString(dataset_id);
  return Call(shardwire::FrameType::kDropShard, std::move(w).Take(),
              net::DeadlineAfterMs(kDefaultCallMs))
      .status();
}

Result<std::vector<uint64_t>> ShardWorkerClient::ItemSupports(
    const std::string& dataset_id, const CancelToken* cancel) {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t deadline_ms, DeadlineMsFor(cancel));
  shardwire::Writer w;
  w.PutString(dataset_id);
  w.PutU32(deadline_ms);
  PRIVBASIS_ASSIGN_OR_RETURN(
      shardwire::Frame response,
      Call(shardwire::FrameType::kItemSupports, std::move(w).Take(),
           net::DeadlineAfterMs(deadline_ms > 0
                                    ? deadline_ms + kTransportSlackMs
                                    : kDefaultCallMs)));
  shardwire::Reader r(response.payload);
  PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint64_t> counts, r.GetU64Vec());
  PRIVBASIS_RETURN_NOT_OK(r.ExpectEnd());
  return counts;
}

Result<std::vector<uint64_t>> ShardWorkerClient::PairSupports(
    const std::string& dataset_id, const std::vector<Item>& items,
    const CancelToken* cancel) {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t deadline_ms, DeadlineMsFor(cancel));
  shardwire::Writer w;
  w.PutString(dataset_id);
  w.PutU32(deadline_ms);
  w.PutU32Vec(items);
  PRIVBASIS_ASSIGN_OR_RETURN(
      shardwire::Frame response,
      Call(shardwire::FrameType::kPairSupports, std::move(w).Take(),
           net::DeadlineAfterMs(deadline_ms > 0
                                    ? deadline_ms + kTransportSlackMs
                                    : kDefaultCallMs)));
  shardwire::Reader r(response.payload);
  PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint64_t> counts, r.GetU64Vec());
  PRIVBASIS_RETURN_NOT_OK(r.ExpectEnd());
  return counts;
}

Result<std::vector<std::vector<uint64_t>>> ShardWorkerClient::BasisBins(
    const std::string& dataset_id, const BasisSet& basis_set,
    const CancelToken* cancel) {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t deadline_ms, DeadlineMsFor(cancel));
  shardwire::Writer w;
  w.PutString(dataset_id);
  w.PutU32(deadline_ms);
  std::string payload = std::move(w).Take();
  payload += shardwire::EncodeBasisSet(basis_set);
  PRIVBASIS_ASSIGN_OR_RETURN(
      shardwire::Frame response,
      Call(shardwire::FrameType::kBasisBins, std::move(payload),
           net::DeadlineAfterMs(deadline_ms > 0
                                    ? deadline_ms + kTransportSlackMs
                                    : kDefaultCallMs)));
  return shardwire::DecodeU64Vecs(response.payload);
}

Result<std::vector<uint64_t>> ShardWorkerClient::SupportOfMany(
    const std::string& dataset_id, std::span<const Itemset> queries,
    const CancelToken* cancel) {
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t deadline_ms, DeadlineMsFor(cancel));
  shardwire::Writer w;
  w.PutString(dataset_id);
  w.PutU32(deadline_ms);
  std::string payload = std::move(w).Take();
  payload += shardwire::EncodeItemsets(queries);
  PRIVBASIS_ASSIGN_OR_RETURN(
      shardwire::Frame response,
      Call(shardwire::FrameType::kSupportOfMany, std::move(payload),
           net::DeadlineAfterMs(deadline_ms > 0
                                    ? deadline_ms + kTransportSlackMs
                                    : kDefaultCallMs)));
  shardwire::Reader r(response.payload);
  PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint64_t> counts, r.GetU64Vec());
  PRIVBASIS_RETURN_NOT_OK(r.ExpectEnd());
  return counts;
}

namespace {

/// Fans `fn(worker_index)` across all workers on the global pool and
/// returns per-worker results in worker order, or the first failure in
/// worker order (deterministic regardless of completion order).
template <typename T>
Result<std::vector<T>> ScatterToWorkers(
    size_t num_workers, const std::function<Result<T>(size_t)>& fn) {
  if (num_workers == 0) {
    return Status::Internal("remote shard executor has no workers");
  }
  std::vector<std::optional<Result<T>>> slots(num_workers);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    tasks.push_back([&, i] { slots[i].emplace(fn(i)); });
  }
  ThreadPool::Global().RunAll(tasks, num_workers);
  std::vector<T> out;
  out.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    if (!slots[i]->ok()) return slots[i]->status();
    out.push_back(std::move(*slots[i]).value());
  }
  return out;
}

Status MergeInto(std::vector<uint64_t>* acc,
                 const std::vector<uint64_t>& delta) {
  if (acc->size() != delta.size()) {
    return Status::Unavailable(
        "shard worker partial size mismatch: " + std::to_string(acc->size()) +
        " vs " + std::to_string(delta.size()));
  }
  for (size_t i = 0; i < delta.size(); ++i) (*acc)[i] += delta[i];
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<uint64_t>>> RemoteShardExecutor::BasisBinCounts(
    const BasisSet& basis_set, const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<std::vector<uint64_t>>> partials,
      (ScatterToWorkers<std::vector<std::vector<uint64_t>>>(
          workers_.size(), [&](size_t i) {
            return workers_[i]->BasisBins(dataset_id_, basis_set, cancel);
          })));
  std::vector<std::vector<uint64_t>> merged = std::move(partials[0]);
  for (size_t i = 1; i < partials.size(); ++i) {
    if (partials[i].size() != merged.size()) {
      return Status::Unavailable("shard worker bin width mismatch");
    }
    for (size_t b = 0; b < merged.size(); ++b) {
      PRIVBASIS_RETURN_NOT_OK(MergeInto(&merged[b], partials[i][b]));
    }
  }
  return merged;
}

Result<std::vector<uint64_t>> RemoteShardExecutor::PairSupports(
    const std::vector<Item>& items, const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> partials,
      (ScatterToWorkers<std::vector<uint64_t>>(
          workers_.size(), [&](size_t i) {
            return workers_[i]->PairSupports(dataset_id_, items, cancel);
          })));
  std::vector<uint64_t> merged = std::move(partials[0]);
  for (size_t i = 1; i < partials.size(); ++i) {
    PRIVBASIS_RETURN_NOT_OK(MergeInto(&merged, partials[i]));
  }
  return merged;
}

Result<std::vector<uint64_t>> RemoteShardExecutor::SupportOfMany(
    std::span<const Itemset> queries, const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> partials,
      (ScatterToWorkers<std::vector<uint64_t>>(
          workers_.size(), [&](size_t i) {
            return workers_[i]->SupportOfMany(dataset_id_, queries, cancel);
          })));
  std::vector<uint64_t> merged = std::move(partials[0]);
  for (size_t i = 1; i < partials.size(); ++i) {
    PRIVBASIS_RETURN_NOT_OK(MergeInto(&merged, partials[i]));
  }
  return merged;
}

Result<std::vector<uint64_t>> RemoteShardExecutor::ItemSupports(
    const CancelToken* cancel) const {
  PRIVBASIS_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> partials,
      (ScatterToWorkers<std::vector<uint64_t>>(
          workers_.size(), [&](size_t i) {
            return workers_[i]->ItemSupports(dataset_id_, cancel);
          })));
  std::vector<uint64_t> merged = std::move(partials[0]);
  for (size_t i = 1; i < partials.size(); ++i) {
    PRIVBASIS_RETURN_NOT_OK(MergeInto(&merged, partials[i]));
  }
  return merged;
}

}  // namespace privbasis
