#include "shard/worker.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "core/basis_freq.h"
#include "core/privbasis.h"

namespace privbasis {

namespace {

/// Response-write bound: large enough for a worst-case bin payload over
/// a loopback link, small enough that a wedged coordinator frees the
/// connection thread.
constexpr int64_t kWriteDeadlineMs = 60'000;
/// Once a frame header starts arriving, the rest must follow promptly.
constexpr int64_t kReadDeadlineMs = 60'000;
/// Idle poll slice between stop-flag checks.
constexpr int64_t kPollMs = 200;

}  // namespace

const VerticalIndex& ShardWorker::LoadedShard::Index() {
  std::call_once(index_once, [&] {
    index = std::make_unique<VerticalIndex>(db);
  });
  return *index;
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Start(
    const ShardWorkerOptions& options) {
  PRIVBASIS_ASSIGN_OR_RETURN(net::Fd listen_fd,
                             net::ListenTcp(options.host, options.port));
  PRIVBASIS_ASSIGN_OR_RETURN(uint16_t port, net::LocalPort(listen_fd));
  auto worker = std::unique_ptr<ShardWorker>(
      new ShardWorker(options, std::move(listen_fd), port));
  worker->accept_thread_ = std::thread([w = worker.get()] { w->AcceptLoop(); });
  return worker;
}

ShardWorker::ShardWorker(const ShardWorkerOptions& options, net::Fd listen_fd,
                         uint16_t port)
    : options_(options), listen_fd_(std::move(listen_fd)), port_(port) {}

ShardWorker::~ShardWorker() { Stop(); }

void ShardWorker::Stop() {
  if (stop_.exchange(true)) {
    // Second caller still waits for the accept thread if a racing first
    // caller has not joined it yet; thread::join itself is not reentrant.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // The accept loop polls in kPollMs slices and re-checks the stop flag,
  // so it exits within one slice; joining it BEFORE closing the listener
  // keeps the raw-fd read in AcceptWithDeadline race-free.
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Close();
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    // Tear down live connections: in-flight ops finish their scan but
    // fail on the response write, so the coordinator sees kUnavailable.
    for (int fd : live_conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

size_t ShardWorker::NumLoadedShards() const {
  MutexLock lock(mu_);
  return shards_.size();
}

void ShardWorker::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<net::Fd> conn =
        net::AcceptWithDeadline(listen_fd_, net::DeadlineAfterMs(kPollMs));
    if (!conn.ok()) {
      // Listener closed (Stop) or transient accept failure; re-check the
      // stop flag either way.
      if (stop_.load(std::memory_order_relaxed)) return;
      continue;
    }
    if (!conn->valid()) continue;  // poll slice expired, no connection
    MutexLock lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) return;
    live_conn_fds_.push_back(conn->get());
    conn_threads_.emplace_back(
        [this, fd = std::move(*conn)]() mutable { HandleConnection(std::move(fd)); });
  }
}

void ShardWorker::HandleConnection(net::Fd conn) {
  const int raw_fd = conn.get();
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<bool> readable =
        net::PollReadable(conn, net::DeadlineAfterMs(kPollMs));
    if (!readable.ok()) break;
    if (!*readable) continue;  // idle slice; re-check stop flag
    Result<shardwire::Frame> request =
        shardwire::ReadFrame(conn, net::DeadlineAfterMs(kReadDeadlineMs));
    if (!request.ok()) break;  // clean disconnect, torn or corrupt frame
    shardwire::Frame response = HandleFrame(*request);
    Status written =
        shardwire::WriteFrame(conn, response.type, response.payload,
                              net::DeadlineAfterMs(kWriteDeadlineMs));
    if (!written.ok()) break;
  }
  MutexLock lock(mu_);
  live_conn_fds_.erase(
      std::remove(live_conn_fds_.begin(), live_conn_fds_.end(), raw_fd),
      live_conn_fds_.end());
}

shardwire::Frame ShardWorker::HandleFrame(const shardwire::Frame& request) {
  Result<std::string> payload = HandleOp(request);
  if (payload.ok()) {
    return shardwire::Frame{shardwire::FrameType::kOk,
                            std::move(payload).value()};
  }
  return shardwire::Frame{shardwire::FrameType::kError,
                          shardwire::EncodeError(payload.status())};
}

Result<std::shared_ptr<ShardWorker::LoadedShard>> ShardWorker::FindShard(
    const std::string& id) {
  MutexLock lock(mu_);
  auto it = shards_.find(id);
  if (it == shards_.end()) {
    return Status::NotFound("no shard loaded for dataset '" + id + "'");
  }
  return it->second;
}

Result<std::string> ShardWorker::HandleOp(const shardwire::Frame& request) {
  using shardwire::FrameType;
  shardwire::Reader reader(request.payload);
  switch (request.type) {
    case FrameType::kPing: {
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      return std::string();
    }
    case FrameType::kLoadShard: {
      PRIVBASIS_ASSIGN_OR_RETURN(std::string id, reader.GetString());
      PRIVBASIS_ASSIGN_OR_RETURN(std::string blob, reader.GetString());
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      PRIVBASIS_ASSIGN_OR_RETURN(TransactionDatabase db,
                                 shardwire::DecodeDatabase(blob));
      auto loaded = std::make_shared<LoadedShard>(std::move(db));
      MutexLock lock(mu_);
      shards_[id] = std::move(loaded);  // reload replaces (re-registration)
      return std::string();
    }
    case FrameType::kDropShard: {
      PRIVBASIS_ASSIGN_OR_RETURN(std::string id, reader.GetString());
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      MutexLock lock(mu_);
      shards_.erase(id);  // dropping an unknown id is a no-op, like Evict
      return std::string();
    }
    case FrameType::kItemSupports:
    case FrameType::kPairSupports:
    case FrameType::kBasisBins:
    case FrameType::kSupportOfMany:
      break;  // counting ops, handled below
    default:
      return Status::InvalidArgument(
          "unexpected shard frame type " +
          std::to_string(static_cast<int>(request.type)));
  }

  // Counting ops share a prefix: dataset id + deadline_ms (0 = none),
  // from which the coordinator's remaining per-query budget becomes this
  // scan's CancelToken.
  PRIVBASIS_ASSIGN_OR_RETURN(std::string id, reader.GetString());
  PRIVBASIS_ASSIGN_OR_RETURN(uint32_t deadline_ms, reader.GetU32());
  PRIVBASIS_ASSIGN_OR_RETURN(std::shared_ptr<LoadedShard> shard,
                             FindShard(id));
  std::optional<CancelToken> token;
  if (deadline_ms > 0) {
    token.emplace(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms));
  }
  const CancelToken* cancel = token ? &*token : nullptr;
  // Deterministic test hook: lets the kill-mid-query harness park an op
  // here (sleep), kill the process (crash), or fail it (error) before
  // any counting happens.
  const failpoint::Action fp = failpoint::Hit("shard_worker_op");
  if (fp.kind == failpoint::Action::Kind::kError ||
      fp.kind == failpoint::Action::Kind::kTorn) {
    return Status::IoError("shard worker op failed (injected fault)");
  }

  switch (request.type) {
    case shardwire::FrameType::kItemSupports: {
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      shardwire::Writer w;
      w.PutU64Vec(shard->db.ItemSupports());
      return std::move(w).Take();
    }
    case shardwire::FrameType::kPairSupports: {
      PRIVBASIS_ASSIGN_OR_RETURN(std::vector<uint32_t> raw_items,
                                 reader.GetU32Vec());
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      std::vector<Item> items(raw_items.begin(), raw_items.end());
      std::vector<uint64_t> counts =
          CountPairSupports(shard->db, items, cancel);
      if (IsCancelled(cancel)) {
        return Status::Cancelled("shard pair counting cancelled mid-scan");
      }
      shardwire::Writer w;
      w.PutU64Vec(counts);
      return std::move(w).Take();
    }
    case shardwire::FrameType::kBasisBins: {
      PRIVBASIS_ASSIGN_OR_RETURN(BasisSet basis_set,
                                 shardwire::DecodeBasisSet(reader));
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      if (basis_set.Length() > 20) {
        return Status::InvalidArgument(
            "shard basis length exceeds hard cap 20");
      }
      PRIVBASIS_ASSIGN_OR_RETURN(
          std::vector<std::vector<uint64_t>> bins,
          CountBasisBins(shard->db, basis_set, options_.num_threads, cancel));
      return shardwire::EncodeU64Vecs(bins);
    }
    case shardwire::FrameType::kSupportOfMany: {
      PRIVBASIS_ASSIGN_OR_RETURN(std::vector<Itemset> queries,
                                 shardwire::DecodeItemsets(reader));
      PRIVBASIS_RETURN_NOT_OK(reader.ExpectEnd());
      std::vector<uint64_t> counts = shard->Index().SupportOfMany(
          queries, options_.num_threads, cancel);
      if (IsCancelled(cancel)) {
        return Status::Cancelled("shard batch support cancelled mid-scan");
      }
      shardwire::Writer w;
      w.PutU64Vec(counts);
      return std::move(w).Take();
    }
    default:
      return Status::Internal("unreachable shard op");
  }
}

}  // namespace privbasis
