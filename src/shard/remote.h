// RemoteShardExecutor: scatter-gather CountExecutor over privbasis_shardd
// worker processes.
//
// The coordinator keeps one persistent connection per worker
// (ShardWorkerClient, reconnect-on-demand, calls serialized per
// connection) and fans each counting op across all workers on the
// global pool, merging the exact integer partials in worker order.
//
// Failure semantics are fail-closed by construction: any worker that
// cannot answer — dead process, torn connection, expired deadline —
// fails the whole op with kUnavailable (or the worker's own status,
// e.g. kCancelled), never a partial count. The engine then aborts the
// query after its BudgetLease was acquired, which charges the FULL ε
// reservation — a killed worker can lose a query, never budget.
#ifndef PRIVBASIS_SHARD_REMOTE_H_
#define PRIVBASIS_SHARD_REMOTE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/cancel.h"
#include "common/net.h"
#include "common/status.h"
#include "core/count_exec.h"
#include "shard/wire.h"

namespace privbasis {

/// "host:port" → parts. Bare "port" defaults the host to 127.0.0.1.
struct WorkerAddr {
  std::string host;
  uint16_t port = 0;
};
Result<WorkerAddr> ParseWorkerAddr(const std::string& spec);

/// One coordinator-side connection to a shard worker. Thread-safe: calls
/// are serialized on the connection (the executor's fan-out is across
/// workers, not within one). Connects lazily and reconnects after any
/// transport error.
class ShardWorkerClient {
 public:
  explicit ShardWorkerClient(WorkerAddr addr) : addr_(std::move(addr)) {}

  const WorkerAddr& addr() const { return addr_; }

  /// Liveness probe (used at server start and by harnesses).
  Status Ping(int64_t timeout_ms);

  /// Ships one shard slice; replaces any slice already loaded under
  /// `dataset_id`.
  Status LoadShard(const std::string& dataset_id,
                   const TransactionDatabase& shard);
  /// Best-effort unload (mirrors dataset eviction).
  Status DropShard(const std::string& dataset_id);

  // Counting ops; `cancel`'s remaining wall time (when it has a
  // deadline) propagates as the request's deadline_ms.
  Result<std::vector<uint64_t>> ItemSupports(const std::string& dataset_id,
                                             const CancelToken* cancel);
  Result<std::vector<uint64_t>> PairSupports(const std::string& dataset_id,
                                             const std::vector<Item>& items,
                                             const CancelToken* cancel);
  Result<std::vector<std::vector<uint64_t>>> BasisBins(
      const std::string& dataset_id, const BasisSet& basis_set,
      const CancelToken* cancel);
  Result<std::vector<uint64_t>> SupportOfMany(const std::string& dataset_id,
                                              std::span<const Itemset> queries,
                                              const CancelToken* cancel);

 private:
  /// One request/response exchange. Transport failures close the
  /// connection and surface as kUnavailable; kError frames decode to
  /// the worker's own status.
  Result<shardwire::Frame> Call(shardwire::FrameType type,
                                std::string payload, net::Deadline deadline);
  /// Shared header of counting requests; fails kCancelled when the
  /// token's deadline has already passed.
  Result<uint32_t> DeadlineMsFor(const CancelToken* cancel) const;

  WorkerAddr addr_;
  Mutex mu_;
  net::Fd conn_ PB_GUARDED_BY(mu_);
};

/// CountExecutor over one worker per shard, bound to one dataset id.
class RemoteShardExecutor : public CountExecutor {
 public:
  RemoteShardExecutor(std::string dataset_id,
                      std::vector<std::shared_ptr<ShardWorkerClient>> workers)
      : dataset_id_(std::move(dataset_id)), workers_(std::move(workers)) {}

  size_t NumShards() const override { return workers_.size(); }

  Result<std::vector<std::vector<uint64_t>>> BasisBinCounts(
      const BasisSet& basis_set, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> PairSupports(
      const std::vector<Item>& items, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> SupportOfMany(
      std::span<const Itemset> queries,
      const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> ItemSupports(
      const CancelToken* cancel) const override;

 private:
  std::string dataset_id_;
  std::vector<std::shared_ptr<ShardWorkerClient>> workers_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_SHARD_REMOTE_H_
