// LocalShardExecutor: in-process scatter-gather CountExecutor over a
// ShardedDatabase.
//
// Each op fans one task per shard onto the global pool (RunAll) and
// merges the per-shard integer partials in shard index order. Shard
// scans may themselves call ParallelFor; the pool runs nested regions
// inline on the worker, so fan-out stays bounded. Merging integer
// counts is associative and the shard boundaries depend only on
// (N, num_shards), so results are bit-identical to the unsharded scan
// at every shard and thread count.
#ifndef PRIVBASIS_SHARD_SHARD_EXEC_H_
#define PRIVBASIS_SHARD_SHARD_EXEC_H_

#include <memory>

#include "core/count_exec.h"
#include "shard/sharded_db.h"

namespace privbasis {

class LocalShardExecutor : public CountExecutor {
 public:
  /// `num_threads` bounds the per-shard inner scans (0 = the
  /// PRIVBASIS_THREADS env knob); the shard fan-out itself uses the same
  /// bound.
  explicit LocalShardExecutor(std::shared_ptr<const ShardedDatabase> shards,
                              size_t num_threads = 0)
      : shards_(std::move(shards)), num_threads_(num_threads) {}

  size_t NumShards() const override { return shards_->NumShards(); }

  Result<std::vector<std::vector<uint64_t>>> BasisBinCounts(
      const BasisSet& basis_set, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> PairSupports(
      const std::vector<Item>& items, const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> SupportOfMany(
      std::span<const Itemset> queries,
      const CancelToken* cancel) const override;
  Result<std::vector<uint64_t>> ItemSupports(
      const CancelToken* cancel) const override;

  const ShardedDatabase& sharded_db() const { return *shards_; }

 private:
  std::shared_ptr<const ShardedDatabase> shards_;
  size_t num_threads_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_SHARD_SHARD_EXEC_H_
