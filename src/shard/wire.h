// Shard wire protocol: length-prefixed binary frames between the
// coordinator (privbasis_server --shard-workers) and shard worker
// processes (privbasis_shardd), over common/net TCP.
//
// Frame layout (all integers little-endian):
//
//   magic   u32  'PBSH'
//   version u8   kWireVersion
//   type    u8   FrameType
//   pad     u16  0
//   len     u32  payload byte count (≤ kMaxPayloadBytes)
//   crc     u32  CRC-32 of the payload (common/crc32.h)
//   payload len bytes
//
// Counting requests carry the dataset id and a deadline_ms (0 = none);
// the worker arms a CancelToken::AfterMs from it, which is how the
// coordinator's per-query deadline propagates to every shard scan.
// Responses are kOk with an op-specific payload of exact integer
// counts, or kError carrying (StatusCode, message) — the coordinator
// resurfaces that status verbatim, so a worker-side kCancelled stays a
// 408 and a dead worker becomes kUnavailable (fail closed: the engine's
// aborted lease then charges the full ε reservation).
#ifndef PRIVBASIS_SHARD_WIRE_H_
#define PRIVBASIS_SHARD_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "core/basis.h"
#include "data/itemset.h"
#include "data/transaction_db.h"

namespace privbasis::shardwire {

inline constexpr uint32_t kMagic = 0x48534250;  // "PBSH" little-endian
inline constexpr uint8_t kWireVersion = 1;
/// Shard slices dominate payload size; 1 GiB bounds a hostile length
/// field without constraining any realistic dataset.
inline constexpr size_t kMaxPayloadBytes = size_t{1} << 30;

enum class FrameType : uint8_t {
  // Requests.
  kPing = 1,
  kLoadShard = 2,
  kDropShard = 3,
  kItemSupports = 4,
  kPairSupports = 5,
  kBasisBins = 6,
  kSupportOfMany = 7,
  // Responses.
  kOk = 32,
  kError = 33,
};

struct Frame {
  FrameType type;
  std::string payload;
};

/// Writes one frame before `deadline`.
Status WriteFrame(const net::Fd& fd, FrameType type,
                  std::string_view payload, net::Deadline deadline);

/// Reads one frame before `deadline`. Orderly EOF before the first
/// header byte returns kNotFound("peer closed") so server loops can
/// tell a clean disconnect from a torn frame (kIoError) or a corrupt
/// one (kInvalidArgument on bad magic/version/crc).
Result<Frame> ReadFrame(const net::Fd& fd, net::Deadline deadline);

/// Append-only payload encoder.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// u32 length + raw bytes.
  void PutString(std::string_view s);
  /// u32 count + u32 elements.
  void PutU32Vec(const std::vector<uint32_t>& v);
  /// u32 count + u64 elements.
  void PutU64Vec(const std::vector<uint64_t>& v);

  std::string Take() && { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload decoder: every getter fails with
/// kInvalidArgument on truncation instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();
  Result<std::vector<uint32_t>> GetU32Vec();
  Result<std::vector<uint64_t>> GetU64Vec();

  /// Fails unless the whole payload was consumed (strictness mirrors
  /// the JSON wire layer's unknown-key rejection).
  Status ExpectEnd() const;

 private:
  Status Need(size_t bytes) const;

  std::string_view data_;
  size_t pos_ = 0;
};

// --- op payload codecs --------------------------------------------------

/// CSR-serializes a shard slice (universe, offsets, items).
std::string EncodeDatabase(const TransactionDatabase& db);
Result<TransactionDatabase> DecodeDatabase(std::string_view payload);

std::string EncodeBasisSet(const BasisSet& basis_set);
Result<BasisSet> DecodeBasisSet(Reader& reader);

std::string EncodeItemsets(std::span<const Itemset> sets);
Result<std::vector<Itemset>> DecodeItemsets(Reader& reader);

/// Nested u64 vectors (the BasisBins response): u32 count + vectors.
std::string EncodeU64Vecs(const std::vector<std::vector<uint64_t>>& vecs);
Result<std::vector<std::vector<uint64_t>>> DecodeU64Vecs(
    std::string_view payload);

/// kError payload: u32 StatusCode + message.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload);

}  // namespace privbasis::shardwire

#endif  // PRIVBASIS_SHARD_WIRE_H_
