// ShardWorker: the serving loop of a privbasis_shardd process.
//
// Holds shard slices pushed by the coordinator (kLoadShard), keyed by
// dataset id, and answers exact counting requests over them. One accept
// thread plus one thread per coordinator connection; every counting op
// arms a CancelToken from the request's deadline_ms, so the
// coordinator's remaining per-query budget bounds each shard scan.
//
// The worker is deliberately privacy-blind: it only ever computes exact
// integer counts over its slice. All randomness, budget accounting, and
// release assembly stay on the coordinator — a worker crash can
// therefore never leak ε, only fail a query (which the coordinator
// charges in full, fail closed).
#ifndef PRIVBASIS_SHARD_WORKER_H_
#define PRIVBASIS_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/net.h"
#include "common/status.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "shard/wire.h"

namespace privbasis {

struct ShardWorkerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port — read it back with port().
  uint16_t port = 0;
  /// Scan parallelism per op; 0 = the PRIVBASIS_THREADS env knob.
  size_t num_threads = 0;
};

class ShardWorker {
 public:
  /// Binds and spawns the accept thread. The returned worker serves
  /// until Stop() (or destruction).
  static Result<std::unique_ptr<ShardWorker>> Start(
      const ShardWorkerOptions& options);

  ~ShardWorker();
  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  uint16_t port() const { return port_; }

  /// Stops accepting, tears down live connections (in-flight ops fail
  /// on their response write) and joins all threads. Idempotent.
  void Stop();

  /// Number of loaded shard slices (tests).
  size_t NumLoadedShards() const;

 private:
  struct LoadedShard {
    explicit LoadedShard(TransactionDatabase database)
        : db(std::move(database)) {}
    TransactionDatabase db;
    std::once_flag index_once;
    std::unique_ptr<VerticalIndex> index;
    const VerticalIndex& Index();
  };

  ShardWorker(const ShardWorkerOptions& options, net::Fd listen_fd,
              uint16_t port);

  void AcceptLoop();
  void HandleConnection(net::Fd conn);
  /// Dispatches one request frame; returns the response frame to send.
  shardwire::Frame HandleFrame(const shardwire::Frame& request);
  Result<std::string> HandleOp(const shardwire::Frame& request);
  Result<std::shared_ptr<LoadedShard>> FindShard(const std::string& id);

  ShardWorkerOptions options_;
  net::Fd listen_fd_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<LoadedShard>> shards_
      PB_GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ PB_GUARDED_BY(mu_);
  std::vector<int> live_conn_fds_ PB_GUARDED_BY(mu_);
};

}  // namespace privbasis

#endif  // PRIVBASIS_SHARD_WORKER_H_
