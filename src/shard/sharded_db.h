// ShardedDatabase: horizontal partition of a TransactionDatabase.
//
// Transactions are split into N contiguous ranges [n·s/N, n·(s+1)/N);
// each shard owns its own TransactionDatabase slice (with the parent's
// item universe, so per-shard ItemSupports line up index-for-index) and
// a lazily built VerticalIndex. Because every quantity the mechanisms
// consume is an exact integer count, per-shard partials merge by plain
// addition — the shard count is an execution detail that never shows up
// in results (tests/shard_test.cc pins this bit for bit).
//
// This type is the in-process half of the scatter-gather story; the
// same slices are what the coordinator ships to privbasis_shardd worker
// processes (shard/wire.h).
#ifndef PRIVBASIS_SHARD_SHARDED_DB_H_
#define PRIVBASIS_SHARD_SHARDED_DB_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"

namespace privbasis {

class ShardedDatabase {
 public:
  /// Partitions `db` into `num_shards` contiguous slices. Shard counts
  /// above the transaction count are allowed (the tail shards are
  /// empty). Fails only on num_shards == 0.
  static Result<ShardedDatabase> Create(const TransactionDatabase& db,
                                        size_t num_shards);

  size_t NumShards() const { return shards_.size(); }

  /// The slice owned by shard `s`.
  const TransactionDatabase& shard(size_t s) const { return shards_[s]; }

  /// Shard `s`'s VerticalIndex, built on first use (one scan of the
  /// slice) and memoized. Thread-safe; concurrent first callers build
  /// once.
  const VerticalIndex& Index(size_t s) const;

  /// Total transactions across all shards (= the parent's N).
  size_t NumTransactions() const { return num_transactions_; }
  uint32_t UniverseSize() const { return universe_size_; }

 private:
  struct IndexCell {
    std::once_flag once;
    std::unique_ptr<VerticalIndex> index;
  };

  ShardedDatabase(std::vector<TransactionDatabase> shards,
                  size_t num_transactions, uint32_t universe_size);

  std::vector<TransactionDatabase> shards_;
  // unique_ptr cells: once_flag is immovable, the vector is not.
  std::vector<std::unique_ptr<IndexCell>> index_cells_;
  size_t num_transactions_ = 0;
  uint32_t universe_size_ = 0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_SHARD_SHARDED_DB_H_
