#include "engine/engine.h"

#include <utility>
#include <vector>

#include "core/amplified.h"
#include "core/association_rules.h"
#include "core/privbasis.h"
#include "core/threshold.h"

namespace privbasis {

namespace {

/// Deterministic, noise-free per-method preparation (cache fills and
/// preprocessing). Runs BEFORE the budget reservation: a failure here
/// has released nothing, so it must not charge the ledger — only
/// failures after noise could have been drawn trigger the lease's
/// fail-safe full charge.
struct PreparedQuery {
  PrivBasisOptions pb;
  std::shared_ptr<const TfRunner> tf_runner;
  // Keeps pb.exec alive for the whole run even if the dataset's
  // executor is swapped (AttachCountExecutor) mid-query.
  std::shared_ptr<const CountExecutor> exec;
};

Result<PreparedQuery> Prepare(const Dataset& dataset, const QuerySpec& spec) {
  PreparedQuery prepared;
  switch (spec.method) {
    case QueryMethod::kPrivBasis:
      prepared.pb = spec.pb;
      // The subsampled path must mine its margin on the subsample, so
      // only the full-data path takes the cached hint.
      if (spec.sampling_rate >= 1.0 && prepared.pb.fk1_support_hint == 0) {
        // The cached exact margin — the same data-dependent quantity
        // the mechanism would otherwise mine per call.
        PRIVBASIS_ASSIGN_OR_RETURN(
            prepared.pb.fk1_support_hint,
            dataset.MarginSupport(spec.k, prepared.pb.eta, spec.cancel));
      }
      // Thread the query's token into every mechanism scan — the
      // PrivBasis-level scans (fk1 mine, pair counting) and the final
      // BasisFreq pass each poll it once per work chunk.
      prepared.pb.cancel = spec.cancel;
      prepared.pb.basis_freq.cancel = spec.cancel;
      // Route counting scans through the dataset's scatter-gather
      // executor (nullptr when unsharded). The subsampled path scans a
      // fresh subsample database, which the dataset's shards don't
      // cover, so it stays on the direct path. The raw pointer is owned
      // by the Dataset's memoized cell, which outlives this run.
      if (spec.sampling_rate >= 1.0 && prepared.pb.exec == nullptr) {
        prepared.exec = dataset.count_executor();
        prepared.pb.exec = prepared.exec.get();
      }
      break;
    case QueryMethod::kTruncatedFrequency:
      PRIVBASIS_ASSIGN_OR_RETURN(prepared.tf_runner,
                                 dataset.Tf(spec.k, spec.tf, spec.cancel));
      break;
  }
  return prepared;
}

/// The PrivBasis family: plain top-k, subsampled, and the θ filter.
Result<PrivBasisResult> RunPb(const Dataset& dataset, const QuerySpec& spec,
                              const PrivBasisOptions& pb, Rng& rng,
                              PrivacyAccountant& run_ledger) {
  const TransactionDatabase& db = dataset.db();
  if (spec.sampling_rate < 1.0) {
    AmplifiedOptions amplified;
    amplified.sampling_rate = spec.sampling_rate;
    amplified.base = pb;
    return detail::RunPrivBasisSubsampledImpl(db, spec.k, spec.epsilon, rng,
                                              amplified, run_ledger);
  }
  return detail::RunPrivBasisImpl(db, spec.k, spec.epsilon, rng, pb,
                                  run_ledger);
}

}  // namespace

Result<Release> Engine::Run(const Dataset& dataset, const QuerySpec& spec) {
  Rng rng(spec.seed);
  return Run(dataset, spec, rng);
}

Result<Release> Engine::Run(const Dataset& dataset, const QuerySpec& spec,
                            Rng& rng) {
  PRIVBASIS_RETURN_NOT_OK(spec.Validate());
  const TransactionDatabase& db = dataset.db();
  if (db.NumTransactions() == 0 || db.UniverseSize() == 0) {
    return Status::InvalidArgument("empty database");
  }

  // All deterministic, noise-free setup happens before the reservation:
  // a failure up to this point charges nothing. That includes a token
  // that has already fired — refusing here is free, whereas the same
  // token firing after the Acquire below charges the full reservation.
  if (spec.cancel != nullptr) {
    PRIVBASIS_RETURN_NOT_OK(spec.cancel->Check());
  }
  PRIVBASIS_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(dataset, spec));

  // Reserve the query's budget before drawing any noise; if the
  // mechanism later fails, the lease's destructor charges the full
  // reservation (fail-safe — see engine/accountant.h).
  PRIVBASIS_ASSIGN_OR_RETURN(
      BudgetLease lease,
      dataset.accountant()->Acquire(spec.epsilon, spec.LedgerLabel()));
  // Every ε the mechanism spends is metered here, then committed to the
  // dataset ledger below — `epsilon_spent` is never ad-hoc arithmetic.
  PrivacyAccountant run_ledger(spec.epsilon);

  Release release;
  release.method = spec.method;
  release.epsilon_requested = spec.epsilon;

  switch (spec.method) {
    case QueryMethod::kPrivBasis: {
      PRIVBASIS_ASSIGN_OR_RETURN(
          PrivBasisResult result,
          RunPb(dataset, spec, prepared.pb, rng, run_ledger));
      if (spec.theta > 0.0) {
        detail::FilterByNoisyThreshold(spec.theta, db.NumTransactions(),
                                       &result.topk);
      }
      release.itemsets = std::move(result.topk);
      release.lambda = result.lambda;
      release.lambda2 = result.lambda2;
      release.basis_set = std::move(result.basis_set);
      break;
    }
    case QueryMethod::kTruncatedFrequency: {
      PRIVBASIS_ASSIGN_OR_RETURN(
          TfResult result,
          prepared.tf_runner->Run(spec.epsilon, rng, &run_ledger,
                                  spec.cancel));
      release.itemsets = std::move(result.released);
      break;
    }
  }

  // Commit the metered spend (≤ the reservation; the remainder is
  // released back to the dataset budget) with its itemized breakdown.
  // On a journaled dataset this is the durability point: a commit that
  // cannot be made durable fails the query (the in-memory ledger charged
  // the full reservation — fail closed, never fail open).
  release.epsilon_spent = run_ledger.spent_epsilon();
  PRIVBASIS_RETURN_NOT_OK(
      lease.Commit(release.epsilon_spent, run_ledger.entries()));
  release.epsilon_spent_total = dataset.accountant()->spent_epsilon();
  release.epsilon_remaining = dataset.accountant()->remaining_epsilon();

  if (spec.derive_rules) {
    // Post-processing on the released frequencies — no additional budget.
    PRIVBASIS_ASSIGN_OR_RETURN(
        release.rules,
        ExtractRules(release.itemsets, db.NumTransactions(),
                     spec.rule_options));
  }
  return release;
}

}  // namespace privbasis
