#include "engine/accountant.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "dp/budget.h"

namespace privbasis {

Accountant::Accountant(double total_epsilon) : total_(total_epsilon) {
  assert(total_epsilon > 0.0);
}

void Accountant::AttachJournal(std::shared_ptr<AccountantJournal> journal) {
  MutexLock lock(mu_);
  journal_ = std::move(journal);
}

Status Accountant::Restore(double spent, std::vector<Entry> entries) {
  if (!(spent >= 0.0) || std::isnan(spent)) {
    return Status::InvalidArgument("restored spend must be >= 0");
  }
  MutexLock lock(mu_);
  if (spent_ != 0.0 || reserved_ != 0.0 || !entries_.empty()) {
    return Status::FailedPrecondition(
        "Restore() on an accountant that already has activity");
  }
  // Deliberately no headroom check: a replayed ledger may legitimately
  // exceed the configured total (e.g. the budget was lowered between
  // runs). Serving then refuses every reservation — the conservative
  // outcome — instead of refusing to boot.
  spent_ = spent;
  entries_ = std::move(entries);
  return Status::OK();
}

Result<BudgetLease> Accountant::Acquire(double epsilon, std::string label) {
  if (!(epsilon > 0.0) || std::isinf(epsilon) || std::isnan(epsilon)) {
    return Status::InvalidArgument(
        "budget reservation must be positive and finite: " + label);
  }
  MutexLock lock(mu_);
  if (spent_ + reserved_ + epsilon > total_ * (1.0 + kBudgetTolerance)) {
    return Status::BudgetExhausted(
        "privacy budget exhausted by '" + label + "': spent " +
        std::to_string(spent_) + " + reserved " + std::to_string(reserved_) +
        " + " + std::to_string(epsilon) + " > total " +
        std::to_string(total_));
  }
  uint64_t txn = 0;
  if (journal_ != nullptr) {
    // Journal BEFORE granting: if the reserve record cannot be made
    // durable, the query is refused with the ledger untouched (429 on
    // ENOSPC, 500 on EIO) — never run a mechanism whose worst-case
    // charge could be forgotten by a crash.
    auto journaled = journal_->Reserve(epsilon, label);
    if (!journaled.ok()) return journaled.status();
    txn = *journaled;
  }
  reserved_ += epsilon;
  return BudgetLease(this, epsilon, std::move(label), txn);
}

double Accountant::spent_epsilon() const {
  MutexLock lock(mu_);
  return spent_;
}

double Accountant::remaining_epsilon() const {
  MutexLock lock(mu_);
  return total_ - spent_ - reserved_;
}

double Accountant::reserved_epsilon() const {
  MutexLock lock(mu_);
  return reserved_;
}

std::vector<Accountant::Entry> Accountant::ledger() const {
  MutexLock lock(mu_);
  return entries_;
}

Status Accountant::CommitReservation(double reserved, double actual,
                                     const std::string& label,
                                     std::vector<Entry> breakdown,
                                     uint64_t txn, bool aborted) {
  MutexLock lock(mu_);
  Status journal_status = Status::OK();
  if (journal_ != nullptr) {
    if (aborted) {
      // Best effort: replay charges an unresolved reservation in full
      // either way, so a lost abort record changes nothing.
      (void)journal_->Abort(txn);
    } else {
      journal_status = journal_->Commit(txn, actual, label);
      if (!journal_status.ok()) {
        // Fail closed: the durable ledger holds an unresolved
        // reservation that replay will charge in full, so the in-memory
        // ledger must match it — charge the reservation, not the
        // (smaller) actual, and surface the journal error to the query.
        actual = reserved;
        breakdown.clear();
      }
    }
  }
  reserved_ -= reserved;
  spent_ += actual;
  const std::string entry_label =
      journal_status.ok() ? label : label + " (journal failed)";
  if (breakdown.empty()) {
    entries_.push_back(Entry{entry_label, actual});
  } else {
    for (auto& entry : breakdown) {
      entry.label = label + "/" + entry.label;
      entries_.push_back(std::move(entry));
    }
  }
  return journal_status;
}

BudgetLease::BudgetLease(Accountant* accountant, double reserved,
                         std::string label, uint64_t txn)
    : accountant_(accountant),
      reserved_(reserved),
      label_(std::move(label)),
      txn_(txn) {}

BudgetLease::BudgetLease(BudgetLease&& other) noexcept
    : accountant_(std::exchange(other.accountant_, nullptr)),
      reserved_(other.reserved_),
      label_(std::move(other.label_)),
      txn_(other.txn_) {}

BudgetLease& BudgetLease::operator=(BudgetLease&& other) noexcept {
  if (this != &other) {
    if (accountant_ != nullptr) {
      (void)accountant_->CommitReservation(reserved_, reserved_,
                                           label_ + " (aborted)", {}, txn_,
                                           /*aborted=*/true);
    }
    accountant_ = std::exchange(other.accountant_, nullptr);
    reserved_ = other.reserved_;
    label_ = std::move(other.label_);
    txn_ = other.txn_;
  }
  return *this;
}

BudgetLease::~BudgetLease() {
  if (accountant_ != nullptr) {
    // Fail-safe: an uncommitted lease charges its full reservation.
    (void)accountant_->CommitReservation(reserved_, reserved_,
                                         label_ + " (aborted)", {}, txn_,
                                         /*aborted=*/true);
  }
}

Status BudgetLease::Commit(double actual,
                           std::vector<Accountant::Entry> breakdown) {
  if (accountant_ == nullptr) return Status::OK();
  actual = std::min(actual, reserved_);
  Status status = accountant_->CommitReservation(
      reserved_, actual, label_, std::move(breakdown), txn_,
      /*aborted=*/false);
  accountant_ = nullptr;
  return status;
}

}  // namespace privbasis
