#include "engine/accountant.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "dp/budget.h"

namespace privbasis {

Accountant::Accountant(double total_epsilon) : total_(total_epsilon) {
  assert(total_epsilon > 0.0);
}

Result<BudgetLease> Accountant::Acquire(double epsilon, std::string label) {
  if (!(epsilon > 0.0) || std::isinf(epsilon) || std::isnan(epsilon)) {
    return Status::InvalidArgument(
        "budget reservation must be positive and finite: " + label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spent_ + reserved_ + epsilon > total_ * (1.0 + kBudgetTolerance)) {
    return Status::BudgetExhausted(
        "privacy budget exhausted by '" + label + "': spent " +
        std::to_string(spent_) + " + reserved " + std::to_string(reserved_) +
        " + " + std::to_string(epsilon) + " > total " +
        std::to_string(total_));
  }
  reserved_ += epsilon;
  return BudgetLease(this, epsilon, std::move(label));
}

double Accountant::spent_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spent_;
}

double Accountant::remaining_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - spent_ - reserved_;
}

double Accountant::reserved_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

std::vector<Accountant::Entry> Accountant::ledger() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void Accountant::CommitReservation(double reserved, double actual,
                                   const std::string& label,
                                   std::vector<Entry> breakdown) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ -= reserved;
  spent_ += actual;
  if (breakdown.empty()) {
    entries_.push_back(Entry{label, actual});
  } else {
    for (auto& entry : breakdown) {
      entry.label = label + "/" + entry.label;
      entries_.push_back(std::move(entry));
    }
  }
}

BudgetLease::BudgetLease(Accountant* accountant, double reserved,
                         std::string label)
    : accountant_(accountant), reserved_(reserved), label_(std::move(label)) {}

BudgetLease::BudgetLease(BudgetLease&& other) noexcept
    : accountant_(std::exchange(other.accountant_, nullptr)),
      reserved_(other.reserved_),
      label_(std::move(other.label_)) {}

BudgetLease& BudgetLease::operator=(BudgetLease&& other) noexcept {
  if (this != &other) {
    if (accountant_ != nullptr) {
      accountant_->CommitReservation(reserved_, reserved_,
                                     label_ + " (aborted)", {});
    }
    accountant_ = std::exchange(other.accountant_, nullptr);
    reserved_ = other.reserved_;
    label_ = std::move(other.label_);
  }
  return *this;
}

BudgetLease::~BudgetLease() {
  if (accountant_ != nullptr) {
    // Fail-safe: an uncommitted lease charges its full reservation.
    accountant_->CommitReservation(reserved_, reserved_,
                                   label_ + " (aborted)", {});
  }
}

void BudgetLease::Commit(double actual,
                         std::vector<Accountant::Entry> breakdown) {
  if (accountant_ == nullptr) return;
  actual = std::min(actual, reserved_);
  accountant_->CommitReservation(reserved_, actual, label_,
                                 std::move(breakdown));
  accountant_ = nullptr;
}

}  // namespace privbasis
