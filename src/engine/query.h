// QuerySpec / Release: the request and response types of the Engine
// facade (engine/engine.h).
//
// A QuerySpec describes one private release end to end — method (PrivBasis
// or the TF baseline), top-k vs threshold mode, subsampling amplification,
// association-rule derivation, seed, and the advanced per-method options —
// and is validated in ONE place (Validate()), so every entry point (CLI,
// examples, experiment harness, tests) shares the same checks. A Release
// is the unified answer: the released itemsets (ready for
// eval/release_io), optional rules, and budget diagnostics read back from
// the dataset's Accountant ledger.
#ifndef PRIVBASIS_ENGINE_QUERY_H_
#define PRIVBASIS_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/tf.h"
#include "common/status.h"
#include "core/association_rules.h"
#include "core/basis.h"
#include "core/privbasis.h"

namespace privbasis {

/// Which private release mechanism serves the query.
enum class QueryMethod {
  kPrivBasis,           ///< the paper's Algorithm 3 (default)
  kTruncatedFrequency,  ///< the Bhaskar et al. KDD'10 baseline
};

/// Returns "pb" / "tf" — the CLI spelling and the default ledger label.
const char* QueryMethodName(QueryMethod method);

/// One query against a Dataset. Builder-style: every setter returns *this
/// so specs read as one chained expression:
///
///   QuerySpec().WithTopK(100).WithEpsilon(0.5).WithSeed(7)
///   QuerySpec().WithThreshold(0.02, /*k_cap=*/400).WithRules(0.6)
///   QuerySpec().WithMethod(QueryMethod::kTruncatedFrequency).WithTopK(50)
struct QuerySpec {
  QueryMethod method = QueryMethod::kPrivBasis;
  /// Top-k to release; in threshold mode, the candidate cap (the paper's
  /// k in the threshold → top-k reduction).
  size_t k = 100;
  /// Total privacy budget of this query (reserved from the dataset's
  /// Accountant; the committed spend never exceeds it).
  double epsilon = 1.0;
  /// Seed for the query's RNG stream (ignored by the Run overload that
  /// takes an external Rng).
  uint64_t seed = 42;
  /// > 0: threshold mode — keep only released itemsets whose noisy
  /// frequency clears theta (PrivBasis only; pure post-processing).
  double theta = 0.0;
  /// < 1: run on a Poisson subsample at this rate with the
  /// amplification-adjusted mechanism budget (PrivBasis only).
  double sampling_rate = 1.0;
  /// true: derive association rules from the release (post-processing,
  /// no extra budget). Thresholds in `rule_options`.
  bool derive_rules = false;
  RuleOptions rule_options;
  /// Advanced per-method tunables.
  PrivBasisOptions pb;
  TfOptions tf;
  /// Ledger label; empty = QueryMethodName(method).
  std::string label;
  /// Cooperative cancellation (common/cancel.h). In-process only — never
  /// serialized over the wire; the server arms one per request from the
  /// client's deadline_ms. The Engine checks it before reserving budget
  /// (a pre-lease refusal charges nothing) and threads it into every
  /// mechanism scan; a token firing after the reservation charges the
  /// FULL reservation via the aborted-lease path, because noise may
  /// already have been observed. The token must outlive the Run call.
  const CancelToken* cancel = nullptr;

  QuerySpec& WithMethod(QueryMethod m) {
    method = m;
    return *this;
  }
  QuerySpec& WithTopK(size_t top_k) {
    k = top_k;
    theta = 0.0;
    return *this;
  }
  QuerySpec& WithEpsilon(double eps) {
    epsilon = eps;
    return *this;
  }
  QuerySpec& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  QuerySpec& WithThreshold(double t, size_t k_cap) {
    theta = t;
    k = k_cap;
    return *this;
  }
  QuerySpec& WithAmplification(double q) {
    sampling_rate = q;
    return *this;
  }
  QuerySpec& WithRules(double min_confidence) {
    derive_rules = true;
    rule_options.min_confidence = min_confidence;
    return *this;
  }
  QuerySpec& WithLabel(std::string ledger_label) {
    label = std::move(ledger_label);
    return *this;
  }
  QuerySpec& WithCancel(const CancelToken* token) {
    cancel = token;
    return *this;
  }

  /// The label this query's spend is committed under.
  std::string LedgerLabel() const;

  /// Central option validation (satisfying every check the scattered
  /// entry points used to do ad hoc): k ≥ 1, ε > 0 and finite, PrivBasis
  /// α1+α2+α3 ≤ 1 with positive parts, η ≥ 1, θ ∈ [0, 1] (0 = no
  /// filter), sampling rate ∈ (0, 1], TF m ≥ 1, rule confidence
  /// ∈ (0, 1]. Returns kInvalidArgument with a usage-quality message on
  /// the first failure.
  Status Validate() const;
};

/// The unified answer to one Engine::Run call.
struct Release {
  QueryMethod method = QueryMethod::kPrivBasis;
  /// Released itemsets with noisy counts, best first — the format
  /// eval/release_io serializes and eval/metrics scores.
  std::vector<NoisyItemset> itemsets;
  /// Derived rules (empty unless the spec asked for them).
  std::vector<AssociationRule> rules;

  // Diagnostics (all derived from DP-released values — safe to expose):
  uint32_t lambda = 0;   ///< PrivBasis: sampled λ
  uint32_t lambda2 = 0;  ///< PrivBasis: pair-selection count
  BasisSet basis_set;    ///< PrivBasis: the basis set used

  /// Budget accounting, read back from the dataset's Accountant ledger.
  double epsilon_requested = 0.0;  ///< the reservation (spec.epsilon)
  double epsilon_spent = 0.0;      ///< committed by THIS query
  double epsilon_spent_total = 0.0;  ///< dataset cumulative after commit
  double epsilon_remaining = 0.0;    ///< dataset budget left
};

}  // namespace privbasis

#endif  // PRIVBASIS_ENGINE_QUERY_H_
