#include "engine/dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/env.h"
#include "core/batch_exec.h"
#include "data/dataset_io.h"
#include "fim/topk.h"
#include "shard/shard_exec.h"
#include "shard/sharded_db.h"

namespace privbasis {

Dataset::Dataset(std::shared_ptr<const TransactionDatabase> db,
                 Options options)
    : db_(std::move(db)),
      options_(options),
      accountant_(std::make_shared<Accountant>(options.total_epsilon)),
      resolved_shards_(options.num_shards != 0
                           ? options.num_shards
                           : static_cast<size_t>(NumShards())) {}

std::shared_ptr<Dataset> Dataset::Create(TransactionDatabase db,
                                         Options options) {
  return std::shared_ptr<Dataset>(new Dataset(
      std::make_shared<const TransactionDatabase>(std::move(db)), options));
}

Result<std::shared_ptr<Dataset>> Dataset::FromFimiFile(const std::string& path,
                                                       Options options) {
  PRIVBASIS_ASSIGN_OR_RETURN(LoadedDataset loaded, ReadFimiFile(path));
  return Create(std::move(loaded.db), options);
}

Result<std::shared_ptr<Dataset>> Dataset::FromProfile(
    const SyntheticProfile& profile, uint64_t seed, Options options) {
  PRIVBASIS_ASSIGN_OR_RETURN(TransactionDatabase db,
                             GenerateDataset(profile, seed));
  return Create(std::move(db), options);
}

std::shared_ptr<Dataset> Dataset::Borrow(const TransactionDatabase& db,
                                         Options options) {
  // Aliasing handle: shares the caller's storage, deletes nothing.
  return std::shared_ptr<Dataset>(new Dataset(
      std::shared_ptr<const TransactionDatabase>(&db,
                                                 [](const auto*) {}),
      options));
}

const DatasetStats& Dataset::Stats() const {
  MutexLock lock(stats_.mu);
  if (!stats_.built) {
    stats_builds_.fetch_add(1, std::memory_order_relaxed);
    stats_.value = ComputeDatasetStats(*db_);
    stats_.built = true;
  }
  // Safe to return by reference: the cell is a member (stable address)
  // and the value is never rewritten once built.
  return stats_.value;
}

std::shared_ptr<const VerticalIndex> Dataset::Index() const {
  MutexLock lock(index_.mu);
  if (!index_.built) {
    index_builds_.fetch_add(1, std::memory_order_relaxed);
    index_.value = std::make_shared<const VerticalIndex>(
        *db_, VerticalIndex::Options{.num_threads = options_.num_threads});
    index_.built = true;
  }
  return index_.value;
}

std::shared_ptr<const CountExecutor> Dataset::count_executor() const {
  MutexLock lock(executor_.mu);
  if (!executor_.built) {
    if (resolved_shards_ <= 1) {
      // Unsharded: mechanisms scan db() directly. Cache the nullptr so
      // repeated queries skip the shard-count check.
      executor_.value = nullptr;
    } else {
      shard_builds_.fetch_add(1, std::memory_order_relaxed);
      auto partitioned = ShardedDatabase::Create(*db_, resolved_shards_);
      // Create() fails only on zero shards, which resolved_shards_ can
      // never be; fall back to unsharded rather than crash regardless.
      if (partitioned.ok()) {
        executor_.value = std::make_shared<const LocalShardExecutor>(
            std::make_shared<const ShardedDatabase>(std::move(*partitioned)),
            options_.num_threads);
      } else {
        executor_.value = nullptr;
      }
    }
    executor_.built = true;
  }
  return executor_.value;
}

std::shared_ptr<const CountExecutor> Dataset::EnsureCountExecutor() const {
  std::shared_ptr<const CountExecutor> exec = count_executor();
  if (exec != nullptr) return exec;
  // Unsharded: adapt the direct-scan path. Build the index OUTSIDE the
  // executor lock (Index() takes its own cell lock).
  std::shared_ptr<const VerticalIndex> index = Index();
  MutexLock lock(executor_.mu);
  if (executor_.value == nullptr) {
    executor_.value = std::make_shared<const DirectCountExecutor>(
        db_, std::move(index), options_.num_threads);
    executor_.built = true;
  }
  return executor_.value;
}

void Dataset::AttachCountExecutor(std::shared_ptr<const CountExecutor> exec) {
  MutexLock lock(executor_.mu);
  executor_.value = std::move(exec);
  executor_.built = true;
}

size_t Dataset::shard_fanout() const {
  {
    MutexLock lock(executor_.mu);
    if (executor_.built) {
      return executor_.value != nullptr ? executor_.value->NumShards() : 1;
    }
  }
  // Not built yet: report what the lazy build would produce, without
  // forcing the (potentially expensive) partitioning from the admission
  // path.
  return resolved_shards_;
}

Result<uint64_t> Dataset::BuildMarginSupport(size_t k1,
                                             const CancelToken* cancel) const {
  auto cell = margins_.CellFor(k1);
  MutexLock lock(cell->mu);
  if (cell->built) return cell->value;
  margin_mines_.fetch_add(1, std::memory_order_relaxed);
  PRIVBASIS_ASSIGN_OR_RETURN(
      TopKResult top, MineTopK(*db_, k1, /*max_length=*/0,
                               options_.num_threads, cancel));
  cell->value = top.kth_support;
  cell->built = true;
  return cell->value;
}

Result<uint64_t> Dataset::MarginSupport(size_t k, double eta,
                                        const CancelToken* cancel) const {
  // Identical arithmetic to RunPrivBasisImpl's internal computation, so a
  // cache hit yields the bit-identical fk1 hint.
  const size_t k1 =
      static_cast<size_t>(std::ceil(static_cast<double>(k) * eta));
  return BuildMarginSupport(k1, cancel);
}

Result<std::shared_ptr<const GroundTruth>> Dataset::Truth(size_t k) const {
  auto cell = truths_.CellFor(k);
  MutexLock lock(cell->mu);
  if (cell->built) return cell->value;
  truth_mines_.fetch_add(1, std::memory_order_relaxed);

  // One shared implementation with eval/ground_truth.cc, attaching this
  // handle's VerticalIndex instead of building another. (Index() takes
  // the index cell's own lock — independent of this truth cell's.)
  PRIVBASIS_ASSIGN_OR_RETURN(
      GroundTruth truth,
      ComputeGroundTruth(*db_, k, Index(), options_.num_threads));
  // The one mining pass also warms the margin cells for η = 1.1/1.2 —
  // the keys MarginSupport would compute for those etas. Lock order is
  // truth cell → margin cell, and MarginSupport takes margin cells only,
  // so there is no cycle. A margin cell that lost the race to its own
  // miner keeps the mined value (both are the same exact statistic).
  if (!truth.topk.itemsets.empty()) {
    const size_t k11 =
        static_cast<size_t>(std::ceil(1.1 * static_cast<double>(k)));
    const size_t k12 =
        static_cast<size_t>(std::ceil(1.2 * static_cast<double>(k)));
    const std::pair<size_t, uint64_t> warm[] = {
        {k11, truth.fk1_support_eta11}, {k12, truth.fk1_support_eta12}};
    for (const auto& [k1, support] : warm) {
      auto margin_cell = margins_.CellFor(k1);
      MutexLock margin_lock(margin_cell->mu);
      if (!margin_cell->built) {
        margin_cell->value = support;
        margin_cell->built = true;
      }
    }
  }
  cell->value = std::make_shared<const GroundTruth>(std::move(truth));
  cell->built = true;
  return cell->value;
}

Dataset::TfKey Dataset::MakeTfKey(size_t k, const TfOptions& options) {
  return TfKey{k, options.m, options.explicit_limit, options.rho,
               static_cast<int>(options.selection)};
}

Result<std::shared_ptr<const TfRunner>> Dataset::Tf(
    size_t k, const TfOptions& options, const CancelToken* cancel) const {
  auto cell = tf_runners_.CellFor(MakeTfKey(k, options));
  MutexLock lock(cell->mu);
  if (cell->built) return cell->value;
  tf_builds_.fetch_add(1, std::memory_order_relaxed);
  PRIVBASIS_ASSIGN_OR_RETURN(TfRunner runner,
                             TfRunner::Create(*db_, k, options, cancel));
  cell->value = std::make_shared<const TfRunner>(std::move(runner));
  cell->built = true;
  return cell->value;
}

Dataset::CacheCounters Dataset::cache_counters() const {
  CacheCounters counters;
  counters.stats_builds = stats_builds_.load(std::memory_order_relaxed);
  counters.index_builds = index_builds_.load(std::memory_order_relaxed);
  counters.margin_mines = margin_mines_.load(std::memory_order_relaxed);
  counters.truth_mines = truth_mines_.load(std::memory_order_relaxed);
  counters.tf_builds = tf_builds_.load(std::memory_order_relaxed);
  counters.shard_builds = shard_builds_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace privbasis
