#include "engine/dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "data/dataset_io.h"
#include "fim/topk.h"

namespace privbasis {

Dataset::Dataset(std::shared_ptr<const TransactionDatabase> db,
                 Options options)
    : db_(std::move(db)),
      options_(options),
      accountant_(std::make_shared<Accountant>(options.total_epsilon)) {}

std::shared_ptr<Dataset> Dataset::Create(TransactionDatabase db,
                                         Options options) {
  return std::shared_ptr<Dataset>(new Dataset(
      std::make_shared<const TransactionDatabase>(std::move(db)), options));
}

Result<std::shared_ptr<Dataset>> Dataset::FromFimiFile(const std::string& path,
                                                       Options options) {
  PRIVBASIS_ASSIGN_OR_RETURN(LoadedDataset loaded, ReadFimiFile(path));
  return Create(std::move(loaded.db), options);
}

Result<std::shared_ptr<Dataset>> Dataset::FromProfile(
    const SyntheticProfile& profile, uint64_t seed, Options options) {
  PRIVBASIS_ASSIGN_OR_RETURN(TransactionDatabase db,
                             GenerateDataset(profile, seed));
  return Create(std::move(db), options);
}

std::shared_ptr<Dataset> Dataset::Borrow(const TransactionDatabase& db,
                                         Options options) {
  // Aliasing handle: shares the caller's storage, deletes nothing.
  return std::shared_ptr<Dataset>(new Dataset(
      std::shared_ptr<const TransactionDatabase>(&db,
                                                 [](const auto*) {}),
      options));
}

const DatasetStats& Dataset::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!stats_.has_value()) {
    ++counters_.stats_builds;
    stats_ = ComputeDatasetStats(*db_);
  }
  return *stats_;
}

const std::shared_ptr<const VerticalIndex>& Dataset::IndexLocked() const {
  if (index_ == nullptr) {
    ++counters_.index_builds;
    index_ = std::make_shared<const VerticalIndex>(
        *db_, VerticalIndex::Options{.num_threads = options_.num_threads});
  }
  return index_;
}

std::shared_ptr<const VerticalIndex> Dataset::Index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return IndexLocked();
}

Result<uint64_t> Dataset::MarginSupportLocked(size_t k1) const {
  auto it = margin_supports_.find(k1);
  if (it != margin_supports_.end()) return it->second;
  ++counters_.margin_mines;
  PRIVBASIS_ASSIGN_OR_RETURN(
      TopKResult top, MineTopK(*db_, k1, /*max_length=*/0,
                               options_.num_threads));
  margin_supports_.emplace(k1, top.kth_support);
  return top.kth_support;
}

Result<uint64_t> Dataset::MarginSupport(size_t k, double eta) const {
  // Identical arithmetic to RunPrivBasisImpl's internal computation, so a
  // cache hit yields the bit-identical fk1 hint.
  const size_t k1 =
      static_cast<size_t>(std::ceil(static_cast<double>(k) * eta));
  std::lock_guard<std::mutex> lock(mu_);
  return MarginSupportLocked(k1);
}

Result<std::shared_ptr<const GroundTruth>> Dataset::Truth(size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = truths_.find(k);
  if (it != truths_.end()) return it->second;
  ++counters_.truth_mines;

  // One shared implementation with eval/ground_truth.cc, attaching this
  // handle's VerticalIndex instead of building another.
  PRIVBASIS_ASSIGN_OR_RETURN(
      GroundTruth truth,
      ComputeGroundTruth(*db_, k, IndexLocked(), options_.num_threads));
  // The one mining pass also warms the margin cache for η = 1.1/1.2 —
  // the keys MarginSupport would compute for those etas.
  if (!truth.topk.itemsets.empty()) {
    const size_t k11 =
        static_cast<size_t>(std::ceil(1.1 * static_cast<double>(k)));
    const size_t k12 =
        static_cast<size_t>(std::ceil(1.2 * static_cast<double>(k)));
    margin_supports_.emplace(k11, truth.fk1_support_eta11);
    margin_supports_.emplace(k12, truth.fk1_support_eta12);
  }
  auto gt = std::make_shared<const GroundTruth>(std::move(truth));
  truths_.emplace(k, gt);
  return gt;
}

Dataset::TfKey Dataset::MakeTfKey(size_t k, const TfOptions& options) {
  return TfKey{k, options.m, options.explicit_limit, options.rho,
               static_cast<int>(options.selection)};
}

Result<std::shared_ptr<const TfRunner>> Dataset::Tf(
    size_t k, const TfOptions& options) const {
  const TfKey key = MakeTfKey(k, options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tf_runners_.find(key);
  if (it != tf_runners_.end()) return it->second;
  ++counters_.tf_builds;
  PRIVBASIS_ASSIGN_OR_RETURN(TfRunner runner,
                             TfRunner::Create(*db_, k, options));
  auto shared = std::make_shared<const TfRunner>(std::move(runner));
  tf_runners_.emplace(key, shared);
  return std::shared_ptr<const TfRunner>(std::move(shared));
}

Dataset::CacheCounters Dataset::cache_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace privbasis
