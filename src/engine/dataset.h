// Dataset: an immutable, shared_ptr-shared handle over one
// TransactionDatabase plus everything expensive that queries against it
// keep re-deriving — dataset statistics, the VerticalIndex, the exact
// top-k margin supports PrivBasis needs for its fk1 hint, full ground
// truth for evaluation, and prepared TfRunner instances.
//
// All of it is built lazily and memoized thread-safely, so a service
// holding one Dataset pays the data-dependent setup cost ONCE and every
// subsequent Engine::Run pays only the mechanism cost. Locking is
// per-cache-entry: every entry (the stats, the index, each margin k1,
// each ground-truth k, each TF configuration) has its own build mutex,
// so concurrent COLD builds of *different* entries proceed in parallel —
// 16 clients first-touching a fresh handle through the query server do
// not serialize behind one another — while two racers on the SAME entry
// still build it exactly once (the second blocks, then reads). A failed
// build caches nothing; the next caller retries. The memoized
// quantities are exact data-dependent statistics, not noise draws, so
// caching changes nothing statistically: a warm query returns the
// bit-identical release a cold one would (tests/engine_test.cc enforces
// this).
//
// Each Dataset owns an Accountant — the privacy-budget ledger every query
// on this data draws from (engine/accountant.h).
#ifndef PRIVBASIS_ENGINE_DATASET_H_
#define PRIVBASIS_ENGINE_DATASET_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "baseline/tf.h"
#include "common/annotations.h"
#include "common/status.h"
#include "core/count_exec.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "engine/accountant.h"
#include "eval/ground_truth.h"

namespace privbasis {

/// Construction-time knobs of a Dataset handle. (A namespace-scope struct
/// rather than a nested one so it can appear as a `= {}` default argument
/// inside the class body.)
struct DatasetOptions {
  /// Total ε this dataset may ever spend across all queries.
  /// kUnlimited tracks spend without refusing any query.
  double total_epsilon = Accountant::kUnlimited;
  /// Parallelism for cache construction (index build, top-k mining);
  /// 0 = the PRIVBASIS_THREADS env knob.
  size_t num_threads = 0;
  /// In-process horizontal shard count for counting scans; 0 = the
  /// PRIVBASIS_SHARDS env knob (default 1 = unsharded). Never changes
  /// results — partial supports merge exactly (src/shard) — so this is
  /// purely an execution knob.
  size_t num_shards = 0;
};

class Dataset {
 public:
  using Options = DatasetOptions;

  /// Takes ownership of `db`.
  static std::shared_ptr<Dataset> Create(TransactionDatabase db,
                                         Options options = {});

  /// Loads a FIMI-format transaction file (data/dataset_io.h).
  static Result<std::shared_ptr<Dataset>> FromFimiFile(
      const std::string& path, Options options = {});

  /// Generates one of the paper's synthetic profiles (data/synthetic.h).
  static Result<std::shared_ptr<Dataset>> FromProfile(
      const SyntheticProfile& profile, uint64_t seed, Options options = {});

  /// Non-owning view over a caller-owned database, which must outlive the
  /// returned handle. Exists for harnesses and tests that already hold a
  /// TransactionDatabase by value; new code should prefer Create().
  static std::shared_ptr<Dataset> Borrow(const TransactionDatabase& db,
                                         Options options = {});

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  const TransactionDatabase& db() const { return *db_; }
  const Options& options() const { return options_; }

  /// The privacy-budget ledger all queries on this dataset draw from.
  const std::shared_ptr<Accountant>& accountant() const {
    return accountant_;
  }

  /// Memoized dataset statistics (N, |I|, density, ...).
  const DatasetStats& Stats() const;

  /// Memoized hybrid tid-list index (built on first use).
  std::shared_ptr<const VerticalIndex> Index() const;

  /// The scatter-gather executor queries on this dataset count through:
  /// the attached one (coordinator mode), else a lazily built in-process
  /// LocalShardExecutor when the effective shard count exceeds 1, else
  /// nullptr (unsharded — mechanisms scan `db()` directly). Memoized;
  /// the handle keeps the returned executor alive.
  std::shared_ptr<const CountExecutor> count_executor() const;

  /// Like count_executor(), but never nullptr: when the dataset is
  /// unsharded it lazily builds (and memoizes) a DirectCountExecutor
  /// over db() + Index() — the exact functions the mechanisms call when
  /// no executor is attached, so routing counts through it never
  /// changes a release bit. The batching layer wraps this so it can
  /// fuse scans regardless of fan-out.
  std::shared_ptr<const CountExecutor> EnsureCountExecutor() const;

  /// Installs an externally built executor (the server's coordinator
  /// attaches a RemoteShardExecutor over its worker fleet at dataset
  /// registration). Replaces any previously built/attached executor;
  /// meant to be called before the dataset serves queries.
  void AttachCountExecutor(std::shared_ptr<const CountExecutor> exec);

  /// Effective counting fan-out: the executor's shard count, or 1 when
  /// unsharded. The admission cost model divides predicted work by this.
  size_t shard_fanout() const;

  /// Memoized support of the ⌈η·k⌉-th most frequent itemset — the
  /// PrivBasis fk1 hint. Exactly the quantity the mechanism would mine
  /// internally, so warm and cold queries are bit-identical. `cancel` is
  /// per-call state for a COLD build only (a cancelled build caches
  /// nothing — the next caller retries); cache hits never poll it.
  Result<uint64_t> MarginSupport(size_t k, double eta,
                                 const CancelToken* cancel = nullptr) const;

  /// Memoized evaluation ground truth at `k`: the exact top-k, its
  /// Table 2(a) stats, both η-margin supports, and the shared Index().
  /// One mining pass also warms the MarginSupport cache for η = 1.1/1.2.
  Result<std::shared_ptr<const GroundTruth>> Truth(size_t k) const;

  /// Memoized TF preprocessing (top-k mining + explicit candidate set +
  /// support index) for one (k, TfOptions) configuration. `cancel` is a
  /// per-call parameter, never part of the cache key: it can abort a
  /// cold build (which then caches nothing), but a cached runner is
  /// shared by every later query regardless of their tokens.
  Result<std::shared_ptr<const TfRunner>> Tf(
      size_t k, const TfOptions& options,
      const CancelToken* cancel = nullptr) const;

  /// How many times each expensive cache entry was actually built —
  /// a second query on a warm Dataset must not move these, and N racers
  /// on one cold entry must move them by exactly one (tests and the
  /// bench_smoke warm/cold phases assert on them).
  struct CacheCounters {
    size_t stats_builds = 0;
    size_t index_builds = 0;
    size_t margin_mines = 0;
    size_t truth_mines = 0;
    size_t tf_builds = 0;
    size_t shard_builds = 0;
  };
  CacheCounters cache_counters() const;

 private:
  Dataset(std::shared_ptr<const TransactionDatabase> db, Options options);

  /// One lazily built cache entry with its own build lock. `value` is
  /// written exactly once, under `mu`, before `built` flips to true; a
  /// failed build leaves `built` false so the next caller retries.
  template <typename T>
  struct CacheCell {
    Mutex mu;
    bool built PB_GUARDED_BY(mu) = false;
    T value PB_GUARDED_BY(mu){};
  };

  /// Keyed cache entries: a small map mutex guards only the cell table
  /// (find-or-insert is O(log n) pointer work); the expensive build runs
  /// under the individual cell's lock, so different keys build in
  /// parallel.
  template <typename K, typename V>
  struct KeyedCache {
    Mutex map_mu;
    std::map<K, std::shared_ptr<CacheCell<V>>> cells PB_GUARDED_BY(map_mu);

    std::shared_ptr<CacheCell<V>> CellFor(const K& key) PB_EXCLUDES(map_mu) {
      MutexLock lock(map_mu);
      auto& cell = cells[key];
      if (cell == nullptr) cell = std::make_shared<CacheCell<V>>();
      return cell;
    }
  };

  /// Mines MineTopK(k1) into the k1 margin cell (no-op when built).
  Result<uint64_t> BuildMarginSupport(size_t k1,
                                      const CancelToken* cancel) const;

  using TfKey = std::tuple<size_t, size_t, uint64_t, double, int>;
  static TfKey MakeTfKey(size_t k, const TfOptions& options);

  std::shared_ptr<const TransactionDatabase> db_;
  Options options_;
  std::shared_ptr<Accountant> accountant_;

  /// options_.num_shards resolved against the PRIVBASIS_SHARDS env knob
  /// at construction (always ≥ 1).
  size_t resolved_shards_ = 1;

  mutable CacheCell<DatasetStats> stats_;
  mutable CacheCell<std::shared_ptr<const VerticalIndex>> index_;
  mutable CacheCell<std::shared_ptr<const CountExecutor>> executor_;
  mutable KeyedCache<size_t, uint64_t> margins_;  // k1 -> support
  mutable KeyedCache<size_t, std::shared_ptr<const GroundTruth>> truths_;
  mutable KeyedCache<TfKey, std::shared_ptr<const TfRunner>> tf_runners_;
  // Build counters are independent atomics: they are bumped inside
  // different cell locks, never one common one.
  mutable std::atomic<size_t> stats_builds_{0};
  mutable std::atomic<size_t> index_builds_{0};
  mutable std::atomic<size_t> margin_mines_{0};
  mutable std::atomic<size_t> truth_mines_{0};
  mutable std::atomic<size_t> tf_builds_{0};
  mutable std::atomic<size_t> shard_builds_{0};
};

}  // namespace privbasis

#endif  // PRIVBASIS_ENGINE_DATASET_H_
