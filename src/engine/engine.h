// Engine: the single public query facade of the library.
//
//   auto dataset = Dataset::FromProfile(SyntheticProfile::Mushroom(0.5), 42,
//                                       {.total_epsilon = 4.0});
//   auto release = Engine::Run(*dataset,
//                              QuerySpec().WithTopK(20).WithEpsilon(1.0));
//
// One call = one private release: the spec is validated centrally, the
// query's ε is reserved from the dataset's Accountant (overdraft →
// kBudgetExhausted before any noise is drawn), the mechanism runs against
// the dataset's memoized caches (so repeated queries skip the
// data-dependent setup), the metered spend is committed to the ledger,
// and the unified Release carries the itemsets, optional rules, and
// ledger-derived budget diagnostics.
//
// In the spirit of PIQL's success-tolerant facade, failure is a value:
// every outcome — invalid spec, exhausted budget, mechanism error — comes
// back as a Status the caller can route on, never an exception.
#ifndef PRIVBASIS_ENGINE_ENGINE_H_
#define PRIVBASIS_ENGINE_ENGINE_H_

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "engine/query.h"

namespace privbasis {

class Engine {
 public:
  /// Runs one query with a fresh RNG stream seeded from `spec.seed`.
  /// Deterministic: same dataset + same spec = bit-identical Release,
  /// warm or cold caches, sequential or concurrent.
  static Result<Release> Run(const Dataset& dataset, const QuerySpec& spec);

  /// Advanced overload threading a caller-owned RNG (`spec.seed` is
  /// ignored). Used by the sweep harness and statistical tests, which
  /// draw many releases from one continuing stream.
  static Result<Release> Run(const Dataset& dataset, const QuerySpec& spec,
                             Rng& rng);

  /// Convenience for shared handles.
  static Result<Release> Run(const std::shared_ptr<Dataset>& dataset,
                             const QuerySpec& spec) {
    if (dataset == nullptr) {
      return Status::InvalidArgument("null dataset handle");
    }
    return Run(*dataset, spec);
  }
};

}  // namespace privbasis

#endif  // PRIVBASIS_ENGINE_ENGINE_H_
