#include "engine/query.h"

#include <cmath>

namespace privbasis {

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kPrivBasis:
      return "pb";
    case QueryMethod::kTruncatedFrequency:
      return "tf";
  }
  return "unknown";
}

std::string QuerySpec::LedgerLabel() const {
  return label.empty() ? QueryMethodName(method) : label;
}

Status QuerySpec::Validate() const {
  if (k == 0) {
    return Status::InvalidArgument(theta > 0.0 ? "k_cap must be >= 1"
                                               : "k must be >= 1");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be > 0 and finite");
  }
  // !(θ ≥ 0) rather than θ < 0 so NaN is rejected too.
  if (!(theta >= 0.0) || theta > 1.0) {
    return Status::InvalidArgument(
        "theta must be in [0, 1] (0 = no threshold filter)");
  }
  if (!(sampling_rate > 0.0) || sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  if (derive_rules && (!(rule_options.min_confidence > 0.0) ||
                       rule_options.min_confidence > 1.0)) {
    return Status::InvalidArgument("rule min confidence must be in (0, 1]");
  }
  switch (method) {
    case QueryMethod::kPrivBasis:
      return ValidatePrivBasisOptions(k, epsilon, pb);
    case QueryMethod::kTruncatedFrequency:
      if (theta > 0.0) {
        return Status::InvalidArgument(
            "threshold mode is PrivBasis-only (TF has no noisy-count "
            "filter semantics)");
      }
      if (sampling_rate < 1.0) {
        return Status::InvalidArgument(
            "subsampling amplification is PrivBasis-only");
      }
      if (tf.m == 0) {
        return Status::InvalidArgument("TF itemset-length cap m must be >= 1");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown query method");
}

}  // namespace privbasis
