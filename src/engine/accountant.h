// Accountant: the per-dataset privacy-budget ledger behind the Engine.
//
// Sequential composition: mechanisms satisfying ε1-, ..., εm-DP compose to
// (Σεi)-DP, so a dataset served by many queries is protected exactly when
// every release draws its ε through one shared ledger. The Accountant is
// that ledger: queries *reserve* budget up front via an RAII BudgetLease,
// run their mechanism, and *commit* the amount actually consumed (≤ the
// reservation — e.g. an amplified run commits the end-to-end ε, a PB run
// with unspent α-slack commits the metered sum). A reservation that would
// overdraw the budget fails with StatusCode::kBudgetExhausted and nothing
// is recorded.
//
// Fail-safe semantics: a lease destroyed without Commit() charges its FULL
// reservation (labelled "(aborted)"). A mechanism that dies halfway may
// already have observed noise, so rolling the reservation back could
// silently under-count; over-counting is the only safe default for a
// privacy ledger.
//
// Thread-safe: concurrent Engine::Run calls on one shared Dataset race on
// Acquire/Commit only through the internal mutex.
//
// Durability: an Accountant may carry an AccountantJournal (the store
// layer's write-ahead ledger adapter). With a journal attached, every
// reservation/commit/abort is made durable BEFORE the in-memory ledger
// moves — a journal write failure fails the operation closed (the query
// errors; the guarantee never weakens). Restore() seeds the committed
// spend replayed from the journal at boot.
#ifndef PRIVBASIS_ENGINE_ACCOUNTANT_H_
#define PRIVBASIS_ENGINE_ACCOUNTANT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "dp/budget.h"

namespace privbasis {

class BudgetLease;

/// Durable backing for an Accountant's ledger events (implemented by the
/// store layer's WAL; engine code sees only this interface). All three
/// calls are invoked under the Accountant's mutex, so implementations
/// need not serialize per-accountant — but one journal instance may back
/// many accountants, so cross-accountant appends must still be safe.
class AccountantJournal {
 public:
  virtual ~AccountantJournal() = default;
  /// Durably records a reservation; returns the transaction id later
  /// commits/aborts refer to. Failure (ENOSPC/EIO) must leave no durable
  /// trace requirement on the caller: the reservation simply never
  /// happened.
  virtual Result<uint64_t> Reserve(double epsilon,
                                   const std::string& label) = 0;
  /// Durably finalizes `txn` at `actual` ε (fsynced per policy before
  /// returning OK — an OK here is the durability point of the query).
  virtual Status Commit(uint64_t txn, double actual,
                        const std::string& label) = 0;
  /// Durably marks `txn` aborted (replays as a full charge). Best
  /// effort: replay treats a missing abort identically (in-flight at
  /// crash = full charge), so a failed append loses nothing.
  virtual Status Abort(uint64_t txn) = 0;
};

/// Thread-safe ε ledger with reserve/commit semantics. See file comment.
class Accountant {
 public:
  /// One committed expenditure — the same shape the run-scoped
  /// PrivacyAccountant records, so mechanism breakdowns pass through
  /// without conversion.
  using Entry = PrivacyAccountant::Entry;

  /// Sentinel budget: track every spend but never refuse one.
  static constexpr double kUnlimited =
      std::numeric_limits<double>::infinity();

  /// `total_epsilon` must be > 0 (kUnlimited allowed).
  explicit Accountant(double total_epsilon);

  Accountant(const Accountant&) = delete;
  Accountant& operator=(const Accountant&) = delete;

  /// Reserves `epsilon` of the remaining budget for one query. Fails with
  /// kBudgetExhausted (recording nothing) when spent + outstanding
  /// reservations + epsilon would exceed the total beyond a small
  /// floating-point tolerance; fails with kInvalidArgument when epsilon is
  /// not positive and finite. With a journal attached, the reservation is
  /// journaled before it is granted — a journal write failure (ENOSPC →
  /// kResourceExhausted, else kIoError) refuses the query with the
  /// in-memory ledger untouched.
  Result<BudgetLease> Acquire(double epsilon, std::string label);

  /// Attaches the durable journal. Call before the accountant is shared
  /// (boot/registration time); not thread-safe against in-flight leases.
  void AttachJournal(std::shared_ptr<AccountantJournal> journal);

  /// Seeds the committed spend replayed from a journal at boot. Call
  /// before serving; fails if anything was already spent or reserved.
  Status Restore(double spent, std::vector<Entry> entries);

  double total_epsilon() const { return total_; }
  /// Committed spend (excludes outstanding reservations).
  double spent_epsilon() const;
  /// Budget not yet committed or reserved.
  double remaining_epsilon() const;
  /// Outstanding (acquired but not yet committed) reservations.
  double reserved_epsilon() const;
  /// Snapshot of the committed ledger, in commit order.
  std::vector<Entry> ledger() const;

 private:
  friend class BudgetLease;

  // Lease back-end (takes mu_ itself). `actual` must be ≤ reserved
  // (+tolerance); `breakdown` itemizes the spend (empty = one entry of
  // `actual` under `label`). `txn` is the journal transaction (0 when no
  // journal); `aborted` selects the journal's Abort record. A journal
  // commit failure charges the FULL reservation (never less than what
  // replay would reconstruct) and returns the journal's error.
  Status CommitReservation(double reserved, double actual,
                           const std::string& label,
                           std::vector<Entry> breakdown, uint64_t txn,
                           bool aborted) PB_EXCLUDES(mu_);

  mutable Mutex mu_;
  const double total_;
  double spent_ PB_GUARDED_BY(mu_) = 0.0;
  double reserved_ PB_GUARDED_BY(mu_) = 0.0;
  std::vector<Entry> entries_ PB_GUARDED_BY(mu_);
  std::shared_ptr<AccountantJournal> journal_ PB_GUARDED_BY(mu_);
};

/// RAII handle over one reservation. Move-only. Commit() finalizes the
/// actual spend; destruction without Commit() charges the full
/// reservation (see the fail-safe note above).
class BudgetLease {
 public:
  BudgetLease(BudgetLease&& other) noexcept;
  BudgetLease& operator=(BudgetLease&& other) noexcept;
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;
  ~BudgetLease();

  double reserved() const { return reserved_; }

  /// Commits `actual` (≤ reserved + tolerance, clamped to the
  /// reservation) and releases the unspent remainder. `breakdown`
  /// optionally itemizes the spend in the ledger; its ε values should sum
  /// to `actual`. Idempotent: only the first call has an effect. With a
  /// journal attached, a failed durable commit returns the journal's
  /// error AND charges the full reservation in memory — the query must
  /// fail, the ledger must not under-count.
  Status Commit(double actual, std::vector<Accountant::Entry> breakdown = {});

  /// Commits the full reservation (the common "mechanism spends exactly
  /// what it asked for" case).
  Status CommitAll() { return Commit(reserved_); }

 private:
  friend class Accountant;
  BudgetLease(Accountant* accountant, double reserved, std::string label,
              uint64_t txn);

  Accountant* accountant_;  // null after move-out or commit
  double reserved_ = 0.0;
  std::string label_;
  uint64_t txn_ = 0;  // journal transaction id (0 = unjournaled)
};

}  // namespace privbasis

#endif  // PRIVBASIS_ENGINE_ACCOUNTANT_H_
