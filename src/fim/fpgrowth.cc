#include "fim/fpgrowth.h"

#include <algorithm>

namespace privbasis {

namespace {

struct GrowthContext {
  const MiningOptions* options;
  std::vector<FrequentItemset>* out;
  bool aborted = false;
};

/// Emits suffix ∪ {each frequent rank}, recursing into conditional trees.
/// `suffix` holds item ids (unsorted; canonicalized on emission).
void Grow(const FpTree& tree, std::vector<Item>* suffix, GrowthContext* ctx) {
  if (ctx->aborted) return;
  for (uint32_t rank = 0; rank < tree.NumRanks(); ++rank) {
    uint64_t support = tree.SupportAt(rank);
    suffix->push_back(tree.ItemAt(rank));
    ctx->out->push_back(
        FrequentItemset{Itemset(std::vector<Item>(*suffix)), support});
    if (ctx->options->max_patterns != 0 &&
        ctx->out->size() > ctx->options->max_patterns) {
      ctx->aborted = true;
      suffix->pop_back();
      return;
    }
    const bool at_cap = ctx->options->max_length != 0 &&
                        suffix->size() >= ctx->options->max_length;
    if (!at_cap) {
      FpTree cond = tree.ConditionalTree(rank, ctx->options->min_support);
      if (!cond.Empty()) Grow(cond, suffix, ctx);
    }
    suffix->pop_back();
    if (ctx->aborted) return;
  }
}

}  // namespace

Result<MiningResult> MineFpGrowth(const TransactionDatabase& db,
                                  const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  MiningResult result;
  FpTree tree(db, options.min_support);
  std::vector<Item> suffix;
  GrowthContext ctx{&options, &result.itemsets, false};
  Grow(tree, &suffix, &ctx);
  SortCanonical(&result.itemsets);
  if (ctx.aborted) {
    // Truncation contract: keep the canonically first max_patterns of the
    // patterns collected before the abort.
    result.itemsets.resize(
        std::min<size_t>(result.itemsets.size(), options.max_patterns));
    result.aborted = true;
  }
  return result;
}

}  // namespace privbasis
