#include "fim/fpgrowth.h"

#include <algorithm>
#include <atomic>

#include "common/annotations.h"
#include "common/thread_pool.h"

namespace privbasis {

namespace {

struct GrowthContext {
  const MiningOptions* options;
  std::vector<FrequentItemset>* out;
  /// Per-task pattern cap: max_patterns + 1 (0 = unbounded). The DFS
  /// emission prefix of that length is all the truncation contract needs.
  uint64_t cap;
  /// Set once the contiguous run of completed root tasks has emitted
  /// `cap` patterns: everything a still-running later task produces lies
  /// beyond the truncation prefix, so it may stop immediately. Purely an
  /// early-exit signal — the kept prefix is identical with or without it.
  const std::atomic<bool>* prefix_done;
  /// Shared cancel flag (flips once options->cancel fires); reuses the
  /// aborted early-exit plumbing, distinguished at the end of the mine.
  std::atomic<bool>* cancelled;
  bool aborted = false;
};

/// Emits suffix ∪ {each frequent rank}, recursing into conditional trees.
/// `suffix` holds item ids (unsorted; canonicalized on emission).
void Grow(const FpTree& tree, std::vector<Item>* suffix, GrowthContext* ctx) {
  if (ctx->aborted) return;
  if (ctx->cancelled->load(std::memory_order_relaxed) ||
      IsCancelled(ctx->options->cancel)) {
    ctx->cancelled->store(true, std::memory_order_relaxed);
    ctx->aborted = true;
    return;
  }
  if (ctx->prefix_done != nullptr &&
      ctx->prefix_done->load(std::memory_order_relaxed)) {
    ctx->aborted = true;
    return;
  }
  for (uint32_t rank = 0; rank < tree.NumRanks(); ++rank) {
    uint64_t support = tree.SupportAt(rank);
    suffix->push_back(tree.ItemAt(rank));
    ctx->out->push_back(
        FrequentItemset{Itemset(std::vector<Item>(*suffix)), support});
    if (ctx->cap != 0 && ctx->out->size() >= ctx->cap) {
      ctx->aborted = true;
      suffix->pop_back();
      return;
    }
    const bool at_cap = ctx->options->max_length != 0 &&
                        suffix->size() >= ctx->options->max_length;
    if (!at_cap) {
      FpTree cond = tree.ConditionalTree(rank, ctx->options->min_support);
      if (!cond.Empty()) Grow(cond, suffix, ctx);
    }
    suffix->pop_back();
    if (ctx->aborted) return;
  }
}

}  // namespace

Result<MiningResult> MineFpGrowth(const TransactionDatabase& db,
                                  const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  const size_t threads = EffectiveThreads(options.num_threads);
  FpTree tree(db, options.min_support, threads);
  const size_t num_ranks = tree.NumRanks();
  const uint64_t cap =
      options.max_patterns == 0 ? 0 : options.max_patterns + 1;

  // First projection level fans out over the pool: each root rank mines
  // its conditional tree into a private buffer, and the buffers
  // concatenate in rank order — exactly the sequential DFS emission
  // stream, so the result (and the truncation prefix) is identical at
  // every thread count. Under a max_patterns cap, a shared flag flips as
  // soon as the contiguous run of completed ranks 0..j covers the whole
  // prefix; every later rank then bails out, keeping an aborted mine at
  // O(cap) total work instead of O(num_ranks · cap). The flag never
  // changes the kept prefix: a task observing it is strictly after the
  // covered run, so its output would be discarded anyway.
  std::vector<std::vector<FrequentItemset>> per_rank(num_ranks);
  std::atomic<bool> cancelled{false};
  std::atomic<bool> prefix_done{false};
  Mutex done_mu;
  std::vector<char> completed(num_ranks, 0);
  size_t next_done = 0;
  uint64_t done_total = 0;
  ThreadPool::Global().ParallelFor(
      0, num_ranks, 1, threads, [&](size_t b, size_t e, size_t) {
        for (size_t r = b; r < e; ++r) {
          const uint32_t rank = static_cast<uint32_t>(r);
          auto& out = per_rank[r];
          if (cancelled.load(std::memory_order_relaxed) ||
              IsCancelled(options.cancel)) {
            cancelled.store(true, std::memory_order_relaxed);
            return;
          }
          if (cap == 0 || !prefix_done.load(std::memory_order_relaxed)) {
            out.push_back(FrequentItemset{Itemset{tree.ItemAt(rank)},
                                          tree.SupportAt(rank)});
            const bool want_children =
                (cap == 0 || out.size() < cap) && options.max_length != 1;
            if (want_children) {
              FpTree cond = tree.ConditionalTree(rank, options.min_support);
              if (!cond.Empty()) {
                std::vector<Item> suffix{tree.ItemAt(rank)};
                GrowthContext ctx{&options, &out, cap,
                                  cap != 0 ? &prefix_done : nullptr,
                                  &cancelled, false};
                Grow(cond, &suffix, &ctx);
              }
            }
          }
          if (cap != 0) {
            MutexLock lock(done_mu);
            completed[r] = 1;
            while (next_done < num_ranks && completed[next_done]) {
              done_total += per_rank[next_done].size();
              ++next_done;
            }
            if (done_total >= cap) {
              prefix_done.store(true, std::memory_order_relaxed);
            }
          }
        }
      });
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("fp-growth mine cancelled mid-scan");
  }

  MiningResult result;
  bool overflow = false;
  for (auto& out : per_rank) {
    for (auto& fi : out) {
      if (cap != 0 && result.itemsets.size() >= cap) {
        overflow = true;
        break;
      }
      result.itemsets.push_back(std::move(fi));
    }
    if (overflow) break;
  }
  SortCanonical(&result.itemsets);
  if (cap != 0 && result.itemsets.size() > options.max_patterns) {
    // Truncation contract: keep the canonically first max_patterns of the
    // patterns collected before the abort.
    result.itemsets.resize(options.max_patterns);
    result.aborted = true;
  }
  return result;
}

}  // namespace privbasis
