// Closed frequent itemsets: θ-frequent itemsets with no superset of equal
// support. The closed family is the lossless compression of the frequent
// family (every frequent itemset's support equals the support of its
// smallest closed superset), sitting between "all frequent" and "maximal"
// in the classic FIM hierarchy — a natural library companion to
// fim/maximal.h.
#ifndef PRIVBASIS_FIM_CLOSED_H_
#define PRIVBASIS_FIM_CLOSED_H_

#include "common/status.h"
#include "data/transaction_db.h"
#include "fim/miner.h"

namespace privbasis {

/// Filters a complete θ-frequent collection down to its closed members:
/// X is closed iff no single-item extension of X (within the collection)
/// has the same support. `frequent` must contain all itemsets with
/// support ≥ θ.
std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& frequent);

/// Mines all θ-frequent itemsets (FP-Growth) and keeps the closed ones.
/// Canonical order.
Result<std::vector<FrequentItemset>> MineClosed(const TransactionDatabase& db,
                                                uint64_t min_support);

/// Reconstructs the support of an arbitrary itemset from a *complete*
/// closed family: the support of X is the maximum support among closed
/// supersets of X; returns 0 when X has no closed superset (i.e. X is
/// not θ-frequent).
uint64_t SupportFromClosed(const std::vector<FrequentItemset>& closed,
                           const Itemset& itemset);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_CLOSED_H_
