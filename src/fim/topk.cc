#include "fim/topk.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <unordered_set>

#include "common/annotations.h"
#include "common/thread_pool.h"
#include "fim/fptree.h"

namespace privbasis {

namespace {

/// Canonical "is a better than b" for top-k selection.
bool Better(const FrequentItemset& a, const FrequentItemset& b) {
  if (a.support != b.support) return a.support > b.support;
  if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
  return a.items < b.items;
}

/// Bounded pool of the k best patterns seen so far, ordered worst-first so
/// the pruning threshold is O(1) to read.
class BestK {
 public:
  explicit BestK(size_t k) : k_(k) {}

  /// Current pruning threshold: supports strictly below this can never
  /// enter the pool.
  uint64_t Threshold() const {
    return pool_.size() < k_ ? 0 : pool_.begin()->support;
  }

  void Offer(FrequentItemset candidate) {
    if (pool_.size() == k_ && !Better(candidate, *pool_.begin())) return;
    pool_.insert(std::move(candidate));
    if (pool_.size() > k_) pool_.erase(pool_.begin());
  }

  std::vector<FrequentItemset> Take() {
    std::vector<FrequentItemset> out(pool_.begin(), pool_.end());
    std::reverse(out.begin(), out.end());  // best first
    return out;
  }

 private:
  struct WorstFirst {
    bool operator()(const FrequentItemset& a,
                    const FrequentItemset& b) const {
      return Better(b, a);
    }
  };
  size_t k_;
  std::set<FrequentItemset, WorstFirst> pool_;
};

struct TopKContext {
  size_t max_length;
  uint64_t floor_support;  // static lower bound on the final threshold
  BestK* best;             // shared across root tasks, guarded by mu
  Mutex* mu;
  /// Monotone cache of best->Threshold(), readable without the lock. A
  /// stale (lower) value only weakens pruning — never drops a pattern —
  /// so lock-free readers stay exact and deterministic.
  std::atomic<uint64_t>* threshold_cache;
  /// Cooperative cancel: a fired token flips `cancelled` and every task
  /// unwinds at its next branch boundary.
  const CancelToken* cancel;
  std::atomic<bool>* cancelled;
};

bool PollCancel(const TopKContext& ctx) {
  if (ctx.cancelled->load(std::memory_order_relaxed)) return true;
  if (!IsCancelled(ctx.cancel)) return false;
  ctx.cancelled->store(true, std::memory_order_relaxed);
  return true;
}

uint64_t CurrentThreshold(const TopKContext& ctx) {
  return std::max<uint64_t>(
      ctx.floor_support,
      std::max<uint64_t>(
          1, ctx.threshold_cache->load(std::memory_order_relaxed)));
}

void OfferLocked(const TopKContext& ctx, FrequentItemset candidate) {
  MutexLock lock(*ctx.mu);
  ctx.best->Offer(std::move(candidate));
  ctx.threshold_cache->store(ctx.best->Threshold(),
                             std::memory_order_relaxed);
}

/// Recursive FP-Growth specialized for top-k: ranks are visited in
/// descending in-tree support (the RanksBySupport permutation — a
/// conditional tree's rank order is not support order) so the pool
/// threshold rises as fast as possible, and branches upper-bounded below
/// the threshold are pruned.
void GrowTopK(const FpTree& tree, std::vector<Item>* suffix,
              TopKContext* ctx) {
  for (uint32_t rank : tree.RanksBySupport()) {
    if (PollCancel(*ctx)) return;
    uint64_t support = tree.SupportAt(rank);
    uint64_t threshold = CurrentThreshold(*ctx);
    // Every pattern in this branch has support <= `support`; we iterate in
    // descending support order, so all later branches are bounded too.
    if (support < threshold) break;
    suffix->push_back(tree.ItemAt(rank));
    OfferLocked(*ctx,
                FrequentItemset{Itemset(std::vector<Item>(*suffix)), support});
    const bool at_cap =
        ctx->max_length != 0 && suffix->size() >= ctx->max_length;
    if (!at_cap) {
      FpTree cond = tree.ConditionalTree(rank, CurrentThreshold(*ctx));
      if (!cond.Empty()) GrowTopK(cond, suffix, ctx);
    }
    suffix->pop_back();
  }
}

}  // namespace

Result<TopKResult> MineTopK(const TransactionDatabase& db, size_t k,
                            size_t max_length, size_t num_threads,
                            const CancelToken* cancel) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Static floor: the k most frequent items are themselves k itemsets, so
  // the k-th best support is >= the k-th item support. This keeps the
  // initial FP-tree small on sparse data with huge universes.
  std::vector<uint64_t> supports = db.ItemSupports();
  std::sort(supports.begin(), supports.end(), std::greater<>());
  uint64_t floor_support = 1;
  size_t active = 0;
  while (active < supports.size() && supports[active] > 0) ++active;
  if (active >= k) floor_support = std::max<uint64_t>(1, supports[k - 1]);

  BestK best(k);
  Mutex best_mu;
  std::atomic<uint64_t> threshold_cache{0};
  std::atomic<bool> cancelled{false};
  TopKContext ctx{max_length, floor_support, &best,      &best_mu,
                  &threshold_cache, cancel, &cancelled};
  FpTree tree(db, floor_support);

  // Each root rank is one pool task over the shared, immutable tree. The
  // final pool is the canonical top-k of every pattern offered; pruning
  // only ever skips branches strictly below the rising threshold — which
  // can never reach the final top-k — so the result is identical at any
  // thread count (threads = 1 reproduces the sequential rank loop).
  const size_t threads = EffectiveThreads(num_threads);
  ThreadPool::Global().ParallelFor(
      0, tree.NumRanks(), 1, threads, [&](size_t, size_t, size_t r) {
        if (PollCancel(ctx)) return;
        const uint32_t rank = static_cast<uint32_t>(r);
        const uint64_t support = tree.SupportAt(rank);
        if (support < CurrentThreshold(ctx)) return;
        std::vector<Item> suffix{tree.ItemAt(rank)};
        OfferLocked(ctx, FrequentItemset{Itemset(std::vector<Item>(suffix)),
                                         support});
        if (max_length == 0 || max_length > 1) {
          FpTree cond = tree.ConditionalTree(rank, CurrentThreshold(ctx));
          if (!cond.Empty()) GrowTopK(cond, &suffix, &ctx);
        }
      });
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("top-k mine cancelled mid-scan");
  }

  TopKResult result;
  result.itemsets = best.Take();
  result.kth_support =
      result.itemsets.empty() ? 0 : result.itemsets.back().support;
  return result;
}

TopKStats ComputeTopKStats(const std::vector<FrequentItemset>& topk) {
  TopKStats stats;
  std::unordered_set<Item> items;
  for (const auto& fi : topk) {
    for (Item it : fi.items) items.insert(it);
    if (fi.items.size() == 2) ++stats.lambda2;
    if (fi.items.size() == 3) ++stats.lambda3;
  }
  stats.lambda = static_cast<uint32_t>(items.size());
  stats.fk_count = topk.empty() ? 0 : topk.back().support;
  return stats;
}

}  // namespace privbasis
