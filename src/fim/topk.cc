#include "fim/topk.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "fim/fptree.h"

namespace privbasis {

namespace {

/// Canonical "is a better than b" for top-k selection.
bool Better(const FrequentItemset& a, const FrequentItemset& b) {
  if (a.support != b.support) return a.support > b.support;
  if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
  return a.items < b.items;
}

/// Bounded pool of the k best patterns seen so far, ordered worst-first so
/// the pruning threshold is O(1) to read.
class BestK {
 public:
  explicit BestK(size_t k) : k_(k) {}

  /// Current pruning threshold: supports strictly below this can never
  /// enter the pool.
  uint64_t Threshold() const {
    return pool_.size() < k_ ? 0 : pool_.begin()->support;
  }

  void Offer(FrequentItemset candidate) {
    if (pool_.size() == k_ && !Better(candidate, *pool_.begin())) return;
    pool_.insert(std::move(candidate));
    if (pool_.size() > k_) pool_.erase(pool_.begin());
  }

  std::vector<FrequentItemset> Take() {
    std::vector<FrequentItemset> out(pool_.begin(), pool_.end());
    std::reverse(out.begin(), out.end());  // best first
    return out;
  }

 private:
  struct WorstFirst {
    bool operator()(const FrequentItemset& a,
                    const FrequentItemset& b) const {
      return Better(b, a);
    }
  };
  size_t k_;
  std::set<FrequentItemset, WorstFirst> pool_;
};

struct TopKContext {
  size_t max_length;
  uint64_t floor_support;  // static lower bound on the final threshold
  BestK* best;
};

uint64_t CurrentThreshold(const TopKContext& ctx) {
  return std::max<uint64_t>(ctx.floor_support,
                            std::max<uint64_t>(1, ctx.best->Threshold()));
}

/// Recursive FP-Growth specialized for top-k: ranks are visited in
/// descending in-tree support (rank order) so the pool threshold rises as
/// fast as possible, and branches upper-bounded below the threshold are
/// pruned.
void GrowTopK(const FpTree& tree, std::vector<Item>* suffix,
              TopKContext* ctx) {
  for (uint32_t rank = 0; rank < tree.NumRanks(); ++rank) {
    uint64_t support = tree.SupportAt(rank);
    uint64_t threshold = CurrentThreshold(*ctx);
    // Every pattern in this branch has support <= `support`; ranks are in
    // descending support order, so all later branches are bounded too.
    if (support < threshold) break;
    suffix->push_back(tree.ItemAt(rank));
    ctx->best->Offer(
        FrequentItemset{Itemset(std::vector<Item>(*suffix)), support});
    const bool at_cap =
        ctx->max_length != 0 && suffix->size() >= ctx->max_length;
    if (!at_cap) {
      FpTree cond = tree.ConditionalTree(rank, CurrentThreshold(*ctx));
      if (!cond.Empty()) GrowTopK(cond, suffix, ctx);
    }
    suffix->pop_back();
  }
}

}  // namespace

Result<TopKResult> MineTopK(const TransactionDatabase& db, size_t k,
                            size_t max_length) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Static floor: the k most frequent items are themselves k itemsets, so
  // the k-th best support is >= the k-th item support. This keeps the
  // initial FP-tree small on sparse data with huge universes.
  std::vector<uint64_t> supports = db.ItemSupports();
  std::sort(supports.begin(), supports.end(), std::greater<>());
  uint64_t floor_support = 1;
  size_t active = 0;
  while (active < supports.size() && supports[active] > 0) ++active;
  if (active >= k) floor_support = std::max<uint64_t>(1, supports[k - 1]);

  BestK best(k);
  TopKContext ctx{max_length, floor_support, &best};
  FpTree tree(db, floor_support);
  std::vector<Item> suffix;
  GrowTopK(tree, &suffix, &ctx);

  TopKResult result;
  result.itemsets = best.Take();
  result.kth_support =
      result.itemsets.empty() ? 0 : result.itemsets.back().support;
  return result;
}

TopKStats ComputeTopKStats(const std::vector<FrequentItemset>& topk) {
  TopKStats stats;
  std::unordered_set<Item> items;
  for (const auto& fi : topk) {
    for (Item it : fi.items) items.insert(it);
    if (fi.items.size() == 2) ++stats.lambda2;
    if (fi.items.size() == 3) ++stats.lambda3;
  }
  stats.lambda = static_cast<uint32_t>(items.size());
  stats.fk_count = topk.empty() ? 0 : topk.back().support;
  return stats;
}

}  // namespace privbasis
