// Eclat (Zaki 2000): depth-first frequent-itemset mining over vertical
// tid-lists — support of P ∪ {x} is the intersection of P's tid-list with
// x's. The third exact miner: where FP-Growth shines on dense data with
// shared prefixes, Eclat is strong on sparse data with short tid-lists,
// and having both lets the test suite cross-check three independent
// implementations.
#ifndef PRIVBASIS_FIM_ECLAT_H_
#define PRIVBASIS_FIM_ECLAT_H_

#include "common/status.h"
#include "data/transaction_db.h"
#include "fim/miner.h"

namespace privbasis {

/// Mines all itemsets with support ≥ options.min_support (length ≤
/// options.max_length if set); on exceeding options.max_patterns it
/// returns the truncated set with result.aborted per the MiningResult
/// contract. Results are in canonical order. Root equivalence classes run
/// as thread-pool tasks (options.num_threads); the output is identical at
/// every thread count.
Result<MiningResult> MineEclat(const TransactionDatabase& db,
                               const MiningOptions& options);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_ECLAT_H_
