// Shared types for the frequent-itemset-mining substrate.
//
// Miners work in absolute supports (counts) — exact integers, no float
// thresholds. Conversion to the paper's frequencies (f = support/N)
// happens at the edges.
#ifndef PRIVBASIS_FIM_MINER_H_
#define PRIVBASIS_FIM_MINER_H_

#include <cstdint>
#include <vector>

#include "data/itemset.h"

namespace privbasis {

/// A mined itemset with its exact absolute support.
struct FrequentItemset {
  Itemset items;
  uint64_t support = 0;

  bool operator==(const FrequentItemset& other) const = default;
};

/// Mining parameters common to all miners.
struct MiningOptions {
  /// Minimum absolute support (inclusive). Must be ≥ 1.
  uint64_t min_support = 1;
  /// Maximum itemset length; 0 = unbounded.
  size_t max_length = 0;
  /// Abort once more than this many patterns have been collected;
  /// 0 = unbounded. Callers use this to keep candidate spaces sane
  /// (e.g. the TF baseline's explicit-set mining).
  uint64_t max_patterns = 0;
};

/// Output of a mining call.
struct MiningResult {
  std::vector<FrequentItemset> itemsets;
  /// True iff mining stopped early because max_patterns was exceeded;
  /// `itemsets` is then incomplete and must not be used as an exact
  /// answer.
  bool aborted = false;
};

/// Canonical result order: descending support, ties broken by ascending
/// length then lexicographic items — deterministic across miners.
void SortCanonical(std::vector<FrequentItemset>* itemsets);

/// An itemset released by a private mechanism together with its noisy
/// absolute count (noisy frequency = noisy_count / N). Shared release
/// format of PrivBasis and the TF baseline.
struct NoisyItemset {
  Itemset items;
  double noisy_count = 0.0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_MINER_H_
