// Shared types for the frequent-itemset-mining substrate.
//
// Miners work in absolute supports (counts) — exact integers, no float
// thresholds. Conversion to the paper's frequencies (f = support/N)
// happens at the edges.
#ifndef PRIVBASIS_FIM_MINER_H_
#define PRIVBASIS_FIM_MINER_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "data/itemset.h"

namespace privbasis {

/// A mined itemset with its exact absolute support.
struct FrequentItemset {
  Itemset items;
  uint64_t support = 0;

  bool operator==(const FrequentItemset& other) const = default;
};

/// Mining parameters common to all miners.
struct MiningOptions {
  /// Minimum absolute support (inclusive). Must be ≥ 1.
  uint64_t min_support = 1;
  /// Maximum itemset length; 0 = unbounded.
  size_t max_length = 0;
  /// Truncate once more than this many patterns have been collected;
  /// 0 = unbounded. Callers use this to keep candidate spaces sane
  /// (e.g. the TF baseline's explicit-set mining). See MiningResult for
  /// the truncation contract. Note: parallel miners bound *per-task*
  /// work, so peak transient memory on a pathological abort is
  /// O(num_root_classes · (max_patterns + 1)) patterns, not
  /// O(max_patterns); the returned set is always ≤ max_patterns.
  uint64_t max_patterns = 0;
  /// Parallelism for miners with a parallel path (Eclat, and the
  /// VerticalIndex they build); 0 = the PRIVBASIS_THREADS env knob.
  /// Results are identical at every thread count.
  size_t num_threads = 0;
  /// Cooperative cancellation (common/cancel.h): the miner polls once
  /// per work chunk and returns StatusCode::kCancelled if the token has
  /// fired. nullptr = not cancellable. Not part of any cache key — it is
  /// per-call state, never per-configuration.
  const CancelToken* cancel = nullptr;
};

/// Output of a mining call.
struct MiningResult {
  std::vector<FrequentItemset> itemsets;
  /// Truncation contract, uniform across miners: true iff more than
  /// options.max_patterns patterns were discovered. `itemsets` then holds
  /// exactly max_patterns patterns — the canonically first among those
  /// collected before mining stopped — and is an incomplete answer: use
  /// it only as a "too many patterns" signal plus a sample, never as the
  /// exact frequent set. When false, `itemsets` is complete.
  bool aborted = false;
};

/// Canonical result order: descending support, ties broken by ascending
/// length then lexicographic items — deterministic across miners.
void SortCanonical(std::vector<FrequentItemset>* itemsets);

/// An itemset released by a private mechanism together with its noisy
/// absolute count (noisy frequency = noisy_count / N). Shared release
/// format of PrivBasis and the TF baseline.
struct NoisyItemset {
  Itemset items;
  double noisy_count = 0.0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_MINER_H_
