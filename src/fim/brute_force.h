// Reference miner: exhaustively counts every (length-capped) subset of
// every transaction. Exponential in transaction length — strictly a test
// oracle for the production miners.
#ifndef PRIVBASIS_FIM_BRUTE_FORCE_H_
#define PRIVBASIS_FIM_BRUTE_FORCE_H_

#include "common/status.h"
#include "data/transaction_db.h"
#include "fim/miner.h"

namespace privbasis {

/// Mines all itemsets with support ≥ options.min_support and length ≤
/// options.max_length by hash-counting transaction subsets.
/// options.max_length must be ≥ 1 (an unbounded cap on, say, a 50-item
/// transaction would enumerate 2^50 subsets). Results are in canonical
/// order. max_patterns is ignored (the oracle is only run on small data).
Result<MiningResult> MineBruteForce(const TransactionDatabase& db,
                                    const MiningOptions& options);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_BRUTE_FORCE_H_
