#include "fim/brute_force.h"

#include <unordered_map>

namespace privbasis {

void SortCanonical(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

Result<MiningResult> MineBruteForce(const TransactionDatabase& db,
                                    const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (options.max_length == 0) {
    return Status::InvalidArgument(
        "brute-force miner requires a max_length cap");
  }

  std::unordered_map<std::vector<Item>, uint64_t, ItemVectorHash> counts;
  std::vector<Item> combo;
  // Enumerate size-m combinations of each transaction for every m up to
  // the cap, with recursive lexicographic generation.
  std::function<void(std::span<const Item>, size_t, size_t)> gen =
      [&](std::span<const Item> txn, size_t start, size_t want) {
        if (want == 0) {
          ++counts[combo];
          return;
        }
        for (size_t i = start; i + want <= txn.size() + 1 && i < txn.size();
             ++i) {
          combo.push_back(txn[i]);
          gen(txn, i + 1, want - 1);
          combo.pop_back();
        }
      };

  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    auto txn = db.Transaction(t);
    for (size_t m = 1; m <= options.max_length && m <= txn.size(); ++m) {
      combo.clear();
      gen(txn, 0, m);
    }
  }

  MiningResult result;
  for (auto& [items, support] : counts) {
    if (support >= options.min_support) {
      result.itemsets.push_back(
          FrequentItemset{Itemset::FromSorted(items), support});
    }
  }
  SortCanonical(&result.itemsets);
  return result;
}

}  // namespace privbasis
