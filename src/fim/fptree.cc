#include "fim/fptree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace privbasis {

namespace {
constexpr uint32_t kRootRank = 0xfffffffeu;
}  // namespace

FpTree::FpTree(const TransactionDatabase& db, uint64_t min_support) {
  // Rank items with support >= min_support by descending support
  // (ties: ascending id) so prefixes are maximally shared.
  const auto& supports = db.ItemSupports();
  std::vector<Item> freq;
  for (Item it = 0; it < db.UniverseSize(); ++it) {
    if (supports[it] >= min_support) freq.push_back(it);
  }
  std::sort(freq.begin(), freq.end(), [&](Item a, Item b) {
    if (supports[a] != supports[b]) return supports[a] > supports[b];
    return a < b;
  });
  rank_items_ = std::move(freq);
  rank_supports_.resize(rank_items_.size());
  std::vector<uint32_t> item_to_rank(db.UniverseSize(), kNil);
  for (uint32_t r = 0; r < rank_items_.size(); ++r) {
    rank_supports_[r] = supports[rank_items_[r]];
    item_to_rank[rank_items_[r]] = r;
  }
  headers_.assign(rank_items_.size(), kNil);
  nodes_.push_back(Node{kRootRank, kNil, kNil, kNil, kNil, 0});

  std::vector<uint32_t> path;
  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    path.clear();
    for (Item it : db.Transaction(t)) {
      uint32_t r = item_to_rank[it];
      if (r != kNil) path.push_back(r);
    }
    if (path.empty()) continue;
    std::sort(path.begin(), path.end());
    InsertPath(path, 1);
  }
}

void FpTree::InsertPath(const std::vector<uint32_t>& ranks, uint64_t count) {
  uint32_t cur = 0;  // root
  for (uint32_t r : ranks) {
    // Find the child of `cur` carrying rank r.
    uint32_t child = nodes_[cur].first_child;
    uint32_t prev = kNil;
    while (child != kNil && nodes_[child].rank != r) {
      prev = child;
      child = nodes_[child].next_sibling;
    }
    if (child == kNil) {
      child = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{r, cur, kNil, kNil, headers_[r], 0});
      headers_[r] = child;
      if (prev == kNil) {
        nodes_[cur].first_child = child;
      } else {
        nodes_[prev].next_sibling = child;
      }
    }
    nodes_[child].count += count;
    cur = child;
  }
}

FpTree FpTree::ConditionalTree(uint32_t rank, uint64_t min_support) const {
  // Pass 1: conditional supports of every rank occurring on prefix paths.
  std::vector<uint64_t> cond_support(rank, 0);  // only ranks < `rank` occur
  for (uint32_t n = headers_[rank]; n != kNil; n = nodes_[n].next_same_rank) {
    uint64_t c = nodes_[n].count;
    for (uint32_t p = nodes_[n].parent; p != 0; p = nodes_[p].parent) {
      cond_support[nodes_[p].rank] += c;
    }
  }

  FpTree cond;
  std::vector<uint32_t> old_ranks;
  for (uint32_t r = 0; r < rank; ++r) {
    if (cond_support[r] >= min_support) old_ranks.push_back(r);
  }
  std::sort(old_ranks.begin(), old_ranks.end(), [&](uint32_t a, uint32_t b) {
    if (cond_support[a] != cond_support[b]) {
      return cond_support[a] > cond_support[b];
    }
    return a < b;
  });
  std::vector<uint32_t> remap(rank, kNil);
  for (uint32_t nr = 0; nr < old_ranks.size(); ++nr) {
    remap[old_ranks[nr]] = nr;
    cond.rank_items_.push_back(rank_items_[old_ranks[nr]]);
    cond.rank_supports_.push_back(cond_support[old_ranks[nr]]);
  }
  cond.headers_.assign(old_ranks.size(), kNil);
  cond.nodes_.push_back(Node{kRootRank, kNil, kNil, kNil, kNil, 0});

  // Pass 2: insert the filtered prefix paths.
  std::vector<uint32_t> path;
  for (uint32_t n = headers_[rank]; n != kNil; n = nodes_[n].next_same_rank) {
    path.clear();
    for (uint32_t p = nodes_[n].parent; p != 0; p = nodes_[p].parent) {
      uint32_t nr = remap[nodes_[p].rank];
      if (nr != kNil) path.push_back(nr);
    }
    if (path.empty()) continue;
    std::sort(path.begin(), path.end());
    cond.InsertPath(path, nodes_[n].count);
  }
  return cond;
}

}  // namespace privbasis
