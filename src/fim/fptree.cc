#include "fim/fptree.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>
#include <utility>

#include "common/thread_pool.h"

namespace privbasis {

namespace {

/// Per-thread construction scratch. FP-growth builds thousands of tiny
/// conditional trees per mine; reusing these buffers keeps the per-tree
/// allocation count at the handful of arrays the tree actually owns.
struct BuildScratch {
  std::vector<uint64_t> cond_support;
  std::vector<uint32_t> remap;
  std::vector<uint32_t> data;
  std::vector<FpTree::PathRef> paths;
  std::vector<std::pair<uint64_t, uint64_t>> keyed;
  std::vector<uint32_t> path;
  std::vector<uint32_t> spine;
  std::vector<uint64_t> cursor;
};

BuildScratch& TlsScratch() {
  static thread_local BuildScratch scratch;
  return scratch;
}

}  // namespace

FpTree::FpTree(const TransactionDatabase& db, uint64_t min_support,
               size_t num_threads) {
  // Rank items with support >= min_support by descending support
  // (ties: ascending id) so prefixes are maximally shared.
  const auto& supports = db.ItemSupports();
  std::vector<Item> freq;
  for (Item it = 0; it < db.UniverseSize(); ++it) {
    if (supports[it] >= min_support) freq.push_back(it);
  }
  std::sort(freq.begin(), freq.end(), [&](Item a, Item b) {
    if (supports[a] != supports[b]) return supports[a] > supports[b];
    return a < b;
  });
  rank_items_ = std::move(freq);
  std::vector<uint32_t> item_to_rank(db.UniverseSize(), kNil);
  for (uint32_t r = 0; r < rank_items_.size(); ++r) {
    item_to_rank[rank_items_[r]] = r;
  }

  // Filter/map every transaction to its rank path, fanned over the pool
  // into per-shard buffers. Shard boundaries depend only on the grain,
  // and the buffers concatenate in shard order, so the result is
  // identical at every thread count.
  const size_t n = db.NumTransactions();
  const size_t grain = std::max<size_t>(1024, n / 256);
  const size_t num_shards = (n + grain - 1) / grain;
  const size_t threads = EffectiveThreads(num_threads);

  if (rank_items_.size() <= 64) {
    // Packed path: a transaction's frequent ranks OR into one 64-bit key
    // while scanning — no per-transaction sort, no path arena.
    std::vector<std::vector<uint64_t>> shard_keys(num_shards);
    ThreadPool::Global().ParallelFor(
        0, n, grain, threads, [&](size_t b, size_t e, size_t s) {
          auto& keys = shard_keys[s];
          for (size_t t = b; t < e; ++t) {
            uint64_t key = 0;
            for (Item it : db.Transaction(t)) {
              const uint32_t r = item_to_rank[it];
              if (r != kNil) key |= uint64_t{1} << (63 - r);
            }
            if (key != 0) keys.push_back(key);
          }
        });
    size_t total = 0;
    for (const auto& keys : shard_keys) total += keys.size();
    std::vector<uint64_t> keys;
    keys.reserve(total);
    for (const auto& shard : shard_keys) {
      keys.insert(keys.end(), shard.begin(), shard.end());
    }
    shard_keys.clear();
    BuildFromRawKeys(keys);
    return;
  }

  struct ShardPaths {
    std::vector<uint32_t> data;
    std::vector<uint32_t> lengths;
  };
  std::vector<ShardPaths> shards(num_shards);
  ThreadPool::Global().ParallelFor(
      0, n, grain, threads, [&](size_t b, size_t e, size_t s) {
        auto& shard = shards[s];
        std::vector<uint32_t> path;
        for (size_t t = b; t < e; ++t) {
          path.clear();
          for (Item it : db.Transaction(t)) {
            const uint32_t r = item_to_rank[it];
            if (r != kNil) path.push_back(r);
          }
          if (path.empty()) continue;
          std::sort(path.begin(), path.end());
          shard.data.insert(shard.data.end(), path.begin(), path.end());
          shard.lengths.push_back(static_cast<uint32_t>(path.size()));
        }
      });

  size_t total_tokens = 0;
  size_t total_paths = 0;
  for (const auto& shard : shards) {
    total_tokens += shard.data.size();
    total_paths += shard.lengths.size();
  }
  std::vector<uint32_t> data;
  data.reserve(total_tokens);
  std::vector<PathRef> paths;
  paths.reserve(total_paths);
  for (const auto& shard : shards) {
    uint64_t offset = data.size();
    for (uint32_t length : shard.lengths) {
      paths.push_back(PathRef{offset, length, 1});
      offset += length;
    }
    data.insert(data.end(), shard.data.begin(), shard.data.end());
  }
  shards.clear();
  BuildFromPaths(data, paths);
}

void FpTree::BuildFromKeys(
    std::vector<std::pair<uint64_t, uint64_t>>& keyed) {
  // Descending key order: paths sharing any prefix occupy one contiguous
  // key range, and within a parent the branches appear by descending next
  // bit = ascending next rank. That is exactly the hierarchical grouping
  // the stack merge needs, on a plain integer sort.
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  MergeSortedKeyed(keyed);
}

void FpTree::BuildFromRawKeys(std::vector<uint64_t>& keys) {
  std::sort(keys.begin(), keys.end(), std::greater<>());
  auto& keyed = TlsScratch().keyed;
  keyed.clear();
  for (uint64_t key : keys) {
    if (!keyed.empty() && keyed.back().first == key) {
      ++keyed.back().second;
    } else {
      keyed.emplace_back(key, 1);
    }
  }
  MergeSortedKeyed(keyed);
}

void FpTree::MergeSortedKeyed(
    const std::vector<std::pair<uint64_t, uint64_t>>& keyed) {
  node_rank_.assign(1, kNil);
  node_parent_.assign(1, kNil);
  node_count_.assign(1, 0);
  std::vector<uint32_t>& spine = TlsScratch().spine;
  spine.clear();
  uint64_t prev_key = 0;
  for (const auto& [key, count] : keyed) {
    if (key == prev_key) {
      // Identical path: bump every node along the current spine.
      for (uint32_t id : spine) node_count_[id] += count;
      continue;
    }
    // Shared prefix length = number of set bits above the first bit where
    // the previous key diverges.
    size_t lcp = 0;
    uint64_t rest = key;
    if (prev_key != 0) {
      const int hb = 63 - std::countl_zero(prev_key ^ key);
      if (hb < 63) {
        rest = key & ((uint64_t{1} << (hb + 1)) - 1);
        lcp = static_cast<size_t>(std::popcount(key & ~rest));
      }
    }
    spine.resize(lcp);
    for (size_t i = 0; i < lcp; ++i) node_count_[spine[i]] += count;
    while (rest != 0) {
      const uint32_t r = static_cast<uint32_t>(std::countl_zero(rest));
      rest &= ~(uint64_t{1} << (63 - r));
      const uint32_t id = static_cast<uint32_t>(node_rank_.size());
      node_rank_.push_back(r);
      node_parent_.push_back(spine.empty() ? 0 : spine.back());
      node_count_.push_back(count);
      spine.push_back(id);
    }
    prev_key = key;
  }
  FinishIndexes();
}

void FpTree::BuildFromPaths(const std::vector<uint32_t>& data,
                            std::vector<PathRef>& paths) {
  // Lexicographic path order makes shared prefixes adjacent: each path's
  // longest common prefix with any earlier path is its prefix match with
  // the current right spine, so the whole tree merges with one stack and
  // nodes land in DFS pre-order.
  std::sort(paths.begin(), paths.end(),
            [&](const PathRef& a, const PathRef& b) {
              return std::lexicographical_compare(
                  data.begin() + a.offset,
                  data.begin() + a.offset + a.length,
                  data.begin() + b.offset,
                  data.begin() + b.offset + b.length);
            });

  node_rank_.assign(1, kNil);
  node_parent_.assign(1, kNil);
  node_count_.assign(1, 0);
  node_rank_.reserve(data.size() + 1);
  node_parent_.reserve(data.size() + 1);
  node_count_.reserve(data.size() + 1);
  std::vector<uint32_t>& spine = TlsScratch().spine;
  spine.clear();
  for (const PathRef& p : paths) {
    const uint32_t* ranks = data.data() + p.offset;
    size_t lcp = 0;
    while (lcp < spine.size() && lcp < p.length &&
           node_rank_[spine[lcp]] == ranks[lcp]) {
      ++lcp;
    }
    spine.resize(lcp);
    for (size_t i = 0; i < lcp; ++i) node_count_[spine[i]] += p.count;
    for (size_t i = lcp; i < p.length; ++i) {
      const uint32_t id = static_cast<uint32_t>(node_rank_.size());
      node_rank_.push_back(ranks[i]);
      node_parent_.push_back(spine.empty() ? 0 : spine.back());
      node_count_.push_back(p.count);
      spine.push_back(id);
    }
  }
  FinishIndexes();
}

void FpTree::FinishIndexes() {
  // Children CSR by counting sort over parents. Filling in ascending node
  // id preserves creation order, which the sorted merge makes ascending
  // rank within each slice — hence binary-searchable.
  const size_t num_nodes = node_rank_.size();
  child_offsets_.assign(num_nodes + 1, 0);
  for (size_t id = 1; id < num_nodes; ++id) {
    ++child_offsets_[node_parent_[id] + 1];
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    child_offsets_[i + 1] += child_offsets_[i];
  }
  children_.resize(num_nodes - 1);
  {
    std::vector<uint64_t>& cursor = TlsScratch().cursor;
    cursor.assign(child_offsets_.begin(), child_offsets_.end() - 1);
    for (size_t id = 1; id < num_nodes; ++id) {
      children_[cursor[node_parent_[id]]++] = static_cast<uint32_t>(id);
    }
  }

  // Per-rank node index and in-tree supports in one counting sort.
  const size_t num_ranks = rank_items_.size();
  rank_node_offsets_.assign(num_ranks + 1, 0);
  for (size_t id = 1; id < num_nodes; ++id) {
    ++rank_node_offsets_[node_rank_[id] + 1];
  }
  for (size_t r = 0; r < num_ranks; ++r) {
    rank_node_offsets_[r + 1] += rank_node_offsets_[r];
  }
  rank_nodes_.resize(num_nodes - 1);
  rank_supports_.assign(num_ranks, 0);
  {
    std::vector<uint64_t>& cursor = TlsScratch().cursor;
    cursor.assign(rank_node_offsets_.begin(), rank_node_offsets_.end() - 1);
    for (size_t id = 1; id < num_nodes; ++id) {
      rank_supports_[node_rank_[id]] += node_count_[id];
      rank_nodes_[cursor[node_rank_[id]]++] = static_cast<uint32_t>(id);
    }
  }

  ranks_by_support_.resize(num_ranks);
  std::iota(ranks_by_support_.begin(), ranks_by_support_.end(), 0);
  std::sort(ranks_by_support_.begin(), ranks_by_support_.end(),
            [&](uint32_t a, uint32_t b) {
              if (rank_supports_[a] != rank_supports_[b]) {
                return rank_supports_[a] > rank_supports_[b];
              }
              return a < b;
            });
}

uint32_t FpTree::FindChild(uint32_t node, uint32_t rank) const {
  const auto kids = Children(node);
  auto it = std::lower_bound(kids.begin(), kids.end(), rank,
                             [&](uint32_t child, uint32_t r) {
                               return node_rank_[child] < r;
                             });
  if (it != kids.end() && node_rank_[*it] == rank) return *it;
  return kNil;
}

FpTree FpTree::ConditionalTree(uint32_t rank, uint64_t min_support) const {
  // Pass 1: conditional supports of every rank occurring on prefix paths,
  // streamed over the contiguous per-rank node index. Only ranks < `rank`
  // can appear above a `rank` node (paths strictly ascend).
  BuildScratch& scratch = TlsScratch();
  std::vector<uint64_t>& cond_support = scratch.cond_support;
  cond_support.assign(rank, 0);
  for (uint32_t n : NodesOfRank(rank)) {
    const uint64_t c = node_count_[n];
    for (uint32_t p = node_parent_[n]; p != 0; p = node_parent_[p]) {
      cond_support[node_rank_[p]] += c;
    }
  }

  FpTree cond;
  // Monotone remap: surviving ranks keep their relative order, so the
  // bottom-up walks below emit rank-sorted paths (or their packed keys)
  // directly.
  std::vector<uint32_t>& remap = scratch.remap;
  remap.assign(rank, kNil);
  for (uint32_t r = 0; r < rank; ++r) {
    if (cond_support[r] >= min_support) {
      remap[r] = static_cast<uint32_t>(cond.rank_items_.size());
      cond.rank_items_.push_back(rank_items_[r]);
    }
  }

  if (cond.rank_items_.size() <= 64) {
    // Packed path: OR the surviving ranks into one key per prefix path.
    std::vector<std::pair<uint64_t, uint64_t>>& keyed = scratch.keyed;
    keyed.clear();
    for (uint32_t n : NodesOfRank(rank)) {
      uint64_t key = 0;
      for (uint32_t p = node_parent_[n]; p != 0; p = node_parent_[p]) {
        const uint32_t nr = remap[node_rank_[p]];
        if (nr != kNil) key |= uint64_t{1} << (63 - nr);
      }
      if (key != 0) keyed.emplace_back(key, node_count_[n]);
    }
    cond.BuildFromKeys(keyed);
    return cond;
  }

  // Pass 2: extract the filtered prefix paths. A node→root walk visits
  // ranks strictly descending, so appending the path buffer reversed
  // yields an ascending path — no per-path sort.
  std::vector<uint32_t>& data = scratch.data;
  std::vector<PathRef>& paths = scratch.paths;
  std::vector<uint32_t>& path = scratch.path;
  data.clear();
  paths.clear();
  for (uint32_t n : NodesOfRank(rank)) {
    path.clear();
    for (uint32_t p = node_parent_[n]; p != 0; p = node_parent_[p]) {
      const uint32_t nr = remap[node_rank_[p]];
      if (nr != kNil) path.push_back(nr);
    }
    if (path.empty()) continue;
    paths.push_back(PathRef{data.size(), static_cast<uint32_t>(path.size()),
                            node_count_[n]});
    data.insert(data.end(), path.rbegin(), path.rend());
  }
  cond.BuildFromPaths(data, paths);
  return cond;
}

}  // namespace privbasis
