#include "fim/eclat.h"

#include <algorithm>

#include "data/vertical_index.h"

namespace privbasis {

namespace {

/// One equivalence-class member during the DFS: an extension item and the
/// tid-list of prefix ∪ {item}.
struct ClassMember {
  Item item;
  std::vector<uint32_t> tids;
};

struct EclatContext {
  const MiningOptions* options;
  std::vector<FrequentItemset>* out;
  bool aborted = false;
};

/// Sorted-list intersection (both inputs ascending).
std::vector<uint32_t> IntersectTids(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Depth-first expansion of one equivalence class: every member extends
/// the shared prefix; pairs of members form the child classes.
void Expand(const std::vector<ClassMember>& members, std::vector<Item>* prefix,
            EclatContext* ctx) {
  if (ctx->aborted) return;
  for (size_t i = 0; i < members.size(); ++i) {
    prefix->push_back(members[i].item);
    ctx->out->push_back(FrequentItemset{Itemset(std::vector<Item>(*prefix)),
                                        members[i].tids.size()});
    if (ctx->options->max_patterns != 0 &&
        ctx->out->size() > ctx->options->max_patterns) {
      ctx->aborted = true;
      prefix->pop_back();
      return;
    }
    const bool at_cap = ctx->options->max_length != 0 &&
                        prefix->size() >= ctx->options->max_length;
    if (!at_cap) {
      std::vector<ClassMember> children;
      for (size_t j = i + 1; j < members.size(); ++j) {
        std::vector<uint32_t> tids =
            IntersectTids(members[i].tids, members[j].tids);
        if (tids.size() >= ctx->options->min_support) {
          children.push_back(ClassMember{members[j].item, std::move(tids)});
        }
      }
      if (!children.empty()) Expand(children, prefix, ctx);
    }
    prefix->pop_back();
    if (ctx->aborted) return;
  }
}

}  // namespace

Result<MiningResult> MineEclat(const TransactionDatabase& db,
                               const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  MiningResult result;

  VerticalIndex index(db);
  std::vector<ClassMember> roots;
  for (Item it = 0; it < db.UniverseSize(); ++it) {
    if (db.ItemSupports()[it] >= options.min_support) {
      auto tids = index.TidList(it);
      roots.push_back(
          ClassMember{it, std::vector<uint32_t>(tids.begin(), tids.end())});
    }
  }
  std::vector<Item> prefix;
  EclatContext ctx{&options, &result.itemsets, false};
  Expand(roots, &prefix, &ctx);
  if (ctx.aborted) {
    result.itemsets.clear();
    result.aborted = true;
    return result;
  }
  SortCanonical(&result.itemsets);
  return result;
}

}  // namespace privbasis
