#include "fim/eclat.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"
#include "data/vertical_index.h"

namespace privbasis {

namespace {

/// One equivalence-class member during the DFS: an extension item and the
/// tid-list of prefix ∪ {item}.
struct ClassMember {
  Item item;
  std::vector<uint32_t> tids;
};

struct EclatContext {
  const MiningOptions* options;
  std::vector<FrequentItemset>* out;
  /// Per-task pattern cap: max_patterns + 1 (0 = unbounded). One pattern
  /// past the global cap proves the global cap is exceeded, so each task
  /// can stop there and stay deterministic under any thread count.
  uint64_t local_cap = 0;
  bool truncated = false;
  /// Shared across tasks: flips once options->cancel fires; every task
  /// then unwinds through the same truncated early-exit path.
  std::atomic<bool>* cancelled = nullptr;
};

/// Sorted-list intersection (both inputs ascending).
std::vector<uint32_t> IntersectTids(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Depth-first expansion of member `i` of one equivalence class: it
/// extends the shared prefix; pairs with later members form the child
/// class.
void ExpandMember(const std::vector<ClassMember>& members, size_t i,
                  std::vector<Item>* prefix, EclatContext* ctx) {
  if (ctx->cancelled->load(std::memory_order_relaxed) ||
      IsCancelled(ctx->options->cancel)) {
    ctx->cancelled->store(true, std::memory_order_relaxed);
    ctx->truncated = true;
    return;
  }
  prefix->push_back(members[i].item);
  ctx->out->push_back(FrequentItemset{Itemset(std::vector<Item>(*prefix)),
                                      members[i].tids.size()});
  if (ctx->local_cap != 0 && ctx->out->size() >= ctx->local_cap) {
    ctx->truncated = true;
    prefix->pop_back();
    return;
  }
  const bool at_cap = ctx->options->max_length != 0 &&
                      prefix->size() >= ctx->options->max_length;
  if (!at_cap) {
    std::vector<ClassMember> children;
    for (size_t j = i + 1; j < members.size(); ++j) {
      std::vector<uint32_t> tids =
          IntersectTids(members[i].tids, members[j].tids);
      if (tids.size() >= ctx->options->min_support) {
        children.push_back(ClassMember{members[j].item, std::move(tids)});
      }
    }
    for (size_t j = 0; j < children.size() && !ctx->truncated; ++j) {
      ExpandMember(children, j, prefix, ctx);
    }
  }
  prefix->pop_back();
}

}  // namespace

Result<MiningResult> MineEclat(const TransactionDatabase& db,
                               const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  MiningResult result;

  VerticalIndex index(db, {.num_threads = options.num_threads});
  std::vector<ClassMember> roots;
  for (Item it = 0; it < db.UniverseSize(); ++it) {
    if (db.ItemSupports()[it] >= options.min_support) {
      auto tids = index.TidList(it);
      roots.push_back(
          ClassMember{it, std::vector<uint32_t>(tids.begin(), tids.end())});
    }
  }

  // Each root equivalence class is one pool task with its own output
  // buffer; buffers merge in root order and the merged set is canonically
  // sorted, so the result is identical at every thread count.
  const size_t threads = EffectiveThreads(options.num_threads);
  const uint64_t local_cap =
      options.max_patterns == 0 ? 0 : options.max_patterns + 1;
  std::vector<std::vector<FrequentItemset>> buffers(roots.size());
  std::atomic<bool> cancelled{false};
  ThreadPool::Global().ParallelFor(
      0, roots.size(), 1, threads, [&](size_t, size_t, size_t r) {
        EclatContext ctx{&options, &buffers[r], local_cap, false, &cancelled};
        std::vector<Item> prefix;
        ExpandMember(roots, r, &prefix, &ctx);
      });
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("eclat mine cancelled mid-scan");
  }

  size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  result.itemsets.reserve(total);
  for (auto& buffer : buffers) {
    result.itemsets.insert(result.itemsets.end(),
                           std::make_move_iterator(buffer.begin()),
                           std::make_move_iterator(buffer.end()));
  }
  SortCanonical(&result.itemsets);
  // A task that hit its local cap alone exceeds max_patterns, so the size
  // check detects truncation without any cross-task signalling.
  if (options.max_patterns != 0 &&
      result.itemsets.size() > options.max_patterns) {
    result.itemsets.resize(
        std::min<size_t>(result.itemsets.size(), options.max_patterns));
    result.aborted = true;
  }
  return result;
}

}  // namespace privbasis
