#include "fim/apriori.h"

#include <algorithm>
#include <span>
#include <unordered_set>

namespace privbasis {

namespace {

/// Joins two sorted k-itemsets sharing their first k−1 items into a
/// (k+1)-candidate; returns false when they do not share the prefix.
bool JoinPrefix(const Itemset& a, const Itemset& b, std::vector<Item>* out) {
  const size_t k = a.size();
  for (size_t i = 0; i + 1 < k; ++i) {
    if (a[i] != b[i]) return false;
  }
  if (a[k - 1] >= b[k - 1]) return false;
  out->assign(a.begin(), a.end());
  out->push_back(b[k - 1]);
  return true;
}

/// Downward-closure check: every k-subset of `candidate` must be frequent.
bool AllSubsetsFrequent(
    const std::vector<Item>& candidate,
    const std::unordered_set<std::vector<Item>, ItemVectorHash>& frequent) {
  std::vector<Item> sub(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    size_t j = 0;
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) sub[j++] = candidate[i];
    }
    if (!frequent.contains(sub)) return false;
  }
  return true;
}

}  // namespace

Result<MiningResult> MineApriori(const TransactionDatabase& db,
                                 const MiningOptions& options) {
  VerticalIndex index(db);
  return MineApriori(db, index, options);
}

Result<MiningResult> MineApriori(const TransactionDatabase& db,
                                 const VerticalIndex& index,
                                 const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  MiningResult result;

  // Level 1 from the precomputed item supports.
  std::vector<FrequentItemset> level;
  for (Item it = 0; it < db.UniverseSize(); ++it) {
    uint64_t sup = db.ItemSupports()[it];
    if (sup >= options.min_support) {
      level.push_back(FrequentItemset{Itemset{it}, sup});
    }
  }
  std::sort(level.begin(), level.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });

  size_t level_num = 1;
  while (!level.empty()) {
    for (auto& fi : level) result.itemsets.push_back(fi);
    if (options.max_patterns != 0 &&
        result.itemsets.size() > options.max_patterns) {
      // Truncation contract: keep the canonically first max_patterns of
      // the patterns collected before the abort.
      SortCanonical(&result.itemsets);
      result.itemsets.resize(options.max_patterns);
      result.aborted = true;
      return result;
    }
    if (options.max_length != 0 && level_num >= options.max_length) break;

    // Hash of this level for the prune step.
    std::unordered_set<std::vector<Item>, ItemVectorHash> frequent;
    frequent.reserve(level.size() * 2);
    for (const auto& fi : level) frequent.insert(fi.items.items());

    // Join step: pairs sharing a (k−1)-prefix. `level` is sorted
    // lexicographically, so joinable partners are contiguous. Candidates
    // batch into bounded chunks counted by one SupportOfMany call each —
    // the pool fans the queries out and reuses the per-thread query
    // scratch instead of paying one dispatch per candidate, while the
    // chunk cap keeps the level-2 all-pairs join (every pair of frequent
    // items is a candidate) from materializing O(F²) itemsets at once.
    constexpr size_t kCandidateChunk = 1 << 16;
    std::vector<Itemset> candidates;
    std::vector<uint64_t> supports;
    std::vector<FrequentItemset> next;
    // A fired cancel token stops the batch mid-chunk; the partially
    // counted supports are discarded with the whole level.
    auto flush = [&]() -> Status {
      supports.resize(candidates.size());
      index.SupportOfMany(candidates, std::span<uint64_t>(supports),
                          options.num_threads, options.cancel);
      if (IsCancelled(options.cancel)) {
        return Status::Cancelled("apriori mine cancelled mid-scan");
      }
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (supports[c] >= options.min_support) {
          next.push_back(
              FrequentItemset{std::move(candidates[c]), supports[c]});
        }
      }
      candidates.clear();
      return Status::OK();
    };
    std::vector<Item> candidate;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (!JoinPrefix(level[i].items, level[j].items, &candidate)) break;
        if (!AllSubsetsFrequent(candidate, frequent)) continue;
        candidates.push_back(Itemset::FromSorted(candidate));
        if (candidates.size() >= kCandidateChunk) {
          PRIVBASIS_RETURN_NOT_OK(flush());
        }
      }
    }
    PRIVBASIS_RETURN_NOT_OK(flush());
    level = std::move(next);
    ++level_num;
  }

  SortCanonical(&result.itemsets);
  return result;
}

}  // namespace privbasis
