#include "fim/closed.h"

#include <unordered_map>
#include <unordered_set>

#include "fim/fpgrowth.h"

namespace privbasis {

std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& frequent) {
  std::unordered_map<Itemset, uint64_t, ItemsetHash> support;
  std::unordered_set<Item> items;
  support.reserve(frequent.size() * 2);
  for (const auto& fi : frequent) {
    support.emplace(fi.items, fi.support);
    for (Item it : fi.items) items.insert(it);
  }
  std::vector<FrequentItemset> closed;
  for (const auto& fi : frequent) {
    bool is_closed = true;
    for (Item it : items) {
      if (fi.items.Contains(it)) continue;
      auto found = support.find(fi.items.With(it));
      if (found != support.end() && found->second == fi.support) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(fi);
  }
  SortCanonical(&closed);
  return closed;
}

Result<std::vector<FrequentItemset>> MineClosed(const TransactionDatabase& db,
                                                uint64_t min_support) {
  MiningOptions options;
  options.min_support = min_support;
  auto mined = MineFpGrowth(db, options);
  if (!mined.ok()) return mined.status();
  return FilterClosed(mined->itemsets);
}

uint64_t SupportFromClosed(const std::vector<FrequentItemset>& closed,
                           const Itemset& itemset) {
  uint64_t best = 0;
  for (const auto& fi : closed) {
    if (fi.support > best && itemset.IsSubsetOf(fi.items)) {
      best = fi.support;
    }
  }
  return best;
}

}  // namespace privbasis
