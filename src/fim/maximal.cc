#include "fim/maximal.h"

#include <unordered_set>

#include "fim/fpgrowth.h"

namespace privbasis {

std::vector<FrequentItemset> FilterMaximal(
    const std::vector<FrequentItemset>& frequent) {
  std::unordered_set<Itemset, ItemsetHash> all;
  std::unordered_set<Item> items;
  all.reserve(frequent.size() * 2);
  for (const auto& fi : frequent) {
    all.insert(fi.items);
    for (Item it : fi.items) items.insert(it);
  }
  std::vector<FrequentItemset> maximal;
  for (const auto& fi : frequent) {
    bool is_maximal = true;
    for (Item it : items) {
      if (fi.items.Contains(it)) continue;
      if (all.contains(fi.items.With(it))) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.push_back(fi);
  }
  SortCanonical(&maximal);
  return maximal;
}

Result<std::vector<FrequentItemset>> MineMaximal(const TransactionDatabase& db,
                                                 uint64_t min_support) {
  MiningOptions options;
  options.min_support = min_support;
  auto mined = MineFpGrowth(db, options);
  if (!mined.ok()) return mined.status();
  return FilterMaximal(mined->itemsets);
}

}  // namespace privbasis
