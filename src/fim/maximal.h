// Maximal frequent itemsets: θ-frequent itemsets with no θ-frequent
// superset. The paper's Proposition 3 shows they form the minimum-length
// θ-basis set; we use them to validate Algorithm 2's clique-based
// over-approximation.
#ifndef PRIVBASIS_FIM_MAXIMAL_H_
#define PRIVBASIS_FIM_MAXIMAL_H_

#include "common/status.h"
#include "data/transaction_db.h"
#include "fim/miner.h"

namespace privbasis {

/// Filters a complete θ-frequent collection down to its maximal members.
/// `frequent` must contain *all* itemsets with support ≥ θ (any order).
/// By downward closure, X is maximal iff no single-item extension of X is
/// in the collection, which this checks against a hash set.
std::vector<FrequentItemset> FilterMaximal(
    const std::vector<FrequentItemset>& frequent);

/// Mines all θ-frequent itemsets (via FP-Growth) and keeps the maximal
/// ones. Canonical order.
Result<std::vector<FrequentItemset>> MineMaximal(const TransactionDatabase& db,
                                                 uint64_t min_support);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_MAXIMAL_H_
