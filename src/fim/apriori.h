// Apriori (Agrawal & Srikant, VLDB'94): level-wise candidate generation
// with downward-closure pruning; support counting through the vertical
// index. Kept as the second exact miner — FP-Growth's cross-check oracle —
// and for the pedagogical example.
#ifndef PRIVBASIS_FIM_APRIORI_H_
#define PRIVBASIS_FIM_APRIORI_H_

#include "common/status.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "fim/miner.h"

namespace privbasis {

/// Mines all itemsets with support ≥ options.min_support (length ≤
/// options.max_length if set). On exceeding options.max_patterns it
/// returns the truncated set with result.aborted per the MiningResult
/// contract. Results are in canonical order.
Result<MiningResult> MineApriori(const TransactionDatabase& db,
                                 const MiningOptions& options);

/// Variant reusing a prebuilt vertical index (avoids rebuilding it when
/// the caller mines repeatedly).
Result<MiningResult> MineApriori(const TransactionDatabase& db,
                                 const VerticalIndex& index,
                                 const MiningOptions& options);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_APRIORI_H_
