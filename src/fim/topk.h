// Exact top-k frequent-itemset mining with a dynamically rising support
// threshold (the TFP idea): a bounded best-k pool raises the pruning bar
// as better patterns arrive, so dense datasets never trigger a full
// low-threshold enumeration.
//
// This provides the ground truth the evaluation compares against, plus
// the exact fk / λ / λ2 / λ3 statistics of the paper's Table 2.
#ifndef PRIVBASIS_FIM_TOPK_H_
#define PRIVBASIS_FIM_TOPK_H_

#include <cstdint>

#include "common/status.h"
#include "data/transaction_db.h"
#include "fim/miner.h"

namespace privbasis {

/// Result of exact top-k mining.
struct TopKResult {
  /// Exactly min(k, #itemsets with support ≥ 1) itemsets in canonical
  /// order (descending support; ties by ascending length, then items).
  std::vector<FrequentItemset> itemsets;
  /// Support of the last (k-th) returned itemset; 0 when empty.
  uint64_t kth_support = 0;
};

/// Mines the exact top-k itemsets under the canonical order.
/// `max_length` of 0 = unbounded. Ties at the k-th position are broken
/// canonically, so the result is deterministic. Root conditional trees
/// run as thread-pool tasks sharing the rising threshold (`num_threads`,
/// 0 = the PRIVBASIS_THREADS env knob); pruning only ever skips branches
/// strictly below the final threshold, so the result is identical at
/// every thread count. A fired `cancel` token unwinds the mine with
/// kCancelled at the next branch boundary (common/cancel.h).
Result<TopKResult> MineTopK(const TransactionDatabase& db, size_t k,
                            size_t max_length = 0, size_t num_threads = 0,
                            const CancelToken* cancel = nullptr);

/// Statistics of a top-k collection, as reported in Table 2(a).
struct TopKStats {
  uint32_t lambda = 0;    ///< unique items across the top-k itemsets
  uint32_t lambda2 = 0;   ///< number of pairs among the top-k itemsets
  uint32_t lambda3 = 0;   ///< number of size-3 itemsets among the top-k
  uint64_t fk_count = 0;  ///< absolute support of the k-th itemset (fk·N)
};

/// Computes λ/λ2/λ3/fk·N from a mined top-k list.
TopKStats ComputeTopKStats(const std::vector<FrequentItemset>& topk);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_TOPK_H_
