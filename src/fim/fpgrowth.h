// FP-Growth: pattern mining by recursive conditional FP-tree projection.
// The production exact miner — no candidate generation, output-sensitive.
#ifndef PRIVBASIS_FIM_FPGROWTH_H_
#define PRIVBASIS_FIM_FPGROWTH_H_

#include "common/status.h"
#include "data/transaction_db.h"
#include "fim/fptree.h"
#include "fim/miner.h"

namespace privbasis {

/// Mines all itemsets with support ≥ options.min_support (length ≤
/// options.max_length if set). On exceeding options.max_patterns it
/// returns the truncated set with result.aborted per the MiningResult
/// contract. Results are in canonical order.
Result<MiningResult> MineFpGrowth(const TransactionDatabase& db,
                                  const MiningOptions& options);

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_FPGROWTH_H_
