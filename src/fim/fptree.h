// FP-tree (Han et al., "Mining frequent patterns without candidate
// generation"): a prefix tree over transactions with items reordered by
// descending support, plus per-item node chains ("header table") for
// conditional-pattern-base extraction.
#ifndef PRIVBASIS_FIM_FPTREE_H_
#define PRIVBASIS_FIM_FPTREE_H_

#include <cstdint>
#include <vector>

#include "data/transaction_db.h"

namespace privbasis {

/// Immutable FP-tree. Items are referenced by *rank*: the index into this
/// tree's frequent-item table, rank 0 = most frequent. Conditional trees
/// re-rank their own frequent items.
class FpTree {
 public:
  /// Sentinel parent/child/sibling index.
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Node {
    uint32_t rank;           ///< item rank within this tree
    uint32_t parent;         ///< node index; kNil for root children... root=0
    uint32_t first_child;
    uint32_t next_sibling;
    uint32_t next_same_rank; ///< header chain
    uint64_t count;
  };

  /// Builds the global tree over all transactions, keeping only items with
  /// support ≥ min_support.
  FpTree(const TransactionDatabase& db, uint64_t min_support);

  /// Number of distinct frequent items (= number of ranks).
  size_t NumRanks() const { return rank_items_.size(); }

  /// True when the tree holds no frequent item.
  bool Empty() const { return rank_items_.empty(); }

  /// The item id behind `rank`.
  Item ItemAt(uint32_t rank) const { return rank_items_[rank]; }

  /// Total support of `rank`'s item within this tree (for conditional
  /// trees: support conditioned on the suffix).
  uint64_t SupportAt(uint32_t rank) const { return rank_supports_[rank]; }

  /// Builds the conditional FP-tree of `rank`: the tree of prefix paths of
  /// every node carrying `rank`, filtered to conditional support ≥
  /// min_support. Item ids are preserved; ranks are re-assigned.
  FpTree ConditionalTree(uint32_t rank, uint64_t min_support) const;

  /// Number of allocated nodes (diagnostics / benchmarks).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  FpTree() = default;

  /// Inserts a rank-sorted (ascending) path with multiplicity `count`.
  void InsertPath(const std::vector<uint32_t>& ranks, uint64_t count);

  std::vector<Node> nodes_;          // nodes_[0] is the root
  std::vector<Item> rank_items_;     // rank -> item id
  std::vector<uint64_t> rank_supports_;  // rank -> in-tree support
  std::vector<uint32_t> headers_;    // rank -> first node in chain (kNil none)
};

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_FPTREE_H_
