// FP-tree (Han et al., "Mining frequent patterns without candidate
// generation"): a prefix tree over transactions with items reordered by
// descending support, plus a per-rank node index for conditional-pattern-
// base extraction.
//
// Cache-conscious arena layout: transactions are filtered to rank paths,
// sorted lexicographically, and merged into a struct-of-arrays node arena
// in DFS pre-order — construction never chases sibling pointers. Children
// are a CSR index sorted by rank (binary-searchable); the header chains of
// the textbook layout are replaced by a contiguous per-rank node index, so
// conditional-pattern-base extraction streams over a flat array.
// Conditional re-ranking is monotone in the parent ranking, which lets the
// bottom-up prefix-path walk emit rank-sorted paths directly (no per-path
// sort); miners that need descending-support iteration use the
// RanksBySupport() permutation instead.
#ifndef PRIVBASIS_FIM_FPTREE_H_
#define PRIVBASIS_FIM_FPTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/transaction_db.h"

namespace privbasis {

/// Immutable FP-tree. Items are referenced by *rank*: the index into this
/// tree's frequent-item table. The global tree ranks by descending
/// support (rank 0 = most frequent); conditional trees keep the relative
/// order of their parent's surviving ranks. Along every root-to-leaf path
/// ranks strictly ascend.
class FpTree {
 public:
  /// Sentinel node/rank index.
  static constexpr uint32_t kNil = 0xffffffffu;

  /// Builds the global tree over all transactions, keeping only items with
  /// support ≥ min_support. Construction fans the filter/map pass over the
  /// thread pool (num_threads 0 = the PRIVBASIS_THREADS env knob); the
  /// tree is identical at every thread count.
  FpTree(const TransactionDatabase& db, uint64_t min_support,
         size_t num_threads = 0);

  /// Number of distinct frequent items (= number of ranks).
  size_t NumRanks() const { return rank_items_.size(); }

  /// True when the tree holds no frequent item.
  bool Empty() const { return rank_items_.empty(); }

  /// The item id behind `rank`.
  Item ItemAt(uint32_t rank) const { return rank_items_[rank]; }

  /// Total support of `rank`'s item within this tree (for conditional
  /// trees: support conditioned on the suffix).
  uint64_t SupportAt(uint32_t rank) const { return rank_supports_[rank]; }

  /// Ranks ordered by descending SupportAt (ties: ascending rank). Top-k
  /// mining iterates this order so its monotone prune stays exact; the
  /// global tree's permutation is the identity.
  const std::vector<uint32_t>& RanksBySupport() const {
    return ranks_by_support_;
  }

  /// Builds the conditional FP-tree of `rank`: the tree of prefix paths of
  /// every node carrying `rank`, filtered to conditional support ≥
  /// min_support. Item ids are preserved; ranks are re-assigned (keeping
  /// the relative order of surviving ranks).
  FpTree ConditionalTree(uint32_t rank, uint64_t min_support) const;

  /// Number of allocated nodes including the root (diagnostics / tests).
  size_t NumNodes() const { return node_rank_.size(); }

  /// Node 0 is the root (rank kNil, parent kNil, count 0).
  uint32_t NodeRank(uint32_t node) const { return node_rank_[node]; }
  uint32_t NodeParent(uint32_t node) const { return node_parent_[node]; }
  uint64_t NodeCount(uint32_t node) const { return node_count_[node]; }

  /// Children of `node` in ascending-rank order (CSR slice).
  std::span<const uint32_t> Children(uint32_t node) const {
    return std::span<const uint32_t>(
        children_.data() + child_offsets_[node],
        children_.data() + child_offsets_[node + 1]);
  }

  /// The child of `node` carrying `rank`, or kNil. Binary search over the
  /// rank-sorted child slice.
  uint32_t FindChild(uint32_t node, uint32_t rank) const;

  /// Every node carrying `rank`, as one contiguous ascending slice
  /// (replaces the textbook header chains).
  std::span<const uint32_t> NodesOfRank(uint32_t rank) const {
    return std::span<const uint32_t>(
        rank_nodes_.data() + rank_node_offsets_[rank],
        rank_nodes_.data() + rank_node_offsets_[rank + 1]);
  }

  /// A rank path inside a flat arena, with multiplicity (construction
  /// detail, public only for the reusable build scratch).
  struct PathRef {
    uint64_t offset;
    uint32_t length;
    uint64_t count;
  };

 private:
  FpTree() = default;

  /// Sorts `paths` (rank sequences inside `data`, each ascending) and
  /// merges them into the node arena, then builds the children and
  /// per-rank CSR indexes, rank supports, and the support permutation.
  /// Requires rank_items_ to be set.
  void BuildFromPaths(const std::vector<uint32_t>& data,
                      std::vector<PathRef>& paths);

  /// Same, but for trees with ≤ 64 ranks: each path is packed into one
  /// 64-bit key (rank r ↦ bit 63−r) with a multiplicity. Descending key
  /// order is hierarchically grouped (every shared prefix is a contiguous
  /// key range, children emerge in ascending rank order), so the merge
  /// runs on integer compares — no path arena, no per-path sort.
  void BuildFromKeys(std::vector<std::pair<uint64_t, uint64_t>>& keyed);

  /// BuildFromKeys for multiplicity-1 keys (the global tree): sorts the
  /// raw 8-byte keys and run-length-encodes duplicates before merging.
  void BuildFromRawKeys(std::vector<uint64_t>& keys);

  /// Stack-merges (key, count) runs already in descending key order.
  void MergeSortedKeyed(
      const std::vector<std::pair<uint64_t, uint64_t>>& keyed);

  /// Node-arena merge + index construction shared by the builders.
  void FinishIndexes();

  // Struct-of-arrays node arena in DFS pre-order; index 0 is the root.
  std::vector<uint32_t> node_rank_;
  std::vector<uint32_t> node_parent_;
  std::vector<uint64_t> node_count_;
  // CSR children, each slice sorted by child rank.
  std::vector<uint64_t> child_offsets_;
  std::vector<uint32_t> children_;
  // Contiguous per-rank node index.
  std::vector<uint64_t> rank_node_offsets_;
  std::vector<uint32_t> rank_nodes_;

  std::vector<Item> rank_items_;         // rank -> item id
  std::vector<uint64_t> rank_supports_;  // rank -> in-tree support
  std::vector<uint32_t> ranks_by_support_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_FIM_FPTREE_H_
