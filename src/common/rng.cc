#include "common/rng.h"

namespace privbasis {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(&sm);
  // A zero state would be a fixed point of the engine; SplitMix64 cannot
  // produce four zero outputs in a row, so no further check is needed.
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (0, 1]: shift the [0, 1) lattice up by one ulp step.
  return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased, usually one mult.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::ForkStream(uint64_t stream) const {
  // Fold the full 256-bit state and the stream index through SplitMix64;
  // const on the parent so shards can be seeded concurrently.
  uint64_t sm = stream ^ 0xd1b54a32d192ed03ULL;
  for (uint64_t word : s_) {
    sm ^= word;
    sm = SplitMix64Next(&sm);
  }
  return Rng(sm);
}

Rng Rng::Fork() {
  // Mix two fresh outputs into a child seed; advances this stream so
  // successive forks differ.
  uint64_t a = Next();
  uint64_t b = Next();
  return Rng(a ^ Rotl(b, 31) ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace privbasis
