#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdio>

#include "common/env.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PRIVBASIS_X86 1
#else
#define PRIVBASIS_X86 0
#endif

namespace privbasis::simd {

namespace detail {

uint64_t AndPopcountScalar(const uint64_t* a, const uint64_t* b,
                           size_t words) {
  uint64_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

uint64_t AndPopcountManyScalar(const uint64_t* const* lists, size_t k,
                               size_t words) {
  uint64_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t acc = lists[0][w];
    for (size_t j = 1; j < k && acc != 0; ++j) acc &= lists[j][w];
    total += static_cast<uint64_t>(std::popcount(acc));
  }
  return total;
}

void AndIntoScalar(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] &= src[w];
}

uint64_t OrGatherWordsScalar(const uint64_t* table, const uint32_t* idx,
                             size_t n) {
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc |= table[idx[i]];
  return acc;
}

#if PRIVBASIS_X86

// AVX2 has no 64-bit lane popcount; use the classic nibble-LUT (pshufb)
// counter with a horizontal byte-sum per 256-bit vector (Mula's method).
__attribute__((target("avx2"))) static inline __m256i PopcountEpi64(
    __m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) static inline uint64_t HorizontalSum(
    __m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

__attribute__((target("avx2"))) uint64_t AndPopcountAvx2(const uint64_t* a,
                                                         const uint64_t* b,
                                                         size_t words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, PopcountEpi64(_mm256_and_si256(va, vb)));
  }
  uint64_t total = HorizontalSum(acc);
  for (; w < words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

__attribute__((target("avx2"))) uint64_t AndPopcountManyAvx2(
    const uint64_t* const* lists, size_t k, size_t words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lists[0] + w));
    for (size_t j = 1; j < k; ++j) {
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(lists[j] + w)));
    }
    acc = _mm256_add_epi64(acc, PopcountEpi64(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; w < words; ++w) {
    uint64_t v = lists[0][w];
    for (size_t j = 1; j < k && v != 0; ++j) v &= lists[j][w];
    total += static_cast<uint64_t>(std::popcount(v));
  }
  return total;
}

__attribute__((target("avx2"))) void AndIntoAvx2(uint64_t* dst,
                                                 const uint64_t* src,
                                                 size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(vd, vs));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

__attribute__((target("avx2"))) uint64_t OrGatherWordsAvx2(
    const uint64_t* table, const uint32_t* idx, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_or_si256(
        acc, _mm256_i32gather_epi64(
                 reinterpret_cast<const long long*>(table), vi, 8));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i folded = _mm_or_si128(lo, hi);
  uint64_t word = static_cast<uint64_t>(_mm_extract_epi64(folded, 0)) |
                  static_cast<uint64_t>(_mm_extract_epi64(folded, 1));
  for (; i < n; ++i) word |= table[idx[i]];
  return word;
}

#endif  // PRIVBASIS_X86

}  // namespace detail

namespace {

Level DetectLevel() {
  const std::string mode = GetEnvString("PRIVBASIS_SIMD", "");
  if (mode == "scalar") return Level::kScalar;
  if (mode == "avx2") {
    if (Avx2Supported()) return Level::kAvx2;
    std::fprintf(stderr,
                 "privbasis: PRIVBASIS_SIMD=avx2 requested but AVX2 is "
                 "unavailable; falling back to scalar\n");
    return Level::kScalar;
  }
  if (!mode.empty()) {
    // A typo here would silently poison A/B comparisons — say so loudly.
    std::fprintf(stderr,
                 "privbasis: unrecognized PRIVBASIS_SIMD=\"%s\" (expected "
                 "\"avx2\" or \"scalar\"); using auto-detection\n",
                 mode.c_str());
  }
  return Avx2Supported() ? Level::kAvx2 : Level::kScalar;
}

std::atomic<Level>& ActiveLevelSlot() {
  static std::atomic<Level> level{DetectLevel()};
  return level;
}

}  // namespace

bool Avx2Supported() {
#if PRIVBASIS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level ActiveLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

Level SetLevel(Level level) {
  if (level == Level::kAvx2 && !Avx2Supported()) level = Level::kScalar;
  return ActiveLevelSlot().exchange(level, std::memory_order_relaxed);
}

uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t words) {
#if PRIVBASIS_X86
  if (ActiveLevel() == Level::kAvx2) {
    return detail::AndPopcountAvx2(a, b, words);
  }
#endif
  return detail::AndPopcountScalar(a, b, words);
}

uint64_t AndPopcountMany(const uint64_t* const* lists, size_t k,
                         size_t words) {
  if (k == 1) return AndPopcount(lists[0], lists[0], words);
#if PRIVBASIS_X86
  if (ActiveLevel() == Level::kAvx2) {
    return detail::AndPopcountManyAvx2(lists, k, words);
  }
#endif
  return detail::AndPopcountManyScalar(lists, k, words);
}

void AndInto(uint64_t* dst, const uint64_t* src, size_t words) {
#if PRIVBASIS_X86
  if (ActiveLevel() == Level::kAvx2) {
    detail::AndIntoAvx2(dst, src, words);
    return;
  }
#endif
  detail::AndIntoScalar(dst, src, words);
}

uint64_t OrGatherWords(const uint64_t* table, const uint32_t* idx, size_t n) {
#if PRIVBASIS_X86
  if (ActiveLevel() == Level::kAvx2) {
    return detail::OrGatherWordsAvx2(table, idx, n);
  }
#endif
  return detail::OrGatherWordsScalar(table, idx, n);
}

}  // namespace privbasis::simd
