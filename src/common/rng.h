// Deterministic, splittable random number generation.
//
// The library threads an explicit Rng through every randomized component so
// experiments are exactly reproducible from a single seed. The engine is
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64,
// which also powers Fork(): child streams are decorrelated from the parent
// without sharing state.
#ifndef PRIVBASIS_COMMON_RNG_H_
#define PRIVBASIS_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace privbasis {

/// SplitMix64 step: advances `state` and returns the next output. Used for
/// seeding and stream splitting.
uint64_t SplitMix64Next(uint64_t* state);

/// xoshiro256** pseudo-random engine wrapped with convenience sampling
/// methods. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs an engine whose full 256-bit state is expanded from `seed`
  /// with SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1] — never returns 0; safe as a log() argument.
  double NextDoubleOpen();

  /// Uniform integer in [0, bound) via Lemire's unbiased method.
  /// `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives an independent child stream. Deterministic: the i-th Fork()
  /// from a given parent state is always the same stream.
  Rng Fork();

  /// Derives the `stream`-th child stream *without* advancing this engine.
  /// The same (parent state, stream) pair always yields the same child, so
  /// shard-indexed streams stay reproducible under any thread count.
  Rng ForkStream(uint64_t stream) const;

 private:
  uint64_t s_[4];
};

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_RNG_H_
