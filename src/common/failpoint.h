// Failpoints: deliberate fault injection at named sites in the durable-IO
// paths, so crash recovery is a *tested* code path instead of a hope.
//
// A site is a string literal compiled into the production code
// (e.g. "wal_append", "snapshot_rename"). With no failpoints armed the
// per-site check is one relaxed atomic load — cheap enough to leave in
// release builds, which is the point: the binary CI crash-tests is the
// binary that ships.
//
// Activation, either way:
//   * environment: PRIVBASIS_FAILPOINTS="wal_append=error:ENOSPC@1,
//     snapshot_write=torn:12" (read once, at first use);
//   * programmatic (tests): failpoint::Configure("wal_sync=error:EIO"),
//     failpoint::Reset().
//
// Spec grammar (comma-separated `site=action` terms):
//   site=error:<ENOSPC|EIO|errno-int>   fail the IO with that errno
//   site=torn:<n>                       write only n bytes, then fail EIO
//   site=sleep:<ms>                     delay (recovery-window tests)
//   site=crash                          _exit(137) — a kill -9 at the site
// Any action takes an optional `@k` suffix: the first k hits pass
// through untouched, every later hit triggers (a full disk stays full).
#ifndef PRIVBASIS_COMMON_FAILPOINT_H_
#define PRIVBASIS_COMMON_FAILPOINT_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace privbasis::failpoint {

/// What a triggered site should do. Interpreted by the IO wrappers in
/// store/io.cc (kError/kTorn) and directly by Hit() (kSleep/kCrash).
struct Action {
  enum class Kind { kNone, kError, kTorn, kSleep, kCrash };
  Kind kind = Kind::kNone;
  /// kError: the errno to surface.
  int err = 0;
  /// kTorn: bytes to actually write; kSleep: milliseconds.
  size_t arg = 0;

  bool triggered() const { return kind != Kind::kNone; }
};

/// Replaces the active configuration (including anything armed from the
/// environment). Fails with kInvalidArgument on grammar errors, leaving
/// the previous configuration in place.
Status Configure(const std::string& spec);

/// Disarms every failpoint (env-derived ones included).
void Reset();

/// Registers one hit at `site` and returns the action to apply. kSleep
/// is performed inside Hit() itself; kCrash calls _exit(137) and does
/// not return; kError/kTorn are returned for the caller's IO wrapper to
/// apply. When nothing is armed this is a single relaxed atomic load.
Action Hit(const char* site);

}  // namespace privbasis::failpoint

#endif  // PRIVBASIS_COMMON_FAILPOINT_H_
