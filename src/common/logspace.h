// Log-space numerics for the exponential mechanism.
//
// Exponential-mechanism weights look like exp(ε·N·q/2) with counts in the
// millions; they cannot be formed in double precision. Everything here
// operates on log-weights and stays finite.
#ifndef PRIVBASIS_COMMON_LOGSPACE_H_
#define PRIVBASIS_COMMON_LOGSPACE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace privbasis {

/// log(exp(a) + exp(b)) without overflow. Handles −inf identities.
double LogAddExp(double a, double b);

/// log(Σ exp(x_i)) without overflow. Returns −inf for an empty vector.
double LogSumExp(const std::vector<double>& xs);

/// Samples an index with P(i) ∝ exp(log_weights[i]) using the Gumbel-max
/// trick: argmax_i (log w_i + G_i). Exact (up to floating point) and
/// single-pass. Requires a non-empty vector with at least one finite entry.
size_t SampleLogWeights(Rng& rng, const std::vector<double>& log_weights);

/// Streaming Gumbel-max sampler: feed (key, log_weight) pairs one at a
/// time; Winner() is distributed ∝ exp(log_weight). Lets callers sample
/// over candidate sets too large to materialize.
class GumbelMaxSampler {
 public:
  explicit GumbelMaxSampler(Rng* rng);

  /// Considers one candidate. `log_weight` of −inf is skipped.
  void Offer(size_t key, double log_weight);

  /// Considers `count` candidates sharing one log-weight in aggregate: the
  /// maximum of `count` iid Gumbels shifted by `log_weight` is a single
  /// Gumbel shifted by `log_weight + log(count)`. The winning key is
  /// `group_key`; the caller resolves which member won afterwards
  /// (uniformly at random, by exchangeability).
  void OfferGroup(size_t group_key, double log_weight, double count);

  bool HasWinner() const { return has_winner_; }
  size_t WinnerKey() const { return winner_key_; }
  double WinnerScore() const { return best_score_; }

 private:
  Rng* rng_;
  bool has_winner_ = false;
  size_t winner_key_ = 0;
  double best_score_ = 0.0;
};

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_LOGSPACE_H_
