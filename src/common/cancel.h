// CancelToken: cooperative cancellation for long-running scans.
//
// A token is a sticky flag plus an optional absolute wall deadline. The
// server arms one per query from the client's deadline_ms and threads a
// pointer through Engine::Run into the shard loops of every miner and
// the BasisFreq scan; each loop polls `Cancelled()` once per chunk of
// work and unwinds with StatusCode::kCancelled when it fires. Polling
// is cheap — one relaxed atomic load, and a clock read only until the
// deadline first trips (the flag is sticky, so a fired token never
// reads the clock again).
//
// Cancellation is advisory, never preemptive: a scan stops at the next
// chunk boundary, so budget semantics stay simple — a query cancelled
// after its BudgetLease was acquired charges the full reservation via
// the normal aborted-lease path (engine/accountant.h), exactly like any
// other mid-run failure.
#ifndef PRIVBASIS_COMMON_CANCEL_H_
#define PRIVBASIS_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace privbasis {

class CancelToken {
 public:
  /// A token that only fires on an explicit Cancel() call.
  CancelToken() = default;

  /// A token that additionally fires once `deadline` passes.
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  /// Convenience: a deadline `ms` milliseconds from now.
  static CancelToken AfterMs(int64_t ms) {
    return CancelToken(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms));
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token. Sticky; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the token has fired (explicitly or by deadline).
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True when the token carries a wall deadline (vs explicit-only).
  bool has_deadline() const { return has_deadline_; }

  /// The absolute deadline; meaningless unless has_deadline(). The shard
  /// planner reads this to propagate the REMAINING time to shard workers
  /// as a per-request deadline_ms.
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// OK until the token fires, then kCancelled.
  Status Check() const {
    if (Cancelled()) {
      return Status::Cancelled(
          has_deadline_ ? "query deadline expired mid-run"
                        : "query cancelled");
    }
    return Status::OK();
  }

 private:
  // Sticky-flag promotion from the deadline happens inside const
  // Cancelled(); benign race — every writer stores true.
  mutable std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Null-safe poll for the `const CancelToken*` plumbed through options
/// structs (nullptr = not cancellable, the overwhelmingly common case).
inline bool IsCancelled(const CancelToken* token) {
  return token != nullptr && token->Cancelled();
}

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_CANCEL_H_
