// Minimal JSON value model, parser, and writer — the wire substrate of
// the query server (server/wire.h) and the JSON release archive format
// (eval/release_io.h). No third-party dependency.
//
// Design constraints, in order:
//   1. Lossless numbers. Integral literals are kept as int64/uint64 (so a
//      uint64 seed survives a round trip bit for bit); doubles are
//      written with the shortest decimal form that parses back to the
//      identical bits — a served Release re-parsed by the test harness
//      compares bit-identical to the in-process one.
//   2. Deterministic output. Objects preserve insertion order and Dump is
//      pure, so golden-file tests can compare serialized bytes.
//   3. Strict, bounded parsing. Malformed input returns kInvalidArgument
//      with position info (never a crash), nesting is depth-limited, and
//      the caller bounds input size (the server's max body check).
//
// Non-finite doubles have no JSON spelling; Dump writes them as `null`
// (documented at the one call site that can produce them: an unlimited
// budget's remaining ε).
#ifndef PRIVBASIS_COMMON_JSON_H_
#define PRIVBASIS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace privbasis::json {

class Value;

/// Object member storage: insertion-ordered (deterministic Dump), linear
/// lookup — wire objects have at most a few dozen keys.
using Member = std::pair<std::string, Value>;

/// One JSON value. Construction is implicit from the natural C++ types;
/// accessors are checked (reading the wrong type returns an error, never
/// UB) because wire input is untrusted.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::vector<Member>;

  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  /// Any integral type, widened to int64 (signed) or uint64 (unsigned) —
  /// one template so size_t/uint32_t/... never hit an ambiguous overload.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Value(T i) {                                       // NOLINT
    if constexpr (std::is_signed_v<T>) {
      data_ = static_cast<int64_t>(i);
    } else {
      data_ = static_cast<uint64_t>(i);
    }
  }
  Value(double d) : data_(d) {}                      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  Type type() const;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  /// True for any numeric storage (int64, uint64, or double).
  bool is_number() const;
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  // --- checked accessors (wire input is untrusted) ----------------------

  Result<bool> GetBool() const;
  /// Any numeric storage, converted to double.
  Result<double> GetDouble() const;
  /// Integral storage (or a double with an exact integral value) in
  /// [0, 2^64); negative values and fractions fail.
  Result<uint64_t> GetUint() const;
  Result<std::string> GetString() const;
  Result<const Array*> GetArray() const;
  Result<const Object*> GetObject() const;

  // --- object helpers ---------------------------------------------------

  /// Member lookup; nullptr when absent (or when *this is not an object).
  const Value* Find(std::string_view key) const;

  /// Appends a member (object storage is created on a null value).
  void Set(std::string key, Value value);

  /// Serializes compactly (no whitespace). Deterministic: object members
  /// in insertion order, numbers in canonical shortest-round-trip form.
  std::string Dump() const;

  bool operator==(const Value& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, int64_t, uint64_t, double, std::string,
               Array, Object>
      data_;
};

/// Parses one JSON document (object, array, or scalar). Trailing
/// non-whitespace, unterminated literals, bad escapes, and nesting beyond
/// `max_depth` all fail with kInvalidArgument and a byte offset.
Result<Value> Parse(std::string_view text, size_t max_depth = 64);

/// Escapes `s` as a JSON string literal including the surrounding quotes
/// (the building block Dump uses; exposed for ad-hoc emitters).
std::string EscapeString(std::string_view s);

}  // namespace privbasis::json

#endif  // PRIVBASIS_COMMON_JSON_H_
