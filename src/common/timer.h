// Wall-clock timer for the experiment harness's runtime columns.
#ifndef PRIVBASIS_COMMON_TIMER_H_
#define PRIVBASIS_COMMON_TIMER_H_

#include <chrono>

namespace privbasis {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_TIMER_H_
