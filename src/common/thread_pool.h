// Fixed-size thread pool behind the parallel counting engine.
//
// Design constraints, in order:
//   1. Determinism. Work is decomposed into *shards* whose boundaries
//      depend only on (range, grain) — never on the thread count — so a
//      shard-indexed reduction (or a per-shard RNG stream derived with
//      Rng::ForkStream) produces bit-identical results at any
//      parallelism, including 1.
//   2. No work stealing, no task dependencies: every parallel region is a
//      flat shard set drained via one atomic cursor. The calling thread
//      always participates, so a pool with zero workers degrades to the
//      plain sequential loop (and `PRIVBASIS_THREADS=1` is exactly the
//      pre-parallel code path).
//   3. Reentrancy. A shard may itself call ParallelFor; the inner call
//      runs inline on the worker to bound thread fan-out.
#ifndef PRIVBASIS_COMMON_THREAD_POOL_H_
#define PRIVBASIS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace privbasis {

/// Clamp ceiling for every thread-count knob.
inline constexpr size_t kMaxThreads = 64;

/// Resolves a thread-count request: `requested` if nonzero, else the
/// PRIVBASIS_THREADS env knob, else std::thread::hardware_concurrency().
/// Always in [1, kMaxThreads].
size_t EffectiveThreads(size_t requested);

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every parallel
  /// region then runs inline on the caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumWorkers() const PB_EXCLUDES(mu_);

  /// Process-wide pool. Grows its worker set on demand up to
  /// kMaxThreads − 1, so the first caller does not fix the ceiling.
  static ThreadPool& Global();

  /// Invokes fn(shard_begin, shard_end, shard_index) for every shard of
  /// [begin, end) with at most `grain` elements per shard. Shard
  /// decomposition depends only on (begin, end, grain). At most
  /// `parallelism` (0 = EffectiveThreads(0)) shards run concurrently;
  /// parallelism 1 executes shards in index order on the caller. Blocks
  /// until all shards finish; rethrows the first shard exception.
  void ParallelFor(size_t begin, size_t end, size_t grain, size_t parallelism,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// Runs every task, at most `parallelism` concurrently; blocks until all
  /// complete. Task index order is the sequential (parallelism 1) order.
  void RunAll(const std::vector<std::function<void()>>& tasks,
              size_t parallelism = 0);

  /// Enqueues one detached task (the query server's connection handoff).
  /// Unlike the fork-join entry points this does not block; the task runs
  /// whenever a worker frees up. Requires a pool with ≥ 1 worker (a
  /// zero-worker pool has nothing to ever run it). Tasks still queued at
  /// destruction are executed before the workers join — a submitted task
  /// is never silently dropped.
  void Submit(std::function<void()> task);

  /// Bounded-queue Submit: enqueues only when fewer than
  /// `max_queue_depth` detached tasks are already waiting, else returns
  /// false without enqueueing — the caller sheds the work immediately
  /// instead of building an unbounded backlog behind a saturated pool.
  /// An accepted task has the same never-dropped guarantee as Submit.
  bool TrySubmit(std::function<void()> task, size_t max_queue_depth);

  /// Detached tasks currently queued (not yet picked up by a worker).
  /// A load signal for admission control; instantaneous, not a fence.
  size_t QueueDepth() const;

 private:
  void WorkerLoop() PB_EXCLUDES(mu_);
  void EnsureWorkers(size_t target) PB_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ PB_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ PB_GUARDED_BY(mu_);
  /// Set once by Global() before the pool is shared; immutable after.
  bool growable_ = false;
  bool stop_ PB_GUARDED_BY(mu_) = false;
};

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_THREAD_POOL_H_
