#include "common/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace privbasis::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Milliseconds until `deadline`, clamped for poll(): 0 when already
/// passed, -1 (infinite) for NoDeadline.
int PollTimeoutMs(Deadline deadline) {
  if (deadline == Deadline::max()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return static_cast<int>(std::min<int64_t>(ms + 1, 1 << 30));
}

Status DeadlineExceeded(const char* op) {
  return Status::ResourceExhausted(std::string("deadline exceeded during ") +
                                   op);
}

/// Waits for `events` on fd. Returns true when ready, false on deadline.
Result<bool> PollFor(int fd, short events, Deadline deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;  // timed out
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only — the server binds loopback/interface addresses,
  // not names; keeping getaddrinfo out avoids blocking DNS in tests.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Deadline NoDeadline() { return Deadline::max(); }

Deadline DeadlineAfterMs(int64_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Fd::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Result<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  PRIVBASIS_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  PRIVBASIS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> LocalPort(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Fd> AcceptWithDeadline(const Fd& listen_fd, Deadline deadline) {
  for (;;) {
    PRIVBASIS_ASSIGN_OR_RETURN(bool ready,
                               PollFor(listen_fd.get(), POLLIN, deadline));
    if (!ready) return Fd();  // deadline: caller re-checks its stop flag
    const int conn = ::accept(listen_fd.get(), nullptr, nullptr);
    if (conn >= 0) {
      Fd fd(conn);
      // accept() does not inherit O_NONBLOCK; ReadSome/WriteAll rely on
      // it to honor deadlines.
      PRIVBASIS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
      // Request/response round trips are latency-bound: disable Nagle.
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // raced with another accept or a client hangup
    }
    return Errno("accept");
  }
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      Deadline deadline) {
  PRIVBASIS_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  PRIVBASIS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    return fd;
  }
  if (errno != EINPROGRESS) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  PRIVBASIS_ASSIGN_OR_RETURN(bool ready,
                             PollFor(fd.get(), POLLOUT, deadline));
  if (!ready) return DeadlineExceeded("connect");
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<bool> PollReadable(const Fd& fd, Deadline deadline) {
  return PollFor(fd.get(), POLLIN, deadline);
}

Result<size_t> ReadSome(const Fd& fd, char* buf, size_t len,
                        Deadline deadline) {
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return Errno("recv");
    PRIVBASIS_ASSIGN_OR_RETURN(bool ready,
                               PollFor(fd.get(), POLLIN, deadline));
    if (!ready) return DeadlineExceeded("read");
  }
}

Result<Fd> AcceptNonBlocking(const Fd& listen_fd) {
  for (;;) {
    const int conn = ::accept(listen_fd.get(), nullptr, nullptr);
    if (conn >= 0) {
      Fd fd(conn);
      PRIVBASIS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

Result<ReadEvent> ReadAvailable(const Fd& fd, std::string* buffer,
                                size_t max_bytes) {
  char chunk[16384];
  const size_t want = std::min(max_bytes, sizeof(chunk));
  for (;;) {
    const ssize_t n = ::recv(fd.get(), chunk, want, 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      return ReadEvent::kData;
    }
    if (n == 0) return ReadEvent::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return ReadEvent::kWouldBlock;
    }
    return Errno("recv");
  }
}

Result<size_t> WriteSome(const Fd& fd, std::string_view data) {
  for (;;) {
    const ssize_t n =
        ::send(fd.get(), data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send");
  }
}

namespace {

uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Result<Epoll> Epoll::Create() {
  Fd epfd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epfd.valid()) return Errno("epoll_create1");
  return Epoll(std::move(epfd));
}

Status Epoll::Add(const Fd& fd, bool want_read, bool want_write,
                  uint64_t tag) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd.get(), &ev) < 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status Epoll::Mod(const Fd& fd, bool want_read, bool want_write,
                  uint64_t tag) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd.get(), &ev) < 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status Epoll::Del(const Fd& fd) {
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd.get(), nullptr) < 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status Epoll::Wait(int timeout_ms, std::vector<EpollEvent>* events) {
  events->clear();
  epoll_event raw[64];
  for (;;) {
    const int n = ::epoll_wait(epfd_.get(), raw,
                               static_cast<int>(std::size(raw)), timeout_ms);
    if (n >= 0) {
      events->reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        EpollEvent ev;
        ev.tag = raw[i].data.u64;
        ev.readable = (raw[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
        ev.writable = (raw[i].events & EPOLLOUT) != 0;
        ev.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        events->push_back(ev);
      }
      return Status::OK();
    }
    if (errno == EINTR) continue;
    return Errno("epoll_wait");
  }
}

Result<WakeupFd> WakeupFd::Create() {
  Fd fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!fd.valid()) return Errno("eventfd");
  return WakeupFd(std::move(fd));
}

void WakeupFd::Signal() const {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(fd_.get(), &one, sizeof(one));
}

void WakeupFd::Drain() const {
  uint64_t count = 0;
  [[maybe_unused]] const ssize_t n =
      ::read(fd_.get(), &count, sizeof(count));
}

Status WriteAll(const Fd& fd, std::string_view data, Deadline deadline) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd.get(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Errno("send");
    }
    PRIVBASIS_ASSIGN_OR_RETURN(bool ready,
                               PollFor(fd.get(), POLLOUT, deadline));
    if (!ready) return DeadlineExceeded("write");
  }
  return Status::OK();
}

}  // namespace privbasis::net
