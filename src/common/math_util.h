// Small numeric helpers shared across subsystems: log-binomials for TF's
// candidate-space size |U| ≈ Σ C(|I|, i), summary statistics for the
// experiment harness, and saturating integer binomials.
#ifndef PRIVBASIS_COMMON_MATH_UTIL_H_
#define PRIVBASIS_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace privbasis {

/// log(n!) via lgamma. n ≥ 0.
double LogFactorial(uint64_t n);

/// log C(n, k); −inf when k > n.
double LogChoose(uint64_t n, uint64_t k);

/// C(n, k) saturating at UINT64_MAX on overflow.
uint64_t ChooseSaturating(uint64_t n, uint64_t k);

/// log(Σ_{i=1..m} C(n, i)) — the log-size of the TF candidate space U.
double LogCandidateSpaceSize(uint64_t n, uint64_t m);

/// The exact value of `x += 1.0` applied `k` times under IEEE round-to-
/// nearest — in O(number of power-of-two crossings), not O(k). Lets a
/// sharded counter reduce integer counts and still reproduce a sequential
/// floating-point accumulation bit-for-bit.
double AddOnesSequentially(double x, uint64_t k);

/// Arithmetic mean. Empty input returns 0.
double Mean(const std::vector<double>& xs);

/// Median (of a copy; does not reorder the input). Empty input returns 0.
double Median(std::vector<double> xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double SampleStdDev(const std::vector<double>& xs);

/// Standard error of the mean: stddev / sqrt(n); 0 for fewer than two.
double StandardError(const std::vector<double>& xs);

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_MATH_UTIL_H_
