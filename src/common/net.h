// Thin POSIX TCP helpers under the query server (server/http.h) and its
// in-process clients (tests, bench_smoke's server_latency phase): listen
// with ephemeral-port support, connect with timeout, and deadline-bounded
// read/write built on poll(2). No buffering or protocol knowledge — that
// lives in server/http.
//
// Every blocking operation takes an absolute steady_clock deadline rather
// than a per-call timeout, so one request-scoped deadline bounds an
// arbitrary number of partial reads/writes (the server's per-request
// deadline contract).
#ifndef PRIVBASIS_COMMON_NET_H_
#define PRIVBASIS_COMMON_NET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace privbasis::net {

using Deadline = std::chrono::steady_clock::time_point;

/// A deadline that never fires (for trusted in-process peers).
Deadline NoDeadline();

/// Deadline `ms` milliseconds from now.
Deadline DeadlineAfterMs(int64_t ms);

/// Owning file-descriptor handle (closes on destruction; move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { Close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes now (idempotent).
  void Close();
  /// Releases ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `host:port` (SO_REUSEADDR,
/// non-blocking accept via poll). port 0 binds an ephemeral port — read
/// it back with LocalPort.
Result<Fd> ListenTcp(const std::string& host, uint16_t port,
                     int backlog = 128);

/// The locally bound port of a socket (after ListenTcp with port 0).
Result<uint16_t> LocalPort(const Fd& fd);

/// Accepts one connection, waiting until `deadline`. Returns an invalid
/// Fd (not an error) on deadline expiry so accept loops can poll a stop
/// flag between waits.
Result<Fd> AcceptWithDeadline(const Fd& listen_fd, Deadline deadline);

/// Connects to `host:port`, failing once `deadline` passes.
Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      Deadline deadline);

/// Reads up to `len` bytes. Returns 0 on orderly EOF; blocks (via poll)
/// until data, EOF, or the deadline. Deadline expiry is
/// kDeadlineExceeded-like: Status kResourceExhausted("deadline ...").
Result<size_t> ReadSome(const Fd& fd, char* buf, size_t len,
                        Deadline deadline);

/// Waits (without consuming) until `fd` is readable — data or EOF.
/// Returns false on deadline expiry, so idle loops can interleave a
/// stop-flag check between short waits instead of parking in one long
/// poll.
Result<bool> PollReadable(const Fd& fd, Deadline deadline);

/// Writes all of `data` before `deadline` or fails.
Status WriteAll(const Fd& fd, std::string_view data, Deadline deadline);

}  // namespace privbasis::net

#endif  // PRIVBASIS_COMMON_NET_H_
