// Thin POSIX TCP helpers under the query server (server/http.h) and its
// in-process clients (tests, bench_smoke's server_latency phase): listen
// with ephemeral-port support, connect with timeout, and deadline-bounded
// read/write built on poll(2). No buffering or protocol knowledge — that
// lives in server/http.
//
// Every blocking operation takes an absolute steady_clock deadline rather
// than a per-call timeout, so one request-scoped deadline bounds an
// arbitrary number of partial reads/writes (the server's per-request
// deadline contract).
#ifndef PRIVBASIS_COMMON_NET_H_
#define PRIVBASIS_COMMON_NET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace privbasis::net {

using Deadline = std::chrono::steady_clock::time_point;

/// A deadline that never fires (for trusted in-process peers).
Deadline NoDeadline();

/// Deadline `ms` milliseconds from now.
Deadline DeadlineAfterMs(int64_t ms);

/// Owning file-descriptor handle (closes on destruction; move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { Close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes now (idempotent).
  void Close();
  /// Releases ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `host:port` (SO_REUSEADDR,
/// non-blocking accept via poll). port 0 binds an ephemeral port — read
/// it back with LocalPort.
Result<Fd> ListenTcp(const std::string& host, uint16_t port,
                     int backlog = 128);

/// The locally bound port of a socket (after ListenTcp with port 0).
Result<uint16_t> LocalPort(const Fd& fd);

/// Accepts one connection, waiting until `deadline`. Returns an invalid
/// Fd (not an error) on deadline expiry so accept loops can poll a stop
/// flag between waits.
Result<Fd> AcceptWithDeadline(const Fd& listen_fd, Deadline deadline);

/// Connects to `host:port`, failing once `deadline` passes.
Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      Deadline deadline);

/// Reads up to `len` bytes. Returns 0 on orderly EOF; blocks (via poll)
/// until data, EOF, or the deadline. Deadline expiry is
/// kDeadlineExceeded-like: Status kResourceExhausted("deadline ...").
Result<size_t> ReadSome(const Fd& fd, char* buf, size_t len,
                        Deadline deadline);

/// Waits (without consuming) until `fd` is readable — data or EOF.
/// Returns false on deadline expiry, so idle loops can interleave a
/// stop-flag check between short waits instead of parking in one long
/// poll.
Result<bool> PollReadable(const Fd& fd, Deadline deadline);

/// Writes all of `data` before `deadline` or fails.
Status WriteAll(const Fd& fd, std::string_view data, Deadline deadline);

// ---------------------------------------------------------------------
// Readiness-loop primitives (the server's epoll event loop). Unlike the
// deadline-blocking helpers above, these never park the calling thread:
// one I/O thread multiplexes every connection fd and timers are the
// loop's own job.

/// Accepts one pending connection without blocking. Returns an invalid
/// Fd when none is pending (EAGAIN) — not an error. Accepted fds are
/// non-blocking with TCP_NODELAY, exactly as AcceptWithDeadline.
Result<Fd> AcceptNonBlocking(const Fd& listen_fd);

/// One non-blocking read pass: what happened on the socket.
enum class ReadEvent {
  kData,        ///< ≥ 1 byte appended to the buffer
  kWouldBlock,  ///< nothing pending; wait for readiness
  kEof,         ///< orderly close from the peer
};

/// Appends up to `max_bytes` available bytes to `buffer` without
/// blocking (one recv call).
Result<ReadEvent> ReadAvailable(const Fd& fd, std::string* buffer,
                                size_t max_bytes);

/// One non-blocking write pass: bytes sent (0 = socket buffer full,
/// wait for writability).
Result<size_t> WriteSome(const Fd& fd, std::string_view data);

/// One epoll readiness report, tagged with the caller's 64-bit key.
struct EpollEvent {
  uint64_t tag = 0;
  bool readable = false;
  bool writable = false;
  /// EPOLLERR/EPOLLHUP: the connection is dead or half-dead; reads will
  /// report it precisely, so callers may simply treat it as readable.
  bool error = false;
};

/// Thin epoll(7) wrapper (level-triggered). Move-only, owns the epoll fd.
class Epoll {
 public:
  Epoll() = default;
  static Result<Epoll> Create();

  bool valid() const { return epfd_.valid(); }

  /// Registers `fd` with read/write interest under `tag`.
  Status Add(const Fd& fd, bool want_read, bool want_write, uint64_t tag);
  /// Updates interest for an already registered fd.
  Status Mod(const Fd& fd, bool want_read, bool want_write, uint64_t tag);
  /// Unregisters `fd` (required before closing a still-registered fd
  /// only when it was dup'ed; harmless otherwise).
  Status Del(const Fd& fd);

  /// Waits up to `timeout_ms` (-1 = indefinitely) and appends ready
  /// events to `events` (cleared first). EINTR retries internally.
  Status Wait(int timeout_ms, std::vector<EpollEvent>* events);

 private:
  explicit Epoll(Fd epfd) : epfd_(std::move(epfd)) {}
  Fd epfd_;
};

/// eventfd-backed cross-thread wakeup for an epoll loop: Signal() from
/// any thread makes fd() readable; the loop Drain()s it and re-checks
/// its queues. Signal/Drain are async-safe and idempotent.
class WakeupFd {
 public:
  WakeupFd() = default;
  static Result<WakeupFd> Create();

  bool valid() const { return fd_.valid(); }
  const Fd& fd() const { return fd_; }

  void Signal() const;
  void Drain() const;

 private:
  explicit WakeupFd(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

}  // namespace privbasis::net

#endif  // PRIVBASIS_COMMON_NET_H_
