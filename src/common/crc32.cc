#include "common/crc32.h"

#include <array>

namespace privbasis {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once at first
// use (constexpr so it can live in rodata).
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  uint32_t crc = ~seed;
  for (unsigned char byte : bytes) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

}  // namespace privbasis
