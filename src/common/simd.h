// Vectorized kernel layer for the counting engine's innermost loops.
//
// Every kernel has a scalar implementation and (on x86-64) an AVX2 one;
// the dispatched entry points pick an implementation once per process,
// from CPU detection overridable with the PRIVBASIS_SIMD env knob
// ("avx2" | "scalar"). All kernels are exact integer computations, so the
// implementations are bit-identical — the knob is a pure performance
// (and A/B testing) switch, like PRIVBASIS_THREADS.
//
// Users: data/vertical_index (dense bitmap intersections), core/basis_freq
// (packed-mask transaction scan), and anything else that ANDs 64-bit
// words in bulk.
#ifndef PRIVBASIS_COMMON_SIMD_H_
#define PRIVBASIS_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace privbasis::simd {

enum class Level {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when this build and CPU can execute the AVX2 kernels.
bool Avx2Supported();

/// The level the dispatched kernels run at: AVX2 when supported, unless
/// PRIVBASIS_SIMD overrides. Resolved once, then cached.
Level ActiveLevel();

/// "scalar" / "avx2".
const char* LevelName(Level level);

/// Forces the dispatch level (tests / A-B benches). kAvx2 requires
/// Avx2Supported(). Returns the previous level.
Level SetLevel(Level level);

/// popcount(a & b) over `words` 64-bit words.
uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t words);

/// popcount(lists[0] & lists[1] & ... & lists[k-1]) over `words` words,
/// fused: no intermediate bitmap is materialized. k must be >= 1.
uint64_t AndPopcountMany(const uint64_t* const* lists, size_t k,
                         size_t words);

/// dst[w] &= src[w] for w in [0, words).
void AndInto(uint64_t* dst, const uint64_t* src, size_t words);

/// Fused masked-accumulate: OR-reduction of table[idx[i]] for i in
/// [0, n). This is the per-transaction membership-mask kernel behind the
/// BasisFreq packed scan (each index is an item id, each table word the
/// item's precomputed basis-membership bits).
uint64_t OrGatherWords(const uint64_t* table, const uint32_t* idx, size_t n);

// Direct (undispatched) variants, exposed for equivalence tests and A/B
// micro benches. The Avx2 variants must only be called when
// Avx2Supported() is true.
namespace detail {
uint64_t AndPopcountScalar(const uint64_t* a, const uint64_t* b,
                           size_t words);
uint64_t AndPopcountManyScalar(const uint64_t* const* lists, size_t k,
                               size_t words);
void AndIntoScalar(uint64_t* dst, const uint64_t* src, size_t words);
uint64_t OrGatherWordsScalar(const uint64_t* table, const uint32_t* idx,
                             size_t n);
#if defined(__x86_64__) || defined(__i386__)
uint64_t AndPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t words);
uint64_t AndPopcountManyAvx2(const uint64_t* const* lists, size_t k,
                             size_t words);
void AndIntoAvx2(uint64_t* dst, const uint64_t* src, size_t words);
uint64_t OrGatherWordsAvx2(const uint64_t* table, const uint32_t* idx,
                           size_t n);
#endif
}  // namespace detail

}  // namespace privbasis::simd

#endif  // PRIVBASIS_COMMON_SIMD_H_
