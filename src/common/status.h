// Status / Result<T>: lightweight error propagation in the Arrow/RocksDB
// idiom. The library never throws across its public API; fallible
// operations return Status (or Result<T> when they produce a value).
#ifndef PRIVBASIS_COMMON_STATUS_H_
#define PRIVBASIS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace privbasis {

/// Broad category of an error. Mirrors the subset of absl/arrow codes the
/// library actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  /// A privacy-budget ledger would be overdrawn by the requested spend.
  kBudgetExhausted = 8,
  /// The service cannot answer yet (e.g. ledger replay in progress after
  /// a restart) — retryable, maps to HTTP 503.
  kUnavailable = 9,
  /// The caller gave up (deadline expired or explicit cancel) and a
  /// cooperative scan unwound early — maps to HTTP 408.
  kCancelled = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a (code, message) pair.
///
/// Cheap to copy in the OK case (a single enum); error messages are stored
/// out-of-line only when present.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error wrapper. `Result<T>` holds either a `T` or a non-OK
/// Status. Accessing the value of an errored result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller (statement macro).
#define PRIVBASIS_RETURN_NOT_OK(expr)       \
  do {                                      \
    ::privbasis::Status _st = (expr);       \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define PRIVBASIS_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto PRIVBASIS_CONCAT_(_res_, __LINE__) = (rexpr);   \
  if (!PRIVBASIS_CONCAT_(_res_, __LINE__).ok())        \
    return PRIVBASIS_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(PRIVBASIS_CONCAT_(_res_, __LINE__)).value()

#define PRIVBASIS_CONCAT_INNER_(a, b) a##b
#define PRIVBASIS_CONCAT_(a, b) PRIVBASIS_CONCAT_INNER_(a, b)

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_STATUS_H_
