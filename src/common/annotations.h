// Clang thread-safety annotations + annotated mutex shims.
//
// Every shared-state class in the tree declares WHICH lock guards WHICH
// field (`PB_GUARDED_BY`) and WHICH lock a private helper expects held
// (`PB_REQUIRES`), so the locking discipline that the DP invariants rest
// on — the Accountant ledger, the WAL, the Dataset memo cells, the
// batching rendezvous — is machine-checked at compile time instead of
// hoped-for at review time. Under clang with `-Wthread-safety
// -Werror=thread-safety` (the `PRIVBASIS_ANALYZE` CMake option and the
// static-analysis CI job) an unguarded access is a build failure; under
// every other compiler the macros expand to nothing and `Mutex` /
// `MutexLock` / `CondVar` are zero-cost shims over std::mutex /
// std::lock_guard / std::condition_variable.
//
// The macro set mirrors the de-facto standard (abseil
// thread_annotations.h), prefixed PB_ to avoid collisions:
//
//   class PB_CAPABILITY("mutex") Mutex;      a lockable capability
//   Mutex mu_;
//   int counter_ PB_GUARDED_BY(mu_);         field needs mu_ held
//   int* cell_ PB_PT_GUARDED_BY(mu_);        pointee needs mu_ held
//   void RebuildLocked() PB_REQUIRES(mu_);   caller must hold mu_
//   void Rebuild() PB_EXCLUDES(mu_);         caller must NOT hold mu_
//   void Lock() PB_ACQUIRE();                function takes the lock
//   void Unlock() PB_RELEASE();              function drops the lock
//
// Condition variables: std::condition_variable needs a std::unique_lock
// over a raw std::mutex, which the analysis cannot see through. CondVar
// below waits directly on a held pb Mutex (adopting its native handle
// for the duration of the wait), so waiting code keeps the same
// `MutexLock lock(mu_); cv_.Wait(mu_, pred)` shape the analysis
// understands.
#ifndef PRIVBASIS_COMMON_ANNOTATIONS_H_
#define PRIVBASIS_COMMON_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define PB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define PB_CAPABILITY(x) PB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define PB_SCOPED_CAPABILITY PB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define PB_GUARDED_BY(x) PB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PB_PT_GUARDED_BY(x) PB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define PB_ACQUIRED_BEFORE(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define PB_ACQUIRED_AFTER(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define PB_REQUIRES(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define PB_REQUIRES_SHARED(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define PB_ACQUIRE(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define PB_RELEASE(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define PB_TRY_ACQUIRE(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define PB_EXCLUDES(...) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define PB_ASSERT_CAPABILITY(x) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define PB_RETURN_CAPABILITY(x) \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define PB_NO_THREAD_SAFETY_ANALYSIS \
  PB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace privbasis {

class CondVar;

/// std::mutex with the capability attribute, so PB_GUARDED_BY(mu_)
/// declarations are checkable. Same size and cost as the std::mutex it
/// wraps; non-recursive, non-movable.
class PB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PB_ACQUIRE() { mu_.lock(); }
  void Unlock() PB_RELEASE() { mu_.unlock(); }
  bool TryLock() PB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope lock over Mutex — the annotated std::lock_guard.
class PB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PB_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() PB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable waiting on a held pb::Mutex. Every Wait* entry
/// point PB_REQUIRES the mutex: the analysis sees the lock held across
/// the wait (which is the invariant the caller relies on — the wait
/// reacquires before returning), and a wait without the lock is a
/// compile error instead of UB.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) PB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) PB_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& tp)
      PB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, tp);
    native.release();
    return status;
  }

  /// Returns pred() — true when the predicate held before `tp` passed.
  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& tp,
                 Pred pred) PB_REQUIRES(mu) {
    while (!pred()) {
      if (WaitUntil(mu, tp) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      PB_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + d);
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d,
               Pred pred) PB_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + d,
                     std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_ANNOTATIONS_H_
