// Samplers for the distributions the library needs: Laplace (the DP noise
// workhorse), exponential, Gumbel (log-space exponential mechanism), Zipf
// (synthetic long-tail item marginals) and weighted discrete choice.
#ifndef PRIVBASIS_COMMON_DISTRIBUTIONS_H_
#define PRIVBASIS_COMMON_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace privbasis {

/// Sample from Laplace(0, scale): density (1/2b)·exp(−|x|/b).
/// `scale` must be > 0.
double SampleLaplace(Rng& rng, double scale);

/// Inverse CDF of Laplace(0, scale) at u ∈ (0, 1).
double LaplaceInverseCdf(double u, double scale);

/// CDF of Laplace(0, scale).
double LaplaceCdf(double x, double scale);

/// Sample from Exponential(rate): density rate·exp(−rate·x), x ≥ 0.
double SampleExponential(Rng& rng, double rate);

/// Sample from the standard Gumbel distribution: −log(−log(U)).
double SampleGumbel(Rng& rng);

/// Weighted discrete choice over non-negative `weights` (linear scan).
/// Returns an index in [0, weights.size()). The total weight must be > 0.
size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

/// Zipf-distributed integers over {0, 1, ..., n−1} with exponent `s`:
/// P(i) ∝ 1/(i+1)^s. Uses Hörmann & Derflinger rejection-inversion, O(1)
/// per sample after O(1) setup, valid for any n (tested to 10^7+) and
/// s > 0, s != 1 handled via the generalized harmonic integral.
class ZipfDistribution {
 public:
  /// `n` must be ≥ 1 and `s` > 0.
  ZipfDistribution(uint64_t n, double s);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Exact probability mass of rank i (O(1) after lazily computing the
  /// normalization on first use — for n up to ~10^7; larger n uses the
  /// integral approximation of the harmonic sum).
  double Pmf(uint64_t i) const;

 private:
  double H(double x) const;         // antiderivative of 1/x^s
  double HInverse(double x) const;  // inverse of H

  uint64_t n_;
  double s_;
  double h_x1_;          // H(1.5) − 1/1^s
  double h_n_;           // H(n + 0.5)
  double norm_;          // lazily computed exact/approx normalization
};

/// Floyd's algorithm: sample `count` distinct integers uniformly from
/// [0, universe). Requires count <= universe. O(count) expected time.
std::vector<uint64_t> SampleDistinct(Rng& rng, uint64_t universe,
                                     size_t count);

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_DISTRIBUTIONS_H_
