// CRC-32 (the IEEE 802.3 / zlib polynomial, reflected) over byte spans —
// the integrity check framing every durable record in src/store. One
// shared implementation so the WAL frame codec, the snapshot format, and
// their golden-file tests can never disagree on the checksum.
#ifndef PRIVBASIS_COMMON_CRC32_H_
#define PRIVBASIS_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace privbasis {

/// CRC-32 of `bytes`, continuing from `seed` (pass the previous return
/// value to checksum discontiguous spans as one stream). The empty-input
/// CRC with the default seed is 0.
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_CRC32_H_
