#include "common/env.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace privbasis {

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  return std::string(v);
}

double BenchScale() {
  return std::clamp(GetEnvDouble("PRIVBASIS_SCALE", 1.0), 0.01, 10.0);
}

int BenchRepeats() {
  return static_cast<int>(
      std::clamp<int64_t>(GetEnvInt("PRIVBASIS_REPEATS", 3), 1, 1000));
}

int NumThreads() {
  const int64_t hw =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  return static_cast<int>(std::clamp<int64_t>(
      GetEnvInt("PRIVBASIS_THREADS", std::max<int64_t>(1, hw)), 1, 64));
}

double BitmapDensityThreshold() {
  return GetEnvDouble("PRIVBASIS_BITMAP_DENSITY", 1.0 / 64.0);
}

int NumShards() {
  return static_cast<int>(
      std::clamp<int64_t>(GetEnvInt("PRIVBASIS_SHARDS", 1), 1, 64));
}

}  // namespace privbasis
