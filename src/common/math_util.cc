#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace privbasis {

double LogFactorial(uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogChoose(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

uint64_t ChooseSaturating(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    uint64_t factor = n - k + i;
    // result = result * factor / i, guarding the multiply.
    if (result > std::numeric_limits<uint64_t>::max() / factor) {
      // Try dividing first; C(n,k) is an integer so result*factor/i is
      // exact when computed as (result/g1)*(factor/g2) with gcd removal.
      uint64_t g = std::gcd(result, i);
      uint64_t r2 = result / g;
      uint64_t i2 = i / g;
      uint64_t g2 = std::gcd(factor, i2);
      uint64_t f2 = factor / g2;
      i2 /= g2;
      assert(i2 == 1);
      if (r2 > std::numeric_limits<uint64_t>::max() / f2) {
        return std::numeric_limits<uint64_t>::max();
      }
      result = r2 * f2;
    } else {
      result = result * factor / i;
    }
  }
  return result;
}

double LogCandidateSpaceSize(uint64_t n, uint64_t m) {
  // logsumexp over log C(n, i), i = 1..m.
  double hi = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  terms.reserve(m);
  for (uint64_t i = 1; i <= m && i <= n; ++i) {
    double lc = LogChoose(n, i);
    terms.push_back(lc);
    hi = std::max(hi, lc);
  }
  if (terms.empty()) return -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - hi);
  return hi + std::log(sum);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double StandardError(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return SampleStdDev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double AddOnesSequentially(double x, uint64_t k) {
  // While |x| stays inside the 53-bit window of its own ulp, every +1.0 is
  // exact, so a whole run of steps collapses into one exact bulk add. Only
  // the step that crosses a power-of-two boundary can round; execute those
  // singly so the hardware applies the exact same rounding the sequential
  // loop would.
  if (!std::isfinite(x)) return x;
  while (k > 0) {
    if (x < 0.0) {
      if (x + 1.0 == x) return x;  // saturated at large negative magnitude
      if (x <= -0x1p53) {
        // ulp ≥ 2: steps round; take them singly (one step either
        // saturates or reaches an even mantissa that saturates next).
        x += 1.0;
        --k;
        continue;
      }
      // Negative values only shrink in magnitude: every step is exact, and
      // steps that keep the value ≤ 0 collapse into a bulk add.
      const double whole = std::floor(-x);
      const uint64_t bulk =
          std::min<uint64_t>(k, static_cast<uint64_t>(whole));
      if (bulk == 0) {
        x += 1.0;
        --k;
      } else {
        x += static_cast<double>(bulk);
        k -= bulk;
      }
      continue;
    }
    if (x + 1.0 == x) return x;  // saturated: no further step changes x
    if (x >= 0x1p53) {
      // ulp ≥ 2: every step rounds; take them singly (a step either
      // saturates or lands on an even mantissa that saturates next).
      x += 1.0;
      --k;
      continue;
    }
    // Largest exact run: stay strictly below the next power of two.
    const double boundary = std::exp2(std::ilogb(std::max(x, 1.0)) + 1);
    const double room = boundary - 1.0 - x;
    const uint64_t bulk = room >= 1.0
                              ? std::min<uint64_t>(k, static_cast<uint64_t>(
                                                          std::floor(room)))
                              : 0;
    if (bulk == 0) {
      x += 1.0;  // boundary-crossing step: correctly rounded by hardware
      --k;
    } else {
      x += static_cast<double>(bulk);
      k -= bulk;
    }
  }
  return x;
}

}  // namespace privbasis
