#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace privbasis::json {

namespace {

/// Shortest decimal form of `d` that strtod parses back to the identical
/// bits. %.15g..%.17g: 17 significant digits always round-trip an IEEE
/// double; fewer are preferred when exact so goldens stay readable.
std::string CanonicalDouble(double d) {
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  // JSON has no distinct integer syntax requirement, but "1e+20" style
  // exponents and "inf"/"nan" must not leak: non-finite handled by the
  // caller, exponents are legal JSON.
  return buf;
}

void DumpArray(const Value::Array& arr, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < arr.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += arr[i].Dump();
  }
  out->push_back(']');
}

void DumpObject(const Value::Object& obj, std::string* out) {
  out->push_back('{');
  for (size_t i = 0; i < obj.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += EscapeString(obj[i].first);
    out->push_back(':');
    *out += obj[i].second.Dump();
  }
  out->push_back('}');
}

}  // namespace

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kUint;
    case 4: return Type::kDouble;
    case 5: return Type::kString;
    case 6: return Type::kArray;
    default: return Type::kObject;
  }
}

bool Value::is_number() const {
  return std::holds_alternative<int64_t>(data_) ||
         std::holds_alternative<uint64_t>(data_) ||
         std::holds_alternative<double>(data_);
}

Result<bool> Value::GetBool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  return Status::InvalidArgument("JSON value is not a bool");
}

Result<double> Value::GetDouble() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  if (const uint64_t* u = std::get_if<uint64_t>(&data_)) {
    return static_cast<double>(*u);
  }
  return Status::InvalidArgument("JSON value is not a number");
}

Result<uint64_t> Value::GetUint() const {
  if (const uint64_t* u = std::get_if<uint64_t>(&data_)) return *u;
  if (const int64_t* i = std::get_if<int64_t>(&data_)) {
    if (*i < 0) {
      return Status::InvalidArgument("JSON value is negative");
    }
    return static_cast<uint64_t>(*i);
  }
  if (const double* d = std::get_if<double>(&data_)) {
    if (*d < 0 || !std::isfinite(*d) || *d != std::floor(*d) ||
        *d >= 18446744073709551616.0) {
      return Status::InvalidArgument(
          "JSON value is not a non-negative integer");
    }
    return static_cast<uint64_t>(*d);
  }
  return Status::InvalidArgument("JSON value is not a number");
}

Result<std::string> Value::GetString() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  return Status::InvalidArgument("JSON value is not a string");
}

Result<const Value::Array*> Value::GetArray() const {
  if (const Array* a = std::get_if<Array>(&data_)) return a;
  return Status::InvalidArgument("JSON value is not an array");
}

Result<const Value::Object*> Value::GetObject() const {
  if (const Object* o = std::get_if<Object>(&data_)) return o;
  return Status::InvalidArgument("JSON value is not an object");
}

const Value* Value::Find(std::string_view key) const {
  const Object* obj = std::get_if<Object>(&data_);
  if (obj == nullptr) return nullptr;
  for (const auto& [name, value] : *obj) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Value::Set(std::string key, Value value) {
  if (is_null()) data_ = Object{};
  std::get<Object>(data_).emplace_back(std::move(key), std::move(value));
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Value::Dump() const {
  std::string out;
  switch (data_.index()) {
    case 0:
      out = "null";
      break;
    case 1:
      out = std::get<bool>(data_) ? "true" : "false";
      break;
    case 2:
      out = std::to_string(std::get<int64_t>(data_));
      break;
    case 3:
      out = std::to_string(std::get<uint64_t>(data_));
      break;
    case 4: {
      const double d = std::get<double>(data_);
      // JSON has no spelling for non-finite values; `null` is the
      // documented encoding (an unlimited budget's remaining ε).
      out = std::isfinite(d) ? CanonicalDouble(d) : "null";
      break;
    }
    case 5:
      out = EscapeString(std::get<std::string>(data_));
      break;
    case 6:
      DumpArray(std::get<Array>(data_), &out);
      break;
    default:
      DumpObject(std::get<Object>(data_), &out);
  }
  return out;
}

// ----------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    PRIVBASIS_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (depth_ > max_depth_) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        PRIVBASIS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++depth_;
    ++pos_;  // '{'
    Value::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Value(std::move(members));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      PRIVBASIS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      PRIVBASIS_ASSIGN_OR_RETURN(Value v, ParseValue());
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return Value(std::move(members));
  }

  Result<Value> ParseArray() {
    ++depth_;
    ++pos_;  // '['
    Value::Array elements;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Value(std::move(elements));
    }
    for (;;) {
      SkipWhitespace();
      PRIVBASIS_ASSIGN_OR_RETURN(Value v, ParseValue());
      elements.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return Value(std::move(elements));
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            PRIVBASIS_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (!ConsumeLiteral("\\u")) {
                return Error("unpaired surrogate");
              }
              PRIVBASIS_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("unpaired surrogate");
            }
            AppendUtf8(code, &out);
            break;
          }
          default:
            return Error("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    bool negative = false;
    if (Consume('-')) negative = true;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    // Leading zero must not be followed by more digits (JSON grammar).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("expected digits after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("expected digits in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (negative) {
        const int64_t v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          return Value(v);
        }
      } else {
        const uint64_t v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          return Value(v);
        }
      }
      // Falls through to double on int64/uint64 overflow.
    }
    const double d = std::strtod(token.c_str(), nullptr);
    return Value(d);
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).ParseDocument();
}

}  // namespace privbasis::json
