#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/env.h"

namespace privbasis {

namespace {

/// Depth of ParallelFor regions on this thread; inner regions run inline.
thread_local int g_parallel_depth = 0;

}  // namespace

size_t EffectiveThreads(size_t requested) {
  if (requested == 0) requested = static_cast<size_t>(NumThreads());
  return std::clamp<size_t>(requested, 1, kMaxThreads);
}

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

size_t ThreadPool::NumWorkers() const {
  MutexLock lock(mu_);
  return workers_.size();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(0);
    p->growable_ = true;
    return p;
  }();
  return *pool;
}

void ThreadPool::EnsureWorkers(size_t target) {
  if (!growable_) return;
  MutexLock lock(mu_);
  target = std::min(target, kMaxThreads - 1);
  while (workers_.size() < target && !stop_) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain, size_t parallelism,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t shards = (end - begin + grain - 1) / grain;
  parallelism = EffectiveThreads(parallelism);

  // Sequential fast path — also taken for nested regions, keeping total
  // thread fan-out bounded by the outermost region's parallelism.
  if (parallelism == 1 || shards == 1 || g_parallel_depth > 0) {
    ++g_parallel_depth;
    for (size_t s = 0; s < shards; ++s) {
      const size_t b = begin + s * grain;
      fn(b, std::min(end, b + grain), s);
    }
    --g_parallel_depth;
    return;
  }

  struct Region {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t begin, end, grain, shards;
    const std::function<void(size_t, size_t, size_t)>* fn;
    Mutex mu;
    CondVar cv;
    std::exception_ptr error PB_GUARDED_BY(mu);
  };
  auto region = std::make_shared<Region>();
  region->begin = begin;
  region->end = end;
  region->grain = grain;
  region->shards = shards;
  region->fn = &fn;

  auto drain = [region] {
    ++g_parallel_depth;
    for (;;) {
      const size_t s = region->next.fetch_add(1, std::memory_order_relaxed);
      if (s >= region->shards) break;
      const size_t b = region->begin + s * region->grain;
      try {
        (*region->fn)(b, std::min(region->end, b + region->grain), s);
      } catch (...) {
        MutexLock lock(region->mu);
        if (!region->error) region->error = std::current_exception();
      }
      if (region->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          region->shards) {
        MutexLock lock(region->mu);
        region->cv.NotifyAll();
      }
    }
    --g_parallel_depth;
  };

  const size_t helpers = std::min(parallelism - 1, shards - 1);
  EnsureWorkers(helpers);
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < std::min(helpers, workers_.size()); ++i) {
      queue_.push_back(drain);
    }
  }
  cv_.NotifyAll();

  drain();  // the caller always participates
  {
    MutexLock lock(region->mu);
    while (region->done.load(std::memory_order_acquire) != region->shards) {
      region->cv.Wait(region->mu);
    }
    if (region->error) std::rethrow_exception(region->error);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()> task,
                           size_t max_queue_depth) {
  {
    MutexLock lock(mu_);
    if (queue_.size() >= max_queue_depth) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::RunAll(const std::vector<std::function<void()>>& tasks,
                        size_t parallelism) {
  ParallelFor(0, tasks.size(), 1, parallelism,
              [&tasks](size_t, size_t, size_t shard) { tasks[shard](); });
}

}  // namespace privbasis
