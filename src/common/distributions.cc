#include "common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace privbasis {

double SampleLaplace(Rng& rng, double scale) {
  assert(scale > 0.0);
  // Inverse-CDF on u ∈ (0,1); split at 1/2 for symmetry and precision.
  double u = rng.NextDoubleOpen();  // (0, 1]
  if (u <= 0.5) return scale * std::log(2.0 * u);
  return -scale * std::log(2.0 * (1.0 - u) + 1e-320);
}

double LaplaceInverseCdf(double u, double scale) {
  assert(u > 0.0 && u < 1.0);
  if (u <= 0.5) return scale * std::log(2.0 * u);
  return -scale * std::log(2.0 * (1.0 - u));
}

double LaplaceCdf(double x, double scale) {
  if (x < 0) return 0.5 * std::exp(x / scale);
  return 1.0 - 0.5 * std::exp(-x / scale);
}

double SampleExponential(Rng& rng, double rate) {
  assert(rate > 0.0);
  return -std::log(rng.NextDoubleOpen()) / rate;
}

double SampleGumbel(Rng& rng) {
  return -std::log(-std::log(rng.NextDoubleOpen()));
}

size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = rng.NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical slack
}

// ---------------------------------------------------------------------------
// ZipfDistribution (rejection-inversion, Hörmann & Derflinger 1996).
// Ranks are 1-based internally; Sample() returns rank−1.
// ---------------------------------------------------------------------------

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  norm_ = -1.0;  // lazy
}

double ZipfDistribution::H(double x) const {
  // Antiderivative of x^{−s}: x^{1−s}/(1−s) for s != 1, log(x) for s == 1.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    k = std::clamp<uint64_t>(k, 1, n_);
    double kd = static_cast<double>(k);
    if (kd - x <= 1.0 - 0.5 ||  // acceptance shortcut region
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;
    }
  }
}

double ZipfDistribution::Pmf(uint64_t i) const {
  assert(i < n_);
  if (norm_ < 0.0) {
    double z = 0.0;
    if (n_ <= 10'000'000ULL) {
      for (uint64_t r = 1; r <= n_; ++r) z += std::pow(r, -s_);
    } else {
      // Exact head + integral tail.
      const uint64_t head = 10'000'000ULL;
      for (uint64_t r = 1; r <= head; ++r) z += std::pow(r, -s_);
      z += H(static_cast<double>(n_) + 0.5) -
           H(static_cast<double>(head) + 0.5);
    }
    const_cast<ZipfDistribution*>(this)->norm_ = z;
  }
  return std::pow(static_cast<double>(i + 1), -s_) / norm_;
}

std::vector<uint64_t> SampleDistinct(Rng& rng, uint64_t universe,
                                     size_t count) {
  assert(count <= universe);
  // Floyd's algorithm: for j in [universe−count, universe), pick t uniform
  // in [0, j]; insert t unless taken, else insert j.
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> out;
  out.reserve(count);
  for (uint64_t j = universe - count; j < universe; ++j) {
    uint64_t t = rng.UniformInt(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace privbasis
