// Environment-variable knobs for the bench harness (PRIVBASIS_SCALE,
// PRIVBASIS_REPEATS, ...). Centralized so every bench binary parses them
// identically.
#ifndef PRIVBASIS_COMMON_ENV_H_
#define PRIVBASIS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace privbasis {

/// Value of environment variable `name` parsed as int64, or `fallback` if
/// unset/unparseable.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

/// Value of environment variable `name` parsed as double, or `fallback`.
double GetEnvDouble(const std::string& name, double fallback);

/// Raw value of environment variable `name`, or `fallback`.
std::string GetEnvString(const std::string& name, const std::string& fallback);

/// Dataset size multiplier for bench runs: PRIVBASIS_SCALE, default 1.0
/// (paper-sized datasets). Clamped to [0.01, 10].
double BenchScale();

/// Experiment repetitions: PRIVBASIS_REPEATS, default 3 (as in the paper).
int BenchRepeats();

/// Counting-engine parallelism: PRIVBASIS_THREADS, default
/// hardware concurrency. Clamped to [1, 64].
int NumThreads();

/// VerticalIndex densification threshold: items with frequency ≥ this get
/// a dense bitmap tid-list. PRIVBASIS_BITMAP_DENSITY, default 1/64.
/// Values ≥ 1 disable bitmaps; ≤ 0 densifies every item.
double BitmapDensityThreshold();

/// Default in-process shard count for Dataset handles: PRIVBASIS_SHARDS,
/// default 1 (no sharding). Clamped to [1, 64]. Shard counts never
/// change results — partial supports merge exactly (src/shard).
int NumShards();

// The kernel dispatch level ("avx2" | "scalar") is the PRIVBASIS_SIMD
// knob, resolved by common/simd.h (simd::ActiveLevel).

}  // namespace privbasis

#endif  // PRIVBASIS_COMMON_ENV_H_
