#include "common/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/annotations.h"
#include "common/env.h"

namespace privbasis::failpoint {

namespace {

struct Site {
  Action action;
  size_t skip = 0;  // hits that pass through before triggering
  size_t hits = 0;  // registered so far
};

struct Registry {
  Mutex mu;
  std::map<std::string, Site> sites PB_GUARDED_BY(mu);
  bool env_loaded PB_GUARDED_BY(mu) = false;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// Fast path: once the env has been consulted and nothing is armed, a
// Hit() is two relaxed-ish atomic loads and no mutex.
std::atomic<bool> g_armed{false};
std::atomic<bool> g_env_checked{false};

Result<int> ParseErrno(const std::string& name) {
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EIO") return EIO;
  if (name == "EDQUOT") return EDQUOT;
  char* end = nullptr;
  const long value = std::strtol(name.c_str(), &end, 10);
  if (end == name.c_str() || *end != '\0' || value <= 0) {
    return Status::InvalidArgument("failpoint: unknown errno \"" + name +
                                   "\"");
  }
  return static_cast<int>(value);
}

/// Strictly decimal, non-empty. A typo'd count silently parsing as 0
/// would arm a different fault than the operator asked for (torn:0
/// writes nothing, @0 skips nothing) — fault injection must be exact.
Result<size_t> ParseCount(const std::string& text, const char* what,
                          const std::string& term) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(std::string("failpoint: bad ") + what +
                                   " \"" + text + "\" in \"" + term + "\"");
  }
  return static_cast<size_t>(value);
}

/// One `site=action[:arg][@skip]` term.
Result<std::pair<std::string, Site>> ParseTerm(const std::string& term) {
  const size_t eq = term.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint: expected site=action in \"" +
                                   term + "\"");
  }
  std::string name = term.substr(0, eq);
  std::string rest = term.substr(eq + 1);
  Site site;
  if (const size_t at = rest.rfind('@'); at != std::string::npos) {
    PRIVBASIS_ASSIGN_OR_RETURN(site.skip,
                               ParseCount(rest.substr(at + 1), "@skip", term));
    rest = rest.substr(0, at);
  }
  std::string arg;
  bool has_arg = false;
  if (const size_t colon = rest.find(':'); colon != std::string::npos) {
    arg = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    has_arg = true;
  }
  if (rest == "error") {
    site.action.kind = Action::Kind::kError;
    PRIVBASIS_ASSIGN_OR_RETURN(site.action.err, ParseErrno(arg));
  } else if (rest == "torn") {
    site.action.kind = Action::Kind::kTorn;
    PRIVBASIS_ASSIGN_OR_RETURN(site.action.arg,
                               ParseCount(arg, "torn byte count", term));
  } else if (rest == "sleep") {
    site.action.kind = Action::Kind::kSleep;
    PRIVBASIS_ASSIGN_OR_RETURN(site.action.arg,
                               ParseCount(arg, "sleep duration", term));
  } else if (rest == "crash") {
    if (has_arg) {
      return Status::InvalidArgument("failpoint: crash takes no argument (\"" +
                                     term + "\")");
    }
    site.action.kind = Action::Kind::kCrash;
  } else {
    return Status::InvalidArgument("failpoint: unknown action \"" + rest +
                                   "\" in \"" + term + "\"");
  }
  return std::pair<std::string, Site>{std::move(name), site};
}

Result<std::map<std::string, Site>> ParseSpec(const std::string& spec) {
  std::map<std::string, Site> sites;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(start, comma - start);
    if (!term.empty()) {
      PRIVBASIS_ASSIGN_OR_RETURN(auto parsed, ParseTerm(term));
      sites[parsed.first] = parsed.second;
    }
    start = comma + 1;
  }
  return sites;
}

/// Loads PRIVBASIS_FAILPOINTS once (under the registry lock). A malformed
/// env spec aborts: an operator who asked for fault injection must not
/// silently run without it.
void LoadEnvLocked(Registry& r) PB_REQUIRES(r.mu) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  const std::string spec = GetEnvString("PRIVBASIS_FAILPOINTS", "");
  if (spec.empty()) return;
  auto parsed = ParseSpec(spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "PRIVBASIS_FAILPOINTS: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  r.sites = std::move(*parsed);
  if (!r.sites.empty()) g_armed.store(true, std::memory_order_release);
}

}  // namespace

Status Configure(const std::string& spec) {
  PRIVBASIS_ASSIGN_OR_RETURN(auto sites, ParseSpec(spec));
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.env_loaded = true;  // programmatic config overrides the environment
  r.sites = std::move(sites);
  g_armed.store(!r.sites.empty(), std::memory_order_release);
  g_env_checked.store(true, std::memory_order_release);
  return Status::OK();
}

void Reset() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.env_loaded = true;
  r.sites.clear();
  g_armed.store(false, std::memory_order_release);
  g_env_checked.store(true, std::memory_order_release);
}

Action Hit(const char* site) {
  Registry& r = registry();
  if (!g_env_checked.load(std::memory_order_acquire)) {
    MutexLock lock(r.mu);
    LoadEnvLocked(r);
    g_env_checked.store(true, std::memory_order_release);
  }
  if (!g_armed.load(std::memory_order_acquire)) return Action{};
  Action action;
  {
    MutexLock lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return Action{};
    Site& s = it->second;
    if (s.hits++ < s.skip) return Action{};
    action = s.action;
  }
  if (action.kind == Action::Kind::kSleep) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.arg));
    return Action{};
  }
  if (action.kind == Action::Kind::kCrash) {
    // The in-process stand-in for kill -9 at exactly this IO site: no
    // destructors, no buffers flushed.
    _exit(137);
  }
  return action;
}

}  // namespace privbasis::failpoint
