#include "common/logspace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/distributions.h"

namespace privbasis {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double LogAddExp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double LogSumExp(const std::vector<double>& xs) {
  double hi = kNegInf;
  for (double x : xs) hi = std::max(hi, x);
  if (hi == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - hi);
  return hi + std::log(sum);
}

size_t SampleLogWeights(Rng& rng, const std::vector<double>& log_weights) {
  assert(!log_weights.empty());
  GumbelMaxSampler sampler(&rng);
  for (size_t i = 0; i < log_weights.size(); ++i) {
    sampler.Offer(i, log_weights[i]);
  }
  assert(sampler.HasWinner() && "all log-weights were -inf");
  return sampler.WinnerKey();
}

GumbelMaxSampler::GumbelMaxSampler(Rng* rng) : rng_(rng) {}

void GumbelMaxSampler::Offer(size_t key, double log_weight) {
  if (log_weight == kNegInf) return;
  double score = log_weight + SampleGumbel(*rng_);
  if (!has_winner_ || score > best_score_) {
    has_winner_ = true;
    winner_key_ = key;
    best_score_ = score;
  }
}

void GumbelMaxSampler::OfferGroup(size_t group_key, double log_weight,
                                  double count) {
  if (count <= 0.0 || log_weight == kNegInf) return;
  Offer(group_key, log_weight + std::log(count));
}

}  // namespace privbasis
