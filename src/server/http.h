// Minimal HTTP/1.1 on top of common/net: request parsing with explicit
// limit outcomes, response writing, and a tiny blocking client used by
// the tests and the bench_smoke server_latency phase.
//
// Scope is deliberately narrow — the subset the query server needs:
// Content-Length bodies only (no chunked transfer), no TLS, case-
// insensitive header lookup, keep-alive with Connection: close
// honored. Every limit violation is a distinct outcome, not a generic
// error, because the server maps them to distinct response codes
// (413 body too large, 431 headers too large, 408 timeout, 400
// malformed) — the per-request contract the test harness pins down.
#ifndef PRIVBASIS_SERVER_HTTP_H_
#define PRIVBASIS_SERVER_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/net.h"
#include "common/status.h"

namespace privbasis::server {

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase as received)
  std::string target;   // origin-form, e.g. "/v1/query"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* Header(std::string_view name) const;
  /// True unless the client sent "Connection: close" (HTTP/1.1 default).
  bool KeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers beyond Content-Type/Content-Length/Connection (e.g.
  /// Retry-After on shed responses). On the client side (HttpCall),
  /// holds every response header as received.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Closes the connection after this response (set on fatal parse
  /// outcomes where the stream position is unreliable).
  bool close_connection = false;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* Header(std::string_view name) const;
};

/// Byte ceilings of one request.
struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1024 * 1024;
};

/// How reading one request ended. kClosed (clean EOF between requests)
/// is the one non-response outcome; all others either carry a request or
/// name the response the server must send.
enum class HttpReadOutcome {
  kOk,              ///< `request` is complete
  kClosed,          ///< orderly EOF before any request byte
  kTimeout,         ///< deadline hit mid-request → 408
  kMalformed,       ///< grammar violation → 400
  kHeaderTooLarge,  ///< → 431
  kBodyTooLarge,    ///< → 413
  kIoError,         ///< transport error; just drop the connection
};

/// How one non-blocking parse attempt over a byte buffer ended. The
/// pure-buffer twin of HttpReadOutcome: no transport, no deadline —
/// kNeedMore simply means "feed me more bytes", so both the blocking
/// ReadHttpRequest and the epoll event loop share one parser.
enum class HttpParseOutcome {
  kNeedMore,        ///< incomplete; append more bytes and call again
  kOk,              ///< `request` is complete (consumed from the buffer)
  kMalformed,       ///< grammar violation → 400
  kHeaderTooLarge,  ///< → 431
  kBodyTooLarge,    ///< → 413 (head consumed; see drain_bytes)
};

struct HttpParseResult {
  HttpParseOutcome outcome = HttpParseOutcome::kNeedMore;
  /// On kBodyTooLarge: declared body bytes still in flight on the wire
  /// (the head and already-received body were consumed). The caller
  /// should discard this many incoming bytes before responding, so the
  /// 413 isn't destroyed by a RST from closing with unread data.
  size_t drain_bytes = 0;
};

/// Attempts to parse one complete request from the front of `buffer`.
/// On kOk the request's bytes are consumed (pipelined followers stay);
/// on kNeedMore the buffer is untouched; on kBodyTooLarge the head and
/// received body are consumed and `drain_bytes` reports the remainder.
HttpParseResult ParseHttpRequest(std::string* buffer,
                                 const HttpLimits& limits,
                                 HttpRequest* request);

/// Reads one request from `fd` (appending to / consuming from `buffer`,
/// which carries pipelined bytes between calls on a keep-alive
/// connection). Blocks until a full request, a limit, or `deadline`.
HttpReadOutcome ReadHttpRequest(const net::Fd& fd, const HttpLimits& limits,
                                net::Deadline deadline, std::string* buffer,
                                HttpRequest* request);

/// Renders `response` as wire bytes (status line, Content-Type/Length
/// framing — suppressed for 204 per RFC 7230 §3.3.2 — extra headers,
/// Connection: close, body). Shared by WriteHttpResponse and the event
/// loop's write queue.
std::string SerializeHttpResponse(const HttpResponse& response);

/// Writes `response` with Content-Length and Connection headers.
Status WriteHttpResponse(const net::Fd& fd, const HttpResponse& response,
                         net::Deadline deadline);

/// Standard reason phrase for the handful of codes the server emits.
const char* HttpReasonPhrase(int status);

/// Blocking one-shot client: opens a connection, sends `method target`
/// with `body`, reads the response. `timeout_ms` bounds the whole round
/// trip. Used by tests, bench_smoke, and anyone without curl.
Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body, int64_t timeout_ms);

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_HTTP_H_
