#include "server/admission.h"

#include <algorithm>
#include <cmath>

namespace privbasis::server {

namespace {

/// EWMA weight for one observation: heavy enough that a handful of
/// queries re-anchor a stale seed, light enough that one cache-cold
/// outlier does not triple every prediction.
constexpr double kEwmaAlpha = 0.2;

}  // namespace

double CostModel::WorkUnits(const DatasetStats& stats,
                            const QuerySpec& spec) {
  const double occ = static_cast<double>(stats.total_occurrences);
  const double n = static_cast<double>(stats.num_transactions);
  const double k = static_cast<double>(std::max<size_t>(1, spec.k));
  switch (spec.method) {
    case QueryMethod::kPrivBasis: {
      // Three data passes dominate: the fk1 top-k mine (≈ one
      // occurrence scan plus candidate growth), optional pair counting
      // (per-transaction quadratic — only taken when λ outgrows the
      // single-basis cap, so weighted down), and the BasisFreq scan
      // whose per-transaction work grows with the basis width (≈ √k of
      // the λ the mechanism tends to sample at larger k).
      const double mine = occ;
      const double pairs =
          0.25 * n * stats.avg_transaction_len * stats.avg_transaction_len;
      const double basis_freq = occ * std::sqrt(k);
      double units = mine + pairs + basis_freq;
      // Subsampled queries scan only the q-fraction they keep.
      if (spec.sampling_rate < 1.0 && spec.sampling_rate > 0.0) {
        units *= spec.sampling_rate;
      }
      return units;
    }
    case QueryMethod::kTruncatedFrequency: {
      // Mining at length ≤ m multiplies the pass count; the k selection
      // rounds then walk the explicit candidate set (bounded, usually
      // far smaller than its configured limit — a flat per-round term).
      const double m = static_cast<double>(std::max<size_t>(1, spec.tf.m));
      return occ * m + k * 4096.0;
    }
  }
  return occ;
}

double CostModel::PredictMs(double work_units) const {
  MutexLock lock(mu_);
  return work_units * ns_per_unit_ * 1e-6;
}

void CostModel::Observe(double work_units, double actual_ms) {
  if (work_units <= 0.0 || actual_ms < 0.0) return;
  const double observed = actual_ms * 1e6 / work_units;
  MutexLock lock(mu_);
  ns_per_unit_ += kEwmaAlpha * (observed - ns_per_unit_);
  recent_query_ms_ += kEwmaAlpha * (actual_ms - recent_query_ms_);
}

double CostModel::ns_per_unit() const {
  MutexLock lock(mu_);
  return ns_per_unit_;
}

double CostModel::recent_query_ms() const {
  MutexLock lock(mu_);
  return recent_query_ms_;
}

AdmissionDecision AdmissionController::Decide(double work_units,
                                              size_t queue_depth) const {
  AdmissionDecision decision;
  decision.predicted_ms = model_.PredictMs(work_units);
  // A query reaching this point already holds a worker — running it IS
  // the server's capacity, so a full backlog alone must not shed it
  // (that would collapse throughput to zero under sustained overload).
  // But when the queue is full AND the query is itself expensive
  // (> half the SLO predicted), the backlog has eaten its latency
  // headroom: shed it now, cheaply, instead of letting it time out
  // mid-scan. Cheap queries keep flowing regardless of backlog.
  if (options_.max_queue_depth > 0 &&
      queue_depth >= options_.max_queue_depth && options_.slo_ms > 0 &&
      decision.predicted_ms > 0.5 * static_cast<double>(options_.slo_ms)) {
    decision.admit = false;
    decision.reason = ShedReason::kQueueFull;
    decision.retry_after_s = RetryAfterSeconds(queue_depth);
    return decision;
  }
  if (options_.slo_ms > 0 &&
      decision.predicted_ms > static_cast<double>(options_.slo_ms)) {
    decision.admit = false;
    decision.reason = ShedReason::kPredictedCost;
    // This query can never meet the SLO on this dataset, but the load
    // spike that often accompanies the shed will have passed; suggest
    // one predicted-duration's worth of backoff.
    decision.retry_after_s = std::clamp<int64_t>(
        static_cast<int64_t>(std::ceil(decision.predicted_ms / 1000.0)), 1,
        60);
    return decision;
  }
  return decision;
}

int64_t AdmissionController::RetryAfterSeconds(size_t queue_depth) const {
  // Roughly: the backlog's drain time at the recent per-query latency,
  // floored at the 1 s granularity the header can express.
  const double drain_ms =
      model_.recent_query_ms() * static_cast<double>(queue_depth + 1);
  return std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(drain_ms / 1000.0)), 1, 60);
}

}  // namespace privbasis::server
