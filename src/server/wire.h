// Wire format of the query server: the JSON mirror of the Engine facade's
// request/response types (engine/query.h) plus the Status → HTTP error
// contract.
//
// Contract properties the tests pin down (tests/wire_test.cc):
//   * Deterministic serialization — fixed member order, canonical
//     numbers — so golden files compare byte for byte.
//   * Lossless round trip — a Release served over HTTP re-parses
//     bit-identical to the in-process struct (noisy counts, ε values,
//     uint64 seeds).
//   * Strict parsing — unknown keys are rejected with kInvalidArgument
//     (a typoed "epsilom" must 400, not silently run at the default ε
//     and spend budget the client did not intend).
//
// QuerySpec JSON (all keys optional; defaults = engine defaults):
//   {"method": "pb"|"tf", "k": 100, "epsilon": 1.0, "seed": 42,
//    "theta": 0.05, "sampling_rate": 0.5, "label": "...",
//    "rules": {"min_confidence": 0.6, "min_support": 0.0,
//              "max_antecedent": 0},
//    "pb": {"alpha1": .., "alpha2": .., "alpha3": .., "eta": ..,
//           "single_basis_lambda_cap": .., "max_basis_length": ..,
//           "monotonic_em": true, "naive_lambda2": false,
//           "lambda_cap": 0, "fk1_support_hint": 0},
//    "tf": {"m": 2, "rho": 0.9, "selection": "em"|"laplace",
//           "explicit_limit": 1000000}}
// The envelope keys "dataset" (the registry handle id) and
// "deadline_ms" (per-query wall-clock deadline, capped by the server's
// request deadline) are the server's, not the spec's; QuerySpecFromJson
// skips them.
#ifndef PRIVBASIS_SERVER_WIRE_H_
#define PRIVBASIS_SERVER_WIRE_H_

#include <initializer_list>

#include "common/json.h"
#include "common/status.h"
#include "engine/query.h"

namespace privbasis::server {

/// Serializes a spec with every field explicit (defaults included), in
/// fixed order — the canonical form golden tests compare against.
json::Value QuerySpecToJson(const QuerySpec& spec);

/// Parses the spec object. Strict: unknown keys (other than the server
/// envelope's "dataset") fail with kInvalidArgument. Values are
/// range-checked here only as far as typing goes; semantic validation is
/// QuerySpec::Validate(), exactly as for in-process callers.
Result<QuerySpec> QuerySpecFromJson(const json::Value& value);

/// Serializes a Release: method, itemsets (via eval/release_io's JSON
/// form), rules, λ/λ2/basis diagnostics, and the ledger-derived budget
/// block. An unlimited budget's remaining ε serializes as null.
json::Value ReleaseToJson(const Release& release);

/// Parses ReleaseToJson output (the client half of the round trip; the
/// in-process tests use it to compare served vs direct releases).
Result<Release> ReleaseFromJson(const json::Value& value);

/// {"error": {"code": "BudgetExhausted", "message": "..."}} — the body of
/// every non-2xx response.
json::Value StatusToJson(const Status& status);

/// The GET /v1/stats payload as a plain struct, so the wire form is
/// golden-testable (tests/wire_test.cc) without a live server — the
/// server fills one from its counters and serializes it here.
struct StatsSnapshot {
  // Query admission breakdown.
  uint64_t queries_admitted = 0;
  uint64_t queries_shed_predicted = 0;
  uint64_t queries_shed_queue = 0;
  uint64_t queries_cancelled = 0;
  uint64_t queries_completed = 0;
  // Connection handling.
  uint64_t connections = 0;
  uint64_t connections_shed = 0;
  // Admission configuration + live cost-model calibration.
  int64_t slo_ms = 0;
  uint64_t max_queue_depth = 0;
  uint64_t queue_depth = 0;
  double ns_per_unit = 0.0;
  double recent_query_ms = 0.0;
  // Sharded execution topology: remote worker count (0 = none
  // configured) and the default counting fan-out new datasets get.
  uint64_t shard_workers = 0;
  uint64_t shard_fanout = 1;
  // Same-dataset query batching (core/batch_exec.h): the configured
  // window/size (window_us = 0, max = 0 when off) and the monotone
  // fused-scan counters.
  int64_t batch_window_us = 0;
  uint64_t batch_max = 0;
  uint64_t batches = 0;
  uint64_t batched_queries = 0;
  uint64_t scans_saved = 0;
};

/// Serializes the snapshot in fixed member order (the /v1/stats body).
json::Value StatsToJson(const StatsSnapshot& stats);

/// Parses StatsToJson output. Strict: unknown keys are rejected, so a
/// client built against this schema notices a server that grew fields.
Result<StatsSnapshot> StatsFromJson(const json::Value& value);

/// Rejects members of `obj` whose key is not in `allowed` — the strict
/// half of the wire contract, shared by every JSON-accepting endpoint
/// (a typoed "budget" must 400, not silently register an unlimited
/// dataset). `what` names the object in the error message.
Status CheckKeys(const json::Value::Object& obj,
                 std::initializer_list<const char*> allowed,
                 const char* what);

/// The Status → HTTP mapping of the /v1 routes:
///   kOk 200, kInvalidArgument/kOutOfRange 400, kNotFound 404,
///   kFailedPrecondition 409, kBudgetExhausted 429 (the "payment
///   required" refusal — 402 semantics — spelled with the standard
///   too-many-requests code), kResourceExhausted 429, kIoError/kInternal
///   500, kUnavailable 503, kCancelled 408 (deadline expired mid-run).
int HttpStatusForCode(StatusCode code);

}  // namespace privbasis::server

#endif  // PRIVBASIS_SERVER_WIRE_H_
